// Ablation A (design choice, Section 5.2 of the paper): the acyclicity
// encoding. The paper chose vertex elimination (Rankooh & Rintanen 2022)
// over the naive transitive-closure encoding because its variable count is
// O(n * delta) instead of O(n^2). This bench quantifies that choice on
// closures of increasing connectivity: sparse chains (TransClosure
// bitcoin-like), dense social graphs (facebook-like), and Galen.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace {

using namespace whyprov::bench;  // NOLINT(build/namespaces): bench shorthand
namespace pv = whyprov::provenance;

void BM_AcyclicityEncoding(benchmark::State& state, const SuiteEntry entry,
                           pv::AcyclicityEncoding encoding) {
  for (auto _ : state) {
    auto scenario = entry.make();
    const whyprov::Engine engine = scenario.MakeEngine();
    whyprov::util::Rng rng(kSuiteSeed ^ 0x9u);
    const auto targets = engine.SampleAnswers(3, rng);

    double encode_total = 0;
    double solve_total = 0;
    double aux_vars = 0;
    double clauses = 0;
    for (auto target : targets) {
      whyprov::EnumerateRequest request;
      request.target = target;
      request.acyclicity = encoding;
      auto enumeration = engine.Enumerate(request);
      if (!enumeration.ok()) continue;
      encode_total += enumeration.value().timings().encode_seconds;
      aux_vars += static_cast<double>(
          enumeration.value().encoding().acyclicity.auxiliary_variables);
      clauses += static_cast<double>(
          enumeration.value().encoding().acyclicity.clauses);
      whyprov::util::Timer timer;
      enumeration.value().Next();  // first member: one SAT solve
      solve_total += timer.ElapsedSeconds();
    }
    state.counters["encode_s"] = encode_total;
    state.counters["first_solve_s"] = solve_total;
    state.counters["acyc_aux_vars"] = aux_vars;
    state.counters["acyc_clauses"] = clauses;
    std::printf(
        "%-14s %-14s %-20s encode=%8.4fs first-solve=%8.4fs aux-vars=%.0f "
        "clauses=%.0f\n",
        entry.scenario.c_str(), entry.database.c_str(),
        pv::AcyclicityEncodingName(encoding).c_str(), encode_total,
        solve_total, aux_vars, clauses);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation A: acyclicity encodings (transitive closure vs vertex "
      "elimination), 3 tuples per database\n\n");
  std::vector<SuiteEntry> entries = TransClosureSuite();
  // Galen D4's transitive-closure encoding exceeds the machine's memory
  // (the quadratic variable count is the point of the ablation), so the
  // sweep stops at D3.
  auto galen = GalenSuite();
  for (std::size_t i = 0; i + 1 < galen.size(); ++i) {
    entries.push_back(galen[i]);
  }
  for (const auto& entry : entries) {
    for (auto encoding : {pv::AcyclicityEncoding::kTransitiveClosure,
                          pv::AcyclicityEncoding::kVertexElimination}) {
      benchmark::RegisterBenchmark(
          ("AblationA/" + entry.scenario + "/" + entry.database + "/" +
           pv::AcyclicityEncodingName(encoding))
              .c_str(),
          BM_AcyclicityEncoding, entry, encoding)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
