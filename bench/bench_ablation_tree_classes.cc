// Ablation B (design choice, Section 5.1 of the paper): why unambiguous
// proof trees are the class that makes the SAT approach practical. For
// arbitrary proof trees the only general way to produce the family is to
// materialise it (supports explode combinatorially); unambiguous proof
// trees admit the compact compressed-DAG encoding with subtree count one.
//
// This bench compares, on the paper's running-example program over random
// databases of growing size: (a) the SAT-based whyUN enumeration and
// (b) the set-of-supports materialisation of the arbitrary-tree family.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace {

namespace pv = whyprov::provenance;
namespace dl = whyprov::datalog;

struct Instance {
  std::shared_ptr<dl::SymbolTable> symbols;
  dl::Program program;
  dl::Database database;
};

Instance MakeAccessibility(std::size_t domain, std::size_t conditions,
                           std::uint64_t seed) {
  whyprov::util::Rng rng(seed);
  std::string facts = "s(n0).\n";
  for (std::size_t i = 0; i < conditions; ++i) {
    facts += "t(n" + std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ").\n";
  }
  auto symbols = std::make_shared<dl::SymbolTable>();
  auto program = dl::Parser::ParseProgram(symbols, R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )");
  auto database = dl::Parser::ParseDatabase(symbols, facts);
  if (!program.ok() || !database.ok()) std::abort();  // generated input
  return Instance{symbols, std::move(program).value(),
                  std::move(database).value()};
}

void BM_TreeClasses(benchmark::State& state) {
  // Fixed small domain, growing number of accessibility conditions: the
  // instances get denser, and the arbitrary-tree family explodes while
  // whyUN stays flat.
  const std::size_t domain = 6;
  const std::size_t conditions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Instance instance =
        MakeAccessibility(domain, conditions, whyprov::bench::kSuiteSeed);
    const dl::PredicateId a = instance.symbols->FindPredicate("a").value();
    const whyprov::Engine engine = whyprov::Engine::FromParts(
        instance.program, instance.database, a);
    const auto& answers = engine.model().Relation(a);
    if (answers.empty()) continue;
    const dl::FactId target = answers.back();

    whyprov::util::Timer timer;
    whyprov::EnumerateRequest request;
    request.target = target;
    request.max_members = 5000;
    auto enumeration = engine.Enumerate(request);
    if (!enumeration.ok()) continue;
    const auto members = enumeration.value().All();
    const double un_seconds = timer.ElapsedSeconds();

    timer.Reset();
    whyprov::BaselineRequest baseline;
    baseline.target = target;
    baseline.limits = pv::BaselineLimits{/*max_family_size=*/1u << 18,
                                         /*max_combinations=*/1u << 24};
    auto any_family = engine.Baseline(baseline);
    const double any_seconds = timer.ElapsedSeconds();

    state.counters["whyUN_s"] = un_seconds;
    state.counters["whyUN_members"] = static_cast<double>(members.size());
    state.counters["why_any_s"] = any_seconds;
    state.counters["why_any_members"] =
        any_family.ok() ? static_cast<double>(any_family.value().size()) : -1;
    std::printf(
        "conditions=%-4zu whyUN(SAT): %8.4fs %5zu members | "
        "why(materialise): %8.4fs %s\n",
        conditions, un_seconds, members.size(), any_seconds,
        any_family.ok()
            ? (std::to_string(any_family.value().size()) + " members")
                  .c_str()
            : "OOM (budget exceeded)");
  }
}

BENCHMARK(BM_TreeClasses)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Arg(28)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation B: proof-tree classes — SAT enumeration of whyUN vs "
      "materialisation of why (arbitrary trees), path-accessibility "
      "program\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
