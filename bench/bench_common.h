#ifndef WHYPROV_BENCH_BENCH_COMMON_H_
#define WHYPROV_BENCH_BENCH_COMMON_H_

// Shared definitions for the benchmark harness: the canonical scenario
// suite (the repository's scaled-down stand-in for the paper's Table 1
// datasets) and helpers to run the two measured pipelines.
//
// Scale note: the paper's databases range from 26.5K to 44M facts and were
// processed by DLV + Glucose on a 32GB machine; this repository's
// generators are scaled so the whole suite runs in minutes in CI while
// spanning more than an order of magnitude per scenario. EXPERIMENTS.md
// records the mapping.

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "scenarios/scenarios.h"

namespace whyprov::bench {

/// Shared command-line flags of the standalone JSON benchmarks
/// (bench_throughput, bench_incremental, bench_service).
struct BenchFlags {
  std::size_t requests = 0;  ///< 0 = binary default
  std::size_t reps = 0;      ///< 0 = binary default
  std::string out;           ///< empty = binary default
  /// Shard counts for the sharded configurations (bench_service only):
  /// 0 = binary default suite. Parsed from `--shards=N`.
  std::size_t shards = 0;
  bool has_shards = false;  ///< binary supports --shards (set by the binary)
};

/// Parses `--requests=N`, `--reps=R`, `--shards=N`, `--out=PATH`, and the
/// legacy positional output path into `flags` (leaving unset fields at
/// their incoming defaults). `--help`/`-h` prints the usage (with the
/// binary's baked-in defaults) to stdout and exits 0. Returns false —
/// after printing the usage to stderr — on unknown flags or non-positive
/// numeric values.
inline bool ParseBenchFlags(int argc, char** argv, const char* binary_name,
                            BenchFlags& flags) {
  // A binary that leaves flags.requests at 0 has no workload-size knob,
  // so the usage omits --requests for it (it would be parsed but unused).
  const bool has_requests = flags.requests > 0;
  const auto usage = [&](std::FILE* out) {
    std::fprintf(out, "usage: %s %s%s[--reps=R] [--out=PATH]\n", binary_name,
                 has_requests ? "[--requests=N] " : "",
                 flags.has_shards ? "[--shards=N] " : "");
    if (has_requests) {
      std::fprintf(out,
                   "  --requests=N   workload size per configuration "
                   "(default %zu)\n",
                   flags.requests);
    }
    if (flags.has_shards) {
      std::fprintf(out,
                   "  --shards=N     serve through a ShardedService with N "
                   "shards (default:\n"
                   "                 the built-in suite of shard counts)\n");
    }
    std::fprintf(out,
                 "  --reps=R       repetitions; the best rep is reported "
                 "(default %zu)\n"
                 "  --out=PATH     output JSON path (default %s; a bare\n"
                 "                 positional argument also works)\n"
                 "  %s must be positive\n",
                 flags.reps, flags.out.c_str(), has_requests ? "N and R" : "R");
  };
  const auto positive = [](const char* text, std::size_t& value) {
    const long long parsed = std::atoll(text);
    if (parsed <= 0) return false;
    value = static_cast<std::size_t>(parsed);
    return true;
  };
  bool ok = true;
  for (int i = 1; i < argc && ok; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else if (std::strncmp(arg, "--requests=", 11) == 0) {
      ok = positive(arg + 11, flags.requests);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      ok = positive(arg + 7, flags.reps);
    } else if (flags.has_shards && std::strncmp(arg, "--shards=", 9) == 0) {
      ok = positive(arg + 9, flags.shards);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      flags.out = arg + 6;
    } else if (arg[0] != '-') {
      flags.out = arg;  // legacy positional output path
    } else {
      ok = false;
    }
  }
  if (!ok) usage(stderr);
  return ok;
}

/// One database configuration of a scenario family.
struct SuiteEntry {
  std::string scenario;   ///< e.g. "Andersen"
  std::string database;   ///< e.g. "D3"
  std::function<scenarios::GeneratedScenario()> make;
};

inline constexpr std::uint64_t kSuiteSeed = 20240611;

/// The TransClosure family: a sparse transaction-like graph (Bitcoin
/// stand-in) and a dense social-circles graph (Facebook stand-in).
inline std::vector<SuiteEntry> TransClosureSuite() {
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            3000, 4500, kSuiteSeed);
       }},
      {"TransClosure", "Dfacebook~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSocial,
                                            192, 600, kSuiteSeed);
       }},
  };
}

/// Doctors-1..7 share one database scale.
inline std::vector<SuiteEntry> DoctorsSuite() {
  std::vector<SuiteEntry> suite;
  for (int variant = 1; variant <= 7; ++variant) {
    suite.push_back(SuiteEntry{
        "Doctors-" + std::to_string(variant), "D1", [variant] {
          return scenarios::MakeDoctors(variant, 2000, kSuiteSeed);
        }});
  }
  return suite;
}

/// Galen at four ontology sizes (the paper's D1..D4).
inline std::vector<SuiteEntry> GalenSuite() {
  std::vector<SuiteEntry> suite;
  const std::size_t sizes[] = {40, 70, 100, 140};
  int index = 0;
  for (std::size_t size : sizes) {
    suite.push_back(SuiteEntry{"Galen", "D" + std::to_string(++index),
                               [size] {
                                 return scenarios::MakeGalen(size, kSuiteSeed);
                               }});
  }
  return suite;
}

/// Andersen at five program sizes (the paper's D1..D5).
inline std::vector<SuiteEntry> AndersenSuite() {
  std::vector<SuiteEntry> suite;
  const std::size_t sizes[] = {2000, 4000, 8000, 16000, 32000};
  int index = 0;
  for (std::size_t size : sizes) {
    suite.push_back(
        SuiteEntry{"Andersen", "D" + std::to_string(++index), [size] {
                     return scenarios::MakeAndersen(size, kSuiteSeed);
                   }});
  }
  return suite;
}

/// CSDA at three system sizes (httpd / postgresql / linux stand-ins).
inline std::vector<SuiteEntry> CsdaSuite() {
  return {
      {"CSDA", "Dhttpd~",
       [] { return scenarios::MakeCsda("httpd", 4000, kSuiteSeed); }},
      {"CSDA", "Dpostgresql~",
       [] { return scenarios::MakeCsda("postgresql", 8000, kSuiteSeed); }},
      {"CSDA", "Dlinux~",
       [] { return scenarios::MakeCsda("linux", 16000, kSuiteSeed); }},
  };
}

/// Everything, in the paper's Table 1 order.
inline std::vector<SuiteEntry> FullSuite() {
  std::vector<SuiteEntry> suite;
  for (auto& entry : TransClosureSuite()) suite.push_back(entry);
  for (auto& entry : DoctorsSuite()) suite.push_back(entry);
  for (auto& entry : GalenSuite()) suite.push_back(entry);
  for (auto& entry : AndersenSuite()) suite.push_back(entry);
  for (auto& entry : CsdaSuite()) suite.push_back(entry);
  return suite;
}

/// The paper samples five answer tuples per database, uniformly.
inline constexpr std::size_t kTuplesPerDatabase = 5;

/// Enumeration caps (the paper: 10K members or 5 minutes; scaled down).
inline constexpr std::size_t kMaxMembersPerTuple = 1000;
inline constexpr double kEnumerationTimeoutSeconds = 30.0;

}  // namespace whyprov::bench

#endif  // WHYPROV_BENCH_BENCH_COMMON_H_
