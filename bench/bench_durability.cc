// bench_durability: the cost of the durability tier, measured two ways.
//
//   throughput:  committed-delta throughput through `whyprov::Service`
//                with the write-ahead log on versus off (same scenario,
//                same alternating remove/restore churn), including the
//                periodic checkpoints the WAL-on configuration writes.
//                `deltas_per_second` is the headline; check_regression.py
//                --min-wal-throughput gates the WAL-on rate at >= 0.75x
//                the WAL-off rate *within the same run* (self-relative,
//                so the gate holds on any hardware).
//
//   recovery:    wall time to rebuild a serving stack from a data
//                directory whose WAL tail holds k committed deltas
//                (checkpointing disabled so every record replays — the
//                worst case). `build_seconds` is the same engine built
//                without a data directory, so the difference is the
//                replay share; `recovery_seconds` trends linearly in k
//                because the log is replayed through the normal
//                ApplyDelta path.
//
// Usage:
//   bench_durability [--requests=N] [--reps=R] [--out=PATH]
//
//   --requests=N  deltas per throughput configuration (default 200)
//   --reps=R      repetitions; the best (max-throughput / min-time) rep
//                 is reported (default 3)
//   --out=PATH    output path (default BENCH_durability.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/timer.h"
#include "whyprov.h"

namespace {

using whyprov::bench::SuiteEntry;
namespace dl = whyprov::datalog;

constexpr std::size_t kDefaultDeltas = 200;
const std::size_t kTailLengths[] = {32, 128, 512};

struct Run {
  std::string scenario;
  std::string database;
  std::string wal;  // "on" or "off"
  std::size_t deltas = 0;
  std::size_t tail_records = 0;  ///< recovery rows only
  double wall_seconds = 0;
  double deltas_per_second = 0;
  double build_seconds = 0;     ///< recovery rows: engine without data dir
  double recovery_seconds = 0;  ///< recovery rows: engine + replayed tail
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t replayed_deltas = 0;
  bool recovery_row = false;
};

/// Small representatives (the throughput bench's scaled databases): the
/// WAL cost being measured is per-delta framing + I/O, not evaluation.
std::vector<SuiteEntry> DurabilitySuite() {
  using whyprov::bench::kSuiteSeed;
  namespace scenarios = whyprov::scenarios;
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            600, 900, kSuiteSeed);
       }},
      {"Doctors-1", "D1",
       [] { return scenarios::MakeDoctors(1, 400, kSuiteSeed); }},
  };
}

/// A fresh empty directory under the system temp dir (recreated per use
/// so every configuration starts from an empty log).
std::string FreshDataDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "whyprov_bench_durability" /
      tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir.string();
}

/// Applies `count` deltas (alternating remove/restore of one database
/// fact) through the service in windows of `burst` in-flight tickets
/// (1 = fully sequential, the historical shape) and returns the wall
/// time. Takes the fact by value: references into the engine's snapshot
/// die at the first applied delta.
double ChurnDeltas(whyprov::Service& service, const dl::Fact churn_fact,
                   std::size_t count, std::size_t burst = 1) {
  bool fact_removed = false;
  std::vector<whyprov::Ticket> window;
  window.reserve(burst);
  whyprov::util::Timer timer;
  for (std::size_t i = 0; i < count; ++i) {
    whyprov::DeltaRequest delta;
    if (fact_removed) {
      delta.added_facts = {churn_fact};
    } else {
      delta.removed_facts = {churn_fact};
    }
    fact_removed = !fact_removed;
    whyprov::Request request;
    request.op = std::move(delta);
    auto ticket = service.Submit(request);
    if (!ticket.ok()) {
      std::fprintf(stderr, "error: delta submit failed: %s\n",
                   ticket.status().message().c_str());
      std::exit(1);
    }
    window.push_back(std::move(ticket).value());
    if (window.size() >= std::max<std::size_t>(1, burst) ||
        i + 1 == count) {
      for (whyprov::Ticket& pending : window) (void)pending.Wait();
      window.clear();
    }
  }
  return timer.ElapsedSeconds();
}

/// Group-commit rows submit deltas in bursts this deep: fsync
/// coalescing only exists while several deltas are in flight (a lone
/// delta is the burst boundary and syncs immediately, making group
/// commit identical to wal=on under the sequential shape).
constexpr std::size_t kGroupCommitBurst = 32;

Run MeasureThroughput(const SuiteEntry& entry, const std::string& wal_mode,
                      std::size_t deltas, std::size_t reps) {
  const bool wal_on = wal_mode != "off";
  const bool group_commit = wal_mode == "group";
  Run run;
  run.scenario = entry.scenario;
  run.database = entry.database;
  run.wal = wal_mode;
  run.deltas = deltas;

  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    auto scenario = entry.make();
    whyprov::EngineOptions engine_options;
    if (wal_on) {
      engine_options.data_dir =
          FreshDataDir(entry.scenario + "_tp_" + std::to_string(rep));
      // A production-like cadence: every checkpoint costs two fsyncs
      // (tmp file + directory rename), so at the default interval of
      // 32 the checkpoint share of a sub-second measurement window is
      // pure filesystem jitter. 128 keeps >= 3 checkpoints in every
      // measured run while letting the per-delta WAL cost dominate.
      engine_options.checkpoint_interval = 128;
      engine_options.wal_group_commit = group_commit;
    }
    whyprov::ServiceOptions service_options;
    whyprov::Service service(scenario.MakeEngine(engine_options),
                             service_options);
    if (!service.durability_status().ok()) {
      std::fprintf(stderr, "error: durable store open failed: %s\n",
                   service.durability_status().message().c_str());
      std::exit(1);
    }
    const std::vector<dl::Fact>& db_facts = service.engine().database().facts();
    if (db_facts.empty()) continue;
    const dl::Fact churn_fact = db_facts[db_facts.size() / 2];

    const double wall_seconds = ChurnDeltas(
        service, churn_fact, deltas, group_commit ? kGroupCommitBurst : 1);
    const double rate =
        wall_seconds > 0 ? static_cast<double>(deltas) / wall_seconds : 0;
    if (rep == 0 || rate > run.deltas_per_second) {
      run.wall_seconds = wall_seconds;
      run.deltas_per_second = rate;
      const whyprov::ServiceStats stats = service.stats();
      run.wal_appends = stats.wal_appends;
      run.wal_bytes = stats.wal_bytes;
      run.checkpoints_written = stats.checkpoints_written;
    }
  }
  return run;
}

Run MeasureRecovery(const SuiteEntry& entry, std::size_t tail_records,
                    std::size_t reps) {
  Run run;
  run.scenario = entry.scenario;
  run.database = entry.database;
  run.wal = "on";
  run.tail_records = tail_records;
  run.recovery_row = true;

  // Populate one data directory with a tail of `tail_records` committed
  // deltas; checkpointing off, so recovery replays every record.
  const std::string data_dir =
      FreshDataDir(entry.scenario + "_rec_" + std::to_string(tail_records));
  whyprov::EngineOptions durable_options;
  durable_options.data_dir = data_dir;
  durable_options.checkpoint_interval = 0;
  {
    auto scenario = entry.make();
    whyprov::Service service(scenario.MakeEngine(durable_options),
                             whyprov::ServiceOptions());
    const std::vector<dl::Fact>& db_facts = service.engine().database().facts();
    if (db_facts.empty()) return run;
    ChurnDeltas(service, db_facts[db_facts.size() / 2], tail_records);
  }

  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    // Baseline: the same engine with no data directory to recover.
    auto scenario = entry.make();
    whyprov::util::Timer timer;
    {
      whyprov::EngineOptions cold_options;
      whyprov::Service service(scenario.MakeEngine(cold_options),
                               whyprov::ServiceOptions());
      const double build = timer.ElapsedSeconds();
      if (rep == 0 || build < run.build_seconds) run.build_seconds = build;
    }

    // Recovery: the same engine plus the replayed WAL tail.
    auto again = entry.make();
    timer.Reset();
    whyprov::Service recovered(again.MakeEngine(durable_options),
                               whyprov::ServiceOptions());
    const double recovery = timer.ElapsedSeconds();
    const whyprov::ServiceStats stats = recovered.stats();
    if (stats.recovery_replayed_deltas != tail_records) {
      std::fprintf(stderr,
                   "error: recovery replayed %llu of %zu logged deltas\n",
                   static_cast<unsigned long long>(
                       stats.recovery_replayed_deltas),
                   tail_records);
      std::exit(1);
    }
    if (rep == 0 || recovery < run.recovery_seconds) {
      run.recovery_seconds = recovery;
      run.replayed_deltas = stats.recovery_replayed_deltas;
    }
  }
  return run;
}

void WriteJson(std::FILE* out, const std::vector<Run>& runs) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    if (run.recovery_row) {
      std::fprintf(
          out,
          "  {\"scenario\": \"%s\", \"database\": \"%s\", \"wal\": \"%s\", "
          "\"tail_records\": %zu, \"build_seconds\": %.6f, "
          "\"recovery_seconds\": %.6f, \"replayed_deltas\": %llu}%s\n",
          run.scenario.c_str(), run.database.c_str(), run.wal.c_str(),
          run.tail_records, run.build_seconds, run.recovery_seconds,
          static_cast<unsigned long long>(run.replayed_deltas),
          i + 1 < runs.size() ? "," : "");
    } else {
      std::fprintf(
          out,
          "  {\"scenario\": \"%s\", \"database\": \"%s\", \"wal\": \"%s\", "
          "\"deltas\": %zu, \"wall_seconds\": %.6f, "
          "\"deltas_per_second\": %.2f, \"wal_appends\": %llu, "
          "\"wal_bytes\": %llu, \"checkpoints_written\": %llu}%s\n",
          run.scenario.c_str(), run.database.c_str(), run.wal.c_str(),
          run.deltas, run.wall_seconds, run.deltas_per_second,
          static_cast<unsigned long long>(run.wal_appends),
          static_cast<unsigned long long>(run.wal_bytes),
          static_cast<unsigned long long>(run.checkpoints_written),
          i + 1 < runs.size() ? "," : "");
    }
  }
  std::fprintf(out, "]\n");
}

}  // namespace

int main(int argc, char** argv) {
  whyprov::bench::BenchFlags flags;
  flags.requests = kDefaultDeltas;
  flags.reps = 3;
  flags.out = "BENCH_durability.json";
  if (!whyprov::bench::ParseBenchFlags(argc, argv, "bench_durability",
                                       flags)) {
    return 2;
  }

  std::vector<Run> runs;
  for (const SuiteEntry& entry : DurabilitySuite()) {
    // "group" is wal=on with EngineOptions::wal_group_commit and a
    // bursty submitter: acknowledged-at-burst-boundary durability, one
    // coalesced fsync per burst. Its row is informational (the
    // --min-wal-throughput gate compares "on" vs "off" only — the
    // group row's burst shape is deliberately different).
    for (const char* wal_mode : {"off", "on", "group"}) {
      Run run = MeasureThroughput(entry, wal_mode, flags.requests, flags.reps);
      std::printf(
          "%-14s %-12s wal=%-3s  %zu deltas in %8.5fs  %10.2f deltas/s  "
          "(%llu appends, %llu bytes, %llu checkpoints)\n",
          run.scenario.c_str(), run.database.c_str(), run.wal.c_str(),
          run.deltas, run.wall_seconds, run.deltas_per_second,
          static_cast<unsigned long long>(run.wal_appends),
          static_cast<unsigned long long>(run.wal_bytes),
          static_cast<unsigned long long>(run.checkpoints_written));
      runs.push_back(std::move(run));
    }
    for (const std::size_t tail : kTailLengths) {
      Run run = MeasureRecovery(entry, tail, flags.reps);
      std::printf(
          "%-14s %-12s recovery tail=%-4zu build %8.5fs  recover %8.5fs  "
          "(%llu replayed)\n",
          run.scenario.c_str(), run.database.c_str(), run.tail_records,
          run.build_seconds, run.recovery_seconds,
          static_cast<unsigned long long>(run.replayed_deltas));
      runs.push_back(std::move(run));
    }
  }

  std::FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", flags.out.c_str());
    return 1;
  }
  WriteJson(out, runs);
  std::fclose(out);
  std::printf("wrote %s\n", flags.out.c_str());
  return 0;
}
