// Figure 1 of the paper: time to build the downward closure and the
// Boolean formula, for each database of the Andersen scenario (five bars
// per database, one per uniformly sampled answer tuple).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_runners.h"

namespace {

using namespace whyprov::bench;  // NOLINT(build/namespaces): bench shorthand

void BM_Construction(benchmark::State& state, const SuiteEntry entry) {
  for (auto _ : state) {
    const auto runs = RunSuiteEntry(entry, /*enumerate=*/false);
    double total = 0;
    for (const auto& run : runs) total += run.construction.total_seconds();
    state.counters["mean_total_s"] =
        runs.empty() ? 0 : total / static_cast<double>(runs.size());
    PrintConstructionRows(entry, runs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 1: building the downward closure and the Boolean formula "
      "(Andersen, 5 random tuples per database)\n\n");
  for (const auto& entry : AndersenSuite()) {
    benchmark::RegisterBenchmark(
        ("Fig1/" + entry.scenario + "/" + entry.database).c_str(),
        BM_Construction, entry)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
