// Figure 2 of the paper: incremental computation of the why-provenance —
// the delay between consecutive members (box plots per database of the
// Andersen scenario; here rendered as five-number summaries).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_runners.h"

namespace {

using namespace whyprov::bench;  // NOLINT(build/namespaces): bench shorthand

void BM_Delays(benchmark::State& state, const SuiteEntry entry) {
  for (auto _ : state) {
    const auto runs = RunSuiteEntry(entry, /*enumerate=*/true);
    double median_sum = 0;
    std::size_t boxes = 0;
    for (const auto& run : runs) {
      if (run.delays.summary_ms.count > 0) {
        median_sum += run.delays.summary_ms.median;
        ++boxes;
      }
    }
    state.counters["mean_median_ms"] =
        boxes == 0 ? 0 : median_sum / static_cast<double>(boxes);
    PrintDelayRows(entry, runs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 2: incremental computation of the why-provenance "
      "(Andersen; delays per member, up to %zu members or %.0fs per "
      "tuple)\n\n",
      kMaxMembersPerTuple, kEnumerationTimeoutSeconds);
  for (const auto& entry : AndersenSuite()) {
    benchmark::RegisterBenchmark(
        ("Fig2/" + entry.scenario + "/" + entry.database).c_str(), BM_Delays,
        entry)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
