// Figure 3 of the paper (appendix): downward-closure + formula
// construction time across *all* scenarios — plots (a) Doctors,
// (b) TransClosure, (c) Galen, (d) Andersen, (e) CSDA.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_runners.h"

namespace {

using namespace whyprov::bench;  // NOLINT(build/namespaces): bench shorthand

void BM_Construction(benchmark::State& state, const SuiteEntry entry) {
  for (auto _ : state) {
    const auto runs = RunSuiteEntry(entry, /*enumerate=*/false);
    double total = 0;
    for (const auto& run : runs) total += run.construction.total_seconds();
    state.counters["mean_total_s"] =
        runs.empty() ? 0 : total / static_cast<double>(runs.size());
    PrintConstructionRows(entry, runs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 3: building the downward closure and the Boolean formula "
      "(all scenarios, 5 random tuples per database)\n\n");
  for (const auto& entry : FullSuite()) {
    benchmark::RegisterBenchmark(
        ("Fig3/" + entry.scenario + "/" + entry.database).c_str(),
        BM_Construction, entry)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
