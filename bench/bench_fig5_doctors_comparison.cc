// Figure 5 of the paper: end-to-end comparison on the Doctors scenarios
// between the SAT-based incremental approach and an "all-at-once"
// materialisation baseline (standing in for the existential-rules system
// of Elhalawati et al.). For each Doctors-i and each of five random
// tuples, both approaches compute the *complete* why-provenance family
// (the queries are linear and non-recursive, so why = whyUN and the two
// approaches answer the same question).
//
// As in the paper, a baseline run that exceeds its memory/size budget is
// reported as OOM.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace {

using namespace whyprov::bench;  // NOLINT(build/namespaces): bench shorthand
namespace pv = whyprov::provenance;

void BM_DoctorsComparison(benchmark::State& state, const SuiteEntry entry) {
  for (auto _ : state) {
    auto scenario = entry.make();
    const whyprov::Engine engine = scenario.MakeEngine();
    whyprov::util::Rng rng(kSuiteSeed ^ 0x5u);
    const auto targets = engine.SampleAnswers(kTuplesPerDatabase, rng);

    double sat_total = 0;
    double baseline_total = 0;
    int baseline_failures = 0;
    int tuple_index = 0;
    for (auto target : targets) {
      ++tuple_index;
      // SAT-based: closure + formula + exhaustive enumeration.
      whyprov::util::Timer timer;
      whyprov::EnumerateRequest enumerate;
      enumerate.target = target;
      auto enumeration = engine.Enumerate(enumerate);
      if (!enumeration.ok()) continue;
      const auto members = enumeration.value().All();
      const double sat_seconds =
          engine.eval_seconds() + timer.ElapsedSeconds();
      sat_total += sat_seconds;

      // Baseline: materialise the whole family in one fixpoint pass.
      timer.Reset();
      whyprov::BaselineRequest baseline;
      baseline.target = target;
      baseline.limits = pv::BaselineLimits{/*max_family_size=*/1u << 16,
                                           /*max_combinations=*/1u << 22};
      auto family = engine.Baseline(baseline);
      const double baseline_seconds =
          engine.eval_seconds() + timer.ElapsedSeconds();
      if (family.ok()) {
        baseline_total += baseline_seconds;
        std::printf(
            "%-11s t%d  SAT-based=%8.4fs (%zu members)   "
            "all-at-once=%8.4fs (%zu members)\n",
            entry.scenario.c_str(), tuple_index, sat_seconds, members.size(),
            baseline_seconds, family.value().size());
      } else {
        ++baseline_failures;
        std::printf(
            "%-11s t%d  SAT-based=%8.4fs (%zu members)   "
            "all-at-once=OOM (budget exceeded)\n",
            entry.scenario.c_str(), tuple_index, sat_seconds, members.size());
      }
    }
    state.counters["sat_total_s"] = sat_total;
    state.counters["baseline_total_s"] = baseline_total;
    state.counters["baseline_oom"] = baseline_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 5: end-to-end why-provenance computation, SAT-based vs "
      "all-at-once baseline (Doctors-1..7, 5 random tuples each)\n\n");
  for (const auto& entry : DoctorsSuite()) {
    benchmark::RegisterBenchmark(("Fig5/" + entry.scenario).c_str(),
                                 BM_DoctorsComparison, entry)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
