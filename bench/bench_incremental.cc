// bench_incremental: ApplyDelta + re-query versus full engine rebuild +
// re-query, across scenarios and delta sizes.
//
// Each configuration builds an engine over a scenario database, warms the
// plan cache with a serving set of sampled answer tuples, then applies a
// delta of k database facts two ways:
//
//   incremental:  Engine::ApplyDelta (semi-naive delta re-evaluation with
//                 selective plan invalidation), then re-query the serving
//                 set against the (mostly retained) plans;
//   rebuild:      Engine::FromParts on the updated database (from-scratch
//                 evaluation, cold plan cache), then the same re-queries.
//
// Both directions are measured: removing the k facts from the full
// database, and adding them back. The delta slice prefers facts outside
// the serving set's plan closures — the production churn pattern the
// incremental path is built for. `speedup_vs_rebuild` is the headline
// metric; the acceptance floor is >= 5x at delta_size 1.
//
// Usage:
//   bench_incremental [--reps=R] [--out=PATH]
//
//   --reps=R    measurement repetitions; the best (minimum-time) rep per
//               side is reported (default 3)
//   --out=PATH  output path (default BENCH_incremental.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "util/timer.h"
#include "whyprov.h"

namespace {

using whyprov::bench::SuiteEntry;
namespace dl = whyprov::datalog;

constexpr std::size_t kMaxMembersPerRequest = 8;
const std::size_t kDeltaSizes[] = {1, 10, 100};

struct Run {
  std::string scenario;
  std::string database;
  std::size_t delta_size = 0;
  std::string direction;  // "remove" or "add"
  std::size_t queries = 0;
  double incremental_seconds = 0;  ///< ApplyDelta + re-query (best rep)
  double rebuild_seconds = 0;      ///< FromParts + re-query (best rep)
  double apply_seconds = 0;        ///< the ApplyDelta share (best rep)
  double speedup_vs_rebuild = 0;
  whyprov::DeltaStats delta_stats;  ///< from the last measured rep
};

/// The benchmark scenarios of the issue — Andersen, TransClosure,
/// Doctors — at the canonical suite scales of bench_common.h (the
/// databases a production rebuild would actually re-evaluate; the
/// throughput bench shrinks them for CI speed, which would understate
/// the rebuild cost here).
std::vector<SuiteEntry> IncrementalSuite() {
  using whyprov::bench::kSuiteSeed;
  namespace scenarios = whyprov::scenarios;
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            3000, 4500, kSuiteSeed);
       }},
      {"Doctors-1", "D1",
       [] { return scenarios::MakeDoctors(1, 2000, kSuiteSeed); }},
      {"Andersen", "D1",
       [] { return scenarios::MakeAndersen(2000, kSuiteSeed); }},
  };
}

/// Runs the serving set once; returns the wall time.
double Requery(const whyprov::Engine& engine,
               const std::vector<std::string>& targets) {
  whyprov::util::Timer timer;
  for (const std::string& text : targets) {
    whyprov::EnumerateRequest request;
    request.target_text = text;
    request.max_members = kMaxMembersPerRequest;
    auto enumeration = engine.Enumerate(request);
    if (enumeration.ok()) {
      (void)enumeration.value().All();
    }
  }
  return timer.ElapsedSeconds();
}

/// Picks `count` database facts, preferring ones outside every warmed
/// plan closure (so the serving set's plans can survive the delta).
std::vector<dl::Fact> PickDeltaSlice(
    const whyprov::Engine& engine,
    const std::vector<whyprov::PreparedQuery>& plans, std::size_t count) {
  std::unordered_set<dl::FactId> closure_union;
  for (const whyprov::PreparedQuery& plan : plans) {
    const auto& facts = plan.plan()->closure_facts();
    closure_union.insert(facts.begin(), facts.end());
  }
  std::vector<dl::Fact> outside, inside;
  for (const dl::Fact& fact : engine.database().facts()) {
    const auto id = engine.model().Find(fact);
    if (id.has_value() && closure_union.contains(*id)) {
      inside.push_back(fact);
    } else {
      outside.push_back(fact);
    }
  }
  std::vector<dl::Fact> slice;
  const std::size_t stride = std::max<std::size_t>(
      1, outside.size() / std::max<std::size_t>(1, count));
  for (std::size_t i = 0; slice.size() < count && i < outside.size();
       i += stride) {
    slice.push_back(outside[i]);
  }
  for (std::size_t i = 0; slice.size() < count && i < inside.size(); ++i) {
    slice.push_back(inside[i]);  // fall back if the database is tiny
  }
  return slice;
}

/// One (scenario, delta size) measurement: returns the remove-direction
/// and add-direction runs.
std::pair<Run, Run> Measure(const SuiteEntry& entry, std::size_t delta_size,
                            std::size_t reps) {
  auto scenario = entry.make();
  whyprov::EngineOptions options;
  whyprov::Engine engine = scenario.MakeEngine(options);

  // Warm the serving set: prepared plans for the sampled answers.
  std::vector<std::string> target_texts;
  std::vector<whyprov::PreparedQuery> plans;
  for (auto target :
       engine.SampleAnswers(whyprov::bench::kTuplesPerDatabase)) {
    target_texts.push_back(engine.FactToText(target));
    auto prepared = engine.Prepare(target);
    if (prepared.ok()) plans.push_back(std::move(prepared).value());
  }
  Requery(engine, target_texts);

  const std::vector<dl::Fact> slice =
      PickDeltaSlice(engine, plans, delta_size);
  plans.clear();  // drop the pins; the cache keeps the plans hot

  dl::Database reduced = scenario.database;
  for (const dl::Fact& fact : slice) reduced.Remove(fact);

  Run remove_run, add_run;
  remove_run.scenario = add_run.scenario = entry.scenario;
  remove_run.database = add_run.database = entry.database;
  remove_run.delta_size = add_run.delta_size = slice.size();
  remove_run.direction = "remove";
  add_run.direction = "add";
  remove_run.queries = add_run.queries = target_texts.size();

  whyprov::DeltaRequest remove_request, add_request;
  remove_request.removed_facts = slice;
  add_request.added_facts = slice;

  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    // Incremental, remove direction (engine: full -> reduced).
    whyprov::util::Timer timer;
    auto stats = engine.ApplyDelta(remove_request);
    const double remove_apply = timer.ElapsedSeconds();
    const double remove_total =
        remove_apply + Requery(engine, target_texts);
    if (stats.ok()) remove_run.delta_stats = stats.value();

    // Incremental, add direction (engine: reduced -> full).
    timer.Reset();
    stats = engine.ApplyDelta(add_request);
    const double add_apply = timer.ElapsedSeconds();
    const double add_total = add_apply + Requery(engine, target_texts);
    if (stats.ok()) add_run.delta_stats = stats.value();

    // Rebuild comparators: fresh engines over the updated databases.
    timer.Reset();
    const whyprov::Engine reduced_engine = whyprov::Engine::FromParts(
        scenario.program, reduced, engine.answer_predicate(), options);
    const double rebuild_remove =
        timer.ElapsedSeconds() + Requery(reduced_engine, target_texts);

    timer.Reset();
    const whyprov::Engine full_engine = whyprov::Engine::FromParts(
        scenario.program, scenario.database, engine.answer_predicate(),
        options);
    const double rebuild_add =
        timer.ElapsedSeconds() + Requery(full_engine, target_texts);

    if (rep == 0 || remove_total < remove_run.incremental_seconds) {
      remove_run.incremental_seconds = remove_total;
      remove_run.apply_seconds = remove_apply;
    }
    if (rep == 0 || add_total < add_run.incremental_seconds) {
      add_run.incremental_seconds = add_total;
      add_run.apply_seconds = add_apply;
    }
    if (rep == 0 || rebuild_remove < remove_run.rebuild_seconds) {
      remove_run.rebuild_seconds = rebuild_remove;
    }
    if (rep == 0 || rebuild_add < add_run.rebuild_seconds) {
      add_run.rebuild_seconds = rebuild_add;
    }
  }
  remove_run.speedup_vs_rebuild =
      remove_run.incremental_seconds > 0
          ? remove_run.rebuild_seconds / remove_run.incremental_seconds
          : 0;
  add_run.speedup_vs_rebuild =
      add_run.incremental_seconds > 0
          ? add_run.rebuild_seconds / add_run.incremental_seconds
          : 0;
  return {remove_run, add_run};
}

void WriteJson(std::FILE* out, const std::vector<Run>& runs) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(
        out,
        "  {\"scenario\": \"%s\", \"database\": \"%s\", "
        "\"delta_size\": %zu, \"direction\": \"%s\", \"queries\": %zu, "
        "\"incremental_seconds\": %.6f, \"apply_seconds\": %.6f, "
        "\"rebuild_seconds\": %.6f, \"speedup_vs_rebuild\": %.2f, "
        "\"model_version\": %llu, \"facts_touched\": %zu, "
        "\"plans_retained\": %zu, \"plans_invalidated\": %zu}%s\n",
        run.scenario.c_str(), run.database.c_str(), run.delta_size,
        run.direction.c_str(), run.queries, run.incremental_seconds,
        run.apply_seconds, run.rebuild_seconds, run.speedup_vs_rebuild,
        static_cast<unsigned long long>(run.delta_stats.model_version),
        run.delta_stats.facts_touched, run.delta_stats.plans_retained,
        run.delta_stats.plans_invalidated,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

}  // namespace

int main(int argc, char** argv) {
  whyprov::bench::BenchFlags flags;
  flags.reps = 3;
  flags.out = "BENCH_incremental.json";
  if (!whyprov::bench::ParseBenchFlags(argc, argv, "bench_incremental",
                                       flags)) {
    return 2;
  }
  const std::size_t reps = flags.reps;
  const std::string output_path = flags.out;

  std::vector<Run> runs;
  for (const SuiteEntry& entry : IncrementalSuite()) {
    for (const std::size_t delta_size : kDeltaSizes) {
      auto [remove_run, add_run] = Measure(entry, delta_size, reps);
      for (const Run& run : {remove_run, add_run}) {
        std::printf(
            "%-14s %-12s delta=%-4zu %-7s incremental %8.5fs  "
            "rebuild %8.5fs  speedup %6.1fx  (plans: %zu kept / %zu "
            "dropped)\n",
            run.scenario.c_str(), run.database.c_str(), run.delta_size,
            run.direction.c_str(), run.incremental_seconds,
            run.rebuild_seconds, run.speedup_vs_rebuild,
            run.delta_stats.plans_retained,
            run.delta_stats.plans_invalidated);
        runs.push_back(run);
      }
    }
  }

  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", output_path.c_str());
    return 1;
  }
  WriteJson(out, runs);
  std::fclose(out);
  std::printf("wrote %s\n", output_path.c_str());
  return 0;
}
