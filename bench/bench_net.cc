// bench_net: queries/sec and p50/p99 latency of the network serving
// tier — the wire-protocol server (net/server.h) over the C ABI
// (net/whyprov_c.h) — measured from the socket side.
//
// Each configuration evaluates one scenario database, publishes it
// through whyprov_service_create + net::Server on an ephemeral loopback
// port, and drives it with N concurrent client connections. Every
// client runs its own synchronous request loop (submit, read frames
// until the final one) so a configuration with `clients` connections
// measures the full stack: frame encode/decode, the per-connection
// reader/responder threads, ABI submission, SAT enumeration, and the
// streamed member batches flowing back through the bounded
// MemberStream. Latency is request-write to final-frame as seen by the
// client — the number a remote caller actually experiences, queue wait
// and socket time included.
//
// The workload mixes the two read verbs the way a provenance debugger
// does: mostly streaming enumerations (capped, batched member frames)
// with a SAT membership decision every few requests, cycling through
// the sampled answer targets. No deltas: the point of this benchmark is
// the serving tier's overhead and concurrency, not snapshot churn
// (bench_service covers that in-process).
//
// Usage:
//   bench_net [--requests=N] [--shards=N] [--reps=R] [--out=PATH]
//
// --shards picks the serving topology behind the socket: the C ABI's
// num_shards option, so >= 2 publishes a ShardedService (lockstep
// replicas, reads routed by shard) through the identical wire surface.
// Without the flag the suite serves both the single-engine stack and a
// 2-shard stack, so the committed baseline tracks both topologies.
//
// CI compares the JSON against the committed BENCH_net.json baseline via
// bench/check_regression.py: rows are keyed by (scenario, database,
// shards, clients), queries_per_second may not drop more than the
// throughput threshold, and p99_seconds may not grow more than the
// latency threshold.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "net/whyprov_c.h"
#include "util/timer.h"

namespace {

using whyprov::bench::SuiteEntry;

constexpr std::size_t kDefaultRequests = 200;
constexpr std::size_t kMaxMembersPerRequest = 8;
/// Of every 5 requests: 1 SAT decide, 4 streaming enumerations.
constexpr std::size_t kMixPeriod = 5;

struct Run {
  std::string scenario;
  std::string database;
  std::size_t shards = 1;  ///< 1 = plain Service, >= 2 = ShardedService
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t enumerates = 0;
  std::size_t decides = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  double wall_seconds = 0;
  double queries_per_second = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
};

/// The same scaled-down representatives bench_service serves, now pushed
/// through the socket. Kept small: every request pays a SAT call plus
/// two socket round-trips, and CI runs the whole suite per PR.
std::vector<SuiteEntry> NetSuite() {
  using whyprov::bench::kSuiteSeed;
  namespace scenarios = whyprov::scenarios;
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            600, 900, kSuiteSeed);
       }},
      {"Doctors-1", "D1",
       [] { return scenarios::MakeDoctors(1, 400, kSuiteSeed); }},
      {"Andersen", "D1",
       [] { return scenarios::MakeAndersen(500, kSuiteSeed); }},
  };
}

double Percentile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[index];
}

/// What one client thread reports back.
struct ClientTally {
  std::size_t enumerates = 0;
  std::size_t decides = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::vector<double> latencies;
};

/// One connection's synchronous request loop. Offsets the target cycle
/// by the client index so concurrent connections spread across the
/// serving set instead of convoying on one plan.
void ClientLoop(std::uint16_t port, const std::vector<std::string>& targets,
                const std::vector<std::vector<std::string>>& candidates,
                std::size_t client_index, std::size_t request_count,
                ClientTally& tally) {
  auto client = whyprov::net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    tally.failed = request_count;
    return;
  }
  tally.latencies.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    const std::size_t target_index = (client_index + i) % targets.size();
    whyprov::util::Timer timer;
    whyprov::util::Result<whyprov::net::Outcome> outcome =
        whyprov::util::Status::Error("unsent");
    if (i % kMixPeriod == kMixPeriod - 1 &&
        !candidates[target_index].empty()) {
      outcome = client.value().Decide(targets[target_index],
                                      candidates[target_index]);
      ++tally.decides;
    } else {
      outcome = client.value().Enumerate(targets[target_index],
                                         kMaxMembersPerRequest,
                                         /*deadline_seconds=*/0,
                                         /*stream=*/true);
      ++tally.enumerates;
    }
    tally.latencies.push_back(timer.ElapsedSeconds());
    if (outcome.ok() && outcome.value().ok()) {
      ++tally.succeeded;
    } else {
      ++tally.failed;
    }
  }
}

/// Runs `total_requests` split across `clients` concurrent connections
/// against the already-listening server; keeps the best rep.
void RunNetWorkload(std::uint16_t port, std::size_t clients,
                    const std::vector<std::string>& targets,
                    const std::vector<std::vector<std::string>>& candidates,
                    std::size_t total_requests, std::size_t reps, Run& run) {
  if (targets.empty()) return;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const std::size_t per_client =
        std::max<std::size_t>(1, total_requests / clients);
    whyprov::util::Timer timer;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(ClientLoop, port, std::cref(targets),
                           std::cref(candidates), c, per_client,
                           std::ref(tallies[c]));
    }
    for (std::thread& thread : threads) thread.join();
    const double wall_seconds = timer.ElapsedSeconds();

    std::size_t enumerates = 0, decides = 0, succeeded = 0, failed = 0;
    std::vector<double> latencies;
    latencies.reserve(per_client * clients);
    for (ClientTally& tally : tallies) {
      enumerates += tally.enumerates;
      decides += tally.decides;
      succeeded += tally.succeeded;
      failed += tally.failed;
      latencies.insert(latencies.end(), tally.latencies.begin(),
                       tally.latencies.end());
    }
    const double qps = wall_seconds > 0
                           ? static_cast<double>(latencies.size()) /
                                 wall_seconds
                           : 0;
    if (rep == 0 || qps > run.queries_per_second) {
      std::sort(latencies.begin(), latencies.end());
      run.requests = latencies.size();
      run.enumerates = enumerates;
      run.decides = decides;
      run.succeeded = succeeded;
      run.failed = failed;
      run.wall_seconds = wall_seconds;
      run.queries_per_second = qps;
      run.p50_seconds = Percentile(latencies, 0.50);
      run.p99_seconds = Percentile(std::move(latencies), 0.99);
    }
  }
}

void WriteJson(std::FILE* out, const std::vector<Run>& runs) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(
        out,
        "  {\"scenario\": \"%s\", \"database\": \"%s\", \"shards\": %zu, "
        "\"clients\": %zu, "
        "\"requests\": %zu, \"enumerates\": %zu, \"decides\": %zu, "
        "\"succeeded\": %zu, \"failed\": %zu, \"wall_seconds\": %.6f, "
        "\"queries_per_second\": %.2f, \"p50_seconds\": %.6f, "
        "\"p99_seconds\": %.6f}%s\n",
        run.scenario.c_str(), run.database.c_str(), run.shards,
        run.clients, run.requests,
        run.enumerates, run.decides, run.succeeded, run.failed,
        run.wall_seconds, run.queries_per_second, run.p50_seconds,
        run.p99_seconds, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

}  // namespace

int main(int argc, char** argv) {
  whyprov::bench::BenchFlags flags;
  flags.requests = kDefaultRequests;
  flags.reps = 1;
  flags.out = "BENCH_net.json";
  flags.has_shards = true;
  if (!whyprov::bench::ParseBenchFlags(argc, argv, "bench_net", flags)) {
    return 2;
  }

  const std::vector<std::size_t> client_counts = {1, 4};
  // --shards=N pins the topology; the default suite serves the
  // single-engine stack and a 2-shard stack so the committed baseline
  // tracks both.
  const std::vector<std::size_t> shard_counts =
      flags.shards > 0 ? std::vector<std::size_t>{flags.shards}
                       : std::vector<std::size_t>{1, 2};
  std::vector<Run> runs;
  for (const SuiteEntry& entry : NetSuite()) {
    auto scenario = entry.make();

    // The serving set: sample the answer targets from a throwaway
    // in-process engine (the ABI deliberately has no sampling verb —
    // a remote caller brings its own targets), rendered to the text
    // form the wire carries.
    auto probe = scenario.MakeEngine();
    std::vector<std::string> targets;
    for (whyprov::datalog::FactId id :
         probe.SampleAnswers(whyprov::bench::kTuplesPerDatabase)) {
      targets.push_back(probe.FactToText(id));
    }

    for (std::size_t shards : shard_counts) {
      // The served stack: everything from here runs behind the socket.
      whyprov_options options;
      whyprov_options_init(&options);
      options.queue_capacity = 64;
      options.num_shards = shards;
      whyprov_service* service = nullptr;
      char error_message[256];
      if (whyprov_service_create(scenario.program.ToString().c_str(),
                                 scenario.database.ToString().c_str(),
                                 scenario.answer_predicate.c_str(), &options,
                                 &service, error_message,
                                 sizeof(error_message)) != WHYPROV_OK) {
        std::fprintf(stderr, "error: cannot serve %s (%zu shards): %s\n",
                     entry.scenario.c_str(), shards, error_message);
        return 1;
      }
      whyprov::net::Server server(service);
      if (auto status = server.Start(0); !status.ok()) {
        std::fprintf(stderr, "error: cannot start server for %s: %s\n",
                     entry.scenario.c_str(), status.message().c_str());
        return 1;
      }

      // One true member per target as the Decide candidate, warmed
      // through the wire itself (also primes the plan cache).
      std::vector<std::vector<std::string>> candidates(targets.size());
      {
        auto warm = whyprov::net::Client::Connect("127.0.0.1", server.port());
        if (warm.ok()) {
          for (std::size_t i = 0; i < targets.size(); ++i) {
            auto outcome = warm.value().Enumerate(targets[i], 1);
            if (outcome.ok() && outcome.value().ok() &&
                !outcome.value().final.members.empty()) {
              candidates[i] = outcome.value().final.members.front();
            }
          }
        }
      }

      for (std::size_t clients : client_counts) {
        Run run;
        run.scenario = entry.scenario;
        run.database = entry.database;
        run.shards = shards;
        run.clients = clients;
        RunNetWorkload(server.port(), clients, targets, candidates,
                       flags.requests, flags.reps, run);
        std::printf(
            "%-14s %-12s shards=%-2zu clients=%-2zu %8.1f q/s  p50 %.4fs  "
            "p99 %.4fs  (%zu enum / %zu decide, %zu ok / %zu failed)\n",
            run.scenario.c_str(), run.database.c_str(), run.shards,
            run.clients, run.queries_per_second, run.p50_seconds,
            run.p99_seconds, run.enumerates, run.decides, run.succeeded,
            run.failed);
        runs.push_back(std::move(run));
      }

      server.Stop();
      whyprov_service_destroy(service);
    }
  }

  std::FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", flags.out.c_str());
    return 1;
  }
  WriteJson(out, runs);
  std::fclose(out);
  std::printf("wrote %s\n", flags.out.c_str());
  return 0;
}
