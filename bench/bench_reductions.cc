// Hardness-reduction bench (Lemmas 17 and 24): the reductions are
// polynomial-time constructions, and deciding the resulting membership
// question scales with the hardness of the source instance. This bench
// reports construction size/time and decision time for growing instances.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "scenarios/reductions.h"
#include "whyprov.h"

namespace {

namespace pv = whyprov::provenance;
namespace sc = whyprov::scenarios;
namespace dl = whyprov::datalog;

void BM_HamCycleViaProvenance(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    whyprov::util::Rng rng(0x6a11 + nodes);
    const sc::DigraphInstance graph =
        sc::RandomDigraph(nodes, 3.0 / nodes, rng);
    whyprov::util::Timer timer;
    const sc::ReductionOutput reduction = sc::ReduceHamiltonianCycle(graph);
    const double construct_seconds = timer.ElapsedSeconds();

    timer.Reset();
    const whyprov::Engine engine = whyprov::Engine::FromParts(
        reduction.program, reduction.database, reduction.target.predicate);
    bool member = false;
    auto target = engine.model().Find(reduction.target);
    if (target.has_value()) {
      whyprov::DecideRequest request;
      request.target = *target;
      request.candidate = reduction.database.facts();
      request.tree_class = pv::TreeClass::kUnambiguous;
      member = engine.Decide(request).value_or(false);
    }
    const double decide_seconds = timer.ElapsedSeconds();
    state.counters["db_facts"] =
        static_cast<double>(reduction.database.size());
    state.counters["construct_s"] = construct_seconds;
    state.counters["decide_s"] = decide_seconds;
    std::printf(
        "HamCycle n=%-3d edges=%-4zu D_G=%-5zu construct=%7.4fs "
        "decide=%8.4fs answer=%s\n",
        nodes, graph.edges.size(), reduction.database.size(),
        construct_seconds, decide_seconds, member ? "cycle" : "no-cycle");
  }
}

void BM_ThreeSatViaProvenance(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    whyprov::util::Rng rng(0x35a7 + vars);
    const sc::ThreeSatInstance phi =
        sc::RandomThreeSat(vars, static_cast<int>(4.2 * vars), rng);
    whyprov::util::Timer timer;
    const sc::ReductionOutput reduction = sc::ReduceThreeSat(phi);
    const double construct_seconds = timer.ElapsedSeconds();

    timer.Reset();
    whyprov::EngineOptions options;
    options.baseline_limits.max_combinations = 1u << 26;
    options.baseline_limits.max_family_size = 1u << 20;
    const whyprov::Engine engine = whyprov::Engine::FromParts(
        reduction.program, reduction.database, reduction.target.predicate,
        options);
    bool member = false;
    auto target = engine.model().Find(reduction.target);
    if (target.has_value()) {
      whyprov::DecideRequest request;
      request.target = *target;
      request.candidate = reduction.database.facts();
      request.tree_class = pv::TreeClass::kAny;
      member = engine.Decide(request).value_or(false);
    }
    const double decide_seconds = timer.ElapsedSeconds();
    state.counters["db_facts"] =
        static_cast<double>(reduction.database.size());
    state.counters["construct_s"] = construct_seconds;
    state.counters["decide_s"] = decide_seconds;
    std::printf(
        "3SAT n=%-3d clauses=%-4zu D_phi=%-5zu construct=%7.4fs "
        "decide=%8.4fs answer=%s\n",
        vars, phi.clauses.size(), reduction.database.size(),
        construct_seconds, decide_seconds, member ? "sat" : "unsat");
  }
}

BENCHMARK(BM_HamCycleViaProvenance)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The decision is via the arbitrary-tree family, whose materialisation
// grows exponentially with the source formula: n = 4 already takes
// seconds. That blow-up is the point of the bench.
BENCHMARK(BM_ThreeSatViaProvenance)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Hardness reductions as decision procedures (Lemmas 17 and 24)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
