#ifndef WHYPROV_BENCH_BENCH_RUNNERS_H_
#define WHYPROV_BENCH_BENCH_RUNNERS_H_

// Measurement drivers shared by the figure benchmarks. Everything runs
// through the `whyprov::Engine` facade.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace whyprov::bench {

/// One bar of Figures 1/3: the time to build the downward closure and the
/// Boolean formula for one sampled tuple. `eval_seconds` is the (shared)
/// model-evaluation time — the paper's per-tuple bars include the DLV run
/// over the database, whose role our semi-naive evaluation plays, so the
/// per-bar total is eval + closure + encode.
struct ConstructionBar {
  std::string tuple_label;
  double eval_seconds = 0;
  double closure_seconds = 0;
  double encode_seconds = 0;
  std::size_t closure_nodes = 0;
  std::size_t closure_edges = 0;
  std::size_t cnf_variables = 0;

  double total_seconds() const {
    return eval_seconds + closure_seconds + encode_seconds;
  }
};

/// One box of Figures 2/4: the delay distribution of incrementally
/// enumerating members for one sampled tuple.
struct DelayBox {
  std::string tuple_label;
  util::Summary summary_ms;
  std::size_t members = 0;
  bool hit_member_cap = false;
  bool hit_timeout = false;
};

struct TupleRun {
  ConstructionBar construction;
  DelayBox delays;
};

/// Evaluates one suite entry, samples `kTuplesPerDatabase` answers
/// uniformly (like the paper), and runs the full pipeline per tuple.
/// `enumerate` controls whether the delay phase runs (Figures 2/4) or
/// only construction is measured (Figures 1/3).
inline std::vector<TupleRun> RunSuiteEntry(const SuiteEntry& entry,
                                           bool enumerate) {
  std::vector<TupleRun> runs;
  auto scenario = entry.make();
  const whyprov::Engine engine = scenario.MakeEngine();
  const double eval_seconds = engine.eval_seconds();

  util::Rng rng(kSuiteSeed ^ 0x7u);
  const auto targets = engine.SampleAnswers(kTuplesPerDatabase, rng);
  int index = 0;
  for (auto target : targets) {
    TupleRun run;
    run.construction.tuple_label = "t" + std::to_string(++index);
    // Prepare = the measured closure+encode compile step (the engines of
    // Figures 1/3); the enumeration below is a pure execution against it.
    auto prepared = engine.Prepare(target);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.status().message().c_str());
      continue;
    }
    run.construction.eval_seconds = eval_seconds;
    run.construction.closure_seconds =
        prepared.value().timings().closure_seconds;
    run.construction.encode_seconds =
        prepared.value().timings().encode_seconds;
    run.construction.closure_nodes =
        prepared.value().closure().nodes().size();
    run.construction.closure_edges =
        prepared.value().closure().edges().size();
    run.construction.cnf_variables =
        static_cast<std::size_t>(prepared.value().formula().num_vars);

    if (enumerate) {
      whyprov::EnumerateRequest request;
      request.max_members = kMaxMembersPerTuple;
      request.timeout_seconds = kEnumerationTimeoutSeconds;
      auto enumeration = prepared.value().Enumerate(request);
      if (!enumeration.ok()) {
        std::fprintf(stderr, "enumerate failed: %s\n",
                     enumeration.status().message().c_str());
        continue;
      }
      run.delays.tuple_label = run.construction.tuple_label;
      while (enumeration.value().Next().has_value()) {
      }
      run.delays.hit_timeout = enumeration.value().hit_timeout();
      run.delays.hit_member_cap = enumeration.value().hit_member_cap();
      run.delays.members = enumeration.value().members_emitted();
      util::SampleSet samples;
      for (double ms : enumeration.value().delays_ms()) samples.Add(ms);
      run.delays.summary_ms = samples.Summarize();
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

/// Prints the Figures 1/3 rows for one suite entry.
inline void PrintConstructionRows(const SuiteEntry& entry,
                                  const std::vector<TupleRun>& runs) {
  for (const auto& run : runs) {
    const auto& bar = run.construction;
    std::printf(
        "%-14s %-14s %-4s total=%8.3fs  (eval=%7.3fs closure=%7.3fs "
        "formula=%7.3fs)  closure: %zu nodes, %zu hyperedges, %zu vars\n",
        entry.scenario.c_str(), entry.database.c_str(),
        bar.tuple_label.c_str(), bar.total_seconds(), bar.eval_seconds,
        bar.closure_seconds, bar.encode_seconds, bar.closure_nodes,
        bar.closure_edges, bar.cnf_variables);
  }
}

/// Prints the Figures 2/4 rows (box-plot five-number summaries) for one
/// suite entry.
inline void PrintDelayRows(const SuiteEntry& entry,
                           const std::vector<TupleRun>& runs) {
  for (const auto& run : runs) {
    const auto& box = run.delays;
    const auto& s = box.summary_ms;
    std::printf(
        "%-14s %-14s %-4s members=%-6zu%s delays(ms): min=%9.4f q1=%9.4f "
        "med=%9.4f q3=%9.4f max=%9.4f\n",
        entry.scenario.c_str(), entry.database.c_str(),
        box.tuple_label.c_str(), box.members,
        box.hit_timeout ? " [timeout]" : (box.hit_member_cap ? " [cap]" : ""),
        s.min, s.q1, s.median, s.q3, s.max);
  }
}

}  // namespace whyprov::bench

#endif  // WHYPROV_BENCH_BENCH_RUNNERS_H_
