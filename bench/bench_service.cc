// bench_service: queries/sec and p50/p99 latency of the asynchronous
// serving front doors — `whyprov::Service` and, with --shards N (or the
// built-in shard suite), `whyprov::ShardedService` — under a mixed
// read/delta workload.
//
// Each configuration evaluates one scenario database, wraps the engine(s)
// in a service, and replays a submission workload mixing the three
// serving verbs: enumerations (the bulk), SAT membership decisions, and
// ApplyDelta writes that alternately remove and restore one database
// fact (so the database is stationary across reps while plans keep
// getting selectively invalidated — the churn pattern a live deployment
// sees). Requests are admitted through the service's bounded queue; a
// full queue makes the submitter wait on the oldest in-flight ticket,
// exactly like a backpressured client.
//
// Sharded rows use fact-range striping (the scenarios are single-
// predicate): lockstep replicas, reads pinned to their owning shard,
// deltas evaluated once and adopted by every shard. On a multi-core host
// the shards spread plan rebuilds and snapshot churn across independent
// engines; shard scaling is gated self-relatively (2-shard vs 1-shard
// q/s in the same run) by check_regression.py --min-shard-scaling.
//
// Per-request latency is admission -> completion (queue wait + execution)
// as reported by the ticket's Response; the JSON records the p50/p99
// quantiles next to the throughput so the regression gate can hold both.
//
// Usage:
//   bench_service [--requests=N] [--shards=N] [--reps=R] [--out=PATH]
//
// CI compares the JSON against the committed BENCH_service.json baseline
// via bench/check_regression.py: queries_per_second may not drop more
// than the throughput threshold, p99_seconds may not grow more than the
// latency threshold, and 2-shard q/s must hold the scaling floor.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace {

using whyprov::bench::SuiteEntry;
namespace dl = whyprov::datalog;

constexpr std::size_t kDefaultRequests = 200;
constexpr std::size_t kMaxMembersPerRequest = 8;
/// Of every 20 requests: 1 delta write, 4 decides, 15 enumerations.
constexpr std::size_t kMixPeriod = 20;
constexpr std::size_t kDecidesPerPeriod = 4;

struct Run {
  std::string scenario;
  std::string database;
  /// Plan-time CNF simplification mode of the engines under test. The
  /// service bench always serves at the engine default (fast) — the key
  /// exists so rows stay addressable alongside bench_throughput's
  /// off/fast pairs in check_regression.py's row identity.
  std::string simplify = "fast";
  std::size_t threads_requested = 0;
  std::size_t threads = 0;
  std::size_t shards = 1;  ///< 1 = plain Service, >1 = ShardedService
  std::size_t requests = 0;
  std::size_t enumerates = 0;
  std::size_t decides = 0;
  std::size_t deltas = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::uint64_t rejected = 0;  ///< admission refusals ridden out
  double wall_seconds = 0;
  double queries_per_second = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
  /// Flood rows only (empty qos = ordinary mixed-workload row): the
  /// scheduler under test ("fair" or "fifo"), the lane this row's
  /// latency quantiles describe, and the number of flooding batch
  /// tenants. check_regression.py keys rows on these and gates the
  /// fair-vs-fifo interactive p99 ratio.
  std::string qos;
  std::string lane;
  std::size_t tenants = 0;
};

/// The same scaled-down representatives the throughput bench serves.
std::vector<SuiteEntry> ServiceSuite() {
  using whyprov::bench::kSuiteSeed;
  namespace scenarios = whyprov::scenarios;
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            600, 900, kSuiteSeed);
       }},
      {"Doctors-1", "D1",
       [] { return scenarios::MakeDoctors(1, 400, kSuiteSeed); }},
      {"Andersen", "D1",
       [] { return scenarios::MakeAndersen(500, kSuiteSeed); }},
  };
}

double Percentile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[index];
}

/// Admits `request`, riding out a full queue by waiting on the oldest
/// unfinished ticket (the backpressured-client pattern). Counts refusals.
template <typename ServiceT>
whyprov::Ticket SubmitWithBackpressure(ServiceT& service,
                                       const whyprov::Request& request,
                                       std::vector<whyprov::Ticket>& tickets,
                                       std::uint64_t& rejected) {
  while (true) {
    auto ticket = service.Submit(request);
    if (ticket.ok()) return std::move(ticket).value();
    ++rejected;
    for (const whyprov::Ticket& earlier : tickets) {
      if (earlier.valid() && !earlier.done()) {
        earlier.WaitFor(0.01);
        break;
      }
    }
  }
}

/// The mixed read/delta workload against any serving front end (both
/// expose Submit/engine() with the same shapes).
template <typename ServiceT>
void RunMixedWorkload(ServiceT& service, std::size_t total_requests,
                      std::size_t reps, Run& run) {
  // The serving set: sampled answer targets, plus one true member per
  // target as the Decide candidate (warmed through the service itself).
  const auto targets =
      service.engine().SampleAnswers(whyprov::bench::kTuplesPerDatabase);
  std::vector<std::vector<dl::Fact>> candidates(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    whyprov::EnumerateRequest warm;
    warm.target = targets[i];
    warm.max_members = 1;
    whyprov::Request request;
    request.op = warm;
    auto ticket = service.Submit(request);
    if (!ticket.ok()) continue;
    const whyprov::Response& response = ticket.value().Wait();
    if (response.status.ok() && !response.members.empty()) {
      candidates[i] = response.members.front();
    }
  }

  // The delta slice: one database fact per write, removed then restored.
  // Copied by value: database() references the current snapshot, which the
  // workload's own deltas retire mid-loop (a reference here dangles and the
  // per-rep delta count goes nondeterministic).
  const std::vector<dl::Fact> db_facts =
      service.engine().database().facts();
  const dl::Fact churn_fact =
      db_facts.empty() ? dl::Fact() : db_facts[db_facts.size() / 2];

  if (targets.empty()) return;

  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    std::vector<whyprov::Ticket> tickets;
    tickets.reserve(total_requests);
    std::uint64_t rejected = 0;
    bool fact_removed = false;
    std::size_t enumerates = 0, decides = 0, deltas = 0;
    whyprov::util::Timer timer;
    for (std::size_t i = 0; i < total_requests; ++i) {
      const std::size_t target_index = i % targets.size();
      whyprov::Request request;
      const std::size_t phase = i % kMixPeriod;
      if (phase == kMixPeriod - 1 && !db_facts.empty()) {
        whyprov::DeltaRequest delta;
        if (fact_removed) {
          delta.added_facts = {churn_fact};
        } else {
          delta.removed_facts = {churn_fact};
        }
        fact_removed = !fact_removed;
        request.op = std::move(delta);
        ++deltas;
      } else if (phase < kDecidesPerPeriod &&
                 !candidates[target_index].empty()) {
        whyprov::DecideRequest decide;
        decide.target = targets[target_index];
        decide.candidate = candidates[target_index];
        request.op = std::move(decide);
        ++decides;
      } else {
        whyprov::EnumerateRequest enumerate;
        enumerate.target = targets[target_index];
        enumerate.max_members = kMaxMembersPerRequest;
        request.op = std::move(enumerate);
        ++enumerates;
      }
      tickets.push_back(
          SubmitWithBackpressure(service, request, tickets, rejected));
    }

    std::size_t succeeded = 0, failed = 0;
    std::vector<double> latencies;
    latencies.reserve(tickets.size());
    for (const whyprov::Ticket& ticket : tickets) {
      const whyprov::Response& response = ticket.Wait();
      if (response.status.ok()) {
        ++succeeded;
      } else {
        ++failed;
      }
      latencies.push_back(response.queue_seconds + response.exec_seconds);
    }
    const double wall_seconds = timer.ElapsedSeconds();
    const double qps =
        wall_seconds > 0
            ? static_cast<double>(tickets.size()) / wall_seconds
            : 0;
    if (rep == 0 || qps > run.queries_per_second) {
      std::sort(latencies.begin(), latencies.end());
      run.requests = tickets.size();
      run.enumerates = enumerates;
      run.decides = decides;
      run.deltas = deltas;
      run.succeeded = succeeded;
      run.failed = failed;
      run.rejected = rejected;
      run.wall_seconds = wall_seconds;
      run.queries_per_second = qps;
      run.p50_seconds = Percentile(latencies, 0.50);
      run.p99_seconds = Percentile(std::move(latencies), 0.99);
    }
  }
}

/// The adversarial mixed-tenant flood: `kFloodBatchTenants` batch
/// tenants saturate the queue with wide enumerations while one
/// interactive tenant threads narrow point queries through the same
/// front door (4 batch submissions per interactive one, so the queue is
/// batch-dominated throughout). Per-lane latency quantiles make the QoS
/// win measurable: under FIFO the interactive p99 is queue-depth
/// execution times; with the fair scheduler the interactive lane
/// overtakes the flood. check_regression.py gates the fair/fifo
/// interactive-p99 ratio self-relatively (same run, same hardware).
constexpr std::size_t kFloodBatchTenants = 4;
/// Members per flooding enumeration: wide enough that each batch task
/// costs real SAT work (the head-of-line blocking the probe measures).
constexpr std::size_t kFloodBatchMembers = 64;

std::vector<Run> RunFloodConfiguration(const SuiteEntry& entry, bool fair,
                                       std::size_t total_requests,
                                       std::size_t reps) {
  auto scenario = entry.make();
  whyprov::ServiceOptions service_options;
  // Two workers regardless of the host: the flood must actually queue
  // (on a many-core box an all-core pool drains the queue as fast as
  // one submitter fills it and both schedulers look alike).
  service_options.num_threads = 2;
  service_options.queue_capacity = 64;
  service_options.qos.fair_queueing = fair;
  whyprov::Service service(scenario.MakeEngine(whyprov::EngineOptions()),
                           service_options);

  const auto targets =
      service.engine().SampleAnswers(whyprov::bench::kTuplesPerDatabase);

  Run interactive;
  interactive.scenario = entry.scenario;
  interactive.database = entry.database;
  interactive.threads_requested = 2;
  interactive.threads = 2;
  interactive.qos = fair ? "fair" : "fifo";
  interactive.lane = "interactive";
  interactive.tenants = kFloodBatchTenants;
  Run batch = interactive;
  batch.lane = "batch";
  if (targets.empty()) return {interactive, batch};

  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    std::vector<whyprov::Ticket> tickets;
    std::vector<bool> is_interactive;
    tickets.reserve(total_requests);
    is_interactive.reserve(total_requests);
    std::uint64_t rejected = 0;
    whyprov::util::Timer timer;
    for (std::size_t i = 0; i < total_requests; ++i) {
      // Period of kFloodBatchTenants + 1: the flood, then one probe.
      const std::size_t phase = i % (kFloodBatchTenants + 1);
      const bool probe = phase == kFloodBatchTenants;
      whyprov::EnumerateRequest enumerate;
      enumerate.target = targets[i % targets.size()];
      // Wide batch enumerations vs one-member interactive probes: the
      // adversarial shape — cheap queries stuck behind expensive ones —
      // is exactly what the lanes exist for.
      enumerate.max_members = probe ? 1 : kFloodBatchMembers;
      whyprov::Request request;
      request.op = std::move(enumerate);
      request.qos_class = probe ? whyprov::qos::QosClass::kInteractive
                                : whyprov::qos::QosClass::kBatch;
      request.tenant =
          probe ? "latency-probe" : "flood-" + std::to_string(phase);
      tickets.push_back(
          SubmitWithBackpressure(service, request, tickets, rejected));
      is_interactive.push_back(probe);
    }

    std::size_t lane_requests[2] = {0, 0};
    std::size_t lane_succeeded[2] = {0, 0};
    std::size_t lane_failed[2] = {0, 0};
    std::vector<double> lane_latencies[2];
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const whyprov::Response& response = tickets[i].Wait();
      const std::size_t lane = is_interactive[i] ? 0 : 1;
      ++lane_requests[lane];
      ++(response.status.ok() ? lane_succeeded : lane_failed)[lane];
      lane_latencies[lane].push_back(response.queue_seconds +
                                     response.exec_seconds);
    }
    const double wall_seconds = timer.ElapsedSeconds();
    // Best rep = the one with the best overall throughput (the same
    // selection rule as the mixed workload, applied to both lanes of
    // the rep together so the two rows describe one run).
    const double qps =
        wall_seconds > 0
            ? static_cast<double>(tickets.size()) / wall_seconds
            : 0;
    const double best_so_far =
        interactive.wall_seconds > 0
            ? static_cast<double>(interactive.requests + batch.requests) /
                  interactive.wall_seconds
            : 0;
    if (rep == 0 || qps > best_so_far) {
      Run* rows[2] = {&interactive, &batch};
      for (std::size_t lane = 0; lane < 2; ++lane) {
        Run& row = *rows[lane];
        std::sort(lane_latencies[lane].begin(), lane_latencies[lane].end());
        row.requests = lane_requests[lane];
        row.enumerates = lane_requests[lane];
        row.succeeded = lane_succeeded[lane];
        row.failed = lane_failed[lane];
        row.rejected = rejected;
        row.wall_seconds = wall_seconds;
        row.queries_per_second =
            wall_seconds > 0
                ? static_cast<double>(lane_requests[lane]) / wall_seconds
                : 0;
        row.p50_seconds = Percentile(lane_latencies[lane], 0.50);
        row.p99_seconds =
            Percentile(std::move(lane_latencies[lane]), 0.99);
      }
    }
  }
  return {interactive, batch};
}

Run RunConfiguration(const SuiteEntry& entry, std::size_t threads,
                     std::size_t shards, std::size_t total_requests,
                     std::size_t reps) {
  auto scenario = entry.make();
  whyprov::EngineOptions engine_options;
  whyprov::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.queue_capacity = 64;

  Run run;
  run.scenario = entry.scenario;
  run.database = entry.database;
  run.threads_requested = threads;
  run.threads = whyprov::util::ResolveThreadCount(threads);
  run.shards = shards;

  if (shards <= 1) {
    whyprov::Service service(scenario.MakeEngine(engine_options),
                             service_options);
    RunMixedWorkload(service, total_requests, reps, run);
    return run;
  }
  whyprov::ShardedServiceOptions options;
  options.num_shards = shards;
  // The scenarios are single-answer-predicate: stripe the target space.
  options.policy = whyprov::ShardPolicy::kByFactRange;
  options.engine = engine_options;
  options.service = service_options;
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  if (!predicate.ok()) {
    // Fail loudly: an all-zero row would read as a phantom 100% perf
    // regression in check_regression.py instead of a setup failure.
    std::fprintf(stderr, "error: cannot set up %zu-shard %s: %s\n", shards,
                 entry.scenario.c_str(), predicate.status().message().c_str());
    std::exit(1);
  }
  auto service = whyprov::ShardedService::Create(
      scenario.program, scenario.database, predicate.value(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: cannot set up %zu-shard %s: %s\n", shards,
                 entry.scenario.c_str(), service.status().message().c_str());
    std::exit(1);
  }
  RunMixedWorkload(*service.value(), total_requests, reps, run);
  return run;
}

void WriteJson(std::FILE* out, const std::vector<Run>& runs) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    // Flood rows carry the extra identity fields the regression gate
    // keys on; ordinary rows keep the historical schema.
    std::string qos_fields;
    if (!run.qos.empty()) {
      qos_fields = "\"qos\": \"" + run.qos + "\", \"lane\": \"" + run.lane +
                   "\", \"tenants\": " + std::to_string(run.tenants) + ", ";
    }
    std::fprintf(
        out,
        "  {\"scenario\": \"%s\", \"database\": \"%s\", "
        "\"simplify\": \"%s\", %s"
        "\"threads_requested\": %zu, \"threads\": %zu, \"shards\": %zu, "
        "\"requests\": %zu, \"enumerates\": %zu, \"decides\": %zu, "
        "\"deltas\": %zu, \"succeeded\": %zu, \"failed\": %zu, "
        "\"rejected\": %llu, \"wall_seconds\": %.6f, "
        "\"queries_per_second\": %.2f, \"p50_seconds\": %.6f, "
        "\"p99_seconds\": %.6f}%s\n",
        run.scenario.c_str(), run.database.c_str(), run.simplify.c_str(),
        qos_fields.c_str(), run.threads_requested,
        run.threads, run.shards, run.requests, run.enumerates, run.decides,
        run.deltas, run.succeeded, run.failed,
        static_cast<unsigned long long>(run.rejected), run.wall_seconds,
        run.queries_per_second, run.p50_seconds, run.p99_seconds,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

}  // namespace

int main(int argc, char** argv) {
  whyprov::bench::BenchFlags flags;
  flags.requests = kDefaultRequests;
  flags.reps = 1;
  flags.out = "BENCH_service.json";
  flags.has_shards = true;
  if (!whyprov::bench::ParseBenchFlags(argc, argv, "bench_service", flags)) {
    return 2;
  }

  // Configurations per scenario: the unsharded baseline at 1 thread and
  // all cores (the historical rows), then the sharded front door at all
  // cores for each shard count (the default suite, or the single
  // --shards=N override).
  struct Config {
    std::size_t threads;
    std::size_t shards;
  };
  std::vector<Config> configs = {{1, 1}, {0, 1}};
  if (flags.shards > 0) {
    configs.push_back({0, flags.shards});
  } else {
    configs.push_back({0, 2});
    configs.push_back({0, 4});
  }

  std::vector<Run> runs;
  for (const SuiteEntry& entry : ServiceSuite()) {
    for (const Config& config : configs) {
      runs.push_back(RunConfiguration(entry, config.threads, config.shards,
                                      flags.requests, flags.reps));
      const Run& run = runs.back();
      std::printf(
          "%-14s %-12s threads=%-2zu shards=%-2zu %8.1f q/s  p50 %.4fs  "
          "p99 %.4fs  (%zu enum / %zu decide / %zu delta, %zu ok / "
          "%zu failed)\n",
          run.scenario.c_str(), run.database.c_str(), run.threads,
          run.shards, run.queries_per_second, run.p50_seconds,
          run.p99_seconds, run.enumerates, run.decides, run.deltas,
          run.succeeded, run.failed);
    }
  }

  // The QoS flood: one scenario, fair scheduler vs plain FIFO, per-lane
  // rows. TransClosure's enumerations are expensive enough that an
  // interactive probe stuck behind a FIFO queue of them measures real
  // head-of-line blocking; the gate is self-relative so one scenario
  // suffices.
  const SuiteEntry flood_entry{"TransClosure", "Dbitcoin~", [] {
    return whyprov::scenarios::MakeTransClosure(
        whyprov::scenarios::GraphKind::kSparse, 600, 900,
        whyprov::bench::kSuiteSeed);
  }};
  for (const bool fair : {true, false}) {
    for (Run& run : RunFloodConfiguration(flood_entry, fair, flags.requests,
                                          flags.reps)) {
      std::printf(
          "%-14s %-12s flood qos=%-4s lane=%-11s %8.1f q/s  p50 %.4fs  "
          "p99 %.4fs  (%zu ok / %zu failed)\n",
          run.scenario.c_str(), run.database.c_str(), run.qos.c_str(),
          run.lane.c_str(), run.queries_per_second, run.p50_seconds,
          run.p99_seconds, run.succeeded, run.failed);
      runs.push_back(std::move(run));
    }
  }

  std::FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", flags.out.c_str());
    return 1;
  }
  WriteJson(out, runs);
  std::fclose(out);
  std::printf("wrote %s\n", flags.out.c_str());
  return 0;
}
