// Table 1 of the paper: the experimental scenarios — databases and sizes,
// query type, and number of rules. This binary regenerates the table from
// the actual scenario suite (sizes are the scaled stand-ins documented in
// EXPERIMENTS.md).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using whyprov::bench::FullSuite;

void PrintTable1() {
  std::printf("Table 1: Experimental scenarios (scaled reproduction)\n");
  std::printf("%-14s | %-44s | %-22s | %s\n", "Scenario", "Databases (facts)",
              "Query Type", "Number of Rules");
  std::printf("%s\n", std::string(104, '-').c_str());

  // Group databases per scenario, preserving suite order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<std::string>> databases;
  std::map<std::string, std::string> query_type;
  std::map<std::string, std::size_t> rules;
  for (const auto& entry : FullSuite()) {
    const auto scenario = entry.make();
    if (!databases.contains(entry.scenario)) order.push_back(entry.scenario);
    databases[entry.scenario].push_back(
        entry.database + " (" + std::to_string(scenario.database.size()) +
        ")");
    query_type[entry.scenario] = scenario.query_type;
    rules[entry.scenario] = scenario.num_rules;
  }
  // Doctors-1..7 collapse into one row, as in the paper.
  bool doctors_printed = false;
  for (const std::string& name : order) {
    std::string row_name = name;
    if (name.rfind("Doctors-", 0) == 0) {
      if (doctors_printed) continue;
      doctors_printed = true;
      row_name = "Doctors-i, i in [7]";
    }
    std::string dbs;
    for (std::size_t i = 0; i < databases[name].size(); ++i) {
      if (i > 0) dbs += ", ";
      dbs += databases[name][i];
    }
    std::printf("%-14s | %-44s | %-22s | %zu\n", row_name.c_str(),
                dbs.c_str(), query_type[name].c_str(), rules[name]);
  }
  std::printf("\n");
}

// A benchmark per scenario family measuring generation + evaluation, so
// the binary also reports how expensive materialising each scenario is.
void BM_GenerateAndEvaluate(benchmark::State& state,
                            const whyprov::bench::SuiteEntry entry) {
  for (auto _ : state) {
    auto scenario = entry.make();
    const whyprov::Engine pipeline = scenario.MakeEngine();
    benchmark::DoNotOptimize(pipeline.model().size());
    state.counters["db_facts"] =
        static_cast<double>(scenario.database.size());
    state.counters["model_facts"] =
        static_cast<double>(pipeline.model().size());
    state.counters["answers"] =
        static_cast<double>(pipeline.AnswerFactIds().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintTable1();
  for (const auto& entry : whyprov::bench::FullSuite()) {
    benchmark::RegisterBenchmark(
        ("Table1/" + entry.scenario + "/" + entry.database).c_str(),
        BM_GenerateAndEvaluate, entry)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
