// bench_throughput: queries/sec of the serving path, with and without
// the plan cache and plan-time CNF simplification, across all six
// scenario families.
//
// Each configuration evaluates one scenario database, samples a small set
// of answer tuples, and replays a workload of enumeration requests that
// revisits each tuple many times (the serving pattern the plan cache
// targets). The workload is served through the asynchronous
// `whyprov::Service` front door (submission queue + worker pool — the
// production path since the service layer landed). Cache-enabled
// configurations run twice, with `plan_simplify` off and fast, so the
// JSON records the cache-hit speedup that plan-time inprocessing buys
// (the pair bench/check_regression.py's --min-simplify-speedup gate
// compares); an uncached pass at the serving default rounds out the
// caching-speedup dimension.
//
// Usage:
//   bench_throughput [--requests=N] [--reps=R] [--out=PATH] [output.json]
//
//   --requests=N   total requests per configuration (default 200; rounded
//                  down to a multiple of the sampled tuple count)
//   --reps=R       repetitions per configuration; the best-throughput rep
//                  is reported, damping machine noise (default 1)
//   --out=PATH     output path (default BENCH_throughput.json; the legacy
//                  positional argument still works)
//
// CI runs a reduced --requests with several --reps and compares the JSON
// against the committed baseline via bench/check_regression.py.
//
// The JSON is a flat array of runs, one object per
// (scenario, database, cache, simplify, threads) combination — the
// perf-trajectory format the BENCH_*.json files follow.
// `threads_requested` records the configured thread count (0 = all cores)
// so baselines match across machines with different core counts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "whyprov.h"

namespace {

using whyprov::bench::SuiteEntry;
using whyprov::sat::SimplifyMode;

constexpr std::size_t kDefaultRequests = 200;  ///< workload per configuration
constexpr std::size_t kMaxMembersPerRequest = 8;

const char* SimplifyName(SimplifyMode mode) {
  return mode == SimplifyMode::kOff ? "off" : "fast";
}

struct Run {
  std::string scenario;
  std::string database;
  bool cache_enabled = false;
  SimplifyMode simplify = SimplifyMode::kOff;
  std::size_t threads_requested = 0;
  std::size_t threads = 0;
  whyprov::BatchStats stats;
};

/// The scenario slice: one representative per family (both TransClosure
/// graphs), small enough that the whole benchmark finishes in well under
/// a minute.
std::vector<SuiteEntry> ThroughputSuite() {
  using whyprov::bench::kSuiteSeed;
  namespace scenarios = whyprov::scenarios;
  return {
      {"TransClosure", "Dbitcoin~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSparse,
                                            600, 900, kSuiteSeed);
       }},
      {"TransClosure", "Dfacebook~",
       [] {
         return scenarios::MakeTransClosure(scenarios::GraphKind::kSocial,
                                            96, 300, kSuiteSeed);
       }},
      {"Doctors-1", "D1",
       [] { return scenarios::MakeDoctors(1, 400, kSuiteSeed); }},
      {"Galen", "D1",
       [] { return scenarios::MakeGalen(20, kSuiteSeed); }},
      {"Andersen", "D1",
       [] { return scenarios::MakeAndersen(500, kSuiteSeed); }},
      {"CSDA", "Dhttpd~",
       [] { return scenarios::MakeCsda("httpd", 800, kSuiteSeed); }},
  };
}

Run RunWorkload(const SuiteEntry& entry, bool cache_enabled,
                SimplifyMode simplify, std::size_t threads,
                std::size_t total_requests, std::size_t reps) {
  auto scenario = entry.make();
  whyprov::EngineOptions options;
  options.plan_cache_capacity = cache_enabled ? 64 : 0;
  options.plan_simplify = simplify;
  whyprov::ServiceOptions service_options;
  service_options.num_threads = threads;
  whyprov::Service service(scenario.MakeEngine(options), service_options);
  const whyprov::Engine& engine = service.engine();

  const auto targets = engine.SampleAnswers(whyprov::bench::kTuplesPerDatabase);
  const std::size_t rounds =
      targets.empty()
          ? 0
          : std::max<std::size_t>(1, total_requests / targets.size());
  std::vector<whyprov::EnumerateRequest> requests;
  requests.reserve(targets.size() * rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (auto target : targets) {
      whyprov::EnumerateRequest request;
      request.target = target;
      request.max_members = kMaxMembersPerRequest;
      requests.push_back(request);
    }
  }

  Run run;
  run.scenario = entry.scenario;
  run.database = entry.database;
  run.cache_enabled = cache_enabled;
  run.simplify = simplify;
  run.threads_requested = threads;
  run.threads = whyprov::util::ResolveThreadCount(threads);
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    const whyprov::BatchStats stats =
        service.EnumerateBatch(requests).stats;
    if (rep == 0 ||
        stats.queries_per_second > run.stats.queries_per_second) {
      run.stats = stats;
    }
  }
  return run;
}

void WriteJson(std::FILE* out, const std::vector<Run>& runs) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    const whyprov::BatchStats& s = run.stats;
    std::fprintf(
        out,
        "  {\"scenario\": \"%s\", \"database\": \"%s\", "
        "\"plan_cache\": %s, \"simplify\": \"%s\", "
        "\"threads_requested\": %zu, "
        "\"threads\": %zu, \"requests\": %zu, "
        "\"succeeded\": %zu, \"failed\": %zu, \"members\": %zu, "
        "\"wall_seconds\": %.6f, \"queries_per_second\": %.2f, "
        "\"cache_hits\": %zu, \"cache_misses\": %zu}%s\n",
        run.scenario.c_str(), run.database.c_str(),
        run.cache_enabled ? "true" : "false", SimplifyName(run.simplify),
        run.threads_requested,
        run.threads, s.requests,
        s.succeeded, s.failed, s.members_emitted, s.wall_seconds,
        s.queries_per_second, s.plan_cache_hits, s.plan_cache_misses,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

/// One (cache, simplify, threads) cell of the per-scenario grid.
struct Config {
  bool cache_enabled;
  SimplifyMode simplify;
  std::size_t threads;
};

}  // namespace

int main(int argc, char** argv) {
  whyprov::bench::BenchFlags flags;
  flags.requests = kDefaultRequests;
  flags.reps = 1;
  flags.out = "BENCH_throughput.json";
  if (!whyprov::bench::ParseBenchFlags(argc, argv, "bench_throughput",
                                       flags)) {
    return 2;
  }
  const std::size_t total_requests = flags.requests;
  const std::size_t reps = flags.reps;
  const std::string output_path = flags.out;

  // Cache-on rows come in off/fast pairs (the simplify-speedup gate's
  // input); the single uncached row uses the serving default (fast).
  const Config kConfigs[] = {
      {false, SimplifyMode::kFast, 0},
      {true, SimplifyMode::kOff, 1},
      {true, SimplifyMode::kFast, 1},
      {true, SimplifyMode::kOff, 0},
      {true, SimplifyMode::kFast, 0},
  };

  std::vector<Run> runs;
  for (const SuiteEntry& entry : ThroughputSuite()) {
    for (const Config& config : kConfigs) {
      runs.push_back(RunWorkload(entry, config.cache_enabled, config.simplify,
                                 config.threads, total_requests, reps));
      const Run& run = runs.back();
      std::printf(
          "%-14s %-12s cache=%-3s simplify=%-4s threads=%-2zu  %8.1f q/s  "
          "(%zu requests, %.3fs, %zu hits / %zu misses)\n",
          run.scenario.c_str(), run.database.c_str(),
          run.cache_enabled ? "on" : "off", SimplifyName(run.simplify),
          run.threads, run.stats.queries_per_second, run.stats.requests,
          run.stats.wall_seconds, run.stats.plan_cache_hits,
          run.stats.plan_cache_misses);
    }
  }

  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", output_path.c_str());
    return 1;
  }
  WriteJson(out, runs);
  std::fclose(out);
  std::printf("wrote %s\n", output_path.c_str());
  return 0;
}
