#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json perf-trajectory files.

Compares a freshly produced benchmark JSON against the committed baseline
and fails (exit 1) when a throughput-style metric dropped by more than the
allowed fraction, or when an incremental-delta row misses the absolute
speedup floor the acceptance criteria promise.

Rows are matched on their identity fields (scenario, database, plan_cache,
threads_requested, delta_size, direction — whichever are present), so a
baseline recorded on a machine with a different core count still matches:
`threads_requested` (0 = all cores) is stable while the resolved `threads`
is not.

Usage:
  check_regression.py --baseline BENCH_throughput.json \
      --current build/BENCH_throughput.json [--threshold 0.25]
  check_regression.py --baseline BENCH_incremental.json \
      --current build/BENCH_incremental.json --min-speedup 5
  check_regression.py --baseline BENCH_service.json \
      --current build/BENCH_service.json --latency-threshold 1.0
"""

import argparse
import json
import sys

# Fields that identify a run (used to match current rows to baseline rows).
KEY_FIELDS = (
    "scenario",
    "database",
    "plan_cache",
    "threads_requested",
    "delta_size",
    "direction",
)

# Higher-is-better metrics compared against the baseline with the drop
# threshold. speedup_vs_rebuild is deliberately NOT here: machine-ratio
# metrics swing too much across CI hardware for a drop gate; the absolute
# --min-speedup floor (with its wide margin at delta_size 1) guards it.
METRIC_FIELDS = ("queries_per_second",)

# Lower-is-better metrics (tail latency of BENCH_service.json), gated by
# --latency-threshold: the allowed fractional *increase* over the
# baseline. Tail latency is noisier than throughput on shared runners, so
# it gets its own (wider) threshold instead of reusing --threshold.
LATENCY_FIELDS = ("p99_seconds",)


def row_key(row):
    return tuple((field, row[field]) for field in KEY_FIELDS if field in row)


def format_key(key):
    return ", ".join(f"{field}={value}" for field, value in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop per metric "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="absolute floor for speedup_vs_rebuild on "
                             "delta_size == 1 rows of the current file")
    parser.add_argument("--latency-threshold", type=float, default=None,
                        help="max allowed fractional p99-latency increase "
                             "(e.g. 1.0 = p99 may at most double); latency "
                             "fields are ignored when unset")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline_rows = json.load(f)
    with open(args.current) as f:
        current_rows = json.load(f)

    current_by_key = {row_key(row): row for row in current_rows}
    failures = []
    checks = 0

    for baseline in baseline_rows:
        key = row_key(baseline)
        current = current_by_key.get(key)
        if current is None:
            failures.append(f"baseline row has no current match: "
                            f"[{format_key(key)}]")
            continue
        for metric in METRIC_FIELDS:
            if metric not in baseline or metric not in current:
                continue
            base_value = float(baseline[metric])
            new_value = float(current[metric])
            if base_value <= 0:
                continue
            checks += 1
            floor = base_value * (1.0 - args.threshold)
            status = "ok" if new_value >= floor else "REGRESSION"
            print(f"{status:>10}  {metric}: {new_value:.2f} vs baseline "
                  f"{base_value:.2f} (floor {floor:.2f})  "
                  f"[{format_key(key)}]")
            if new_value < floor:
                failures.append(
                    f"{metric} dropped {100 * (1 - new_value / base_value):.1f}% "
                    f"(> {100 * args.threshold:.0f}% allowed) on "
                    f"[{format_key(key)}]")
        if args.latency_threshold is None:
            continue
        for metric in LATENCY_FIELDS:
            if metric not in baseline or metric not in current:
                continue
            base_value = float(baseline[metric])
            new_value = float(current[metric])
            if base_value <= 0:
                continue
            checks += 1
            ceiling = base_value * (1.0 + args.latency_threshold)
            status = "ok" if new_value <= ceiling else "REGRESSION"
            print(f"{status:>10}  {metric}: {new_value:.6f} vs baseline "
                  f"{base_value:.6f} (ceiling {ceiling:.6f})  "
                  f"[{format_key(key)}]")
            if new_value > ceiling:
                failures.append(
                    f"{metric} grew {100 * (new_value / base_value - 1):.1f}% "
                    f"(> {100 * args.latency_threshold:.0f}% allowed) on "
                    f"[{format_key(key)}]")

    if args.min_speedup is not None:
        for row in current_rows:
            if row.get("delta_size") != 1 or "speedup_vs_rebuild" not in row:
                continue
            checks += 1
            speedup = float(row["speedup_vs_rebuild"])
            status = "ok" if speedup >= args.min_speedup else "REGRESSION"
            print(f"{status:>10}  speedup_vs_rebuild floor: {speedup:.2f}x "
                  f"vs required {args.min_speedup:.2f}x "
                  f"[{format_key(row_key(row))}]")
            if speedup < args.min_speedup:
                failures.append(
                    f"speedup_vs_rebuild {speedup:.2f}x misses the "
                    f"{args.min_speedup:.2f}x floor on "
                    f"[{format_key(row_key(row))}]")

    if checks == 0:
        print("error: no comparable metrics found "
              "(wrong files, or key fields changed?)", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checks} checks passed "
          f"(threshold {100 * args.threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
