#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json perf-trajectory files.

Compares a freshly produced benchmark JSON against the committed baseline
and fails (exit 1) when a throughput-style metric dropped by more than the
allowed fraction, when an incremental-delta row misses the absolute
speedup floor the acceptance criteria promise, or when sharded serving
stops scaling (2-shard q/s vs 1-shard q/s in the *current* run).

Rows are matched on their identity fields (scenario, database, plan_cache,
simplify, threads_requested, shards, clients, delta_size, direction —
whichever are present),
so a baseline recorded on a machine with a different core count still
matches: `threads_requested` (0 = all cores) is stable while the resolved
`threads` is not.

All failure modes exit with a one-line diagnosis, never a traceback: a
missing baseline file (e.g. a brand-new benchmark whose JSON was not
committed yet), malformed JSON, rows that are not objects, and baseline
metrics absent from the current rows are all reported with what to do
about them.

Usage:
  check_regression.py --baseline BENCH_throughput.json \
      --current build/BENCH_throughput.json [--threshold 0.25]
  check_regression.py --baseline BENCH_throughput.json \
      --current build/BENCH_throughput.json --min-simplify-speedup 1.05
  check_regression.py --baseline BENCH_incremental.json \
      --current build/BENCH_incremental.json --min-speedup 5
  check_regression.py --baseline BENCH_service.json \
      --current build/BENCH_service.json --latency-threshold 1.0 \
      --min-shard-scaling 0.75
  check_regression.py --baseline BENCH_durability.json \
      --current build/BENCH_durability.json --min-wal-throughput 0.75
"""

import argparse
import json
import sys

# Fields that identify a run (used to match current rows to baseline rows).
KEY_FIELDS = (
    "scenario",
    "database",
    "plan_cache",
    "simplify",
    "threads_requested",
    "shards",
    "clients",
    "delta_size",
    "direction",
    "wal",
    "tail_records",
    "qos",
    "lane",
    "tenants",
)

# Higher-is-better metrics compared against the baseline with the drop
# threshold. speedup_vs_rebuild is deliberately NOT here: machine-ratio
# metrics swing too much across CI hardware for a drop gate; the absolute
# --min-speedup floor (with its wide margin at delta_size 1) guards it.
# deltas_per_second is likewise absent: the WAL-on/WAL-off ratio is gated
# self-relatively by --min-wal-throughput instead, and the absolute rate
# swings with the runner's filesystem.
METRIC_FIELDS = ("queries_per_second",)

# Lower-is-better metrics (tail latency of BENCH_service.json), gated by
# --latency-threshold: the allowed fractional *increase* over the
# baseline. Tail latency is noisier than throughput on shared runners, so
# it gets its own (wider) threshold instead of reusing --threshold.
LATENCY_FIELDS = ("p99_seconds",)


def fail(message):
    """One-line fatal diagnosis (no traceback)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def load_rows(path, role):
    """Loads a BENCH_*.json row list with clear failure messages."""
    try:
        with open(path) as f:
            rows = json.load(f)
    except FileNotFoundError:
        hint = ""
        if role == "baseline":
            hint = (" — if this benchmark is new, run it once and commit "
                    "its JSON as the baseline")
        fail(f"no {role} file at '{path}'{hint}")
    except json.JSONDecodeError as e:
        fail(f"{role} file '{path}' is not valid JSON ({e})")
    if not isinstance(rows, list):
        fail(f"{role} file '{path}' must hold a JSON array of rows, "
             f"got {type(rows).__name__}")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"{role} file '{path}' row {index} must be a JSON object, "
                 f"got {type(row).__name__}")
        if not any(field in row for field in KEY_FIELDS):
            fail(f"{role} file '{path}' row {index} has none of the "
                 f"identity keys {KEY_FIELDS} — wrong file, or the schema "
                 "changed without updating check_regression.py")
    return rows


def metric_value(row, metric, path):
    try:
        return float(row[metric])
    except (TypeError, ValueError):
        fail(f"'{metric}' in '{path}' is not numeric "
             f"(got {row[metric]!r} on [{format_key(row_key(row))}])")


def row_key(row):
    return tuple((field, row[field]) for field in KEY_FIELDS if field in row)


def format_key(key):
    return ", ".join(f"{field}={value}" for field, value in key)


def check_shard_scaling(current_rows, current_path, min_scaling, failures):
    """Self-relative shard-scaling gate: within the *current* run, every
    multi-shard row's q/s must be at least `min_scaling` times the
    matching 1-shard row's. Self-relative, so the gate holds on any
    hardware (on a single-core runner sharding cannot scale, only avoid
    collapsing; raise the factor above 1 on multi-core fleets)."""
    checks = 0
    by_group = {}
    for row in current_rows:
        if "shards" not in row or "queries_per_second" not in row:
            continue
        group = tuple((f, row[f]) for f in ("scenario", "database",
                                            "threads_requested")
                      if f in row)
        by_group.setdefault(group, {})[row["shards"]] = row
    for group, by_shards in by_group.items():
        base = by_shards.get(1)
        if base is None:
            continue
        base_qps = metric_value(base, "queries_per_second", current_path)
        if base_qps <= 0:
            continue
        for shards, row in sorted(by_shards.items()):
            if shards == 1:
                continue
            checks += 1
            qps = metric_value(row, "queries_per_second", current_path)
            floor = base_qps * min_scaling
            status = "ok" if qps >= floor else "REGRESSION"
            print(f"{status:>10}  shard scaling: {shards}-shard "
                  f"{qps:.2f} q/s vs 1-shard {base_qps:.2f} "
                  f"(floor {floor:.2f} = {min_scaling:.2f}x)  "
                  f"[{format_key(group)}]")
            if qps < floor:
                failures.append(
                    f"{shards}-shard q/s is {qps / base_qps:.2f}x the "
                    f"1-shard q/s (< {min_scaling:.2f}x floor) on "
                    f"[{format_key(group)}]")
    return checks


def check_wal_throughput(current_rows, current_path, min_ratio, failures):
    """Self-relative WAL-overhead gate on BENCH_durability.json: for every
    (scenario, database) with both a wal=on and a wal=off throughput row
    in the *current* run, the WAL-on deltas/second must be at least
    `min_ratio` times the WAL-off rate. Self-relative, so the gate holds
    regardless of the runner's absolute disk speed."""
    checks = 0
    by_group = {}
    for row in current_rows:
        if "wal" not in row or "deltas_per_second" not in row:
            continue
        group = tuple((f, row[f]) for f in ("scenario", "database")
                      if f in row)
        by_group.setdefault(group, {})[row["wal"]] = row
    for group, by_wal in by_group.items():
        base = by_wal.get("off")
        gated = by_wal.get("on")
        if base is None or gated is None:
            continue
        base_rate = metric_value(base, "deltas_per_second", current_path)
        if base_rate <= 0:
            continue
        checks += 1
        rate = metric_value(gated, "deltas_per_second", current_path)
        floor = base_rate * min_ratio
        status = "ok" if rate >= floor else "REGRESSION"
        print(f"{status:>10}  WAL overhead: wal-on {rate:.2f} deltas/s vs "
              f"wal-off {base_rate:.2f} (floor {floor:.2f} = "
              f"{min_ratio:.2f}x)  [{format_key(group)}]")
        if rate < floor:
            failures.append(
                f"WAL-on delta throughput is {rate / base_rate:.2f}x the "
                f"WAL-off throughput (< {min_ratio:.2f}x floor) on "
                f"[{format_key(group)}]")
    return checks


def check_flood_p99(current_rows, current_path, max_ratio, failures):
    """Self-relative QoS gate on BENCH_service.json's flood rows: for
    every flood group with an interactive-lane row under both the fair
    scheduler (qos=fair) and the FIFO queue (qos=fifo) in the *current*
    run, the fair interactive p99 must be at most `max_ratio` times the
    FIFO interactive p99. This is the subsystem's reason to exist —
    interactive tail latency bounded under a batch flood — gated
    self-relatively so it holds on any hardware."""
    checks = 0
    by_group = {}
    for row in current_rows:
        if row.get("lane") != "interactive" or "qos" not in row:
            continue
        if "p99_seconds" not in row:
            continue
        group = tuple((f, row[f]) for f in ("scenario", "database",
                                            "threads_requested", "tenants")
                      if f in row)
        by_group.setdefault(group, {})[row["qos"]] = row
    for group, by_qos in by_group.items():
        fifo = by_qos.get("fifo")
        fair = by_qos.get("fair")
        if fifo is None or fair is None:
            continue
        fifo_p99 = metric_value(fifo, "p99_seconds", current_path)
        if fifo_p99 <= 0:
            continue
        checks += 1
        fair_p99 = metric_value(fair, "p99_seconds", current_path)
        ceiling = fifo_p99 * max_ratio
        status = "ok" if fair_p99 <= ceiling else "REGRESSION"
        print(f"{status:>10}  flood p99: fair-queueing interactive "
              f"{fair_p99:.6f}s vs FIFO {fifo_p99:.6f}s (ceiling "
              f"{ceiling:.6f} = {max_ratio:.2f}x)  [{format_key(group)}]")
        if fair_p99 > ceiling:
            failures.append(
                f"interactive p99 under flood is {fair_p99 / fifo_p99:.2f}x "
                f"the FIFO p99 (> {max_ratio:.2f}x ceiling) on "
                f"[{format_key(group)}] — the priority lane stopped "
                "protecting interactive tail latency")
    return checks


def check_simplify_speedup(current_rows, current_path, min_speedup, failures):
    """Self-relative plan-simplification gate on BENCH_throughput.json:
    within the *current* run, compare each cache-enabled simplify=fast row
    against its simplify=off twin (same scenario/database/threads). At
    least two distinct (scenario, database) pairs must show a fast/off q/s
    ratio of at least `min_speedup` — the ISSUE's "improves on >= 2 of the
    six scenarios" acceptance bar, held self-relatively so it gates on any
    hardware. Individual below-floor pairs are informational (small
    formulas can be simplify-neutral); the gate fails only when the
    improvement disappears almost everywhere."""
    checks = 0
    by_group = {}
    for row in current_rows:
        if row.get("plan_cache") is not True or "simplify" not in row:
            continue
        if "queries_per_second" not in row:
            continue
        group = tuple((f, row[f]) for f in ("scenario", "database",
                                            "threads_requested")
                      if f in row)
        by_group.setdefault(group, {})[row["simplify"]] = row
    improved = set()
    compared = set()
    for group, by_mode in sorted(by_group.items()):
        base = by_mode.get("off")
        fast = by_mode.get("fast")
        if base is None or fast is None:
            continue
        base_qps = metric_value(base, "queries_per_second", current_path)
        if base_qps <= 0:
            continue
        checks += 1
        qps = metric_value(fast, "queries_per_second", current_path)
        ratio = qps / base_qps
        scenario = tuple(v for f, v in group if f in ("scenario", "database"))
        compared.add(scenario)
        status = "ok" if ratio >= min_speedup else "below"
        if ratio >= min_speedup:
            improved.add(scenario)
        print(f"{status:>10}  simplify speedup: fast {qps:.2f} q/s vs off "
              f"{base_qps:.2f} ({ratio:.2f}x, floor {min_speedup:.2f}x)  "
              f"[{format_key(group)}]")
    if checks and len(improved) < min(2, len(compared)):
        failures.append(
            f"plan simplification sped up cache-hit serving by >= "
            f"{min_speedup:.2f}x on only {len(improved)} of "
            f"{len(compared)} scenario databases (need >= 2) — the "
            "inprocessing pass stopped paying for itself")
    return checks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop per metric "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="absolute floor for speedup_vs_rebuild on "
                             "delta_size == 1 rows of the current file")
    parser.add_argument("--latency-threshold", type=float, default=None,
                        help="max allowed fractional p99-latency increase "
                             "(e.g. 1.0 = p99 may at most double); latency "
                             "fields are ignored when unset")
    parser.add_argument("--min-shard-scaling", type=float, default=None,
                        help="floor for (N-shard q/s) / (1-shard q/s) "
                             "within the current file; ignored when unset")
    parser.add_argument("--min-wal-throughput", type=float, default=None,
                        help="floor for (wal-on deltas/s) / (wal-off "
                             "deltas/s) within the current file; ignored "
                             "when unset")
    parser.add_argument("--min-simplify-speedup", type=float, default=None,
                        help="floor for (plan_simplify=fast q/s) / "
                             "(plan_simplify=off q/s) on the current file's "
                             "cache-enabled rows; at least two scenario "
                             "databases must clear it; ignored when unset")
    parser.add_argument("--max-flood-p99-ratio", type=float, default=None,
                        help="ceiling for (fair-queueing interactive p99) /"
                             " (FIFO interactive p99) on the current file's"
                             " flood rows; ignored when unset")
    args = parser.parse_args()

    baseline_rows = load_rows(args.baseline, "baseline")
    current_rows = load_rows(args.current, "current")

    current_by_key = {row_key(row): row for row in current_rows}
    failures = []
    checks = 0

    for baseline in baseline_rows:
        key = row_key(baseline)
        current = current_by_key.get(key)
        if current is None:
            failures.append(f"baseline row has no current match: "
                            f"[{format_key(key)}] — if the benchmark's "
                            "configurations changed, refresh the committed "
                            "baseline")
            continue
        for metric in METRIC_FIELDS:
            if metric not in baseline:
                continue
            if metric not in current:
                failures.append(
                    f"baseline key '{metric}' is missing from the current "
                    f"row [{format_key(key)}] — the benchmark stopped "
                    "reporting it; update the baseline (or the gate) "
                    "deliberately")
                continue
            base_value = metric_value(baseline, metric, args.baseline)
            new_value = metric_value(current, metric, args.current)
            if base_value <= 0:
                continue
            checks += 1
            floor = base_value * (1.0 - args.threshold)
            status = "ok" if new_value >= floor else "REGRESSION"
            print(f"{status:>10}  {metric}: {new_value:.2f} vs baseline "
                  f"{base_value:.2f} (floor {floor:.2f})  "
                  f"[{format_key(key)}]")
            if new_value < floor:
                failures.append(
                    f"{metric} dropped {100 * (1 - new_value / base_value):.1f}% "
                    f"(> {100 * args.threshold:.0f}% allowed) on "
                    f"[{format_key(key)}]")
        if args.latency_threshold is None:
            continue
        for metric in LATENCY_FIELDS:
            if metric not in baseline or metric not in current:
                continue
            base_value = metric_value(baseline, metric, args.baseline)
            new_value = metric_value(current, metric, args.current)
            if base_value <= 0:
                continue
            checks += 1
            ceiling = base_value * (1.0 + args.latency_threshold)
            status = "ok" if new_value <= ceiling else "REGRESSION"
            print(f"{status:>10}  {metric}: {new_value:.6f} vs baseline "
                  f"{base_value:.6f} (ceiling {ceiling:.6f})  "
                  f"[{format_key(key)}]")
            if new_value > ceiling:
                failures.append(
                    f"{metric} grew {100 * (new_value / base_value - 1):.1f}% "
                    f"(> {100 * args.latency_threshold:.0f}% allowed) on "
                    f"[{format_key(key)}]")

    if args.min_speedup is not None:
        for row in current_rows:
            if row.get("delta_size") != 1 or "speedup_vs_rebuild" not in row:
                continue
            checks += 1
            speedup = metric_value(row, "speedup_vs_rebuild", args.current)
            status = "ok" if speedup >= args.min_speedup else "REGRESSION"
            print(f"{status:>10}  speedup_vs_rebuild floor: {speedup:.2f}x "
                  f"vs required {args.min_speedup:.2f}x "
                  f"[{format_key(row_key(row))}]")
            if speedup < args.min_speedup:
                failures.append(
                    f"speedup_vs_rebuild {speedup:.2f}x misses the "
                    f"{args.min_speedup:.2f}x floor on "
                    f"[{format_key(row_key(row))}]")

    if args.min_shard_scaling is not None:
        checks += check_shard_scaling(current_rows, args.current,
                                      args.min_shard_scaling, failures)

    if args.min_wal_throughput is not None:
        checks += check_wal_throughput(current_rows, args.current,
                                       args.min_wal_throughput, failures)

    if args.min_simplify_speedup is not None:
        checks += check_simplify_speedup(current_rows, args.current,
                                         args.min_simplify_speedup, failures)

    if args.max_flood_p99_ratio is not None:
        checks += check_flood_p99(current_rows, args.current,
                                  args.max_flood_p99_ratio, failures)

    if checks == 0:
        print("error: no comparable metrics found "
              "(wrong files, or key fields changed?)", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checks} checks passed "
          f"(threshold {100 * args.threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
