// explain_cli: a command-line why-provenance explainer.
//
// Usage:
//   explain_cli <program.dl> <database.dl> <answer_predicate> [options]
//
// Options:
//   --fact "tc(a, b)"   explain this answer (default: first 3 answers)
//   --max N             emit at most N members per answer (default 10)
//   --backend NAME      SAT backend (cdcl | dpll | dimacs-pipe | ...)
//   --tree              print a witnessing proof tree per member
//   --dot               print a Graphviz rendering of the first tree
//
// The files use the repository's Datalog dialect (see README.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "whyprov.h"

namespace dl = whyprov::datalog;

namespace {

bool ReadFile(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: explain_cli <program.dl> <database.dl> "
               "<answer_predicate> [--fact F] [--max N] [--backend B] "
               "[--tree] [--dot]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string program_text;
  std::string database_text;
  if (!ReadFile(argv[1], program_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  if (!ReadFile(argv[2], database_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }
  const char* answer_predicate = argv[3];
  const char* fact_text = nullptr;
  std::size_t max_members = 10;
  bool print_tree = false;
  bool print_dot = false;
  whyprov::EngineOptions options;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fact") == 0 && i + 1 < argc) {
      fact_text = argv[++i];
    } else if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      max_members = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      options.solver_backend = argv[++i];
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      print_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      print_dot = true;
    } else {
      return Usage();
    }
  }

  auto engine = whyprov::Engine::FromText(program_text, database_text,
                                          answer_predicate, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }
  std::printf("%zu database facts, %zu derived answers for '%s'\n",
              engine.value().database().size(),
              engine.value().AnswerFactIds().size(), answer_predicate);

  std::vector<dl::FactId> targets;
  if (fact_text != nullptr) {
    auto target = engine.value().FactIdOf(fact_text);
    if (!target.ok()) {
      std::fprintf(stderr, "error: %s\n", target.status().message().c_str());
      return 1;
    }
    targets.push_back(target.value());
  } else {
    targets = engine.value().SampleAnswers(3);
  }

  for (dl::FactId target : targets) {
    std::printf("\nwhy %s ?\n", engine.value().FactToText(target).c_str());
    // Compile once (plan-cached across repeated targets), execute after.
    auto prepared = engine.value().Prepare(target);
    if (!prepared.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   prepared.status().message().c_str());
      continue;
    }
    whyprov::EnumerateRequest request;
    request.max_members = max_members;
    auto enumeration = prepared.value().Enumerate(request);
    if (!enumeration.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   enumeration.status().message().c_str());
      continue;
    }
    std::size_t count = 0;
    bool dot_done = false;
    for (const auto& member : enumeration.value()) {
      std::printf("  [%zu] {", ++count);
      for (std::size_t i = 0; i < member.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "",
                    engine.value().FactToText(member[i]).c_str());
      }
      std::printf("}\n");
      if (print_tree || (print_dot && !dot_done)) {
        auto tree = enumeration.value().ExplainLast();
        if (tree.ok()) {
          if (print_tree) {
            std::printf("%s", tree.value()
                                  .ToString(engine.value().model().symbols())
                                  .c_str());
          }
          if (print_dot && !dot_done) {
            std::printf("%s", whyprov::provenance::ProofTreeToDot(
                                  tree.value(),
                                  engine.value().model().symbols())
                                  .c_str());
            dot_done = true;
          }
        }
      }
    }
    if (count == 0) std::printf("  (no explanations)\n");
    if (enumeration.value().incomplete()) {
      std::fprintf(stderr,
                   "warning: the solver backend gave up; the family may "
                   "be incomplete\n");
    }
  }
  return 0;
}
