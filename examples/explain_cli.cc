// explain_cli: a command-line why-provenance explainer.
//
// Usage:
//   explain_cli <program.dl> <database.dl> <answer_predicate> [options]
//
// Options:
//   --fact "tc(a, b)"   explain this answer (default: first 3 answers)
//   --max N             emit at most N members per answer (default 10)
//   --tree              print a witnessing proof tree per member
//   --dot               print a Graphviz rendering of the first tree
//
// The files use the repository's Datalog dialect (see README.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "provenance/dot_export.h"
#include "provenance/proof_dag.h"
#include "provenance/why_provenance.h"
#include "util/rng.h"

namespace pv = whyprov::provenance;
namespace dl = whyprov::datalog;

namespace {

bool ReadFile(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: explain_cli <program.dl> <database.dl> "
               "<answer_predicate> [--fact F] [--max N] [--tree] [--dot]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string program_text;
  std::string database_text;
  if (!ReadFile(argv[1], program_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  if (!ReadFile(argv[2], database_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }
  const char* answer_predicate = argv[3];
  const char* fact_text = nullptr;
  std::size_t max_members = 10;
  bool print_tree = false;
  bool print_dot = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fact") == 0 && i + 1 < argc) {
      fact_text = argv[++i];
    } else if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      max_members = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      print_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      print_dot = true;
    } else {
      return Usage();
    }
  }

  auto pipeline = pv::WhyProvenancePipeline::FromText(
      program_text, database_text, answer_predicate);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "error: %s\n", pipeline.status().message().c_str());
    return 1;
  }
  std::printf("%zu database facts, %zu derived answers for '%s'\n",
              pipeline.value().database().size(),
              pipeline.value().AnswerFactIds().size(), answer_predicate);

  std::vector<dl::FactId> targets;
  if (fact_text != nullptr) {
    auto target = pipeline.value().FactIdOf(fact_text);
    if (!target.ok()) {
      std::fprintf(stderr, "error: %s\n", target.status().message().c_str());
      return 1;
    }
    targets.push_back(target.value());
  } else {
    whyprov::util::Rng rng(0);
    targets = pipeline.value().SampleAnswers(3, rng);
  }

  for (dl::FactId target : targets) {
    std::printf("\nwhy %s ?\n", pipeline.value().FactToText(target).c_str());
    auto enumerator = pipeline.value().MakeEnumerator(target);
    std::size_t count = 0;
    bool dot_done = false;
    for (auto member = enumerator->Next();
         member.has_value() && count < max_members;
         member = enumerator->Next()) {
      std::printf("  [%zu] {", ++count);
      for (std::size_t i = 0; i < member->size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "",
                    dl::FactToString((*member)[i],
                                     pipeline.value().model().symbols())
                        .c_str());
      }
      std::printf("}\n");
      if (print_tree || (print_dot && !dot_done)) {
        const pv::CompressedDag dag(&enumerator->closure(),
                                    enumerator->last_witness_choices());
        auto tree = dag.UnravelToProofTree(pipeline.value().program(),
                                           pipeline.value().model());
        if (tree.ok()) {
          if (print_tree) {
            std::printf("%s", tree.value()
                                  .ToString(pipeline.value().model().symbols())
                                  .c_str());
          }
          if (print_dot && !dot_done) {
            std::printf("%s", pv::ProofTreeToDot(
                                  tree.value(),
                                  pipeline.value().model().symbols())
                                  .c_str());
            dot_done = true;
          }
        }
      }
    }
    if (count == 0) std::printf("  (no explanations)\n");
  }
  return 0;
}
