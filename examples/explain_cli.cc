// explain_cli: a command-line why-provenance explainer, served through
// the asynchronous `whyprov::Service` front door.
//
// Usage:
//   explain_cli <program.dl> <database.dl> <answer_predicate> [options]
//
// Options:
//   --fact "tc(a, b)"   explain this answer (default: first 3 answers)
//   --max N             emit at most N members per answer (default 10)
//   --backend NAME      SAT backend (cdcl | dpll | dimacs-pipe | ...)
//   --deadline S        per-request deadline in seconds (default: none);
//                       an expired enumeration reports DEADLINE_EXCEEDED
//   --tree              print a witnessing proof tree per member
//   --dot               print a Graphviz rendering of the first tree
//
// Members stream through a bounded MemberStream (the CLI consumes them as
// the solver produces them); proof trees arrive via submitted Explain
// requests against the same cached plan. The files use the repository's
// Datalog dialect (see README.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "whyprov.h"

namespace dl = whyprov::datalog;

namespace {

bool ReadFile(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: explain_cli <program.dl> <database.dl> "
               "<answer_predicate> [--fact F] [--max N] [--backend B] "
               "[--deadline S] [--tree] [--dot]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string program_text;
  std::string database_text;
  if (!ReadFile(argv[1], program_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  if (!ReadFile(argv[2], database_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }
  const char* answer_predicate = argv[3];
  const char* fact_text = nullptr;
  std::size_t max_members = 10;
  double deadline_seconds = 0;
  bool print_tree = false;
  bool print_dot = false;
  whyprov::EngineOptions options;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fact") == 0 && i + 1 < argc) {
      fact_text = argv[++i];
    } else if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      max_members = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      options.solver_backend = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      deadline_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      print_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      print_dot = true;
    } else {
      return Usage();
    }
  }

  auto engine = whyprov::Engine::FromText(program_text, database_text,
                                          answer_predicate, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }
  whyprov::Service service(std::move(engine).value());
  std::printf("%zu database facts, %zu derived answers for '%s'\n",
              service.engine().database().size(),
              service.engine().AnswerFactIds().size(), answer_predicate);

  std::vector<dl::FactId> targets;
  if (fact_text != nullptr) {
    auto target = service.engine().FactIdOf(fact_text);
    if (!target.ok()) {
      std::fprintf(stderr, "error: %s\n", target.status().message().c_str());
      return 1;
    }
    targets.push_back(target.value());
  } else {
    targets = service.engine().SampleAnswers(3);
  }

  for (dl::FactId target : targets) {
    std::printf("\nwhy %s ?\n",
                service.engine().FactToText(target).c_str());
    whyprov::EnumerateRequest request;
    request.target = target;
    request.max_members = max_members;
    auto streamed = service.Stream(std::move(request),
                                   /*stream_capacity=*/8, deadline_seconds);
    if (!streamed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   streamed.status().message().c_str());
      continue;
    }
    auto [ticket, stream] = std::move(streamed).value();
    std::size_t count = 0;
    bool dot_done = false;
    while (auto member = stream->Pop()) {
      std::printf("  [%zu] {", ++count);
      for (std::size_t i = 0; i < member->size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "",
                    service.engine().FactToText((*member)[i]).c_str());
      }
      std::printf("}\n");
      if (print_tree || (print_dot && !dot_done)) {
        whyprov::ExplainRequest explain;
        explain.target = target;
        explain.member_index = count - 1;
        whyprov::Request explain_request;
        explain_request.op = explain;
        explain_request.deadline_seconds = deadline_seconds;
        auto explain_ticket = service.Submit(std::move(explain_request));
        if (!explain_ticket.ok()) continue;
        const whyprov::Response& response = explain_ticket.value().Wait();
        if (response.status.ok() && response.explanation.has_value()) {
          const auto& tree = response.explanation->tree;
          if (print_tree) {
            std::printf(
                "%s",
                tree.ToString(service.engine().model().symbols()).c_str());
          }
          if (print_dot && !dot_done) {
            std::printf("%s",
                        whyprov::provenance::ProofTreeToDot(
                            tree, service.engine().model().symbols())
                            .c_str());
            dot_done = true;
          }
        }
      }
    }
    const whyprov::Response& summary = ticket.Wait();
    if (count == 0 && summary.status.ok()) {
      std::printf("  (no explanations)\n");
    }
    if (summary.status.code() == whyprov::util::StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr,
                   "warning: the %.3fs deadline expired after %zu "
                   "member(s); the family may have more\n",
                   deadline_seconds, count);
    } else if (!summary.status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   summary.status.message().c_str());
    } else if (summary.incomplete) {
      std::fprintf(stderr,
                   "warning: the solver backend gave up; the family may "
                   "be incomplete\n");
    }
  }
  return 0;
}
