// Hardness gadgets, live: the constructive content of the paper's
// NP-hardness proofs (Lemmas 17 and 24) used *as solvers*.
//
// 3SAT:  phi is satisfiable      iff D_phi in why((x1), D_phi, Q_17)
// HamCycle: G has a Ham. cycle   iff D_G  in whyNR((g0), D_G, Q_24)
//
// Because Q_24 is linear, whyNR = whyUN, so the SAT-based membership check
// (Engine::Decide with TreeClass::kUnambiguous) decides Hamiltonicity — a
// Datalog-provenance query solving a graph problem.

#include <cstdio>

#include "scenarios/reductions.h"
#include "whyprov.h"

namespace pv = whyprov::provenance;
namespace sc = whyprov::scenarios;
namespace dl = whyprov::datalog;

namespace {

/// Decides D in why/whyUN(target, D, Q) for the reduction output, via the
/// engine facade.
bool DatabaseIsMember(const sc::ReductionOutput& reduction,
                      pv::TreeClass tree_class) {
  whyprov::Engine engine = whyprov::Engine::FromParts(
      reduction.program, reduction.database, reduction.target.predicate);
  auto target = engine.model().Find(reduction.target);
  if (!target.has_value()) return false;
  whyprov::DecideRequest request;
  request.target = *target;
  request.candidate = reduction.database.facts();
  request.tree_class = tree_class;
  return engine.Decide(request).value_or(false);
}

}  // namespace

int main() {
  std::printf("=== Lemma 17: solving 3SAT via why-provenance ===\n");
  {
    sc::ThreeSatInstance sat_instance;
    sat_instance.num_vars = 3;
    sat_instance.clauses = {{1, 2, 3}, {-1, 2, -3}, {1, -2, 3}};
    const sc::ReductionOutput reduction = sc::ReduceThreeSat(sat_instance);
    std::printf("reduction query (fixed, linear):\n%s\n",
                reduction.program.ToString().c_str());
    std::printf("database D_phi:\n%s\n",
                reduction.database.ToString().c_str());
    const bool member = DatabaseIsMember(reduction, pv::TreeClass::kAny);
    const bool brute = sc::SolveThreeSatBruteForce(sat_instance);
    std::printf("D_phi in why((x1), D_phi, Q)?  %s\n", member ? "yes" : "no");
    std::printf("=> phi is %s (brute force agrees: %s)\n\n",
                member ? "SATISFIABLE" : "UNSATISFIABLE",
                brute ? "satisfiable" : "unsatisfiable");
    if (member != brute) return 1;
  }

  std::printf("=== Lemma 24: Hamiltonian cycles via why-provenance ===\n");
  whyprov::util::Rng rng(2024);
  bool all_agree = true;
  for (int trial = 0; trial < 3; ++trial) {
    const sc::DigraphInstance graph = sc::RandomDigraph(5, 0.35, rng);
    const sc::ReductionOutput reduction = sc::ReduceHamiltonianCycle(graph);
    const bool member =
        DatabaseIsMember(reduction, pv::TreeClass::kUnambiguous);
    const bool truth = sc::HasHamiltonianCycleBruteForce(graph);
    all_agree = all_agree && member == truth;
    std::printf(
        "random digraph #%d (%d nodes, %zu edges): provenance says %-3s "
        "brute force says %-3s %s\n",
        trial + 1, graph.num_nodes, graph.edges.size(),
        member ? "yes" : "no", truth ? "yes" : "no",
        member == truth ? "[agree]" : "[DISAGREE!]");
  }
  std::printf(
      "\nThe membership question 'is the whole database an explanation?' is\n"
      "NP-hard precisely because it can express searches like these.\n");
  // Nonzero exit on disagreement so CI smoke-runs catch regressions.
  return all_agree ? 0 : 1;
}
