// Hardness gadgets, live: the constructive content of the paper's
// NP-hardness proofs (Lemmas 17 and 24) used *as solvers*.
//
// 3SAT:  phi is satisfiable      iff D_phi in why((x1), D_phi, Q_17)
// HamCycle: G has a Ham. cycle   iff D_G  in whyNR((g0), D_G, Q_24)
//
// Because Q_24 is linear, whyNR = whyUN, so the SAT-based membership check
// decides Hamiltonicity — a Datalog-provenance query solving a graph
// problem.

#include <cstdio>

#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "scenarios/reductions.h"
#include "util/rng.h"

namespace pv = whyprov::provenance;
namespace sc = whyprov::scenarios;
namespace dl = whyprov::datalog;

bool DatabaseIsWhyMember(const sc::ReductionOutput& reduction) {
  const dl::Model model =
      dl::Evaluator::Evaluate(reduction.program, reduction.database);
  auto target = model.Find(reduction.target);
  if (!target.has_value()) return false;
  auto family = pv::EnumerateWhyExhaustive(reduction.program, model, *target,
                                           pv::TreeClass::kAny);
  if (!family.ok()) return false;
  std::vector<dl::Fact> whole(reduction.database.facts());
  std::sort(whole.begin(), whole.end());
  return family.value().contains(whole);
}

bool DatabaseIsWhyNrMember(const sc::ReductionOutput& reduction) {
  const dl::Model model =
      dl::Evaluator::Evaluate(reduction.program, reduction.database);
  auto target = model.Find(reduction.target);
  if (!target.has_value()) return false;
  return pv::IsWhyUnMemberSat(reduction.program, model, *target,
                              reduction.database.facts());
}

int main() {
  std::printf("=== Lemma 17: solving 3SAT via why-provenance ===\n");
  {
    sc::ThreeSatInstance sat_instance;
    sat_instance.num_vars = 3;
    sat_instance.clauses = {{1, 2, 3}, {-1, 2, -3}, {1, -2, 3}};
    const sc::ReductionOutput reduction = sc::ReduceThreeSat(sat_instance);
    std::printf("reduction query (fixed, linear):\n%s\n",
                reduction.program.ToString().c_str());
    std::printf("database D_phi:\n%s\n",
                reduction.database.ToString().c_str());
    const bool member = DatabaseIsWhyMember(reduction);
    std::printf("D_phi in why((x1), D_phi, Q)?  %s\n", member ? "yes" : "no");
    std::printf("=> phi is %s (brute force agrees: %s)\n\n",
                member ? "SATISFIABLE" : "UNSATISFIABLE",
                sc::SolveThreeSatBruteForce(sat_instance) ? "satisfiable"
                                                          : "unsatisfiable");
  }

  std::printf("=== Lemma 24: Hamiltonian cycles via why-provenance ===\n");
  whyprov::util::Rng rng(2024);
  for (int trial = 0; trial < 3; ++trial) {
    const sc::DigraphInstance graph = sc::RandomDigraph(5, 0.35, rng);
    const sc::ReductionOutput reduction = sc::ReduceHamiltonianCycle(graph);
    const bool member = DatabaseIsWhyNrMember(reduction);
    const bool truth = sc::HasHamiltonianCycleBruteForce(graph);
    std::printf(
        "random digraph #%d (%d nodes, %zu edges): provenance says %-3s "
        "brute force says %-3s %s\n",
        trial + 1, graph.num_nodes, graph.edges.size(),
        member ? "yes" : "no", truth ? "yes" : "no",
        member == truth ? "[agree]" : "[DISAGREE!]");
  }
  std::printf(
      "\nThe membership question 'is the whole database an explanation?' is\n"
      "NP-hard precisely because it can express searches like these.\n");
  return 0;
}
