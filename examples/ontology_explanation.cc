// Ontology example: explain subsumptions inferred by an EL-style
// completion calculus (the paper's Galen scenario, in miniature).
//
// A toy medical ontology is completed with the 14-rule calculus from
// src/scenarios; the why-provenance of an inferred subsumption is the set
// of *axioms* responsible for it — exactly the "justifications" ontology
// engineers debug with.

#include <cstdio>

#include "whyprov.h"

int main() {
  // A miniature EL calculus (three of the rules suffice for this demo).
  const char* program = R"(
    s(C, C) :- init(C).
    s(C, E) :- s(C, D), subclassof(D, E).
    link(C, R, D) :- s(C, E), subclassexists(E, R, D).
    s(C, E) :- link(C, R, D), s(D, D2), existssubclass(R, D2, E).
  )";
  // Axioms:
  //   endocarditis  subclassof  heartdisease       (told)
  //   heartdisease  subclassof  disease            (told)
  //   endocarditis  <=  exists hassite . heartvalve
  //   heartvalve    subclassof  criticalorgan
  //   exists hassite . criticalorgan  <=  criticalcondition
  const char* database = R"(
    init(endocarditis). init(heartdisease). init(heartvalve).
    subclassof(endocarditis, heartdisease).
    subclassof(heartdisease, disease).
    subclassexists(endocarditis, hassite, heartvalve).
    subclassof(heartvalve, criticalorgan).
    existssubclass(hassite, criticalorgan, criticalcondition).
  )";

  auto engine = whyprov::Engine::FromText(program, database, "s");
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }

  std::printf("Inferred subsumptions:\n");
  for (auto id : engine.value().AnswerFactIds()) {
    std::printf("  %s\n", engine.value().FactToText(id).c_str());
  }

  // The interesting inference: endocarditis is a critical condition, via
  // the existential axiom chain — ask for its justifications.
  whyprov::EnumerateRequest request;
  request.target_text = "s(endocarditis, criticalcondition)";
  auto enumeration = engine.value().Enumerate(request);
  if (!enumeration.ok()) {
    std::fprintf(stderr, "expected inference missing: %s\n",
                 enumeration.status().message().c_str());
    return 1;
  }
  std::printf("\nJustifications of s(endocarditis, criticalcondition):\n");
  int index = 0;
  for (const auto& member : enumeration.value()) {
    std::printf("  justification %d: {", ++index);
    for (std::size_t i = 0; i < member.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  engine.value().FactToText(member[i]).c_str());
    }
    std::printf("}\n");
  }
  std::printf(
      "\nEach justification lists the told axioms (and init markers) that\n"
      "suffice to rederive the subsumption — remove all of them from every\n"
      "justification and the inference disappears.\n");
  return 0;
}
