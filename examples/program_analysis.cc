// Program-analysis example: explain the results of an Andersen-style
// points-to analysis (the paper's Andersen scenario).
//
// A small C-like program is encoded as addressof/assign/load/store facts;
// the analysis derives pointsto(P, O) facts; the why-provenance machinery
// then explains *which statements* make a pointer point to an object —
// each explanation is a minimal "slice" of the program sufficient to
// reproduce the points-to fact.

#include <cstdio>

#include "whyprov.h"

int main() {
  // The classical 4-rule inclusion-based points-to analysis.
  const char* program = R"(
    pointsto(Y, X) :- addressof(Y, X).
    pointsto(Y, X) :- assign(Y, Z), pointsto(Z, X).
    pointsto(Y, W) :- load(Y, X), pointsto(X, Z), pointsto(Z, W).
    pointsto(Z, W) :- store(Y, X), pointsto(Y, Z), pointsto(X, W).
  )";
  // The program under analysis:
  //   p = &obj1;  q = &obj2;  r = p;  s = r;      (copy chain)
  //   t = &p;     *t = q;                         (strong update via t)
  //   u = *t;                                     (load through t)
  const char* database = R"(
    addressof(p, obj1).
    addressof(q, obj2).
    assign(r, p).
    assign(s, r).
    addressof(t, p).
    store(t, q).
    load(u, t).
  )";

  auto engine =
      whyprov::Engine::FromText(program, database, "pointsto");
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }

  std::printf("Points-to facts derived from the program:\n");
  for (auto id : engine.value().AnswerFactIds()) {
    std::printf("  %s\n", engine.value().FactToText(id).c_str());
  }

  // Why does s point to obj1? Expect the copy chain p -> r -> s.
  for (const char* question : {"pointsto(s, obj1)", "pointsto(u, obj2)"}) {
    whyprov::EnumerateRequest request;
    request.target_text = question;
    auto enumeration = engine.value().Enumerate(request);
    if (!enumeration.ok()) {
      std::printf("\n%s is not derivable.\n", question);
      continue;
    }
    std::printf("\nWhy %s ?\n", question);
    int index = 0;
    for (const auto& member : enumeration.value()) {
      std::printf("  explanation %d — the statements {", ++index);
      for (std::size_t i = 0; i < member.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "",
                    engine.value().FactToText(member[i]).c_str());
      }
      std::printf("} suffice\n");
      auto tree = enumeration.value().ExplainLast();
      if (tree.ok()) {
        std::printf("  derivation:\n%s",
                    tree.value()
                        .ToString(engine.value().model().symbols())
                        .c_str());
      }
    }
  }
  return 0;
}
