// Quickstart: the paper's running example end to end.
//
// Builds the path-accessibility query (Example 1 of "The Complexity of
// Why-Provenance for Datalog Queries"), evaluates it, and enumerates the
// why-provenance of the answer (d) relative to unambiguous proof trees,
// reconstructing an actual proof tree for each member.

#include <cstdio>

#include "provenance/proof_dag.h"
#include "provenance/why_provenance.h"

namespace pv = whyprov::provenance;

int main() {
  // The program of Example 1: S holds source nodes, T(y, z, x) says that
  // if y and z are accessible then so is x, A collects accessible nodes.
  const char* program = R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )";
  const char* database = R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )";

  auto pipeline = pv::WhyProvenancePipeline::FromText(program, database, "a");
  if (!pipeline.ok()) {
    std::fprintf(stderr, "error: %s\n", pipeline.status().message().c_str());
    return 1;
  }

  std::printf("Datalog program:\n%s\n",
              pipeline.value().program().ToString().c_str());
  std::printf("Database D:\n%s\n",
              pipeline.value().database().ToString().c_str());
  std::printf("Answers to Q = (Sigma, a): ");
  for (auto id : pipeline.value().AnswerFactIds()) {
    std::printf("%s ", pipeline.value().FactToText(id).c_str());
  }
  std::printf("\n\n");

  // Explain the tuple (d): why is d accessible?
  auto target = pipeline.value().FactIdOf("a(d)");
  if (!target.ok()) {
    std::fprintf(stderr, "error: %s\n", target.status().message().c_str());
    return 1;
  }
  auto enumerator = pipeline.value().MakeEnumerator(target.value());
  std::printf("whyUN((d), D, Q) — every member with a witnessing proof tree:\n");
  int index = 0;
  for (auto member = enumerator->Next(); member.has_value();
       member = enumerator->Next()) {
    std::printf("\nmember %d: {", ++index);
    for (std::size_t i = 0; i < member->size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  whyprov::datalog::FactToString(
                      (*member)[i], pipeline.value().model().symbols())
                      .c_str());
    }
    std::printf("}\n");
    // Reconstruct an unambiguous proof tree from the SAT witness.
    const pv::CompressedDag dag(&enumerator->closure(),
                                enumerator->last_witness_choices());
    auto tree = dag.UnravelToProofTree(pipeline.value().program(),
                                       pipeline.value().model());
    if (tree.ok()) {
      std::printf("proof tree:\n%s",
                  tree.value()
                      .ToString(pipeline.value().model().symbols())
                      .c_str());
    }
  }
  std::printf(
      "\nNote: for *arbitrary* proof trees the whole database is also a "
      "member\n(Example 2 of the paper), but its witness derives a(a) from "
      "itself, so it\nis not an unambiguous explanation.\n");
  return 0;
}
