// Quickstart: the paper's running example end to end, via the public
// `whyprov::Engine` facade (include "whyprov.h" and nothing else).
//
// Builds the path-accessibility query (Example 1 of "The Complexity of
// Why-Provenance for Datalog Queries"), evaluates it with
// Engine::FromText, compiles the answer (d) into a reusable plan with
// Engine::Prepare, enumerates its why-provenance relative to unambiguous
// proof trees with PreparedQuery::Enumerate, and reconstructs a
// witnessing proof tree for each member with Enumeration::ExplainLast.
// The prepared plan is immutable and thread-shareable: every Enumerate
// call on it is an independent execution with its own SAT solver.

#include <cstdio>

#include "whyprov.h"

int main() {
  // The program of Example 1: S holds source nodes, T(y, z, x) says that
  // if y and z are accessible then so is x, A collects accessible nodes.
  const char* program = R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )";
  const char* database = R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )";

  auto engine = whyprov::Engine::FromText(program, database, "a");
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }

  std::printf("Datalog program:\n%s\n",
              engine.value().program().ToString().c_str());
  std::printf("Database D:\n%s\n",
              engine.value().database().ToString().c_str());
  std::printf("Answers to Q = (Sigma, a): ");
  for (auto id : engine.value().AnswerFactIds()) {
    std::printf("%s ", engine.value().FactToText(id).c_str());
  }
  std::printf("\n\n");

  // Explain the tuple (d): why is d accessible? Prepare compiles the
  // downward closure and the CNF encoding once; executions reuse it.
  auto prepared = engine.value().Prepare("a(d)");
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.status().message().c_str());
    return 1;
  }
  std::printf(
      "prepared %s: %zu closure nodes, %zu hyperedges, %d variables, "
      "%zu clauses (closure %.3fms + encode %.3fms)\n\n",
      prepared.value().target_text().c_str(),
      prepared.value().closure().nodes().size(),
      prepared.value().closure().edges().size(),
      prepared.value().formula().num_vars,
      prepared.value().formula().num_clauses(),
      prepared.value().timings().closure_seconds * 1e3,
      prepared.value().timings().encode_seconds * 1e3);
  auto enumeration = prepared.value().Enumerate();
  if (!enumeration.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 enumeration.status().message().c_str());
    return 1;
  }
  std::printf(
      "whyUN((d), D, Q) — every member with a witnessing proof tree:\n");
  int index = 0;
  for (const auto& member : enumeration.value()) {
    std::printf("\nmember %d: {", ++index);
    for (std::size_t i = 0; i < member.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  engine.value().FactToText(member[i]).c_str());
    }
    std::printf("}\n");
    // Reconstruct an unambiguous proof tree from the SAT witness.
    auto tree = enumeration.value().ExplainLast();
    if (tree.ok()) {
      std::printf("proof tree:\n%s",
                  tree.value()
                      .ToString(engine.value().model().symbols())
                      .c_str());
    }
  }
  std::printf(
      "\nNote: for *arbitrary* proof trees the whole database is also a "
      "member\n(Example 2 of the paper), but its witness derives a(a) from "
      "itself, so it\nis not an unambiguous explanation.\n");
  return 0;
}
