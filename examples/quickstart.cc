// Quickstart: the paper's running example end to end, via the public
// serving API (include "whyprov.h" and nothing else).
//
// Builds the path-accessibility query (Example 1 of "The Complexity of
// Why-Provenance for Datalog Queries"), evaluates it with
// Engine::FromText, and serves it through the asynchronous
// `whyprov::Service` front door: the why-provenance of the answer (d)
// streams member-by-member through a bounded `MemberStream` (backpressure
// instead of a materialised vector), and a witnessing unambiguous proof
// tree per member arrives via submitted Explain requests. Every
// submission returns a `Ticket` immediately and could carry a deadline
// (`Request::deadline_seconds`) or be abandoned with `Ticket::Cancel()`.

#include <cstdio>
#include <utility>

#include "whyprov.h"

int main() {
  // The program of Example 1: S holds source nodes, T(y, z, x) says that
  // if y and z are accessible then so is x, A collects accessible nodes.
  const char* program = R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )";
  const char* database = R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )";

  auto engine = whyprov::Engine::FromText(program, database, "a");
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().message().c_str());
    return 1;
  }
  // The service owns the engine: requests are submitted, executed on a
  // worker pool, and observed through tickets/streams.
  whyprov::Service service(std::move(engine).value());

  std::printf("Datalog program:\n%s\n",
              service.engine().program().ToString().c_str());
  std::printf("Database D:\n%s\n",
              service.engine().database().ToString().c_str());
  std::printf("Answers to Q = (Sigma, a): ");
  for (auto id : service.engine().AnswerFactIds()) {
    std::printf("%s ", service.engine().FactToText(id).c_str());
  }
  std::printf("\n\n");

  // Explain the tuple (d): why is d accessible? The enumeration streams
  // through a bounded buffer — the worker blocks once it is 4 members
  // ahead of this consumer, so memory stays bounded however large the
  // family is. (Walking away early is one `stream->Close()` — or one
  // `ticket.Cancel()` — away, and a deadline is one field on Request.)
  whyprov::EnumerateRequest enumerate;
  enumerate.target_text = "a(d)";
  auto streamed = service.Stream(std::move(enumerate),
                                 /*stream_capacity=*/4);
  if (!streamed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 streamed.status().message().c_str());
    return 1;
  }
  auto [ticket, stream] = std::move(streamed).value();

  std::printf(
      "whyUN((d), D, Q) — every member with a witnessing proof tree:\n");
  std::size_t index = 0;
  while (auto member = stream->Pop()) {
    std::printf("\nmember %zu: {", index + 1);
    for (std::size_t i = 0; i < member->size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  service.engine().FactToText((*member)[i]).c_str());
    }
    std::printf("}\n");
    // An unambiguous proof tree witnessing this member, as its own
    // submitted request (Explain re-enumerates to the member's index
    // against the cached plan).
    whyprov::ExplainRequest explain;
    explain.target_text = "a(d)";
    explain.member_index = index;
    whyprov::Request request;
    request.op = explain;
    auto explain_ticket = service.Submit(std::move(request));
    if (explain_ticket.ok()) {
      const whyprov::Response& response = explain_ticket.value().Wait();
      if (response.status.ok() && response.explanation.has_value()) {
        std::printf("proof tree:\n%s",
                    response.explanation->tree
                        .ToString(service.engine().model().symbols())
                        .c_str());
      }
    }
    ++index;
  }

  const whyprov::Response& summary = ticket.Wait();
  std::printf("\n%zu members, served from model version %llu (%s)\n",
              summary.members_emitted,
              static_cast<unsigned long long>(summary.model_version),
              summary.exhausted ? "exhausted" : "stopped early");
  std::printf(
      "\nNote: for *arbitrary* proof trees the whole database is also a "
      "member\n(Example 2 of the paper), but its witness derives a(a) from "
      "itself, so it\nis not an unambiguous explanation.\n");
  return 0;
}
