// Sharded serving walkthrough: one logical model partitioned across N
// engines behind the unchanged Service API — routing, scatter/gather
// streaming, delta fan-out, and the per-shard stats rows.
//
// Build & run:  ./build/sharded_serving [num_shards]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "whyprov.h"

namespace {

constexpr const char* kProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(c, n1). edge(n1, d).
  edge(c, n2). edge(n2, d).
)";

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_shards =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;

  whyprov::ShardedServiceOptions options;
  options.num_shards = num_shards == 0 ? 2 : num_shards;
  auto service =
      whyprov::ShardedService::FromText(kProgram, kDatabase, "path", options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().message().c_str());
    return 1;
  }
  std::printf("serving 'path' across %zu shards (%s partitioning)\n\n",
              service.value()->num_shards(),
              std::string(whyprov::ShardPolicyName(
                              service.value()->shard_map().policy()))
                  .c_str());

  // Cross-shard scatter/gather: both targets stream concurrently on
  // their owning shards; the merge yields every member of the first
  // request before any member of the second (stable ordering).
  std::vector<whyprov::EnumerateRequest> requests(2);
  requests[0].target_text = "path(a, b)";
  requests[1].target_text = "path(c, d)";
  auto merged = service.value()->StreamMany(requests, /*stream_capacity=*/2);
  if (!merged.ok()) {
    std::fprintf(stderr, "error: %s\n", merged.status().message().c_str());
    return 1;
  }
  const whyprov::datalog::SymbolTable& symbols =
      service.value()->engine().model().symbols();
  while (auto member = merged.value()->Pop()) {
    std::string line = "  {";
    for (std::size_t i = 0; i < member->size(); ++i) {
      if (i > 0) line += ", ";
      line += whyprov::datalog::FactToString((*member)[i], symbols);
    }
    std::printf("%s}\n", line.c_str());
  }
  merged.value()->Wait();

  // A write fans out through the ordered delta lane; in-flight reads
  // keep their snapshots, later reads see the new version.
  whyprov::DeltaRequest delta;
  delta.removed_fact_texts = {"edge(a, m2)"};
  whyprov::Request request;
  request.op = std::move(delta);
  auto ticket = service.value()->Submit(std::move(request));
  if (ticket.ok()) {
    const whyprov::Response& response = ticket.value().Wait();
    std::printf("\ndelta -> version %llu (%s)\n",
                static_cast<unsigned long long>(response.model_version),
                std::string(whyprov::util::StatusCodeName(
                                response.status.code()))
                    .c_str());
  }

  const whyprov::ServiceStats stats = service.value()->stats();
  std::printf("\n%llu completed, %.0f q/s, version skew %llu\n",
              static_cast<unsigned long long>(stats.completed),
              stats.queries_per_second,
              static_cast<unsigned long long>(stats.version_skew));
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const whyprov::ShardStats& shard = stats.shards[s];
    std::printf(
        "  shard %zu: v%llu, %llu served, %llu deltas applied / %llu "
        "skipped, %zu snapshot(s) ~%zu bytes\n",
        s, static_cast<unsigned long long>(shard.model_version),
        static_cast<unsigned long long>(shard.completed),
        static_cast<unsigned long long>(shard.deltas_applied),
        static_cast<unsigned long long>(shard.deltas_skipped),
        shard.retained_snapshots, shard.retained_snapshot_bytes);
  }
  return 0;
}
