// whyprov_server: the network serving tier as a standalone binary —
// whyprov_service_create (C ABI) wrapped in net::Server, speaking the
// length-prefixed wire protocol on loopback.
//
// Build & run:
//   ./build/whyprov_server                         # demo program, port 0
//   ./build/whyprov_server --port=7411
//   ./build/whyprov_server --program=p.dl --database=d.dl --answer=path
//   ./build/whyprov_server --data-dir=/var/lib/whyprov  # durable deltas
//   ./build/whyprov_server --selfcheck             # CI smoke test
//
// Prints the bound port (ephemeral with --port=0, the default), then
// serves until stdin reaches EOF (Ctrl-D, or a closed pipe — which is
// how scripts stop it). With --selfcheck it instead connects a wire
// client to itself, runs one streaming enumeration, one decision, and a
// stats probe, prints what came back, and exits 0 on success — the CI
// loopback smoke test.
//
// --data-dir=PATH turns on the durability tier (docs/STORAGE_FORMAT.md):
// committed deltas are appended to a write-ahead log under PATH and the
// model is checkpointed periodically; a restarted server pointed at the
// same PATH recovers the pre-crash state. Combined with --selfcheck the
// smoke test also applies a delta over the wire, tears the whole stack
// down, rebuilds it from PATH, and verifies the recovered server returns
// byte-identical answers.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/whyprov_c.h"

namespace {

constexpr const char* kDemoProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDemoDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(b, c).
)";
constexpr const char* kDemoAnswer = "path";
constexpr const char* kDemoTarget = "path(a, b)";

bool ReadFile(const char* path, std::string& out) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return false;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, got);
  }
  std::fclose(file);
  return true;
}

int SelfCheck(std::uint16_t port, const std::string& target) {
  auto client = whyprov::net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "selfcheck: connect failed: %s\n",
                 client.status().message().c_str());
    return 1;
  }

  // A streaming enumeration: members arrive as batch frames.
  std::size_t streamed = 0;
  auto outcome = client.value().Enumerate(
      target, /*max_members=*/4, /*deadline_seconds=*/30, /*stream=*/true,
      /*batch_size=*/0, [&](const std::vector<std::string>& member) {
        std::string line = "  {";
        for (std::size_t i = 0; i < member.size(); ++i) {
          if (i > 0) line += ", ";
          line += member[i];
        }
        std::printf("%s}\n", line.c_str());
        ++streamed;
        return true;
      });
  if (!outcome.ok() || !outcome.value().ok()) {
    std::fprintf(stderr, "selfcheck: enumerate failed\n");
    return 1;
  }
  std::printf("selfcheck: streamed %zu member(s) of %s\n", streamed,
              target.c_str());
  if (streamed == 0) {
    std::fprintf(stderr, "selfcheck: expected at least one member\n");
    return 1;
  }

  // Decide with the first streamed member as the candidate is only
  // possible when we kept it; re-enumerate materialised for simplicity.
  auto materialised = client.value().Enumerate(target, /*max_members=*/1);
  if (materialised.ok() && materialised.value().ok() &&
      !materialised.value().final.members.empty()) {
    auto decided = client.value().Decide(
        target, materialised.value().final.members.front());
    if (!decided.ok() || !decided.value().ok() ||
        decided.value().final.verdict != 1) {
      std::fprintf(stderr, "selfcheck: decide did not confirm membership\n");
      return 1;
    }
    std::printf("selfcheck: decide confirmed membership\n");
  }

  auto stats = client.value().Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "selfcheck: stats failed: %s\n",
                 stats.status().message().c_str());
    return 1;
  }
  std::printf("selfcheck: server completed %llu request(s), version %llu\n",
              static_cast<unsigned long long>(stats.value().completed),
              static_cast<unsigned long long>(stats.value().model_version));
  std::printf("selfcheck: ok\n");
  return 0;
}

/// Renders the materialised answer to every target into one string, so
/// pre-restart and post-recovery states can be compared byte for byte.
bool CaptureTranscript(whyprov::net::Client& client,
                       const std::vector<std::string>& targets,
                       std::string& out) {
  out.clear();
  for (const std::string& target : targets) {
    auto outcome = client.Enumerate(target, /*max_members=*/64);
    if (!outcome.ok()) return false;
    out += target;
    out += " -> status ";
    out += std::to_string(outcome.value().final.status_code);
    out += "\n";
    for (const auto& member : outcome.value().final.members) {
      out += "  {";
      for (std::size_t i = 0; i < member.size(); ++i) {
        if (i > 0) out += ", ";
        out += member[i];
      }
      out += "}\n";
    }
  }
  return true;
}

// The durability leg of --selfcheck: mutate the model over the wire,
// snapshot the answers, tear the serving stack down, rebuild it from
// the same --data-dir, and require the recovered server to (a) report
// that it replayed the logged delta and (b) produce byte-identical
// answers. On success the caller's server/service are replaced by the
// recovered stack (so shutdown in main stays uniform).
int DurableSelfCheck(std::unique_ptr<whyprov::net::Server>& server,
                     whyprov_service*& service, whyprov_options options,
                     const std::string& program_text,
                     const std::string& database_text,
                     const std::string& answer_predicate) {
  const std::vector<std::string> targets = {kDemoTarget, "path(c, d)"};

  auto writer = whyprov::net::Client::Connect("127.0.0.1", server->port());
  if (!writer.ok()) {
    std::fprintf(stderr, "selfcheck: durable connect failed: %s\n",
                 writer.status().message().c_str());
    return 1;
  }
  auto delta = writer.value().ApplyDelta({"edge(c, d)"}, {});
  if (!delta.ok() || !delta.value().ok()) {
    std::fprintf(stderr, "selfcheck: durable delta failed\n");
    return 1;
  }
  std::string before;
  if (!CaptureTranscript(writer.value(), targets, before)) {
    std::fprintf(stderr, "selfcheck: transcript capture failed\n");
    return 1;
  }

  // Tear the whole stack down — server, service, engine — and rebuild
  // it from the data directory alone.
  server->Stop();
  server.reset();
  whyprov_service_destroy(service);
  service = nullptr;

  char error_message[256];
  const whyprov_status recovered = whyprov_service_create(
      program_text.c_str(), database_text.c_str(), answer_predicate.c_str(),
      &options, &service, error_message, sizeof(error_message));
  if (recovered != WHYPROV_OK) {
    std::fprintf(stderr, "selfcheck: recovery create failed: %s (%s)\n",
                 error_message, whyprov_status_name(recovered));
    return 1;
  }
  server = std::make_unique<whyprov::net::Server>(service);
  if (auto status = server->Start(/*port=*/0); !status.ok()) {
    std::fprintf(stderr, "selfcheck: recovery start failed: %s\n",
                 status.message().c_str());
    return 1;
  }

  auto reader = whyprov::net::Client::Connect("127.0.0.1", server->port());
  if (!reader.ok()) {
    std::fprintf(stderr, "selfcheck: recovery connect failed: %s\n",
                 reader.status().message().c_str());
    return 1;
  }
  auto stats = reader.value().Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "selfcheck: recovery stats failed: %s\n",
                 stats.status().message().c_str());
    return 1;
  }
  if (stats.value().recovery_replayed_deltas == 0 &&
      stats.value().model_version == 0) {
    std::fprintf(stderr,
                 "selfcheck: recovered server saw neither a checkpoint nor "
                 "a WAL tail\n");
    return 1;
  }
  std::string after;
  if (!CaptureTranscript(reader.value(), targets, after)) {
    std::fprintf(stderr, "selfcheck: recovered transcript capture failed\n");
    return 1;
  }
  if (before != after) {
    std::fprintf(stderr,
                 "selfcheck: recovered answers differ\n--- before ---\n%s"
                 "--- after ---\n%s",
                 before.c_str(), after.c_str());
    return 1;
  }
  std::printf(
      "selfcheck: recovered stack replayed %llu delta(s), answers "
      "byte-identical\n",
      static_cast<unsigned long long>(stats.value().recovery_replayed_deltas));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  const char* program_path = nullptr;
  const char* database_path = nullptr;
  const char* answer = nullptr;
  const char* data_dir = nullptr;
  std::size_t shards = 0;
  int plan_simplify = WHYPROV_SIMPLIFY_DEFAULT;
  bool selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atol(arg + 7);
    } else if (std::strncmp(arg, "--program=", 10) == 0) {
      program_path = arg + 10;
    } else if (std::strncmp(arg, "--database=", 11) == 0) {
      database_path = arg + 11;
    } else if (std::strncmp(arg, "--answer=", 9) == 0) {
      answer = arg + 9;
    } else if (std::strncmp(arg, "--data-dir=", 11) == 0) {
      data_dir = arg + 11;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = static_cast<std::size_t>(std::atol(arg + 9));
    } else if (std::strncmp(arg, "--plan-simplify=", 16) == 0) {
      const char* mode = arg + 16;
      if (std::strcmp(mode, "off") == 0) {
        plan_simplify = WHYPROV_SIMPLIFY_OFF;
      } else if (std::strcmp(mode, "fast") == 0) {
        plan_simplify = WHYPROV_SIMPLIFY_FAST;
      } else if (std::strcmp(mode, "full") == 0) {
        plan_simplify = WHYPROV_SIMPLIFY_FULL;
      } else {
        std::fprintf(stderr,
                     "error: --plan-simplify must be off, fast, or full\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--selfcheck") == 0) {
      selfcheck = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--program=FILE --database=FILE "
                   "--answer=PREDICATE] [--data-dir=DIR] [--shards=N] "
                   "[--plan-simplify=off|fast|full] [--selfcheck]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "error: --port must be 0..65535\n");
    return 2;
  }
  if ((program_path != nullptr) != (database_path != nullptr) ||
      (program_path != nullptr && answer == nullptr)) {
    std::fprintf(stderr,
                 "error: --program, --database, and --answer go together\n");
    return 2;
  }

  std::string program_text = kDemoProgram;
  std::string database_text = kDemoDatabase;
  std::string answer_predicate = kDemoAnswer;
  if (program_path != nullptr) {
    program_text.clear();
    database_text.clear();
    if (!ReadFile(program_path, program_text)) {
      std::fprintf(stderr, "error: cannot read %s\n", program_path);
      return 1;
    }
    if (!ReadFile(database_path, database_text)) {
      std::fprintf(stderr, "error: cannot read %s\n", database_path);
      return 1;
    }
    answer_predicate = answer;
  }

  whyprov_options options;
  whyprov_options_init(&options);
  options.num_shards = shards;
  options.plan_simplify = plan_simplify;
  if (data_dir != nullptr) options.data_dir = data_dir;
  whyprov_service* service = nullptr;
  char error_message[256];
  const whyprov_status created = whyprov_service_create(
      program_text.c_str(), database_text.c_str(), answer_predicate.c_str(),
      &options, &service, error_message, sizeof(error_message));
  if (created != WHYPROV_OK) {
    std::fprintf(stderr, "error: %s (%s)\n", error_message,
                 whyprov_status_name(created));
    return 1;
  }

  auto server = std::make_unique<whyprov::net::Server>(service);
  if (auto status = server->Start(static_cast<std::uint16_t>(port));
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    whyprov_service_destroy(service);
    return 1;
  }
  std::printf("whyprov_server: serving '%s' on 127.0.0.1:%u\n",
              answer_predicate.c_str(), server->port());
  std::fflush(stdout);

  int exit_code = 0;
  if (selfcheck) {
    // The demo target only exists for the built-in program; a custom
    // program self-checks against its first sampled answer... which the
    // ABI doesn't expose, so --selfcheck requires the demo program.
    if (program_path != nullptr) {
      std::fprintf(stderr,
                   "error: --selfcheck works with the built-in demo only\n");
      exit_code = 2;
    } else {
      exit_code = SelfCheck(server->port(), kDemoTarget);
      if (exit_code == 0 && data_dir != nullptr) {
        exit_code = DurableSelfCheck(server, service, options, program_text,
                                     database_text, answer_predicate);
      }
    }
  } else {
    std::printf("whyprov_server: reading stdin; EOF (Ctrl-D) stops\n");
    std::fflush(stdout);
    int c;
    while ((c = std::getchar()) != EOF) {
    }
  }

  if (server != nullptr) server->Stop();
  whyprov_service_destroy(service);
  return exit_code;
}
