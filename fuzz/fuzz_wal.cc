// libFuzzer harness for the WAL record decoder and the torn-tail replay
// scan (storage/wal.h) — the code that reads whatever bytes a crashed
// process left on disk, so it must be total on hostile input.
//
// Input layout: the first byte selects the entry point; the remainder is
// the bytes under test.
//
//   0x01  DecodeWalRecord on the raw record payload. Oracle: whenever a
//         decode succeeds, EncodeWalRecord(decoded) must reproduce the
//         payload byte for byte (the pair is documented as symmetric; a
//         mismatch means the decoder accepted a non-canonical payload).
//   else  ReplayWalBuffer over the bytes as a WAL record region (what
//         Open() scans after the file header). Oracles: the scan never
//         crashes, the reported valid prefix length never exceeds the
//         input, and re-framing the decoded records (length | CRC-32C |
//         payload) rebuilds that prefix exactly — replay must only ever
//         accept bytes the writer could have produced.
//
// Build modes match fuzz_wire.cc: the libFuzzer entry point for the CI
// fuzz smoke, and -DWHYPROV_FUZZ_STANDALONE for the corpus-replay ctest
// that runs under every toolchain.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "storage/wal.h"
#include "util/crc32c.h"
#include "util/wire_format.h"

namespace {

using whyprov::storage::DecodeWalRecord;
using whyprov::storage::EncodeWalRecord;
using whyprov::storage::ReplayWalBuffer;
using whyprov::storage::WalReplay;

void FuzzRecordDecoder(std::string_view payload) {
  const auto decoded = DecodeWalRecord(payload);
  if (!decoded.ok()) return;
  const std::string reencoded = EncodeWalRecord(decoded.value());
  if (reencoded == payload) return;
  std::fprintf(stderr,
               "round-trip mismatch: decoded %zu-byte WAL payload "
               "re-encoded to %zu bytes\n",
               payload.size(), reencoded.size());
  std::abort();
}

void FuzzReplay(std::string_view region) {
  const WalReplay replay = ReplayWalBuffer(region);
  if (replay.valid_bytes > region.size()) {
    std::fprintf(stderr, "replay claims %zu valid bytes of a %zu-byte input\n",
                 replay.valid_bytes, region.size());
    std::abort();
  }
  // Rebuild the accepted prefix from the decoded records; replay must
  // only accept byte sequences the WAL writer could have emitted.
  std::string rebuilt;
  for (const auto& record : replay.records) {
    const std::string payload = EncodeWalRecord(record);
    whyprov::util::WireWriter frame;
    frame.PutU32(static_cast<std::uint32_t>(payload.size()));
    frame.PutU32(whyprov::util::Crc32c(payload));
    rebuilt += frame.Take();
    rebuilt += payload;
  }
  if (rebuilt != region.substr(0, replay.valid_bytes)) {
    std::fprintf(stderr,
                 "replay accepted a %zu-byte prefix that re-frames to "
                 "%zu different bytes\n",
                 replay.valid_bytes, rebuilt.size());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string_view rest(reinterpret_cast<const char*>(data + 1),
                              size - 1);
  if (data[0] == 0x01) {
    FuzzRecordDecoder(rest);
  } else {
    FuzzReplay(rest);
  }
  return 0;
}

#ifdef WHYPROV_FUZZ_STANDALONE
// Corpus-replay driver for toolchains without libFuzzer, mirroring
// fuzz_wire.cc: each argument is one corpus file, executed once.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* file = std::fopen(argv[i], "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 1;
    }
    std::string contents;
    char chunk[4096];
    std::size_t read_bytes = 0;
    while ((read_bytes = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      contents.append(chunk, read_bytes);
    }
    std::fclose(file);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(contents.data()),
        contents.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d corpus file(s) without a crash\n",
               replayed);
  return 0;
}
#endif  // WHYPROV_FUZZ_STANDALONE
