// libFuzzer harness for the wire-protocol frame decoders (net/wire.h).
//
// Input layout: the first byte selects the decoder (by frame-type value,
// so corpus files read as "type byte + body" just like a frame on the
// socket minus the length prefix); the remainder is the frame body
// handed to the selected Decode*.
//
// Oracle, beyond "no crash under ASan/UBSan": the protocol evolves by
// appending fields only (docs/WIRE_PROTOCOL.md), so whenever a decode
// succeeds, re-encoding the decoded struct must (a) reproduce the input
// body as an exact byte prefix — older frames gain only the appended
// fields at their decoded defaults, current frames round-trip byte for
// byte — and (b) be a fixed point: the canonical re-encoding decodes
// and re-encodes to itself exactly. A violation means the decoder
// accepted a non-canonical frame (skipped bytes, defaulted a mandatory
// field) and is reported as a crash.
//
// Build modes:
//   * libFuzzer (clang -fsanitize=fuzzer,address,undefined): the usual
//     LLVMFuzzerTestOneInput entry point, used by the CI fuzz smoke.
//   * -DWHYPROV_FUZZ_STANDALONE (any compiler): a main() that replays
//     files named on the command line once each — the corpus regression
//     runner, built and run under every toolchain via ctest.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"

namespace {

using whyprov::net::DecideFrame;
using whyprov::net::DecodeDecide;
using whyprov::net::DecodeDelta;
using whyprov::net::DecodeEnumerate;
using whyprov::net::DecodeError;
using whyprov::net::DecodeExplain;
using whyprov::net::DecodeFinal;
using whyprov::net::DecodeMembers;
using whyprov::net::DecodeStats;
using whyprov::net::DecodeStatsReply;
using whyprov::net::Encode;

/// Runs one decoder with the round-trip oracle on success: the input
/// body must be an exact byte prefix of the canonical re-encoding
/// (append-only protocol evolution — a pre-extension frame gains only
/// the appended fields at their decoded defaults), and the canonical
/// re-encoding must be a fixed point of decode∘encode. Decoders that
/// reject the body must do so via an error Result, never a crash.
template <typename Decoder>
void CheckRoundTrip(Decoder decode, std::string_view body,
                    const char* kind) {
  const auto decoded = decode(body);
  if (!decoded.ok()) return;
  const std::string canonical = Encode(decoded.value());
  if (canonical.size() < body.size() ||
      std::string_view(canonical).substr(0, body.size()) != body) {
    std::fprintf(stderr,
                 "round-trip mismatch for %s: decoded %zu-byte body is "
                 "not a prefix of its %zu-byte re-encoding\n",
                 kind, body.size(), canonical.size());
    std::abort();
  }
  const auto redecoded = decode(canonical);
  if (!redecoded.ok() || Encode(redecoded.value()) != canonical) {
    std::fprintf(stderr,
                 "canonical form of %s is not a decode/encode fixed "
                 "point (%zu bytes)\n",
                 kind, canonical.size());
    std::abort();
  }
}

/// Dispatches one fuzz input to the decoder its type byte selects.
void FuzzOne(std::uint8_t type, std::string_view body) {
  switch (type) {
    case whyprov::net::kFrameEnumerate:
      CheckRoundTrip([](std::string_view b) { return DecodeEnumerate(b); },
                     body, "EnumerateFrame");
      break;
    case whyprov::net::kFrameDecide:
      CheckRoundTrip([](std::string_view b) { return DecodeDecide(b); },
                     body, "DecideFrame");
      break;
    case whyprov::net::kFrameExplain:
      CheckRoundTrip([](std::string_view b) { return DecodeExplain(b); },
                     body, "ExplainFrame");
      break;
    case whyprov::net::kFrameDelta:
      CheckRoundTrip([](std::string_view b) { return DecodeDelta(b); },
                     body, "DeltaFrame");
      break;
    case whyprov::net::kFrameStats:
      CheckRoundTrip([](std::string_view b) { return DecodeStats(b); },
                     body, "StatsFrame");
      break;
    case whyprov::net::kFrameMembers:
      CheckRoundTrip([](std::string_view b) { return DecodeMembers(b); },
                     body, "MembersFrame");
      break;
    case whyprov::net::kFrameFinal:
      CheckRoundTrip([](std::string_view b) { return DecodeFinal(b); },
                     body, "FinalFrame");
      break;
    case whyprov::net::kFrameError:
      CheckRoundTrip([](std::string_view b) { return DecodeError(b); },
                     body, "ErrorFrame");
      break;
    case whyprov::net::kFrameStatsReply:
      CheckRoundTrip([](std::string_view b) { return DecodeStatsReply(b); },
                     body, "StatsReplyFrame");
      break;
    default:
      // Unknown type bytes are rejected before body decoding by the
      // server; nothing to fuzz here, but keeping them accepted lets
      // the fuzzer mutate the selector freely.
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  FuzzOne(data[0],
          std::string_view(reinterpret_cast<const char*>(data + 1),
                           size - 1));
  return 0;
}

#ifdef WHYPROV_FUZZ_STANDALONE
// Minimal file-replay driver so the corpus runs as a plain ctest under
// toolchains without libFuzzer (the default GCC build). Each argument
// is one corpus file, executed once.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* file = std::fopen(argv[i], "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 1;
    }
    std::string contents;
    char chunk[4096];
    std::size_t read_bytes = 0;
    while ((read_bytes = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      contents.append(chunk, read_bytes);
    }
    std::fclose(file);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(contents.data()),
        contents.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d corpus file(s) without a crash\n",
               replayed);
  return 0;
}
#endif  // WHYPROV_FUZZ_STANDALONE
