// libFuzzer harness for the wire-protocol frame decoders (net/wire.h).
//
// Input layout: the first byte selects the decoder (by frame-type value,
// so corpus files read as "type byte + body" just like a frame on the
// socket minus the length prefix); the remainder is the frame body
// handed to the selected Decode*.
//
// Oracle, beyond "no crash under ASan/UBSan": the Encode/Decode pairs
// are documented as exactly symmetric, so whenever a decode succeeds,
// re-encoding the decoded struct must reproduce the input body byte for
// byte. A mismatch means the decoder accepted a non-canonical frame
// (e.g. skipped bytes or defaulted a field) and is reported as a crash.
//
// Build modes:
//   * libFuzzer (clang -fsanitize=fuzzer,address,undefined): the usual
//     LLVMFuzzerTestOneInput entry point, used by the CI fuzz smoke.
//   * -DWHYPROV_FUZZ_STANDALONE (any compiler): a main() that replays
//     files named on the command line once each — the corpus regression
//     runner, built and run under every toolchain via ctest.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"

namespace {

using whyprov::net::DecideFrame;
using whyprov::net::DecodeDecide;
using whyprov::net::DecodeDelta;
using whyprov::net::DecodeEnumerate;
using whyprov::net::DecodeError;
using whyprov::net::DecodeExplain;
using whyprov::net::DecodeFinal;
using whyprov::net::DecodeMembers;
using whyprov::net::DecodeStats;
using whyprov::net::DecodeStatsReply;
using whyprov::net::Encode;

/// Aborts (a fuzzer "crash") when a successfully decoded body does not
/// re-encode to the original bytes — the decoders must be exactly
/// inverse to the encoders on every body they accept.
void CheckRoundTrip(const std::string& reencoded, std::string_view body,
                    const char* kind) {
  if (reencoded == body) return;
  std::fprintf(stderr,
               "round-trip mismatch for %s: decoded %zu-byte body "
               "re-encoded to %zu bytes\n",
               kind, body.size(), reencoded.size());
  std::abort();
}

/// Runs one decoder, with the round-trip oracle on success. Decoders
/// that reject the body must do so via an error Result, never a crash.
void FuzzOne(std::uint8_t type, std::string_view body) {
  switch (type) {
    case whyprov::net::kFrameEnumerate: {
      const auto decoded = DecodeEnumerate(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "EnumerateFrame");
      }
      break;
    }
    case whyprov::net::kFrameDecide: {
      const auto decoded = DecodeDecide(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "DecideFrame");
      }
      break;
    }
    case whyprov::net::kFrameExplain: {
      const auto decoded = DecodeExplain(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "ExplainFrame");
      }
      break;
    }
    case whyprov::net::kFrameDelta: {
      const auto decoded = DecodeDelta(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "DeltaFrame");
      }
      break;
    }
    case whyprov::net::kFrameStats: {
      const auto decoded = DecodeStats(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "StatsFrame");
      }
      break;
    }
    case whyprov::net::kFrameMembers: {
      const auto decoded = DecodeMembers(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "MembersFrame");
      }
      break;
    }
    case whyprov::net::kFrameFinal: {
      const auto decoded = DecodeFinal(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "FinalFrame");
      }
      break;
    }
    case whyprov::net::kFrameError: {
      const auto decoded = DecodeError(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "ErrorFrame");
      }
      break;
    }
    case whyprov::net::kFrameStatsReply: {
      const auto decoded = DecodeStatsReply(body);
      if (decoded.ok()) {
        CheckRoundTrip(Encode(decoded.value()), body, "StatsReplyFrame");
      }
      break;
    }
    default:
      // Unknown type bytes are rejected before body decoding by the
      // server; nothing to fuzz here, but keeping them accepted lets
      // the fuzzer mutate the selector freely.
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  FuzzOne(data[0],
          std::string_view(reinterpret_cast<const char*>(data + 1),
                           size - 1));
  return 0;
}

#ifdef WHYPROV_FUZZ_STANDALONE
// Minimal file-replay driver so the corpus runs as a plain ctest under
// toolchains without libFuzzer (the default GCC build). Each argument
// is one corpus file, executed once.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* file = std::fopen(argv[i], "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 1;
    }
    std::string contents;
    char chunk[4096];
    std::size_t read_bytes = 0;
    while ((read_bytes = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      contents.append(chunk, read_bytes);
    }
    std::fclose(file);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(contents.data()),
        contents.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d corpus file(s) without a crash\n",
               replayed);
  return 0;
}
#endif  // WHYPROV_FUZZ_STANDALONE
