#!/usr/bin/env python3
"""Regenerates the committed seed corpus for fuzz_wire.

Each corpus file is one fuzzer input: a frame-type selector byte
followed by a frame body in the wire encoding (net/wire.h) — the same
bytes a frame carries on the socket minus the length prefix. The seeds
cover every frame kind's happy path plus the hostile shapes from
tests/test_net.cc (truncations, trailing garbage, dishonest list
counts, unknown final kinds), so the fuzzer starts from both sides of
every accept/reject boundary.

Usage: python3 fuzz/make_seed_corpus.py  (writes into fuzz/corpus/)
"""

import pathlib
import struct

CORPUS_DIR = pathlib.Path(__file__).resolve().parent / "corpus"

# Frame type bytes (net/wire.h FrameType).
ENUMERATE, DECIDE, EXPLAIN, DELTA, STATS = 0x01, 0x02, 0x03, 0x04, 0x05
MEMBERS, FINAL, ERROR, STATS_REPLY = 0x81, 0x82, 0x83, 0x84


def u8(v):
    return struct.pack("<B", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def f64(v):
    return struct.pack("<d", v)


def string(s):
    raw = s.encode()
    return u32(len(raw)) + raw


def string_list(items):
    return u32(len(items)) + b"".join(string(s) for s in items)


def members(member_list):
    return u32(len(member_list)) + b"".join(string_list(m) for m in member_list)


def enumerate_body(request_id=1, target="path(a, b)", max_members=0,
                   deadline=0.0, stream=1, batch_size=3):
    return (u64(request_id) + string(target) + u64(max_members) +
            f64(deadline) + u8(stream) + u32(batch_size))


def decide_body(request_id=2, target="path(a, b)", tree_class=0,
                candidates=("edge(a, m1)", "edge(m1, b)"), deadline=1.5):
    return (u64(request_id) + string(target) + u8(tree_class) +
            string_list(list(candidates)) + f64(deadline))


def explain_body(request_id=3, target="path(a, b)", member_index=4,
                 deadline=0.0):
    return u64(request_id) + string(target) + u64(member_index) + f64(deadline)


def delta_body(request_id=4, added=("edge(a, b)",), removed=("edge(b, c)",),
               deadline=0.0):
    return (u64(request_id) + string_list(list(added)) +
            string_list(list(removed)) + f64(deadline))


def final_prefix(request_id=7, status_code=0, message="", kind=ENUMERATE,
                 model_version=1):
    return (u64(request_id) + u8(status_code) + string(message) + u8(kind) +
            u64(model_version))


def stats_reply_body(alarm=0):
    body = u64(9)                      # request_id
    body += b"".join(u64(n) for n in range(10))  # counters through in_flight
    body += f64(123.5)                 # queries_per_second
    body += u64(7) + u64(2) + u64(64)  # model_version, snapshots, bytes
    body += u64(0)                     # snapshot_evictions
    body += u8(alarm)                  # snapshot_alarm
    body += u64(0) + u64(4)            # version_skew, num_shards
    return body


SEEDS = {
    # One valid body per frame kind.
    "enumerate_stream": u8(ENUMERATE) + enumerate_body(),
    "enumerate_materialised": u8(ENUMERATE) +
        enumerate_body(stream=0, max_members=10, deadline=2.5),
    "decide_candidates": u8(DECIDE) + decide_body(),
    "explain_member": u8(EXPLAIN) + explain_body(),
    "delta_add_remove": u8(DELTA) + delta_body(),
    "stats_request": u8(STATS) + u64(5),
    "members_batch": u8(MEMBERS) + u64(6) +
        members([["edge(a, m1)", "edge(m1, b)"], ["edge(a, b)"]]),
    "final_enumerate": u8(FINAL) + final_prefix() + u64(2) + u8(1) +
        members([["edge(a, b)"]]),
    "final_decide": u8(FINAL) + final_prefix(kind=DECIDE) + u8(1),
    "final_explain": u8(FINAL) + final_prefix(kind=EXPLAIN) + u8(1) +
        string_list(["edge(a, b)"]) + string("path(a, b) <- edge(a, b)"),
    "final_delta": u8(FINAL) + final_prefix(kind=DELTA) + u8(1) +
        b"".join(u64(n) for n in range(9)),
    "final_stats_kind": u8(FINAL) + final_prefix(kind=STATS),
    "error_unknown_type": u8(ERROR) + u64(0) + u8(2) +
        string("unknown frame type 127"),
    "stats_reply": u8(STATS_REPLY) + stats_reply_body(),

    # Hostile shapes from tests/test_net.cc's rejection cases.
    "truncated_enumerate": (u8(ENUMERATE) + enumerate_body())[:9],
    "trailing_garbage_stats": u8(STATS) + u64(5) + b"x",
    "hostile_delta_count": u8(DELTA) + u64(1) + u32(0xFFFFFFF0),
    "hostile_members_count": u8(MEMBERS) + u64(2) + u32(0xFFFFFFF0),
    "unknown_final_kind": u8(FINAL) + final_prefix(kind=0x66),
    "noncanonical_alarm": u8(STATS_REPLY) + stats_reply_body(alarm=2),
    "empty_input": b"",
    "unknown_selector": u8(0x7F) + u64(1),
}


def main():
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for name, data in SEEDS.items():
        (CORPUS_DIR / name).write_bytes(data)
    print(f"wrote {len(SEEDS)} seeds to {CORPUS_DIR}")


if __name__ == "__main__":
    main()
