#include "datalog/ast.h"

#include <unordered_set>

namespace whyprov::datalog {

util::Status Rule::CheckSafety() const {
  if (body.empty()) {
    return util::Status::Error("rule has an empty body");
  }
  std::unordered_set<std::uint32_t> body_vars;
  for (const Atom& atom : body) {
    for (Term t : atom.terms) {
      if (t.is_variable()) body_vars.insert(t.variable());
    }
  }
  for (Term t : head.terms) {
    if (t.is_variable() && !body_vars.contains(t.variable())) {
      const std::uint32_t v = t.variable();
      const std::string name = v < variable_names.size()
                                   ? variable_names[v]
                                   : "V" + std::to_string(v);
      return util::Status::Error("unsafe rule: head variable '" + name +
                                 "' does not occur in the body");
    }
  }
  return util::Status::Ok();
}

std::string TermToString(Term term, const SymbolTable& symbols,
                         const std::vector<std::string>& variable_names) {
  if (term.is_constant()) return symbols.ConstantName(term.constant());
  const std::uint32_t v = term.variable();
  if (v < variable_names.size()) return variable_names[v];
  return "V" + std::to_string(v);
}

std::string AtomToString(const Atom& atom, const SymbolTable& symbols,
                         const std::vector<std::string>& variable_names) {
  std::string out = symbols.Predicate(atom.predicate).name;
  if (atom.terms.empty()) return out;
  out += '(';
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(atom.terms[i], symbols, variable_names);
  }
  out += ')';
  return out;
}

std::string FactToString(const Fact& fact, const SymbolTable& symbols) {
  std::string out = symbols.Predicate(fact.predicate).name;
  if (fact.args.empty()) return out;
  out += '(';
  for (std::size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.ConstantName(fact.args[i]);
  }
  out += ')';
  return out;
}

std::string RuleToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out = AtomToString(rule.head, symbols, rule.variable_names);
  out += " :- ";
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(rule.body[i], symbols, rule.variable_names);
  }
  out += '.';
  return out;
}

}  // namespace whyprov::datalog
