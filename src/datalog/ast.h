#ifndef WHYPROV_DATALOG_AST_H_
#define WHYPROV_DATALOG_AST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "datalog/symbol_table.h"
#include "util/status.h"

namespace whyprov::datalog {

/// A term is either an interned constant or a rule-scoped variable
/// (variables are numbered 0..n-1 within each rule). Packed into a single
/// 32-bit word: the low bit is the kind tag.
class Term {
 public:
  /// Builds a constant term.
  static Term Constant(SymbolId id) { return Term((id << 1) | 0u); }

  /// Builds a variable term with rule-scoped index `var`.
  static Term Variable(std::uint32_t var) { return Term((var << 1) | 1u); }

  /// True iff this term is a constant.
  bool is_constant() const { return (code_ & 1u) == 0; }

  /// True iff this term is a variable.
  bool is_variable() const { return (code_ & 1u) == 1; }

  /// The constant id. Requires `is_constant()`.
  SymbolId constant() const { return code_ >> 1; }

  /// The variable index. Requires `is_variable()`.
  std::uint32_t variable() const { return code_ >> 1; }

  friend bool operator==(Term a, Term b) { return a.code_ == b.code_; }
  friend bool operator!=(Term a, Term b) { return a.code_ != b.code_; }

 private:
  explicit Term(std::uint32_t code) : code_(code) {}
  std::uint32_t code_;
};

/// A (possibly non-ground) relational atom R(t1, ..., tn).
struct Atom {
  PredicateId predicate = 0;
  std::vector<Term> terms;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.terms == b.terms;
  }
};

/// A ground atom (fact): a predicate applied to constants only.
struct Fact {
  PredicateId predicate = 0;
  std::vector<SymbolId> args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }
};

/// Hash functor for `Fact`, usable with unordered containers.
struct FactHash {
  std::size_t operator()(const Fact& f) const {
    std::size_t h = std::hash<std::uint32_t>{}(f.predicate);
    for (SymbolId a : f.args) {
      // 64-bit splittable hash combine.
      h ^= std::hash<std::uint32_t>{}(a) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// A Datalog rule  head :- body_1, ..., body_n.  Variables are numbered
/// densely 0..num_variables-1; `variable_names` keeps their spellings for
/// diagnostics and pretty printing.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::uint32_t num_variables = 0;
  std::vector<std::string> variable_names;

  /// Checks the Datalog safety condition: every variable of the head occurs
  /// in the body, and the body is non-empty.
  util::Status CheckSafety() const;
};

/// Renders a term using `symbols` for constant spellings and
/// `variable_names` (may be empty; falls back to `V<i>`).
std::string TermToString(Term term, const SymbolTable& symbols,
                         const std::vector<std::string>& variable_names);

/// Renders an atom, e.g. `Edge(X, y)`.
std::string AtomToString(const Atom& atom, const SymbolTable& symbols,
                         const std::vector<std::string>& variable_names);

/// Renders a fact, e.g. `Edge(a, b)`.
std::string FactToString(const Fact& fact, const SymbolTable& symbols);

/// Renders a rule, e.g. `Path(X, Y) :- Edge(X, Z), Path(Z, Y).`.
std::string RuleToString(const Rule& rule, const SymbolTable& symbols);

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_AST_H_
