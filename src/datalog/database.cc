#include "datalog/database.h"

#include <algorithm>

namespace whyprov::datalog {

bool Database::Insert(Fact fact) {
  auto [it, inserted] = set_.insert(std::move(fact));
  if (inserted) facts_.push_back(*it);
  return inserted;
}

bool Database::Remove(const Fact& fact) {
  if (set_.erase(fact) == 0) return false;
  facts_.erase(std::find(facts_.begin(), facts_.end(), fact));
  return true;
}

std::vector<SymbolId> Database::ActiveDomain() const {
  std::vector<SymbolId> domain;
  for (const Fact& fact : facts_) {
    domain.insert(domain.end(), fact.args.begin(), fact.args.end());
  }
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

std::string Database::ToString() const {
  std::string out;
  for (const Fact& fact : facts_) {
    out += FactToString(fact, *symbols_);
    out += ".\n";
  }
  return out;
}

}  // namespace whyprov::datalog
