#ifndef WHYPROV_DATALOG_DATABASE_H_
#define WHYPROV_DATALOG_DATABASE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "datalog/ast.h"
#include "datalog/symbol_table.h"

namespace whyprov::datalog {

/// A database: a finite, duplicate-free set of facts over a shared symbol
/// table. Insertion order is preserved (useful for deterministic output).
class Database {
 public:
  /// Creates an empty database over `symbols`.
  explicit Database(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  /// Adds a fact; returns true if it was new.
  bool Insert(Fact fact);

  /// Removes a fact; returns true if it was present.
  bool Remove(const Fact& fact);

  /// True iff the fact is present.
  bool Contains(const Fact& fact) const { return set_.contains(fact); }

  /// All facts in insertion order.
  const std::vector<Fact>& facts() const { return facts_; }

  /// Number of facts.
  std::size_t size() const { return facts_.size(); }

  /// The shared symbol table.
  const SymbolTable& symbols() const { return *symbols_; }

  /// The shared symbol table handle.
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

  /// The active domain: every constant appearing in some fact (deduplicated,
  /// ascending by id).
  std::vector<SymbolId> ActiveDomain() const;

  /// Renders all facts, one per line, `Fact.` style.
  std::string ToString() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Fact> facts_;
  std::unordered_set<Fact, FactHash> set_;
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_DATABASE_H_
