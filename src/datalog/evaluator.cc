#include "datalog/evaluator.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

namespace whyprov::datalog {

Model::Model(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {}

std::vector<SymbolId> Model::ProjectKey(const Fact& fact,
                                        std::uint32_t mask) {
  std::vector<SymbolId> key;
  for (std::size_t i = 0; i < fact.args.size(); ++i) {
    if (mask & (1u << i)) key.push_back(fact.args[i]);
  }
  return key;
}

std::pair<FactId, bool> Model::Add(Fact fact, int rank) {
  auto it = fact_ids_.find(fact);
  if (it != fact_ids_.end()) {
    // Ranks only shrink; the first derivation round is definitive because
    // evaluation proceeds round by round, so this is defensive.
    ranks_[it->second] = std::min(ranks_[it->second], rank);
    return {it->second, false};
  }
  const FactId id = static_cast<FactId>(facts_.size());
  const PredicateId pred = fact.predicate;
  facts_.push_back(fact);
  ranks_.push_back(rank);
  fact_ids_.emplace(std::move(fact), id);
  if (relations_.size() <= pred) relations_.resize(pred + 1);
  relations_[pred].push_back(id);
  // Keep existing lazy indexes on this predicate fresh.
  const Fact& stored = facts_[id];
  for (auto& [key, index] : indexes_) {
    if (static_cast<PredicateId>(key >> 32) != pred) continue;
    const std::uint32_t mask = static_cast<std::uint32_t>(key);
    index[ProjectKey(stored, mask)].push_back(id);
  }
  return {id, true};
}

std::optional<FactId> Model::Find(const Fact& fact) const {
  auto it = fact_ids_.find(fact);
  if (it == fact_ids_.end()) return std::nullopt;
  return it->second;
}

const std::vector<FactId>& Model::Relation(PredicateId p) const {
  static const std::vector<FactId> kEmpty;
  if (p >= relations_.size()) return kEmpty;
  return relations_[p];
}

const std::vector<FactId>& Model::Lookup(
    PredicateId p, std::uint32_t mask,
    const std::vector<SymbolId>& key) const {
  static const std::vector<FactId> kEmpty;
  if (mask == 0) return Relation(p);
  const IndexKey index_key = MakeIndexKey(p, mask);
  const std::lock_guard<std::mutex> lock(*index_mutex_);
  auto it = indexes_.find(index_key);
  if (it == indexes_.end()) {
    // Build the index over the current relation contents.
    Index index;
    for (FactId id : Relation(p)) {
      index[ProjectKey(facts_[id], mask)].push_back(id);
    }
    it = indexes_.emplace(index_key, std::move(index)).first;
  }
  auto bucket = it->second.find(key);
  if (bucket == it->second.end()) return kEmpty;
  return bucket->second;
}

std::vector<std::vector<SymbolId>> Model::AnswerTuples(PredicateId p) const {
  std::vector<std::vector<SymbolId>> tuples;
  for (FactId id : Relation(p)) tuples.push_back(facts_[id].args);
  return tuples;
}

Fact GroundAtom(const Atom& atom, const std::vector<SymbolId>& binding) {
  Fact fact;
  fact.predicate = atom.predicate;
  fact.args.reserve(atom.terms.size());
  for (Term t : atom.terms) {
    if (t.is_constant()) {
      fact.args.push_back(t.constant());
    } else {
      assert(binding[t.variable()] != kUnboundSymbol);
      fact.args.push_back(binding[t.variable()]);
    }
  }
  return fact;
}

namespace {

/// Attempts to match `fact` against `atom` under `binding`; on success
/// binds the atom's previously-unbound variables and appends them to
/// `trail` (for undo). Returns false (binding unchanged beyond trail
/// entries, which the caller undoes) on mismatch.
bool MatchAtom(const Atom& atom, const Fact& fact,
               std::vector<SymbolId>& binding,
               std::vector<std::uint32_t>& trail) {
  const std::size_t start = trail.size();
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term t = atom.terms[i];
    const SymbolId value = fact.args[i];
    if (t.is_constant()) {
      if (t.constant() != value) goto mismatch;
    } else {
      SymbolId& slot = binding[t.variable()];
      if (slot == kUnboundSymbol) {
        slot = value;
        trail.push_back(t.variable());
      } else if (slot != value) {
        goto mismatch;
      }
    }
  }
  return true;
mismatch:
  while (trail.size() > start) {
    binding[trail.back()] = kUnboundSymbol;
    trail.pop_back();
  }
  return false;
}

struct MatchContext {
  const Model& model;
  const std::vector<Atom>& body;
  std::optional<std::size_t> delta_position;
  const std::vector<FactId>* delta;
  std::vector<SymbolId>& binding;
  const MatchCallback& on_match;
  std::vector<FactId> matched;
};

void MatchRecursive(MatchContext& ctx, std::size_t atom_index) {
  if (atom_index == ctx.body.size()) {
    ctx.on_match(ctx.matched);
    return;
  }
  const Atom& atom = ctx.body[atom_index];
  // Candidate set: the delta for the delta position, otherwise an index
  // lookup keyed on the positions bound by the current binding.
  const std::vector<FactId>* candidates = nullptr;
  std::vector<FactId> no_candidates;
  if (ctx.delta_position.has_value() && *ctx.delta_position == atom_index) {
    candidates = ctx.delta;
  } else {
    std::uint32_t mask = 0;
    std::vector<SymbolId> key;
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const Term t = atom.terms[i];
      if (t.is_constant()) {
        mask |= (1u << i);
        key.push_back(t.constant());
      } else if (ctx.binding[t.variable()] != kUnboundSymbol) {
        mask |= (1u << i);
        key.push_back(ctx.binding[t.variable()]);
      }
    }
    // Masks only support the first 32 positions; arities beyond that fall
    // back to a full scan (no workload in this repo comes close).
    if (atom.terms.size() > 32) mask = 0;
    candidates = &ctx.model.Lookup(atom.predicate, mask, key);
  }
  std::vector<std::uint32_t> trail;
  for (FactId id : *candidates) {
    const Fact& fact = ctx.model.fact(id);
    if (fact.predicate != atom.predicate) continue;
    if (!MatchAtom(atom, fact, ctx.binding, trail)) continue;
    ctx.matched.push_back(id);
    MatchRecursive(ctx, atom_index + 1);
    ctx.matched.pop_back();
    while (!trail.empty()) {
      ctx.binding[trail.back()] = kUnboundSymbol;
      trail.pop_back();
    }
  }
}

}  // namespace

void MatchBody(const Model& model, const std::vector<Atom>& body,
               std::optional<std::size_t> delta_position,
               const std::vector<FactId>* delta,
               std::vector<SymbolId>& binding, const MatchCallback& on_match) {
  MatchContext ctx{model,  body,    delta_position, delta,
                   binding, on_match, {}};
  ctx.matched.reserve(body.size());
  MatchRecursive(ctx, 0);
}

namespace {

Model MakeInitialModel(const Database& database) {
  Model model(database.symbols_ptr());
  for (const Fact& fact : database.facts()) model.Add(fact, /*rank=*/0);
  return model;
}

}  // namespace

Model Evaluator::Evaluate(const Program& program, const Database& database,
                          EvalStats* stats) {
  Model model = MakeInitialModel(database);

  // Per-predicate delta: facts first derived in the previous round.
  std::vector<std::vector<FactId>> delta(program.symbols().NumPredicates());
  for (const Fact& fact : database.facts()) {
    delta[fact.predicate].push_back(*model.Find(fact));
  }

  // Rules that can only fire from extensional data fire exactly once, in
  // round one; all other rules are driven by deltas afterwards.
  std::size_t round = 0;
  std::size_t derived = 0;
  bool changed = true;
  while (changed) {
    ++round;
    changed = false;
    // Buffer new facts; they become visible (and the next delta) only after
    // the round completes, which is what makes rank = fixpoint round.
    std::unordered_set<Fact, FactHash> buffer;
    for (const Rule& rule : program.rules()) {
      std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
      auto emit = [&](const std::vector<FactId>&) {
        Fact head = GroundAtom(rule.head, binding);
        if (!model.Contains(head)) buffer.insert(std::move(head));
      };
      if (round == 1) {
        // Full pass over the (extensional) model.
        MatchBody(model, rule.body, std::nullopt, nullptr, binding, emit);
      } else {
        // Semi-naive: one pass per intensional body position, with that
        // position restricted to the previous round's delta.
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          if (!program.IsIntensional(rule.body[i].predicate)) continue;
          const std::vector<FactId>& d = delta[rule.body[i].predicate];
          if (d.empty()) continue;
          MatchBody(model, rule.body, i, &d, binding, emit);
        }
      }
    }
    for (auto& d : delta) d.clear();
    for (const Fact& fact : buffer) {
      auto [id, inserted] = model.Add(fact, static_cast<int>(round));
      if (inserted) {
        delta[fact.predicate].push_back(id);
        ++derived;
        changed = true;
      }
    }
  }

  if (stats != nullptr) {
    stats->rounds = round;
    stats->derived_facts = derived;
  }
  return model;
}

Model Evaluator::EvaluateNaive(const Program& program,
                               const Database& database, EvalStats* stats) {
  Model model = MakeInitialModel(database);
  std::size_t round = 0;
  std::size_t derived = 0;
  bool changed = true;
  while (changed) {
    ++round;
    changed = false;
    std::unordered_set<Fact, FactHash> buffer;
    for (const Rule& rule : program.rules()) {
      std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
      MatchBody(model, rule.body, std::nullopt, nullptr, binding,
                [&](const std::vector<FactId>&) {
                  Fact head = GroundAtom(rule.head, binding);
                  if (!model.Contains(head)) buffer.insert(std::move(head));
                });
    }
    for (const Fact& fact : buffer) {
      auto [id, inserted] = model.Add(fact, static_cast<int>(round));
      (void)id;
      if (inserted) {
        ++derived;
        changed = true;
      }
    }
  }
  if (stats != nullptr) {
    stats->rounds = round;
    stats->derived_facts = derived;
  }
  return model;
}

}  // namespace whyprov::datalog
