#include "datalog/evaluator.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

namespace whyprov::datalog {

Model::Model(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)),
      fact_id_base_(std::make_shared<FactIdMap>()) {}

std::vector<SymbolId> Model::ProjectKey(const Fact& fact,
                                        std::uint32_t mask) {
  std::vector<SymbolId> key;
  for (std::size_t i = 0; i < fact.args.size(); ++i) {
    if (mask & (1u << i)) key.push_back(fact.args[i]);
  }
  return key;
}

std::pair<FactId, bool> Model::Add(Fact fact, int rank) {
  auto overlay_it = fact_id_overlay_.find(fact);
  const FactIdMap::const_iterator base_it =
      overlay_it == fact_id_overlay_.end() ? fact_id_base_->find(fact)
                                           : fact_id_base_->cend();
  if (overlay_it != fact_id_overlay_.end() ||
      base_it != fact_id_base_->cend()) {
    const FactId id = overlay_it != fact_id_overlay_.end()
                          ? overlay_it->second
                          : base_it->second;
    if (alive(id)) {
      // Ranks only shrink; the first derivation round is definitive because
      // evaluation proceeds round by round, so this is defensive.
      RelaxRank(id, rank);
      return {id, false};
    }
    // Revive a tombstoned fact in place: the id re-enters the relation
    // list and every existing index with its new rank.
    alive_.writable(id) = 1;
    ++num_alive_;
    ranks_.writable(id) = rank;
    AppendToIndexes(id);
    return {id, true};
  }
  const FactId id = static_cast<FactId>(size_);
  const PredicateId pred = fact.predicate;
  facts_.append(size_, fact);
  ranks_.append(size_, rank);
  alive_.append(size_, 1);
  ++size_;
  ++num_alive_;
  if (fact_id_base_.use_count() == 1) {
    // Unshared base (the from-scratch evaluation case): insert in place.
    fact_id_base_->emplace(std::move(fact), id);
  } else {
    fact_id_overlay_.emplace(std::move(fact), id);
    if (fact_id_overlay_.size() > fact_id_base_->size() / 8 + 1024) {
      // Fold the overlay into a fresh base (amortised across interns).
      auto folded = std::make_shared<FactIdMap>(*fact_id_base_);
      folded->insert(fact_id_overlay_.begin(), fact_id_overlay_.end());
      fact_id_base_ = std::move(folded);
      fact_id_overlay_.clear();
    }
  }
  if (relations_.size() <= pred) relations_.resize(pred + 1);
  AppendToIndexes(id);
  return {id, true};
}

std::vector<FactId>& Model::WritableRelation(PredicateId p) {
  if (relations_.size() <= p) relations_.resize(p + 1);
  std::shared_ptr<std::vector<FactId>>& slot = relations_[p];
  if (!slot) {
    slot = std::make_shared<std::vector<FactId>>();
  } else if (slot.use_count() > 1) {
    slot = std::make_shared<std::vector<FactId>>(*slot);
  }
  return *slot;
}

Model::Index& Model::WritableIndex(IndexKey key) {
  std::shared_ptr<Index>& slot = indexes_[key];
  if (!slot) {
    slot = std::make_shared<Index>();
  } else if (slot.use_count() > 1) {
    slot = std::make_shared<Index>(*slot);
  }
  return *slot;
}

void Model::AppendToIndexes(FactId id) {
  const Fact& stored = fact(id);
  const PredicateId pred = stored.predicate;
  WritableRelation(pred).push_back(id);
  // Keep existing lazy indexes on this predicate fresh.
  for (auto& [key, index] : indexes_) {
    if (static_cast<PredicateId>(key >> 32) != pred) continue;
    const std::uint32_t mask = static_cast<std::uint32_t>(key);
    WritableIndex(key)[ProjectKey(stored, mask)].push_back(id);
  }
}

void Model::RemoveBatch(const std::vector<FactId>& ids) {
  std::vector<PredicateId> affected;
  for (FactId id : ids) {
    if (!alive(id)) continue;
    alive_.writable(id) = 0;
    --num_alive_;
    affected.push_back(fact(id).predicate);
  }
  if (affected.empty()) return;
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  // One compaction pass per affected predicate's relation list and built
  // indexes, instead of per-fact erases.
  const auto dead = [this](FactId id) { return !alive(id); };
  for (PredicateId pred : affected) {
    std::erase_if(WritableRelation(pred), dead);
  }
  for (auto& [key, index] : indexes_) {
    const auto pred = static_cast<PredicateId>(key >> 32);
    if (!std::binary_search(affected.begin(), affected.end(), pred)) {
      continue;
    }
    for (auto& [project_key, bucket] : WritableIndex(key)) {
      std::erase_if(bucket, dead);
    }
  }
}

bool Model::RelaxRank(FactId id, int rank) {
  if (rank >= this->rank(id)) return false;
  ranks_.writable(id) = rank;
  return true;
}

Model Model::Clone() const {
  Model copy(symbols_);
  copy.size_ = size_;
  copy.facts_ = facts_;
  copy.ranks_ = ranks_;
  copy.alive_ = alive_;
  copy.num_alive_ = num_alive_;
  copy.fact_id_base_ = fact_id_base_;
  copy.fact_id_overlay_ = fact_id_overlay_;
  copy.relations_ = relations_;
  // A reader may be lazily building an index on this model right now.
  const util::MutexLock lock(*index_mutex_);
  copy.indexes_ = indexes_;
  return copy;
}

std::size_t Model::ApproxRetainedBytes() const {
  // Runs on every snapshot publish, so it must stay O(#chunks +
  // #relations + #indexes) — never O(#facts): container sizes are read,
  // variable-size payloads (fact argument vectors, hash-map nodes) are
  // charged at flat per-element estimates. Weight shared storage by its
  // sharer count so the measure neither double-counts a chunk across the
  // versions holding it nor zeroes out a version whose storage happens
  // to be momentarily shared.
  constexpr std::size_t kApproxArgsBytes = 16;     // small args heap block
  constexpr std::size_t kApproxMapNodeBytes = 32;  // hash-map node overhead
  const auto weighted = [](std::size_t bytes, long sharers) {
    return sharers > 0 ? bytes / static_cast<std::size_t>(sharers) : bytes;
  };
  std::size_t bytes = 0;
  for (const auto& chunk : facts_.chunks) {
    bytes += weighted(chunk->capacity() * sizeof(Fact) +
                          chunk->size() * kApproxArgsBytes,
                      chunk.use_count());
  }
  for (const auto& chunk : ranks_.chunks) {
    bytes += weighted(chunk->capacity() * sizeof(int), chunk.use_count());
  }
  for (const auto& chunk : alive_.chunks) {
    bytes += weighted(chunk->capacity(), chunk.use_count());
  }
  constexpr std::size_t kApproxFactEntryBytes =
      sizeof(Fact) + sizeof(FactId) + kApproxArgsBytes + kApproxMapNodeBytes;
  if (fact_id_base_) {
    bytes += weighted(fact_id_base_->size() * kApproxFactEntryBytes,
                      fact_id_base_.use_count());
  }
  bytes += fact_id_overlay_.size() * kApproxFactEntryBytes;
  for (const auto& relation : relations_) {
    if (relation) {
      bytes += weighted(relation->capacity() * sizeof(FactId),
                        relation.use_count());
    }
  }
  // A reader may be lazily building an index on this model right now.
  const util::MutexLock lock(*index_mutex_);
  for (const auto& [key, index] : indexes_) {
    (void)key;
    if (!index) continue;
    // Every live fact of the indexed predicate appears in exactly one
    // bucket, so entries × flat estimates bound the buckets' storage.
    bytes += weighted(index->size() * (kApproxMapNodeBytes +
                                       kApproxArgsBytes + sizeof(FactId)),
                      index.use_count());
  }
  return bytes;
}

std::optional<FactId> Model::Find(const Fact& fact) const {
  auto it = fact_id_overlay_.find(fact);
  FactId id;
  if (it != fact_id_overlay_.end()) {
    id = it->second;
  } else {
    auto base_it = fact_id_base_->find(fact);
    if (base_it == fact_id_base_->end()) return std::nullopt;
    id = base_it->second;
  }
  if (!alive(id)) return std::nullopt;
  return id;
}

const std::vector<FactId>& Model::Relation(PredicateId p) const {
  static const std::vector<FactId> kEmpty;
  if (p >= relations_.size() || !relations_[p]) return kEmpty;
  return *relations_[p];
}

const std::vector<FactId>& Model::Lookup(
    PredicateId p, std::uint32_t mask,
    const std::vector<SymbolId>& key) const {
  static const std::vector<FactId> kEmpty;
  if (mask == 0) return Relation(p);
  const IndexKey index_key = MakeIndexKey(p, mask);
  const util::MutexLock lock(*index_mutex_);
  auto it = indexes_.find(index_key);
  if (it == indexes_.end()) {
    // Build the index over the current relation contents.
    auto index = std::make_shared<Index>();
    for (FactId id : Relation(p)) {
      (*index)[ProjectKey(fact(id), mask)].push_back(id);
    }
    it = indexes_.emplace(index_key, std::move(index)).first;
  }
  auto bucket = it->second->find(key);
  if (bucket == it->second->end()) return kEmpty;
  return bucket->second;
}

std::vector<std::vector<SymbolId>> Model::AnswerTuples(PredicateId p) const {
  std::vector<std::vector<SymbolId>> tuples;
  for (FactId id : Relation(p)) tuples.push_back(fact(id).args);
  return tuples;
}

Fact GroundAtom(const Atom& atom, const std::vector<SymbolId>& binding) {
  Fact fact;
  fact.predicate = atom.predicate;
  fact.args.reserve(atom.terms.size());
  for (Term t : atom.terms) {
    if (t.is_constant()) {
      fact.args.push_back(t.constant());
    } else {
      assert(binding[t.variable()] != kUnboundSymbol);
      fact.args.push_back(binding[t.variable()]);
    }
  }
  return fact;
}

namespace {

/// Attempts to match `fact` against `atom` under `binding`; on success
/// binds the atom's previously-unbound variables and appends them to
/// `trail` (for undo). Returns false (binding unchanged beyond trail
/// entries, which the caller undoes) on mismatch.
bool MatchAtom(const Atom& atom, const Fact& fact,
               std::vector<SymbolId>& binding,
               std::vector<std::uint32_t>& trail) {
  const std::size_t start = trail.size();
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term t = atom.terms[i];
    const SymbolId value = fact.args[i];
    if (t.is_constant()) {
      if (t.constant() != value) goto mismatch;
    } else {
      SymbolId& slot = binding[t.variable()];
      if (slot == kUnboundSymbol) {
        slot = value;
        trail.push_back(t.variable());
      } else if (slot != value) {
        goto mismatch;
      }
    }
  }
  return true;
mismatch:
  while (trail.size() > start) {
    binding[trail.back()] = kUnboundSymbol;
    trail.pop_back();
  }
  return false;
}

struct MatchContext {
  const Model& model;
  const std::vector<Atom>& body;
  std::optional<std::size_t> delta_position;
  const std::vector<FactId>* delta;
  std::vector<SymbolId>& binding;
  const MatchCallback& on_match;
  std::vector<FactId> matched;
};

void MatchRecursive(MatchContext& ctx, std::size_t atom_index) {
  if (atom_index == ctx.body.size()) {
    ctx.on_match(ctx.matched);
    return;
  }
  const Atom& atom = ctx.body[atom_index];
  // Candidate set: the delta for the delta position, otherwise an index
  // lookup keyed on the positions bound by the current binding.
  const std::vector<FactId>* candidates = nullptr;
  std::vector<FactId> no_candidates;
  if (ctx.delta_position.has_value() && *ctx.delta_position == atom_index) {
    candidates = ctx.delta;
  } else {
    std::uint32_t mask = 0;
    std::vector<SymbolId> key;
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const Term t = atom.terms[i];
      if (t.is_constant()) {
        mask |= (1u << i);
        key.push_back(t.constant());
      } else if (ctx.binding[t.variable()] != kUnboundSymbol) {
        mask |= (1u << i);
        key.push_back(ctx.binding[t.variable()]);
      }
    }
    // Masks only support the first 32 positions; arities beyond that fall
    // back to a full scan (no workload in this repo comes close).
    if (atom.terms.size() > 32) mask = 0;
    candidates = &ctx.model.Lookup(atom.predicate, mask, key);
  }
  std::vector<std::uint32_t> trail;
  for (FactId id : *candidates) {
    const Fact& fact = ctx.model.fact(id);
    if (fact.predicate != atom.predicate) continue;
    if (!MatchAtom(atom, fact, ctx.binding, trail)) continue;
    ctx.matched.push_back(id);
    MatchRecursive(ctx, atom_index + 1);
    ctx.matched.pop_back();
    while (!trail.empty()) {
      ctx.binding[trail.back()] = kUnboundSymbol;
      trail.pop_back();
    }
  }
}

}  // namespace

void MatchBody(const Model& model, const std::vector<Atom>& body,
               std::optional<std::size_t> delta_position,
               const std::vector<FactId>* delta,
               std::vector<SymbolId>& binding, const MatchCallback& on_match) {
  MatchContext ctx{model,  body,    delta_position, delta,
                   binding, on_match, {}};
  ctx.matched.reserve(body.size());
  MatchRecursive(ctx, 0);
}

namespace {

Model MakeInitialModel(const Database& database) {
  Model model(database.symbols_ptr());
  for (const Fact& fact : database.facts()) model.Add(fact, /*rank=*/0);
  return model;
}

}  // namespace

Model Evaluator::Evaluate(const Program& program, const Database& database,
                          EvalStats* stats) {
  Model model = MakeInitialModel(database);

  // Per-predicate delta: facts first derived in the previous round.
  std::vector<std::vector<FactId>> delta(program.symbols().NumPredicates());
  for (const Fact& fact : database.facts()) {
    delta[fact.predicate].push_back(*model.Find(fact));
  }

  // Rules that can only fire from extensional data fire exactly once, in
  // round one; all other rules are driven by deltas afterwards.
  std::size_t round = 0;
  std::size_t derived = 0;
  bool changed = true;
  while (changed) {
    ++round;
    changed = false;
    // Buffer new facts; they become visible (and the next delta) only after
    // the round completes, which is what makes rank = fixpoint round.
    std::unordered_set<Fact, FactHash> buffer;
    for (const Rule& rule : program.rules()) {
      std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
      auto emit = [&](const std::vector<FactId>&) {
        Fact head = GroundAtom(rule.head, binding);
        if (!model.Contains(head)) buffer.insert(std::move(head));
      };
      if (round == 1) {
        // Full pass over the (extensional) model.
        MatchBody(model, rule.body, std::nullopt, nullptr, binding, emit);
      } else {
        // Semi-naive: one pass per intensional body position, with that
        // position restricted to the previous round's delta.
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          if (!program.IsIntensional(rule.body[i].predicate)) continue;
          const std::vector<FactId>& d = delta[rule.body[i].predicate];
          if (d.empty()) continue;
          MatchBody(model, rule.body, i, &d, binding, emit);
        }
      }
    }
    for (auto& d : delta) d.clear();
    for (const Fact& fact : buffer) {
      auto [id, inserted] = model.Add(fact, static_cast<int>(round));
      if (inserted) {
        delta[fact.predicate].push_back(id);
        ++derived;
        changed = true;
      }
    }
  }

  if (stats != nullptr) {
    stats->rounds = round;
    stats->derived_facts = derived;
  }
  return model;
}

Model Evaluator::EvaluateNaive(const Program& program,
                               const Database& database, EvalStats* stats) {
  Model model = MakeInitialModel(database);
  std::size_t round = 0;
  std::size_t derived = 0;
  bool changed = true;
  while (changed) {
    ++round;
    changed = false;
    std::unordered_set<Fact, FactHash> buffer;
    for (const Rule& rule : program.rules()) {
      std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
      MatchBody(model, rule.body, std::nullopt, nullptr, binding,
                [&](const std::vector<FactId>&) {
                  Fact head = GroundAtom(rule.head, binding);
                  if (!model.Contains(head)) buffer.insert(std::move(head));
                });
    }
    for (const Fact& fact : buffer) {
      auto [id, inserted] = model.Add(fact, static_cast<int>(round));
      (void)id;
      if (inserted) {
        ++derived;
        changed = true;
      }
    }
  }
  if (stats != nullptr) {
    stats->rounds = round;
    stats->derived_facts = derived;
  }
  return model;
}

}  // namespace whyprov::datalog
