#ifndef WHYPROV_DATALOG_EVALUATOR_H_
#define WHYPROV_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "datalog/symbol_table.h"

namespace whyprov::datalog {

/// Dense identifier of a fact interned in a `Model`.
using FactId = std::uint32_t;

/// Sentinel for "no fact".
inline constexpr FactId kInvalidFact = std::numeric_limits<FactId>::max();

/// Sentinel for an unbound variable in a join binding.
inline constexpr SymbolId kUnboundSymbol =
    std::numeric_limits<SymbolId>::max();

/// The materialised least model Sigma(D): every fact derivable from the
/// database, interned to dense ids, with per-fact *rank* — the first round
/// of the immediate-consequence operator at which the fact appears
/// (rank 0 = database facts). By Proposition 28 / Lemma 29 of the paper,
/// rank(alpha) equals min-dag-depth(alpha, D, Sigma).
///
/// The model also owns the hash indexes used by the join machinery; indexes
/// are built lazily per (predicate, bound-position mask) and maintained
/// incrementally as facts are added. Lazy index construction is the one
/// mutation a logically-const model performs, so `Lookup` serialises it
/// behind a mutex: once evaluation is done, a model is safe to share
/// across threads (concurrent Find/Relation/Lookup/fact/rank).
class Model {
 public:
  /// Creates an empty model over `symbols`.
  explicit Model(std::shared_ptr<SymbolTable> symbols);

  /// Interns `fact` with the given rank. If the fact already exists, keeps
  /// the existing (smaller) rank. Returns the fact id and whether it was new.
  std::pair<FactId, bool> Add(Fact fact, int rank);

  /// Finds a fact's id, if present.
  std::optional<FactId> Find(const Fact& fact) const;

  /// True iff `fact` is in the model.
  bool Contains(const Fact& fact) const { return Find(fact).has_value(); }

  /// The fact with id `id`.
  const Fact& fact(FactId id) const { return facts_[id]; }

  /// The rank (first derivation round) of fact `id`.
  int rank(FactId id) const { return ranks_[id]; }

  /// Number of facts in the model.
  std::size_t size() const { return facts_.size(); }

  /// All fact ids with predicate `p`, in insertion order.
  const std::vector<FactId>& Relation(PredicateId p) const;

  /// All fact ids whose predicate is `p` and whose argument at each position
  /// in `mask` (bit i set = position i bound) equals the corresponding entry
  /// of `key` (values of bound positions, ascending position order).
  /// Builds the index on first use.
  const std::vector<FactId>& Lookup(PredicateId p, std::uint32_t mask,
                                    const std::vector<SymbolId>& key) const;

  /// The answer tuples of predicate `p`: argument vectors of its facts.
  std::vector<std::vector<SymbolId>> AnswerTuples(PredicateId p) const;

  /// The shared symbol table.
  const SymbolTable& symbols() const { return *symbols_; }

  /// The shared symbol table handle.
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

 private:
  struct VectorHash {
    std::size_t operator()(const std::vector<SymbolId>& v) const {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (SymbolId s : v) {
        h ^= s;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  using Index =
      std::unordered_map<std::vector<SymbolId>, std::vector<FactId>,
                         VectorHash>;
  using IndexKey = std::uint64_t;  // (predicate << 32) | mask

  static IndexKey MakeIndexKey(PredicateId p, std::uint32_t mask) {
    return (static_cast<std::uint64_t>(p) << 32) | mask;
  }
  static std::vector<SymbolId> ProjectKey(const Fact& fact,
                                          std::uint32_t mask);

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Fact> facts_;
  std::vector<int> ranks_;
  std::unordered_map<Fact, FactId, FactHash> fact_ids_;
  std::vector<std::vector<FactId>> relations_;  // by predicate
  mutable std::unordered_map<IndexKey, Index> indexes_;
  // Guards lazy builds in Lookup (a unique_ptr keeps the model movable).
  // References returned by Lookup stay valid across later builds because
  // unordered_map never relocates its nodes.
  mutable std::unique_ptr<std::mutex> index_mutex_ =
      std::make_unique<std::mutex>();
};

/// Callback receiving, for each homomorphism from a rule body into the
/// model, the matched fact id per body atom (parallel to the body vector).
using MatchCallback = std::function<void(const std::vector<FactId>&)>;

/// Enumerates all homomorphisms h from `body` into `model` extending the
/// initial `binding` (size = rule's num_variables, `kUnboundSymbol` for
/// unbound). If `delta_position` is set, the atom at that index only
/// matches facts in `delta` (semi-naive evaluation). The binding vector is
/// restored to its input state on return.
void MatchBody(const Model& model, const std::vector<Atom>& body,
               std::optional<std::size_t> delta_position,
               const std::vector<FactId>* delta,
               std::vector<SymbolId>& binding, const MatchCallback& on_match);

/// Applies a binding to an atom, producing the ground fact. All variables
/// of the atom must be bound.
Fact GroundAtom(const Atom& atom, const std::vector<SymbolId>& binding);

/// Statistics of one evaluation run.
struct EvalStats {
  std::size_t rounds = 0;          ///< fixpoint rounds executed
  std::size_t derived_facts = 0;   ///< facts derived (beyond the database)
};

/// Bottom-up Datalog evaluation.
class Evaluator {
 public:
  /// Semi-naive evaluation: computes Sigma(D) with ranks. The workhorse.
  static Model Evaluate(const Program& program, const Database& database,
                        EvalStats* stats = nullptr);

  /// Naive (full re-derivation per round) evaluation. Used to cross-check
  /// the semi-naive implementation in tests.
  static Model EvaluateNaive(const Program& program, const Database& database,
                             EvalStats* stats = nullptr);
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_EVALUATOR_H_
