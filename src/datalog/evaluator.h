#ifndef WHYPROV_DATALOG_EVALUATOR_H_
#define WHYPROV_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "datalog/symbol_table.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whyprov::datalog {

/// Dense identifier of a fact interned in a `Model`.
using FactId = std::uint32_t;

/// Sentinel for "no fact".
inline constexpr FactId kInvalidFact = std::numeric_limits<FactId>::max();

/// Sentinel for an unbound variable in a join binding.
inline constexpr SymbolId kUnboundSymbol =
    std::numeric_limits<SymbolId>::max();

/// The materialised least model Sigma(D): every fact derivable from the
/// database, interned to dense ids, with per-fact *rank* — the first round
/// of the immediate-consequence operator at which the fact appears
/// (rank 0 = database facts). By Proposition 28 / Lemma 29 of the paper,
/// rank(alpha) equals min-dag-depth(alpha, D, Sigma).
///
/// The model also owns the hash indexes used by the join machinery; indexes
/// are built lazily per (predicate, bound-position mask) and maintained
/// incrementally as facts are added. Lazy index construction is the one
/// mutation a logically-const model performs, so `Lookup` serialises it
/// behind a mutex: once evaluation is done, a model is safe to share
/// across threads (concurrent Find/Relation/Lookup/fact/rank).
///
/// For incremental maintenance (delete-and-rederive) a fact can be
/// tombstoned with `Remove`/`RemoveBatch`: its id stays interned (so ids
/// of surviving facts — and the query plans built over them — remain
/// stable across deltas) but it disappears from Find/Contains/Relation/
/// Lookup. A later Add of the same fact revives the id in place.
///
/// Storage is structurally shared between versions: `Clone` is O(model /
/// chunk size), not O(model). Fact payloads live in append-only shared
/// chunks; ranks and liveness are chunked copy-on-write arrays (a delta
/// copies only the chunks it writes); relation lists and join indexes are
/// copy-on-write per predicate; and the fact-to-id map is a shared frozen
/// base plus a small per-version overlay of newly interned facts. This is
/// what makes `Engine::ApplyDelta` snapshots cheap enough to beat a
/// from-scratch rebuild even on scenarios whose evaluation is linear.
class Model {
 public:
  /// Creates an empty model over `symbols`.
  explicit Model(std::shared_ptr<SymbolTable> symbols);

  /// Interns `fact` with the given rank. If the fact is already live, keeps
  /// the existing (smaller) rank; if it was tombstoned, revives its old id
  /// with the given rank. Returns the fact id and whether it is (newly or
  /// again) live.
  std::pair<FactId, bool> Add(Fact fact, int rank);

  /// Tombstones a live fact: it keeps its id but leaves the model (and all
  /// relation lists / join indexes). No-op on an already-dead id.
  void Remove(FactId id) { RemoveBatch({id}); }

  /// Tombstones a batch of live facts with one compaction pass per
  /// affected predicate (the delete step of delete-and-rederive).
  void RemoveBatch(const std::vector<FactId>& ids);

  /// Lowers the rank of a live fact; returns true iff the rank changed.
  bool RelaxRank(FactId id, int rank);

  /// Finds a live fact's id, if present.
  std::optional<FactId> Find(const Fact& fact) const;

  /// True iff `fact` is live in the model.
  bool Contains(const Fact& fact) const { return Find(fact).has_value(); }

  /// True iff `id` is interned and not tombstoned.
  bool alive(FactId id) const {
    return id < size_ && (*alive_.chunks[id >> kChunkBits])[id & kChunkMask];
  }

  /// The fact with id `id` (tombstoned ids keep their payload).
  const Fact& fact(FactId id) const {
    return (*facts_.chunks[id >> kChunkBits])[id & kChunkMask];
  }

  /// The rank (first derivation round) of fact `id`.
  int rank(FactId id) const {
    return (*ranks_.chunks[id >> kChunkBits])[id & kChunkMask];
  }

  /// Size of the id space: all facts ever interned, live or tombstoned.
  std::size_t size() const { return size_; }

  /// Number of live facts.
  std::size_t num_alive() const { return num_alive_; }

  /// A snapshot copy sharing the symbol table and all unchanged storage
  /// chunks — the starting point of an incremental delta evaluation,
  /// which mutates the copy (copy-on-write) while readers keep using the
  /// original. Thread-safe against concurrent Lookup on this model (the
  /// lazy-index mutex is held while copying).
  Model Clone() const;

  /// All fact ids with predicate `p`, in insertion order.
  const std::vector<FactId>& Relation(PredicateId p) const;

  /// All fact ids whose predicate is `p` and whose argument at each position
  /// in `mask` (bit i set = position i bound) equals the corresponding entry
  /// of `key` (values of bound positions, ascending position order).
  /// Builds the index on first use.
  const std::vector<FactId>& Lookup(PredicateId p, std::uint32_t mask,
                                    const std::vector<SymbolId>& key) const;

  /// The answer tuples of predicate `p`: argument vectors of its facts.
  std::vector<std::vector<SymbolId>> AnswerTuples(PredicateId p) const;

  /// The shared symbol table.
  const SymbolTable& symbols() const { return *symbols_; }

  /// The shared symbol table handle.
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

  /// Approximate heap bytes attributable to this model version: each COW
  /// chunk, relation list, and join index is weighted by its number of
  /// sharers (bytes / use_count), plus the per-version fact-id overlay
  /// in full. Weighting makes the measure stable under structural
  /// sharing — a chunk shared by k versions contributes its size once
  /// across the k of them — so summing the at-birth numbers over a COW
  /// chain's retained snapshots approximates the chain's total footprint
  /// (the snapshot-accounting signal a serving layer surfaces).
  /// Thread-safe against concurrent Lookup.
  std::size_t ApproxRetainedBytes() const;

 private:
  static constexpr std::size_t kChunkBits = 12;  // 4096 entries per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  /// A chunked array whose copies share chunks; writers clone a chunk
  /// before the first write if any other version still references it.
  /// (`alive` uses uint8_t, not bool, so chunks are plain byte arrays.)
  template <typename T>
  struct ChunkedStore {
    std::vector<std::shared_ptr<std::vector<T>>> chunks;

    T read(std::size_t i) const {
      return (*chunks[i >> kChunkBits])[i & kChunkMask];
    }
    /// A writable reference, cloning the chunk first if it is shared.
    T& writable(std::size_t i) {
      std::shared_ptr<std::vector<T>>& chunk = chunks[i >> kChunkBits];
      if (chunk.use_count() > 1) {
        chunk = std::make_shared<std::vector<T>>(*chunk);
      }
      return (*chunk)[i & kChunkMask];
    }
    /// Appends at index `size` (the caller tracks the logical size).
    void append(std::size_t size, T value) {
      if ((size & kChunkMask) == 0) {
        chunks.push_back(std::make_shared<std::vector<T>>());
        chunks.back()->reserve(kChunkSize);
      } else if (chunks.back().use_count() > 1) {
        chunks.back() = std::make_shared<std::vector<T>>(*chunks.back());
        chunks.back()->reserve(kChunkSize);
      }
      chunks.back()->push_back(std::move(value));
    }
  };

  struct VectorHash {
    std::size_t operator()(const std::vector<SymbolId>& v) const {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (SymbolId s : v) {
        h ^= s;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  using Index =
      std::unordered_map<std::vector<SymbolId>, std::vector<FactId>,
                         VectorHash>;
  using IndexKey = std::uint64_t;  // (predicate << 32) | mask
  using FactIdMap = std::unordered_map<Fact, FactId, FactHash>;

  static IndexKey MakeIndexKey(PredicateId p, std::uint32_t mask) {
    return (static_cast<std::uint64_t>(p) << 32) | mask;
  }
  static std::vector<SymbolId> ProjectKey(const Fact& fact,
                                          std::uint32_t mask);

  /// A writable relation list for `p`, cloned first if shared.
  std::vector<FactId>& WritableRelation(PredicateId p);

  /// Re-registers a (new or revived) live fact with its relation list and
  /// every already-built index on its predicate (cloning shared indexes
  /// first — copy-on-write at index granularity).
  void AppendToIndexes(FactId id);

  /// A writable index for `key`, cloned first if shared with another
  /// version. Must be called with `index_mutex_` NOT required (single
  /// writer: mutation only happens during evaluation / delta application).
  Index& WritableIndex(IndexKey key);

  std::shared_ptr<SymbolTable> symbols_;
  std::size_t size_ = 0;  ///< id-space size (logical length of the stores)
  ChunkedStore<Fact> facts_;       // append-only: payloads never change
  ChunkedStore<int> ranks_;        // COW chunks
  ChunkedStore<std::uint8_t> alive_;  // COW chunks
  std::size_t num_alive_ = 0;
  /// Maps every fact ever interned — live or tombstoned — to its id:
  /// a shared base (mutated in place only while unshared, i.e. during a
  /// from-scratch evaluation) plus this version's overlay of new interns.
  /// The map is append-only (tombstoned facts keep their entry), so the
  /// overlay is periodically folded into a fresh base.
  std::shared_ptr<FactIdMap> fact_id_base_;
  FactIdMap fact_id_overlay_;
  /// Live fact ids by predicate, insertion order, COW per predicate.
  std::vector<std::shared_ptr<std::vector<FactId>>> relations_;
  // Guards lazy builds in Lookup (a unique_ptr keeps the model movable).
  // References returned by Lookup stay valid across later lazy builds
  // because the Index objects are heap-allocated and shared.
  mutable std::unique_ptr<util::Mutex> index_mutex_ =
      std::make_unique<util::Mutex>();
  /// Lazily built join indexes, COW per (predicate, mask).
  mutable std::unordered_map<IndexKey, std::shared_ptr<Index>> indexes_
      GUARDED_BY(*index_mutex_);
};

/// Callback receiving, for each homomorphism from a rule body into the
/// model, the matched fact id per body atom (parallel to the body vector).
using MatchCallback = std::function<void(const std::vector<FactId>&)>;

/// Enumerates all homomorphisms h from `body` into `model` extending the
/// initial `binding` (size = rule's num_variables, `kUnboundSymbol` for
/// unbound). If `delta_position` is set, the atom at that index only
/// matches facts in `delta` (semi-naive evaluation). The binding vector is
/// restored to its input state on return.
void MatchBody(const Model& model, const std::vector<Atom>& body,
               std::optional<std::size_t> delta_position,
               const std::vector<FactId>* delta,
               std::vector<SymbolId>& binding, const MatchCallback& on_match);

/// Applies a binding to an atom, producing the ground fact. All variables
/// of the atom must be bound.
Fact GroundAtom(const Atom& atom, const std::vector<SymbolId>& binding);

/// Statistics of one evaluation run.
struct EvalStats {
  std::size_t rounds = 0;          ///< fixpoint rounds executed
  std::size_t derived_facts = 0;   ///< facts derived (beyond the database)
};

/// Bottom-up Datalog evaluation.
class Evaluator {
 public:
  /// Semi-naive evaluation: computes Sigma(D) with ranks. The workhorse.
  static Model Evaluate(const Program& program, const Database& database,
                        EvalStats* stats = nullptr);

  /// Naive (full re-derivation per round) evaluation. Used to cross-check
  /// the semi-naive implementation in tests.
  static Model EvaluateNaive(const Program& program, const Database& database,
                             EvalStats* stats = nullptr);
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_EVALUATOR_H_
