#include "datalog/grounder.h"

#include <algorithm>
#include <set>
#include <utility>

namespace whyprov::datalog {

namespace {

/// Unifies the (possibly non-linear, possibly constant-carrying) head atom
/// with a ground fact. On success fills `binding` for head variables.
bool UnifyHead(const Atom& head, const Fact& fact,
               std::vector<SymbolId>& binding) {
  for (std::size_t i = 0; i < head.terms.size(); ++i) {
    const Term t = head.terms[i];
    const SymbolId value = fact.args[i];
    if (t.is_constant()) {
      if (t.constant() != value) return false;
    } else {
      SymbolId& slot = binding[t.variable()];
      if (slot == kUnboundSymbol) {
        slot = value;
      } else if (slot != value) {
        return false;
      }
    }
  }
  return true;
}

std::vector<FactId> SortedUnique(std::vector<FactId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<RuleInstance> Grounder::InstancesWithHead(FactId head) const {
  return InstancesDeriving(model_.fact(head), head);
}

std::vector<RuleInstance> Grounder::InstancesDeriving(const Fact& head_fact,
                                                      FactId head) const {
  std::vector<RuleInstance> instances;
  std::set<std::pair<std::size_t, std::vector<FactId>>> seen;
  for (std::size_t rule_index : program_.RulesForHead(head_fact.predicate)) {
    const Rule& rule = program_.rules()[rule_index];
    std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
    if (!UnifyHead(rule.head, head_fact, binding)) continue;
    MatchBody(model_, rule.body, std::nullopt, nullptr, binding,
              [&](const std::vector<FactId>& matched) {
                std::vector<FactId> body = SortedUnique(matched);
                if (seen.emplace(rule_index, body).second) {
                  instances.push_back(
                      RuleInstance{rule_index, head, std::move(body)});
                }
              });
  }
  return instances;
}

std::vector<RuleInstance> Grounder::AllInstances() const {
  std::vector<RuleInstance> instances;
  std::set<std::pair<FactId, std::vector<FactId>>> seen;
  for (std::size_t rule_index = 0; rule_index < program_.rules().size();
       ++rule_index) {
    const Rule& rule = program_.rules()[rule_index];
    std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
    MatchBody(model_, rule.body, std::nullopt, nullptr, binding,
              [&](const std::vector<FactId>& matched) {
                Fact head = GroundAtom(rule.head, binding);
                auto head_id = model_.Find(head);
                // The model is a fixpoint, so every derivable head is in it.
                if (!head_id.has_value()) return;
                std::vector<FactId> body = SortedUnique(matched);
                if (seen.emplace(*head_id, body).second) {
                  instances.push_back(RuleInstance{rule_index, *head_id,
                                                   std::move(body)});
                }
              });
  }
  return instances;
}

}  // namespace whyprov::datalog
