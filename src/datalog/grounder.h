#ifndef WHYPROV_DATALOG_GROUNDER_H_
#define WHYPROV_DATALOG_GROUNDER_H_

#include <cstddef>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/program.h"

namespace whyprov::datalog {

/// A ground rule instance: a rule of the program whose variables have been
/// replaced by constants such that every body fact is in the model. The
/// body is kept as a duplicate-free, sorted set of fact ids — exactly a
/// hyperedge (head, {body facts}) of the graph of rule instances
/// gri(D, Sigma) (Definition 42 of the paper).
struct RuleInstance {
  std::size_t rule_index = 0;
  FactId head = kInvalidFact;
  std::vector<FactId> body;  // sorted, unique

  friend bool operator==(const RuleInstance& a, const RuleInstance& b) {
    return a.head == b.head && a.body == b.body;
  }
};

/// Enumerates rule instances over an evaluated model. This is the engine
/// behind the downward closure: the paper computes the same hyperedges by
/// evaluating a rewritten query Q-down over D-down with an external Datalog
/// engine; here we ask the grounder directly.
class Grounder {
 public:
  /// Both `program` and `model` must outlive the grounder.
  Grounder(const Program& program, const Model& model)
      : program_(program), model_(model) {}

  /// All rule instances whose head is the fact `head` (deduplicated by
  /// body-set; two homomorphisms producing the same body set collapse).
  std::vector<RuleInstance> InstancesWithHead(FactId head) const;

  /// Same, but for a fact given by value — the fact need not be (live) in
  /// the model. Bodies still match only live model facts, which is exactly
  /// the re-derivation test of delete-and-rederive: a tombstoned fact is
  /// rederivable iff this is non-empty. The returned instances carry
  /// `head_id` as their head (pass the fact's interned id, or
  /// kInvalidFact).
  std::vector<RuleInstance> InstancesDeriving(const Fact& head_fact,
                                              FactId head_id) const;

  /// All rule instances of the whole model: gri(D, Sigma). Deduplicated by
  /// (head, body-set).
  std::vector<RuleInstance> AllInstances() const;

 private:
  const Program& program_;
  const Model& model_;
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_GROUNDER_H_
