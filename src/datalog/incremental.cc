#include "datalog/incremental.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "datalog/grounder.h"

namespace whyprov::datalog {

namespace {

/// Groups a frontier of fact ids by predicate so each rule/body-position
/// pass can hand MatchBody one per-predicate delta, exactly like the
/// semi-naive rounds of Evaluator::Evaluate.
std::vector<std::vector<FactId>> GroupByPredicate(
    const Model& model, const std::vector<FactId>& frontier,
    std::size_t num_predicates) {
  std::vector<std::vector<FactId>> by_pred(num_predicates);
  for (FactId id : frontier) {
    by_pred[model.fact(id).predicate].push_back(id);
  }
  return by_pred;
}

/// Runs `on_match(head_fact, matched_body)` for every rule instance of the
/// current model with at least one body fact in `frontier` (each body
/// position is pinned to the frontier in turn; instances with several
/// frontier facts are simply visited more than once).
template <typename Callback>
void ForEachInstanceTouching(const Program& program, const Model& model,
                             const std::vector<FactId>& frontier,
                             const Callback& on_match) {
  const std::vector<std::vector<FactId>> by_pred =
      GroupByPredicate(model, frontier, program.symbols().NumPredicates());
  for (const Rule& rule : program.rules()) {
    std::vector<SymbolId> binding(rule.num_variables, kUnboundSymbol);
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const std::vector<FactId>& delta = by_pred[rule.body[i].predicate];
      if (delta.empty()) continue;
      MatchBody(model, rule.body, i, &delta, binding,
                [&](const std::vector<FactId>& matched) {
                  on_match(GroundAtom(rule.head, binding), matched);
                });
    }
  }
}

int CandidateRank(const Model& model, const std::vector<FactId>& body) {
  int rank = 0;
  for (FactId id : body) rank = std::max(rank, model.rank(id));
  return rank + 1;
}

}  // namespace

DeltaEvalResult IncrementalEvaluator::Apply(const Program& program,
                                            Model& model,
                                            const std::vector<Fact>& added,
                                            const std::vector<Fact>& removed) {
  DeltaEvalResult result;
  std::unordered_set<FactId> touched;
  // Live facts that are new, revived, or rank-lowered and still need their
  // consequences propagated (the relaxation worklist).
  std::vector<FactId> changed;

  // --- Phase 1: pessimistic deletion (the "delete" of DRed) -------------
  //
  // The suspects are the forward closure of the removed facts through the
  // *old* model's rule instances: every fact some derivation of which runs
  // through a removed fact. Facts outside this set keep all their
  // derivations, so their membership and rank are already final.
  std::vector<FactId> suspects;
  std::unordered_set<FactId> suspect_set;
  for (const Fact& fact : removed) {
    const auto id = model.Find(fact);
    if (!id.has_value()) continue;
    if (suspect_set.insert(*id).second) suspects.push_back(*id);
    ++result.base_removed;
  }
  std::vector<FactId> frontier = suspects;
  while (!frontier.empty()) {
    std::vector<FactId> next;
    ForEachInstanceTouching(
        program, model, frontier,
        [&](Fact head, const std::vector<FactId>&) {
          const auto id = model.Find(head);
          // The model is a fixpoint of the old database, so every
          // derivable head is present.
          if (!id.has_value()) return;
          if (suspect_set.insert(*id).second) {
            suspects.push_back(*id);
            next.push_back(*id);
          }
        });
    frontier = std::move(next);
  }
  model.RemoveBatch(suspects);
  touched.insert(suspect_set.begin(), suspect_set.end());

  // --- Phase 2: re-derivation (the "rederive" of DRed) ------------------
  //
  // A tombstoned suspect comes back iff some rule instance derives it from
  // live facts only. One goal-directed pass suffices: any suspect whose
  // support appears only after a later revival is caught by the forward
  // worklist below (a revival is a model change like any other, and the
  // instance that completes it necessarily contains the revived fact).
  const Grounder grounder(program, model);
  for (FactId id : suspects) {
    const Fact& fact = model.fact(id);
    if (!program.IsIntensional(fact.predicate)) continue;
    const std::vector<RuleInstance> instances =
        grounder.InstancesDeriving(fact, id);
    if (instances.empty()) continue;
    int rank = std::numeric_limits<int>::max();
    for (const RuleInstance& instance : instances) {
      rank = std::min(rank, CandidateRank(model, instance.body));
    }
    model.Add(fact, rank);
    changed.push_back(id);
  }

  // --- Phase 3: insertions ----------------------------------------------
  for (const Fact& fact : added) {
    const auto live = model.Find(fact);
    if (live.has_value()) {
      // Already derivable; becoming a database fact drops its rank to 0.
      if (model.RelaxRank(*live, 0)) {
        ++result.rank_updates;
        changed.push_back(*live);
      }
      touched.insert(*live);
    } else {
      const auto [id, inserted] = model.Add(fact, /*rank=*/0);
      (void)inserted;
      changed.push_back(id);
      touched.insert(id);
    }
    ++result.base_added;
  }

  // --- Phase 4: semi-naive forward propagation + rank relaxation --------
  //
  // Every instance containing a changed fact either derives something new
  // or offers a (possibly) shallower derivation of an existing fact. Ranks
  // only decrease and are bounded by the true minimax depth, so the
  // worklist converges to the least fixpoint.
  while (!changed.empty()) {
    ++result.rounds;
    std::unordered_set<FactId> next_set;
    // New heads are buffered until the pass completes: Add would append to
    // the very index buckets MatchBody is iterating. Rank relaxation only
    // writes the rank array, so it is safe (and beneficial) mid-pass.
    std::unordered_map<Fact, int, FactHash> pending;
    ForEachInstanceTouching(
        program, model, changed,
        [&](Fact head, const std::vector<FactId>& matched) {
          const int candidate = CandidateRank(model, matched);
          const auto id = model.Find(head);
          if (!id.has_value()) {
            const auto [it, inserted] =
                pending.emplace(std::move(head), candidate);
            if (!inserted) it->second = std::min(it->second, candidate);
            return;
          }
          // Head of a new or changed instance: its derivations changed
          // even when its rank did not.
          touched.insert(*id);
          if (model.RelaxRank(*id, candidate)) {
            ++result.rank_updates;
            next_set.insert(*id);
          }
        });
    for (auto& [head, rank] : pending) {
      const auto [id, inserted] = model.Add(head, rank);
      (void)inserted;
      // A deletion suspect coming back through propagation is a
      // re-derivation (counted once the cascade settles), not an insert.
      if (!suspect_set.contains(id)) ++result.derived_added;
      touched.insert(id);
      next_set.insert(id);
    }
    changed.assign(next_set.begin(), next_set.end());
  }

  // Settle the deletion counters now that cascaded revivals are final.
  for (FactId id : suspects) {
    if (model.alive(id)) {
      if (model.rank(id) > 0) ++result.rederived;
    } else if (model.rank(id) > 0) {
      ++result.derived_deleted;
    }
  }

  result.touched.assign(touched.begin(), touched.end());
  std::sort(result.touched.begin(), result.touched.end());
  return result;
}

}  // namespace whyprov::datalog
