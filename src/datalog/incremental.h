#ifndef WHYPROV_DATALOG_INCREMENTAL_H_
#define WHYPROV_DATALOG_INCREMENTAL_H_

#include <cstddef>
#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"

namespace whyprov::datalog {

/// Outcome of one incremental delta evaluation.
struct DeltaEvalResult {
  std::size_t base_added = 0;       ///< database facts inserted (rank 0)
  std::size_t base_removed = 0;     ///< database facts tombstoned
  std::size_t derived_added = 0;    ///< facts newly derived by insertions
  std::size_t derived_deleted = 0;  ///< derived facts that stayed dead
  std::size_t rederived = 0;        ///< deletion suspects revived by DRed
  std::size_t rank_updates = 0;     ///< live facts whose rank was lowered
  std::size_t rounds = 0;           ///< insertion propagation rounds
  /// Every fact id whose derivations (incident rule instances) or rank
  /// may have changed: the removed/added facts, all deletion suspects,
  /// and every head matched during propagation. Sorted, unique. A query
  /// plan whose downward closure is disjoint from this set is still
  /// valid — closure, encoding, and rank-greedy hints alike.
  std::vector<FactId> touched;
};

/// Fact-level incremental maintenance of a materialised least model.
///
/// Insertions propagate forward with semi-naive delta rounds (each rule is
/// re-matched only with one body atom pinned to the changed-fact delta);
/// deletions use delete-and-rederive (DRed): the forward closure of the
/// removed facts through the old model's rule instances is tombstoned
/// pessimistically, then every suspect is goal-directedly re-derived from
/// the surviving facts. Ranks (min proof-DAG depth, Proposition 28 of the
/// paper) are maintained exactly by Bellman-Ford-style relaxation: a
/// changed fact re-examines the instances it occurs in and lowers head
/// ranks until the unique least fixpoint is reached. Fact ids of
/// surviving facts never change, which is what lets query plans built
/// over an earlier model version survive a delta untouched.
class IncrementalEvaluator {
 public:
  /// `model` must be the least model (with exact ranks) of some database
  /// D w.r.t. `program`; on return it is the least model of
  /// (D \ removed) ∪ added. Facts in `added` must not be in D; facts in
  /// `removed` must be in D (the engine pre-filters no-ops).
  static DeltaEvalResult Apply(const Program& program, Model& model,
                               const std::vector<Fact>& added,
                               const std::vector<Fact>& removed);
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_INCREMENTAL_H_
