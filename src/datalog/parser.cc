#include "datalog/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <utility>

namespace whyprov::datalog {
namespace {

enum class TokenKind {
  kIdentifier,  // bare word or number or quoted string
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,  // :-
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  bool is_variable_like = false;  // starts with uppercase or '_'
  int line = 1;
  int column = 1;
};

/// Single-pass tokenizer with `%` line comments.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  util::Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token token;
    token.line = line_;
    token.column = column_;
    if (pos_ >= text_.size()) {
      token.kind = TokenKind::kEnd;
      return token;
    }
    const char c = text_[pos_];
    if (c == '(') return Punct(TokenKind::kLParen, token);
    if (c == ')') return Punct(TokenKind::kRParen, token);
    if (c == ',') return Punct(TokenKind::kComma, token);
    if (c == '.') return Punct(TokenKind::kDot, token);
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        Advance();
        Advance();
        token.kind = TokenKind::kImplies;
        return token;
      }
      return Error("expected ':-'");
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      Advance();
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        value += text_[pos_];
        Advance();
      }
      if (pos_ >= text_.size()) return Error("unterminated string literal");
      Advance();  // closing quote
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(value);
      token.is_variable_like = false;
      return token;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        word += text_[pos_];
        Advance();
      }
      token.kind = TokenKind::kIdentifier;
      token.is_variable_like =
          std::isupper(static_cast<unsigned char>(word[0])) || word[0] == '_';
      token.text = std::move(word);
      return token;
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

 private:
  util::Result<Token> Punct(TokenKind kind, Token token) {
    Advance();
    token.kind = kind;
    return token;
  }

  util::Status Error(const std::string& message) const {
    return util::Status::ParseError("parse error at " + std::to_string(line_) +
                               ":" + std::to_string(column_) + ": " + message);
  }

  void Advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// A raw (pre-resolution) atom: predicate name + term spellings.
struct RawTerm {
  std::string text;
  bool is_variable = false;
};
struct RawAtom {
  std::string predicate;
  std::vector<RawTerm> terms;
  int line = 1;
  int column = 1;
};

class ParserImpl {
 public:
  ParserImpl(std::shared_ptr<SymbolTable> symbols, std::string_view text)
      : symbols_(std::move(symbols)), lexer_(text) {}

  util::Result<ParsedUnit> Run() {
    ParsedUnit unit;
    util::Status status = Prime();
    if (!status.ok()) return status;
    while (current_.kind != TokenKind::kEnd) {
      util::Result<RawAtom> head = ParseRawAtom();
      if (!head.ok()) return head.status();
      if (current_.kind == TokenKind::kDot) {
        // Ground fact.
        util::Result<Fact> fact = ResolveFact(head.value());
        if (!fact.ok()) return fact.status();
        unit.facts.push_back(std::move(fact).value());
        status = Consume(TokenKind::kDot, "expected '.'");
        if (!status.ok()) return status;
        continue;
      }
      status = Consume(TokenKind::kImplies, "expected ':-' or '.'");
      if (!status.ok()) return status;
      std::vector<RawAtom> body;
      while (true) {
        util::Result<RawAtom> atom = ParseRawAtom();
        if (!atom.ok()) return atom.status();
        body.push_back(std::move(atom).value());
        if (current_.kind == TokenKind::kComma) {
          status = Consume(TokenKind::kComma, "expected ','");
          if (!status.ok()) return status;
          continue;
        }
        break;
      }
      status = Consume(TokenKind::kDot, "expected '.' after rule body");
      if (!status.ok()) return status;
      util::Result<Rule> rule = ResolveRule(head.value(), body);
      if (!rule.ok()) return rule.status();
      unit.rules.push_back(std::move(rule).value());
    }
    return unit;
  }

 private:
  util::Status Prime() {
    util::Result<Token> token = lexer_.Next();
    if (!token.ok()) return token.status();
    current_ = std::move(token).value();
    return util::Status::Ok();
  }

  util::Status Consume(TokenKind kind, const std::string& message) {
    if (current_.kind != kind) {
      return util::Status::ParseError("parse error at " +
                                 std::to_string(current_.line) + ":" +
                                 std::to_string(current_.column) + ": " +
                                 message);
    }
    return Prime();
  }

  util::Result<RawAtom> ParseRawAtom() {
    if (current_.kind != TokenKind::kIdentifier) {
      return util::Status::ParseError(
          "parse error at " + std::to_string(current_.line) + ":" +
          std::to_string(current_.column) + ": expected a predicate name");
    }
    RawAtom atom;
    atom.predicate = current_.text;
    atom.line = current_.line;
    atom.column = current_.column;
    util::Status status = Prime();
    if (!status.ok()) return status;
    if (current_.kind != TokenKind::kLParen) return atom;  // 0-ary
    status = Consume(TokenKind::kLParen, "expected '('");
    if (!status.ok()) return status;
    while (true) {
      if (current_.kind != TokenKind::kIdentifier) {
        return util::Status::ParseError(
            "parse error at " + std::to_string(current_.line) + ":" +
            std::to_string(current_.column) + ": expected a term");
      }
      atom.terms.push_back(
          RawTerm{current_.text, current_.is_variable_like});
      status = Prime();
      if (!status.ok()) return status;
      if (current_.kind == TokenKind::kComma) {
        status = Consume(TokenKind::kComma, "expected ','");
        if (!status.ok()) return status;
        continue;
      }
      break;
    }
    status = Consume(TokenKind::kRParen, "expected ')'");
    if (!status.ok()) return status;
    return atom;
  }

  util::Result<Fact> ResolveFact(const RawAtom& raw) {
    for (const RawTerm& term : raw.terms) {
      if (term.is_variable) {
        return util::Status::ParseError(
            "parse error at " + std::to_string(raw.line) + ":" +
            std::to_string(raw.column) + ": fact '" + raw.predicate +
            "' contains variable '" + term.text + "'");
      }
    }
    util::Result<PredicateId> pred = symbols_->RegisterPredicate(
        raw.predicate, static_cast<int>(raw.terms.size()));
    if (!pred.ok()) return pred.status();
    Fact fact;
    fact.predicate = pred.value();
    fact.args.reserve(raw.terms.size());
    for (const RawTerm& term : raw.terms) {
      fact.args.push_back(symbols_->InternConstant(term.text));
    }
    return fact;
  }

  util::Result<Rule> ResolveRule(const RawAtom& raw_head,
                                 const std::vector<RawAtom>& raw_body) {
    Rule rule;
    std::unordered_map<std::string, std::uint32_t> var_ids;
    auto resolve_atom = [&](const RawAtom& raw) -> util::Result<Atom> {
      util::Result<PredicateId> pred = symbols_->RegisterPredicate(
          raw.predicate, static_cast<int>(raw.terms.size()));
      if (!pred.ok()) return pred.status();
      Atom atom;
      atom.predicate = pred.value();
      atom.terms.reserve(raw.terms.size());
      for (const RawTerm& term : raw.terms) {
        if (term.is_variable) {
          // '_' is an anonymous variable: every occurrence is fresh.
          if (term.text == "_") {
            const std::uint32_t id = rule.num_variables++;
            rule.variable_names.push_back("_" + std::to_string(id));
            atom.terms.push_back(Term::Variable(id));
            continue;
          }
          auto [it, inserted] = var_ids.emplace(term.text, rule.num_variables);
          if (inserted) {
            ++rule.num_variables;
            rule.variable_names.push_back(term.text);
          }
          atom.terms.push_back(Term::Variable(it->second));
        } else {
          atom.terms.push_back(
              Term::Constant(symbols_->InternConstant(term.text)));
        }
      }
      return atom;
    };

    util::Result<Atom> head = resolve_atom(raw_head);
    if (!head.ok()) return head.status();
    rule.head = std::move(head).value();
    for (const RawAtom& raw : raw_body) {
      util::Result<Atom> atom = resolve_atom(raw);
      if (!atom.ok()) return atom.status();
      rule.body.push_back(std::move(atom).value());
    }
    util::Status safety = rule.CheckSafety();
    if (!safety.ok()) {
      return util::Status::ParseError(
          "at " + std::to_string(raw_head.line) + ":" +
          std::to_string(raw_head.column) + ": " + safety.message());
    }
    return rule;
  }

  std::shared_ptr<SymbolTable> symbols_;
  Lexer lexer_;
  Token current_;
};

}  // namespace

util::Result<ParsedUnit> Parser::ParseUnit(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  ParserImpl impl(symbols, text);
  return impl.Run();
}

util::Result<Program> Parser::ParseProgram(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  util::Result<ParsedUnit> unit = ParseUnit(symbols, text);
  if (!unit.ok()) return unit.status();
  if (!unit.value().facts.empty()) {
    return util::Status::ParseError(
        "expected rules only, but the text contains ground facts");
  }
  return Program::Create(symbols, std::move(unit.value().rules));
}

util::Result<Database> Parser::ParseDatabase(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  util::Result<ParsedUnit> unit = ParseUnit(symbols, text);
  if (!unit.ok()) return unit.status();
  if (!unit.value().rules.empty()) {
    return util::Status::ParseError(
        "expected facts only, but the text contains rules");
  }
  Database db(symbols);
  for (Fact& fact : unit.value().facts) db.Insert(std::move(fact));
  return db;
}

util::Result<Fact> Parser::ParseFact(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  util::Result<ParsedUnit> unit =
      ParseUnit(symbols, std::string(text) + ".");
  if (!unit.ok()) return unit.status();
  if (unit.value().facts.size() != 1 || !unit.value().rules.empty()) {
    return util::Status::ParseError("expected exactly one ground atom");
  }
  return std::move(unit.value().facts.front());
}

}  // namespace whyprov::datalog
