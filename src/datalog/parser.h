#ifndef WHYPROV_DATALOG_PARSER_H_
#define WHYPROV_DATALOG_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "datalog/symbol_table.h"
#include "util/status.h"

namespace whyprov::datalog {

/// Result of parsing a mixed unit: the rules and the ground facts found.
struct ParsedUnit {
  std::vector<Rule> rules;
  std::vector<Fact> facts;
};

/// Recursive-descent parser for the textual Datalog dialect used across
/// the repository (DLV-style):
///
///   path(X, Y) :- edge(X, Y).        % rule; variables start uppercase/_
///   path(X, Y) :- edge(X, Z), path(Z, Y).
///   edge(a, b).                      % ground fact; constants lowercase,
///   edge(1, "two").                  % numeric, or quoted
///
/// Comments run from `%` to end of line. Statements end with `.`.
class Parser {
 public:
  /// Parses a mixed unit of rules and facts. Reports the first error with
  /// line/column position.
  static util::Result<ParsedUnit> ParseUnit(
      const std::shared_ptr<SymbolTable>& symbols, std::string_view text);

  /// Parses rules only (facts present in `text` are an error) and builds a
  /// classified `Program`.
  static util::Result<Program> ParseProgram(
      const std::shared_ptr<SymbolTable>& symbols, std::string_view text);

  /// Parses ground facts only (rules present in `text` are an error) and
  /// builds a `Database`.
  static util::Result<Database> ParseDatabase(
      const std::shared_ptr<SymbolTable>& symbols, std::string_view text);

  /// Parses a single ground atom such as `edge(a, b)` (no trailing dot).
  static util::Result<Fact> ParseFact(
      const std::shared_ptr<SymbolTable>& symbols, std::string_view text);
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_PARSER_H_
