#include "datalog/partition.h"

#include <algorithm>
#include <deque>

namespace whyprov::datalog {

std::vector<PredicateId> DependencyClosure(
    const Program& program, const std::vector<PredicateId>& roots) {
  std::unordered_set<PredicateId> seen(roots.begin(), roots.end());
  std::deque<PredicateId> frontier(roots.begin(), roots.end());
  while (!frontier.empty()) {
    const PredicateId head = frontier.front();
    frontier.pop_front();
    for (const std::size_t rule_index : program.RulesForHead(head)) {
      for (const Atom& atom : program.rules()[rule_index].body) {
        if (seen.insert(atom.predicate).second) {
          frontier.push_back(atom.predicate);
        }
      }
    }
  }
  std::vector<PredicateId> closure(seen.begin(), seen.end());
  std::sort(closure.begin(), closure.end());
  return closure;
}

util::Result<Program> SliceProgram(
    const Program& program,
    const std::unordered_set<PredicateId>& predicates) {
  std::vector<Rule> rules;
  for (const Rule& rule : program.rules()) {
    if (predicates.contains(rule.head.predicate)) rules.push_back(rule);
  }
  return Program::Create(program.symbols_ptr(), std::move(rules));
}

Database SliceDatabase(const Database& database,
                       const std::unordered_set<PredicateId>& predicates) {
  Database slice(database.symbols_ptr());
  for (const Fact& fact : database.facts()) {
    if (predicates.contains(fact.predicate)) slice.Insert(fact);
  }
  return slice;
}

}  // namespace whyprov::datalog
