#ifndef WHYPROV_DATALOG_PARTITION_H_
#define WHYPROV_DATALOG_PARTITION_H_

#include <unordered_set>
#include <vector>

#include "datalog/database.h"
#include "datalog/program.h"
#include "util/status.h"

namespace whyprov::datalog {

/// The downward dependency closure of `roots` in the program's predicate
/// graph: every predicate (intensional or extensional) reachable from a
/// root by following rules head -> body. This is the correctness boundary
/// of model partitioning: the derivations — and hence the why-provenance —
/// of any fact over a root predicate only ever mention predicates in this
/// set, so a model restricted to the closure answers root-predicate
/// queries bit-identically to the full model. Returned ascending by id.
std::vector<PredicateId> DependencyClosure(
    const Program& program, const std::vector<PredicateId>& roots);

/// Restricts `program` to the rules whose head predicate is in
/// `predicates` (a dependency closure, so every body predicate of a kept
/// rule is in the set too). The slice shares the symbol table.
util::Result<Program> SliceProgram(
    const Program& program,
    const std::unordered_set<PredicateId>& predicates);

/// Restricts `database` to the facts whose predicate is in `predicates`,
/// preserving insertion order (so slices evaluate deterministically).
/// The slice shares the symbol table.
Database SliceDatabase(const Database& database,
                       const std::unordered_set<PredicateId>& predicates);

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_PARTITION_H_
