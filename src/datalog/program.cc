#include "datalog/program.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace whyprov::datalog {

std::string ProgramClassName(ProgramClass c) {
  switch (c) {
    case ProgramClass::kNonRecursive:
      return "non-recursive";
    case ProgramClass::kLinearRecursive:
      return "linear, recursive";
    case ProgramClass::kNonLinearRecursive:
      return "non-linear, recursive";
  }
  return "unknown";
}

util::Result<Program> Program::Create(std::shared_ptr<SymbolTable> symbols,
                                      std::vector<Rule> rules) {
  Program program;
  program.symbols_ = std::move(symbols);
  program.rules_ = std::move(rules);

  const std::size_t num_preds = program.symbols_->NumPredicates();
  program.is_intensional_.assign(num_preds, false);
  program.occurs_.assign(num_preds, false);
  program.rules_for_head_.assign(num_preds, {});

  for (std::size_t i = 0; i < program.rules_.size(); ++i) {
    const Rule& rule = program.rules_[i];
    util::Status safety = rule.CheckSafety();
    if (!safety.ok()) {
      return util::Status::Error("rule " + std::to_string(i) + ": " +
                                 safety.message());
    }
    program.is_intensional_[rule.head.predicate] = true;
    program.occurs_[rule.head.predicate] = true;
    program.rules_for_head_[rule.head.predicate].push_back(i);
    program.max_body_size_ =
        std::max(program.max_body_size_, rule.body.size());
    for (const Atom& atom : rule.body) program.occurs_[atom.predicate] = true;
  }

  program.AnalyzeGraph();
  return program;
}

void Program::AnalyzeGraph() {
  const std::size_t n = symbols_->NumPredicates();

  // Predicate graph: edge R -> P when R occurs in the body of a rule with
  // head P. Adjacency as "P depends on R" lists for the cycle check.
  std::vector<std::vector<PredicateId>> deps(n);
  for (const Rule& rule : rules_) {
    std::size_t intensional_body_atoms = 0;
    for (const Atom& atom : rule.body) {
      deps[rule.head.predicate].push_back(atom.predicate);
      if (is_intensional_[atom.predicate]) ++intensional_body_atoms;
    }
    if (intensional_body_atoms > 1) linear_ = false;
  }

  // Iterative three-colour DFS for cycle detection and reverse
  // post-order (gives a dependencies-first topological order when acyclic;
  // for cyclic graphs the order is still usable as a heuristic).
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> colour(n, kWhite);
  std::vector<PredicateId> post_order;
  post_order.reserve(n);

  for (PredicateId root = 0; root < n; ++root) {
    if (!occurs_[root] || colour[root] != kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<PredicateId, std::size_t>> stack;
    stack.emplace_back(root, 0);
    colour[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, child_index] = stack.back();
      if (child_index < deps[node].size()) {
        const PredicateId child = deps[node][child_index++];
        if (colour[child] == kGrey) {
          recursive_ = true;
        } else if (colour[child] == kWhite) {
          colour[child] = kGrey;
          stack.emplace_back(child, 0);
        }
      } else {
        colour[node] = kBlack;
        post_order.push_back(node);
        stack.pop_back();
      }
    }
  }
  // post_order lists dependencies before dependents already (children are
  // finished before their parents).
  stratum_order_ = std::move(post_order);
}

std::vector<PredicateId> Program::ExtensionalPredicates() const {
  std::vector<PredicateId> result;
  for (PredicateId p = 0; p < occurs_.size(); ++p) {
    if (occurs_[p] && !is_intensional_[p]) result.push_back(p);
  }
  return result;
}

std::vector<PredicateId> Program::IntensionalPredicates() const {
  std::vector<PredicateId> result;
  for (PredicateId p = 0; p < is_intensional_.size(); ++p) {
    if (is_intensional_[p]) result.push_back(p);
  }
  return result;
}

const std::vector<std::size_t>& Program::RulesForHead(PredicateId p) const {
  static const std::vector<std::size_t> kEmpty;
  if (p >= rules_for_head_.size()) return kEmpty;
  return rules_for_head_[p];
}

ProgramClass Program::Classification() const {
  if (!recursive_) return ProgramClass::kNonRecursive;
  return linear_ ? ProgramClass::kLinearRecursive
                 : ProgramClass::kNonLinearRecursive;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += RuleToString(rule, *symbols_);
    out += '\n';
  }
  return out;
}

}  // namespace whyprov::datalog
