#ifndef WHYPROV_DATALOG_PROGRAM_H_
#define WHYPROV_DATALOG_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/symbol_table.h"
#include "util/status.h"

namespace whyprov::datalog {

/// Syntactic class of a Datalog program (Section 2 of the paper).
enum class ProgramClass {
  /// Acyclic predicate graph: no recursion at all (NRDat).
  kNonRecursive,
  /// Recursive, but every rule has at most one intensional body atom (LDat).
  kLinearRecursive,
  /// Recursive with some rule containing >= 2 intensional body atoms (Dat).
  kNonLinearRecursive,
};

/// Human-readable name of a program class, e.g. "linear, recursive".
std::string ProgramClassName(ProgramClass c);

/// A Datalog program: a finite set of safe rules over a shared symbol
/// table, with the derived schema information (extensional/intensional
/// predicates, predicate dependency graph, classification) precomputed.
class Program {
 public:
  /// Builds a program from `rules`. Fails if any rule is unsafe.
  static util::Result<Program> Create(std::shared_ptr<SymbolTable> symbols,
                                      std::vector<Rule> rules);

  /// The shared symbol table.
  const SymbolTable& symbols() const { return *symbols_; }

  /// The shared symbol table handle (for constructing sibling objects).
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

  /// The rules, in source order.
  const std::vector<Rule>& rules() const { return rules_; }

  /// True iff `p` occurs in the head of some rule (intensional predicate).
  bool IsIntensional(PredicateId p) const {
    return p < is_intensional_.size() && is_intensional_[p];
  }

  /// True iff `p` occurs in the program but never in a head.
  bool IsExtensional(PredicateId p) const {
    return p < occurs_.size() && occurs_[p] && !IsIntensional(p);
  }

  /// All extensional predicates, ascending by id (edb(Sigma)).
  std::vector<PredicateId> ExtensionalPredicates() const;

  /// All intensional predicates, ascending by id (idb(Sigma)).
  std::vector<PredicateId> IntensionalPredicates() const;

  /// Rule indices whose head predicate is `p`.
  const std::vector<std::size_t>& RulesForHead(PredicateId p) const;

  /// True iff every rule has at most one intensional body atom.
  bool IsLinear() const { return linear_; }

  /// True iff the predicate graph has a cycle.
  bool IsRecursive() const { return recursive_; }

  /// The syntactic classification.
  ProgramClass Classification() const;

  /// Maximum number of body atoms over all rules (the `b` of the proofs).
  std::size_t MaxBodySize() const { return max_body_size_; }

  /// Predicates in a topological order of the predicate graph's strongly
  /// connected components (dependencies first). For non-recursive programs
  /// this is a plain topological order.
  const std::vector<PredicateId>& StratumOrder() const {
    return stratum_order_;
  }

  /// Renders all rules, one per line.
  std::string ToString() const;

 private:
  Program() = default;
  void AnalyzeGraph();

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Rule> rules_;
  std::vector<bool> is_intensional_;  // indexed by PredicateId
  std::vector<bool> occurs_;          // predicate occurs in the program
  std::vector<std::vector<std::size_t>> rules_for_head_;
  std::vector<PredicateId> stratum_order_;
  bool linear_ = true;
  bool recursive_ = false;
  std::size_t max_body_size_ = 0;
};

/// A Datalog query Q = (Sigma, R): a program plus a distinguished
/// intensional answer predicate.
struct Query {
  Program program;
  PredicateId answer_predicate = 0;
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_PROGRAM_H_
