#include "datalog/symbol_table.h"

#include <utility>

namespace whyprov::datalog {

SymbolId SymbolTable::InternConstant(std::string_view name) {
  auto it = constant_ids_.find(std::string(name));
  if (it != constant_ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(constants_.size());
  constants_.emplace_back(name);
  constant_ids_.emplace(constants_.back(), id);
  return id;
}

util::Result<PredicateId> SymbolTable::RegisterPredicate(std::string_view name,
                                                         int arity) {
  auto it = predicate_ids_.find(std::string(name));
  if (it != predicate_ids_.end()) {
    const PredicateInfo& info = predicates_[it->second];
    if (info.arity != arity) {
      return util::Status::Error("predicate '" + std::string(name) +
                                 "' used with arity " + std::to_string(arity) +
                                 " but registered with arity " +
                                 std::to_string(info.arity));
    }
    return it->second;
  }
  const PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{std::string(name), arity});
  predicate_ids_.emplace(std::string(name), id);
  return id;
}

util::Result<PredicateId> SymbolTable::FindPredicate(
    std::string_view name) const {
  auto it = predicate_ids_.find(std::string(name));
  if (it == predicate_ids_.end()) {
    return util::Status::Error("unknown predicate '" + std::string(name) +
                               "'");
  }
  return it->second;
}

}  // namespace whyprov::datalog
