#ifndef WHYPROV_DATALOG_SYMBOL_TABLE_H_
#define WHYPROV_DATALOG_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace whyprov::datalog {

/// Dense identifier of an interned constant.
using SymbolId = std::uint32_t;

/// Dense identifier of a registered predicate (name + arity).
using PredicateId = std::uint32_t;

/// Metadata of a registered predicate.
struct PredicateInfo {
  std::string name;
  int arity = 0;
};

/// Interning table for the constants and predicates of one Datalog
/// workspace. All `Program`, `Database`, and derived structures of a
/// workspace share one table (usually via `std::shared_ptr`), so constants
/// and predicates compare by dense integer id everywhere.
class SymbolTable {
 public:
  SymbolTable() = default;

  // The table is referenced by id from many places; accidental copies would
  // silently fork the id space, so copying is disabled.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns a constant, returning its id (existing or fresh).
  SymbolId InternConstant(std::string_view name);

  /// Returns the spelling of constant `id`.
  const std::string& ConstantName(SymbolId id) const {
    return constants_[id];
  }

  /// Number of interned constants.
  std::size_t NumConstants() const { return constants_.size(); }

  /// Registers (or finds) a predicate with the given name and arity.
  /// Fails if `name` was previously registered with a different arity.
  util::Result<PredicateId> RegisterPredicate(std::string_view name,
                                              int arity);

  /// Looks up a predicate by name; returns nullopt-like failure when absent.
  util::Result<PredicateId> FindPredicate(std::string_view name) const;

  /// Returns metadata of predicate `id`.
  const PredicateInfo& Predicate(PredicateId id) const {
    return predicates_[id];
  }

  /// Number of registered predicates.
  std::size_t NumPredicates() const { return predicates_.size(); }

 private:
  std::vector<std::string> constants_;
  std::unordered_map<std::string, SymbolId> constant_ids_;
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_ids_;
};

}  // namespace whyprov::datalog

#endif  // WHYPROV_DATALOG_SYMBOL_TABLE_H_
