#include "engine/engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "datalog/parser.h"
#include "provenance/proof_dag.h"
#include "sat/solver_factory.h"

namespace whyprov {

namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

namespace {

dl::Model EvaluateTimed(const dl::Program& program,
                        const dl::Database& database, double* seconds) {
  util::Timer timer;
  dl::Model model = dl::Evaluator::Evaluate(program, database);
  *seconds = timer.ElapsedSeconds();
  return model;
}

}  // namespace

// --- Enumeration ---------------------------------------------------------

std::optional<std::vector<dl::Fact>> Enumeration::Next() {
  if (exhausted_ || hit_member_cap_ || hit_timeout_) return std::nullopt;
  if (emitted_ >= max_members_) {
    hit_member_cap_ = true;
    return std::nullopt;
  }
  if (timeout_seconds_ > 0 && clock_.ElapsedSeconds() > timeout_seconds_) {
    hit_timeout_ = true;
    return std::nullopt;
  }
  std::optional<std::vector<dl::Fact>> member = impl_->Next();
  if (!member.has_value()) {
    exhausted_ = true;
    return std::nullopt;
  }
  ++emitted_;
  return member;
}

std::vector<std::vector<dl::Fact>> Enumeration::All() {
  std::vector<std::vector<dl::Fact>> members;
  for (std::optional<std::vector<dl::Fact>> member = Next();
       member.has_value(); member = Next()) {
    members.push_back(std::move(*member));
  }
  return members;
}

util::Result<pv::ProofTree> Enumeration::ExplainLast(
    std::size_t max_tree_nodes) const {
  if (emitted_ == 0) {
    return util::Status::NotFound(
        "no member has been emitted yet; call Next() first");
  }
  const pv::CompressedDag dag(&impl_->closure(),
                              impl_->last_witness_choices());
  return dag.UnravelToProofTree(*program_, *model_, max_tree_nodes);
}

// --- Engine --------------------------------------------------------------

Engine::Engine(dl::Program program, dl::Database database,
               dl::PredicateId answer_predicate, EngineOptions options)
    : program_(std::move(program)),
      database_(std::move(database)),
      answer_predicate_(answer_predicate),
      options_(std::move(options)),
      model_(EvaluateTimed(program_, database_, &eval_seconds_)) {}

util::Result<Engine> Engine::FromText(std::string_view program_text,
                                      std::string_view database_text,
                                      std::string_view answer_predicate,
                                      EngineOptions options) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  util::Result<dl::Program> program =
      dl::Parser::ParseProgram(symbols, program_text);
  if (!program.ok()) return program.status();
  util::Result<dl::Database> database =
      dl::Parser::ParseDatabase(symbols, database_text);
  if (!database.ok()) return database.status();
  util::Result<dl::PredicateId> predicate =
      symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) {
    return util::Status::NotFound("answer predicate '" +
                                  std::string(answer_predicate) +
                                  "' does not occur in the program");
  }
  if (!program.value().IsIntensional(predicate.value())) {
    return util::Status::InvalidArgument("answer predicate '" +
                                         std::string(answer_predicate) +
                                         "' is not intensional");
  }
  if (!sat::SolverFactory::Instance().Has(options.solver_backend)) {
    return util::Status::NotFound("unknown SAT backend '" +
                                  options.solver_backend + "'");
  }
  return Engine(std::move(program).value(), std::move(database).value(),
                predicate.value(), std::move(options));
}

Engine Engine::FromParts(dl::Program program, dl::Database database,
                         dl::PredicateId answer_predicate,
                         EngineOptions options) {
  return Engine(std::move(program), std::move(database), answer_predicate,
                std::move(options));
}

std::vector<dl::FactId> Engine::AnswerFactIds() const {
  return model_.Relation(answer_predicate_);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count) const {
  util::Rng rng(options_.sampling_seed);
  return SampleAnswers(count, rng);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count,
                                              util::Rng& rng) const {
  std::vector<dl::FactId> answers = AnswerFactIds();
  rng.Shuffle(answers);
  if (answers.size() > count) answers.resize(count);
  return answers;
}

util::Result<dl::FactId> Engine::FactIdOf(std::string_view fact_text) const {
  util::Result<dl::Fact> fact =
      dl::Parser::ParseFact(database_.symbols_ptr(), fact_text);
  if (!fact.ok()) return fact.status();
  auto id = model_.Find(fact.value());
  if (!id.has_value()) {
    return util::Status::NotFound("fact '" + std::string(fact_text) +
                                  "' is not derivable");
  }
  return *id;
}

std::string Engine::FactToText(dl::FactId id) const {
  return dl::FactToString(model_.fact(id), program_.symbols());
}

std::string Engine::FactToText(const dl::Fact& fact) const {
  return dl::FactToString(fact, program_.symbols());
}

util::Result<dl::FactId> Engine::ResolveTarget(
    dl::FactId target, const std::string& target_text) const {
  if (target != dl::kInvalidFact) return target;
  if (target_text.empty()) {
    return util::Status::InvalidArgument(
        "the request names no target: set `target` or `target_text`");
  }
  return FactIdOf(target_text);
}

util::Result<Enumeration> Engine::Enumerate(
    const EnumerateRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  const std::string& backend = request.solver_backend.empty()
                                   ? options_.solver_backend
                                   : request.solver_backend;
  auto solver =
      sat::SolverFactory::Instance().Create(backend, options_.solver);
  if (!solver.ok()) return solver.status();
  pv::WhyProvenanceEnumerator::Options enumerator_options;
  enumerator_options.acyclicity =
      request.acyclicity.value_or(options_.acyclicity);
  auto impl = std::make_unique<pv::WhyProvenanceEnumerator>(
      program_, model_, target.value(), enumerator_options,
      std::move(solver).value());
  return Enumeration(&program_, &model_, std::move(impl), target.value(),
                     request.max_members, request.timeout_seconds);
}

util::Result<bool> Engine::Decide(const DecideRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  if (request.tree_class == pv::TreeClass::kUnambiguous) {
    const std::string& backend = request.solver_backend.empty()
                                     ? options_.solver_backend
                                     : request.solver_backend;
    auto solver =
        sat::SolverFactory::Instance().Create(backend, options_.solver);
    if (!solver.ok()) return solver.status();
    // Propagates kResourceExhausted when the backend gives up instead of
    // misreporting "not a member".
    return pv::IsWhyUnMemberSat(
        program_, model_, target.value(), request.candidate,
        request.acyclicity.value_or(options_.acyclicity), *solver.value());
  }
  util::Result<pv::ProvenanceFamily> family = pv::EnumerateWhyExhaustive(
      program_, model_, target.value(), request.tree_class,
      options_.baseline_limits);
  if (!family.ok()) return family.status();
  std::vector<dl::Fact> candidate = request.candidate;
  std::sort(candidate.begin(), candidate.end());
  return family.value().contains(candidate);
}

util::Result<pv::ProvenanceFamily> Engine::Baseline(
    const BaselineRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  return pv::ComputeWhyAllAtOnce(
      program_, model_, target.value(),
      request.limits.value_or(options_.baseline_limits));
}

util::Result<Explanation> Engine::Explain(
    const ExplainRequest& request) const {
  EnumerateRequest enumerate;
  enumerate.target = request.target;
  enumerate.target_text = request.target_text;
  enumerate.max_members = request.member_index + 1;
  enumerate.acyclicity = request.acyclicity;
  enumerate.solver_backend = request.solver_backend;
  util::Result<Enumeration> enumeration = Enumerate(enumerate);
  if (!enumeration.ok()) return enumeration.status();
  std::optional<std::vector<dl::Fact>> member;
  for (std::size_t i = 0; i <= request.member_index; ++i) {
    member = enumeration.value().Next();
    if (!member.has_value()) {
      return util::Status::NotFound(
          "the enumeration has only " +
          std::to_string(enumeration.value().members_emitted()) +
          " member(s); cannot explain member index " +
          std::to_string(request.member_index));
    }
  }
  util::Result<pv::ProofTree> tree =
      enumeration.value().ExplainLast(request.max_tree_nodes);
  if (!tree.ok()) return tree.status();
  return Explanation{std::move(*member), std::move(tree).value()};
}

}  // namespace whyprov
