#include "engine/engine.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "datalog/incremental.h"
#include "datalog/parser.h"
#include "provenance/proof_dag.h"
#include "sat/solver_factory.h"
#include "util/executor.h"

namespace whyprov {

namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

namespace {

dl::Model EvaluateTimed(const dl::Program& program,
                        const dl::Database& database, double* seconds) {
  util::Timer timer;
  dl::Model model = dl::Evaluator::Evaluate(program, database);
  *seconds = timer.ElapsedSeconds();
  return model;
}

/// Instantiates the request's backend (or the engine default) with the
/// engine's solver tuning.
util::Result<std::unique_ptr<sat::SolverInterface>> MakeSolver(
    const EngineState& state, const std::string& request_backend) {
  const std::string& backend =
      request_backend.empty() ? state.options.solver_backend : request_backend;
  return sat::SolverFactory::Instance().Create(backend, state.options.solver);
}

/// The SAT Decide step against a prepared plan (kUnambiguous only).
util::Result<bool> ExecuteDecideSat(const EngineState& state,
                                    const pv::QueryPlan& plan,
                                    const DecideRequest& request) {
  if (request.cancellation.ShouldStop()) {
    return request.cancellation.InterruptionStatus();
  }
  auto solver = MakeSolver(state, request.solver_backend);
  if (!solver.ok()) return solver.status();
  if (request.cancellation.valid()) {
    solver.value()->SetInterruptCheck(
        [token = request.cancellation] { return token.ShouldStop(); });
    if (const auto deadline = request.cancellation.deadline()) {
      solver.value()->SetDeadlineHint(*deadline);
    }
  }
  util::Result<bool> verdict = pv::IsWhyUnMemberPrepared(
      plan, state.model, request.candidate, *solver.value());
  // An interrupted solve surfaces as the backend "giving up"; reclassify
  // it as the interruption the caller asked for.
  if (!verdict.ok() && request.cancellation.ShouldStop()) {
    return request.cancellation.InterruptionStatus();
  }
  // Propagates kResourceExhausted when the backend gives up instead of
  // misreporting "not a member".
  return verdict;
}

/// The exhaustive-reference Decide step; needs no plan (and must not
/// trigger a closure+encode compile just to learn the target).
util::Result<bool> ExecuteDecideExhaustive(const EngineState& state,
                                           dl::FactId target,
                                           const DecideRequest& request) {
  util::Result<pv::ProvenanceFamily> family = pv::EnumerateWhyExhaustive(
      state.program, state.model, target, request.tree_class,
      state.options.baseline_limits);
  if (!family.ok()) return family.status();
  std::vector<dl::Fact> candidate = request.candidate;
  std::sort(candidate.begin(), candidate.end());
  return family.value().contains(candidate);
}

/// The shared Explain tail: advance the enumeration to the requested
/// member and reconstruct its witnessing tree.
util::Result<Explanation> ExplainVia(util::Result<Enumeration> enumeration,
                                     const ExplainRequest& request) {
  if (!enumeration.ok()) return enumeration.status();
  std::optional<std::vector<dl::Fact>> member;
  for (std::size_t i = 0; i <= request.member_index; ++i) {
    member = enumeration.value().Next();
    if (!member.has_value()) {
      const util::Status interrupted =
          enumeration.value().interruption_status();
      if (!interrupted.ok()) return interrupted;
      return util::Status::NotFound(
          "the enumeration has only " +
          std::to_string(enumeration.value().members_emitted()) +
          " member(s); cannot explain member index " +
          std::to_string(request.member_index));
    }
  }
  util::Result<pv::ProofTree> tree =
      enumeration.value().ExplainLast(request.max_tree_nodes);
  if (!tree.ok()) return tree.status();
  return Explanation{std::move(*member), std::move(tree).value()};
}

/// Turns an ExplainRequest into the enumeration that serves it.
EnumerateRequest EnumerateRequestFor(const ExplainRequest& request) {
  EnumerateRequest enumerate;
  enumerate.target = request.target;
  enumerate.target_text = request.target_text;
  enumerate.max_members = request.member_index + 1;
  enumerate.acyclicity = request.acyclicity;
  enumerate.solver_backend = request.solver_backend;
  enumerate.cancellation = request.cancellation;
  return enumerate;
}

/// Fills the aggregate batch counters common to both batch flavours.
void FinishBatchStats(const PlanCacheStats& before,
                      const PlanCacheStats& after, double wall_seconds,
                      std::size_t requests, BatchStats& stats) {
  stats.requests = requests;
  stats.wall_seconds = wall_seconds;
  stats.queries_per_second =
      wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0;
  stats.plan_cache_hits = after.hits - before.hits;
  stats.plan_cache_misses = after.misses - before.misses;
}

}  // namespace

// --- EngineState ---------------------------------------------------------

EngineState::EngineState(dl::Program program_in, dl::Database database_in,
                         dl::PredicateId answer_predicate_in,
                         EngineOptions options_in)
    : program(std::move(program_in)),
      answer_predicate(answer_predicate_in),
      options(std::move(options_in)),
      model(EvaluateTimed(program, database_in, &eval_seconds)),
      parse_mutex(options.parse_mutex ? options.parse_mutex
                                      : std::make_shared<util::Mutex>()),
      plan_cache(options.plan_cache_capacity),
      accounting(std::make_shared<SnapshotAccounting>()),
      database_(std::move(database_in)) {
  accounted_bytes_ = model.ApproxRetainedBytes();
  accounting->retained.fetch_add(1, std::memory_order_relaxed);
  accounting->bytes.fetch_add(accounted_bytes_, std::memory_order_relaxed);
}

EngineState::EngineState(const EngineState& predecessor, dl::Model model_in,
                         std::uint64_t model_version_in,
                         double eval_seconds_in)
    : program(predecessor.program),
      answer_predicate(predecessor.answer_predicate),
      options(predecessor.options),
      model_version(model_version_in),
      eval_seconds(eval_seconds_in),
      model(std::move(model_in)),
      parse_mutex(predecessor.parse_mutex),
      plan_cache(options.plan_cache_capacity,
                 predecessor.plan_cache.stats()),
      accounting(predecessor.accounting) {
  // At-birth attribution, sharer-weighted: chunks this delta cloned or
  // appended count (nearly) in full, storage still shared with older
  // versions counts at its shared fraction. Summing over retained
  // versions therefore approximates the chain's footprint without
  // re-walking old snapshots.
  accounted_bytes_ = model.ApproxRetainedBytes();
  accounting->retained.fetch_add(1, std::memory_order_relaxed);
  accounting->bytes.fetch_add(accounted_bytes_, std::memory_order_relaxed);
}

EngineState::~EngineState() {
  accounting->retained.fetch_sub(1, std::memory_order_relaxed);
  accounting->bytes.fetch_sub(accounted_bytes_, std::memory_order_relaxed);
}

const dl::Database& EngineState::database() const {
  const dl::Database* view = nullptr;
  {
    const util::MutexLock lock(database_mutex_);
    if (!database_.has_value()) {
      // The live rank-0 facts of the model are exactly the database of
      // this version; materialise the view once, on first demand.
      dl::Database database(model.symbols_ptr());
      for (dl::FactId id = 0; id < model.size(); ++id) {
        if (model.alive(id) && model.rank(id) == 0) {
          database.Insert(model.fact(id));
        }
      }
      database_.emplace(std::move(database));
    }
    // Write-once: the materialised view is never replaced, so the
    // reference stays valid after the lock is released.
    view = &*database_;
  }
  return *view;
}

bool EngineState::InDatabase(const dl::Fact& fact) const {
  const auto id = model.Find(fact);
  return id.has_value() && model.rank(*id) == 0;
}

std::shared_ptr<const pv::QueryPlan> EngineState::PlanFor(
    dl::FactId target, pv::AcyclicityEncoding acyclicity) const {
  // Single-flight: concurrent misses on one target (the post-delta
  // stampede, when every hot plan was just invalidated) compile the plan
  // once and share it instead of each paying the closure+encode cost.
  return plan_cache.GetOrBuild(target, acyclicity, model_version, [&] {
    pv::CnfEncoder::Options encoder_options;
    encoder_options.acyclicity = acyclicity;
    sat::SimplifyOptions simplify;
    simplify.mode = options.plan_simplify;
    auto plan = pv::QueryPlan::Build(program, model, target, encoder_options,
                                     simplify);
    plan->set_model_version(model_version);
    if (plan->simplified()) plan_cache.RecordSimplify(plan->simplify_stats());
    return plan;
  });
}

// --- Enumeration ---------------------------------------------------------

std::optional<std::vector<dl::Fact>> Enumeration::Next() {
  if (exhausted_ || hit_member_cap_ || hit_timeout_ || cancelled_ ||
      hit_deadline_) {
    return std::nullopt;
  }
  if (cancel_.cancelled()) {
    cancelled_ = true;
    return std::nullopt;
  }
  if (cancel_.expired()) {
    hit_deadline_ = true;
    return std::nullopt;
  }
  if (emitted_ >= max_members_) {
    hit_member_cap_ = true;
    return std::nullopt;
  }
  if (timeout_seconds_ > 0 && clock_.ElapsedSeconds() > timeout_seconds_) {
    hit_timeout_ = true;
    return std::nullopt;
  }
  std::optional<std::vector<dl::Fact>> member = impl_->Next();
  if (!member.has_value()) {
    if (impl_->interrupted()) {
      // The token fired mid-solve; explicit cancel wins the classification
      // (both can be true when a cancelled request also had a deadline).
      if (cancel_.cancelled()) {
        cancelled_ = true;
      } else {
        hit_deadline_ = true;
      }
      return std::nullopt;
    }
    exhausted_ = true;
    return std::nullopt;
  }
  ++emitted_;
  return member;
}

std::vector<std::vector<dl::Fact>> Enumeration::All() {
  std::vector<std::vector<dl::Fact>> members;
  for (std::optional<std::vector<dl::Fact>> member = Next();
       member.has_value(); member = Next()) {
    members.push_back(std::move(*member));
  }
  return members;
}

util::Result<pv::ProofTree> Enumeration::ExplainLast(
    std::size_t max_tree_nodes) const {
  if (emitted_ == 0) {
    return util::Status::NotFound(
        "no member has been emitted yet; call Next() first");
  }
  const pv::CompressedDag dag(&impl_->closure(),
                              impl_->last_witness_choices());
  return dag.UnravelToProofTree(state_->program, state_->model,
                                max_tree_nodes);
}

// --- PreparedQuery -------------------------------------------------------

util::Result<Enumeration> PreparedQuery::ExecutePlan(
    std::shared_ptr<const EngineState> state,
    std::shared_ptr<const pv::QueryPlan> plan,
    const EnumerateRequest& request) {
  auto solver = MakeSolver(*state, request.solver_backend);
  if (!solver.ok()) return solver.status();
  const dl::FactId target = plan->target();
  auto impl = std::make_unique<pv::WhyProvenanceEnumerator>(
      state->model, std::move(plan), std::move(solver).value());
  impl->SetCancellation(request.cancellation);
  return Enumeration(std::move(state), std::move(impl), target,
                     request.max_members, request.timeout_seconds,
                     request.cancellation);
}

dl::FactId PreparedQuery::target() const { return plan_->target(); }

std::string PreparedQuery::target_text() const {
  const util::MutexLock lock(*state_->parse_mutex);
  return dl::FactToString(state_->model.fact(plan_->target()),
                          state_->program.symbols());
}

pv::AcyclicityEncoding PreparedQuery::acyclicity() const {
  return plan_->acyclicity();
}

const pv::PlanTimings& PreparedQuery::timings() const {
  return plan_->timings();
}

const pv::DownwardClosure& PreparedQuery::closure() const {
  return plan_->closure();
}

const pv::Encoding& PreparedQuery::encoding() const {
  return plan_->encoding();
}

const sat::CnfFormula& PreparedQuery::formula() const {
  return plan_->formula();
}

util::Result<Enumeration> PreparedQuery::Enumerate(
    const EnumerateRequest& request) const {
  return ExecutePlan(state_, plan_, request);
}

util::Result<bool> PreparedQuery::Decide(const DecideRequest& request) const {
  if (request.tree_class == pv::TreeClass::kUnambiguous) {
    return ExecuteDecideSat(*state_, *plan_, request);
  }
  return ExecuteDecideExhaustive(*state_, plan_->target(), request);
}

util::Result<Explanation> PreparedQuery::Explain(
    const ExplainRequest& request) const {
  return ExplainVia(Enumerate(EnumerateRequestFor(request)), request);
}

// --- Engine --------------------------------------------------------------

Engine::Engine(dl::Program program, dl::Database database,
               dl::PredicateId answer_predicate, EngineOptions options)
    : state_(std::make_shared<EngineState>(std::move(program),
                                           std::move(database),
                                           answer_predicate,
                                           std::move(options))) {}

util::Result<Engine> Engine::FromText(std::string_view program_text,
                                      std::string_view database_text,
                                      std::string_view answer_predicate,
                                      EngineOptions options) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  util::Result<dl::Program> program =
      dl::Parser::ParseProgram(symbols, program_text);
  if (!program.ok()) return program.status();
  util::Result<dl::Database> database =
      dl::Parser::ParseDatabase(symbols, database_text);
  if (!database.ok()) return database.status();
  util::Result<dl::PredicateId> predicate =
      symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) {
    return util::Status::NotFound("answer predicate '" +
                                  std::string(answer_predicate) +
                                  "' does not occur in the program");
  }
  if (!program.value().IsIntensional(predicate.value())) {
    return util::Status::InvalidArgument("answer predicate '" +
                                         std::string(answer_predicate) +
                                         "' is not intensional");
  }
  if (!sat::SolverFactory::Instance().Has(options.solver_backend)) {
    return util::Status::NotFound("unknown SAT backend '" +
                                  options.solver_backend + "'");
  }
  return Engine(std::move(program).value(), std::move(database).value(),
                predicate.value(), std::move(options));
}

Engine Engine::FromParts(dl::Program program, dl::Database database,
                         dl::PredicateId answer_predicate,
                         EngineOptions options) {
  return Engine(std::move(program), std::move(database), answer_predicate,
                std::move(options));
}

std::vector<dl::FactId> Engine::AnswerFactIds() const {
  const auto state = snapshot();
  return state->model.Relation(state->answer_predicate);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count) const {
  util::Rng rng(snapshot()->options.sampling_seed);
  return SampleAnswers(count, rng);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count,
                                              util::Rng& rng) const {
  std::vector<dl::FactId> answers = AnswerFactIds();
  rng.Shuffle(answers);
  if (answers.size() > count) answers.resize(count);
  return answers;
}

namespace {

/// FactIdOf against a pinned state snapshot.
util::Result<dl::FactId> FactIdOn(const EngineState& state,
                                  std::string_view fact_text) {
  // ParseFact interns constants into the shared symbol table, so parses
  // must not run concurrently (the lock is shared by all state versions).
  const util::MutexLock lock(*state.parse_mutex);
  util::Result<dl::Fact> fact =
      dl::Parser::ParseFact(state.model.symbols_ptr(), fact_text);
  if (!fact.ok()) return fact.status();
  auto id = state.model.Find(fact.value());
  if (!id.has_value()) {
    return util::Status::NotFound("fact '" + std::string(fact_text) +
                                  "' is not derivable");
  }
  return *id;
}

}  // namespace

util::Result<dl::FactId> Engine::FactIdOf(std::string_view fact_text) const {
  return FactIdOn(*snapshot(), fact_text);
}

PlanCostPeek Engine::PeekPlanCost(
    dl::FactId target, const std::string& target_text,
    std::optional<pv::AcyclicityEncoding> acyclicity) const {
  PlanCostPeek peek;
  const auto state = snapshot();
  peek.database_facts = state->database().facts().size();
  util::Result<dl::FactId> resolved =
      ResolveTarget(*state, target, target_text);
  if (!resolved.ok()) return peek;  // unknown target: fallback pricing
  const std::shared_ptr<const pv::QueryPlan> plan =
      state->plan_cache.Peek(
          resolved.value(),
          acyclicity.value_or(state->options.acyclicity),
          state->model_version);
  if (plan == nullptr) return peek;
  peek.plan_cached = true;
  peek.closure_facts = plan->closure().nodes().size();
  peek.cnf_clauses = plan->formula().num_clauses();
  peek.cnf_variables = static_cast<std::size_t>(
      plan->formula().num_vars > 0 ? plan->formula().num_vars : 0);
  return peek;
}

std::string Engine::FactToText(dl::FactId id) const {
  const auto state = snapshot();
  // Rendering reads the symbol table FactIdOf may be interning into from
  // another thread, so it takes the same lock.
  const util::MutexLock lock(*state->parse_mutex);
  return dl::FactToString(state->model.fact(id), state->program.symbols());
}

std::string Engine::FactToText(const dl::Fact& fact) const {
  const auto state = snapshot();
  const util::MutexLock lock(*state->parse_mutex);
  return dl::FactToString(fact, state->program.symbols());
}

util::Result<dl::FactId> Engine::ResolveTarget(
    const EngineState& state, dl::FactId target,
    const std::string& target_text) {
  if (target != dl::kInvalidFact) return target;
  if (target_text.empty()) {
    return util::Status::InvalidArgument(
        "the request names no target: set `target` or `target_text`");
  }
  return FactIdOn(state, target_text);
}

util::Result<PreparedQuery> Engine::Prepare(
    const PrepareRequest& request) const {
  auto state = snapshot();
  util::Result<dl::FactId> target =
      ResolveTarget(*state, request.target, request.target_text);
  if (!target.ok()) return target.status();
  auto plan = state->PlanFor(
      target.value(), request.acyclicity.value_or(state->options.acyclicity));
  return PreparedQuery(std::move(state), std::move(plan));
}

util::Result<PreparedQuery> Engine::Prepare(dl::FactId target) const {
  PrepareRequest request;
  request.target = target;
  return Prepare(request);
}

util::Result<PreparedQuery> Engine::Prepare(
    std::string_view target_text) const {
  PrepareRequest request;
  request.target_text = std::string(target_text);
  return Prepare(request);
}

util::Result<Enumeration> Engine::EnumerateOn(
    std::shared_ptr<const EngineState> state,
    const EnumerateRequest& request) {
  util::Result<dl::FactId> target =
      ResolveTarget(*state, request.target, request.target_text);
  if (!target.ok()) return target.status();
  auto plan = state->PlanFor(
      target.value(), request.acyclicity.value_or(state->options.acyclicity));
  return PreparedQuery::ExecutePlan(std::move(state), std::move(plan),
                                    request);
}

util::Result<Enumeration> Engine::Enumerate(
    const EnumerateRequest& request) const {
  return EnumerateOn(snapshot(), request);
}

util::Result<bool> Engine::DecideOn(
    const std::shared_ptr<const EngineState>& state,
    const DecideRequest& request) {
  util::Result<dl::FactId> target =
      ResolveTarget(*state, request.target, request.target_text);
  if (!target.ok()) return target.status();
  // Only the SAT path consumes a plan; the exhaustive reference
  // algorithms must not pay (or cache-pollute with) a closure+encode.
  if (request.tree_class != pv::TreeClass::kUnambiguous) {
    return ExecuteDecideExhaustive(*state, target.value(), request);
  }
  auto plan = state->PlanFor(
      target.value(), request.acyclicity.value_or(state->options.acyclicity));
  return ExecuteDecideSat(*state, *plan, request);
}

util::Result<bool> Engine::Decide(const DecideRequest& request) const {
  return DecideOn(snapshot(), request);
}

util::Result<pv::ProvenanceFamily> Engine::Baseline(
    const BaselineRequest& request) const {
  const auto state = snapshot();
  util::Result<dl::FactId> target =
      ResolveTarget(*state, request.target, request.target_text);
  if (!target.ok()) return target.status();
  return pv::ComputeWhyAllAtOnce(
      state->program, state->model, target.value(),
      request.limits.value_or(state->options.baseline_limits));
}

util::Result<Explanation> Engine::Explain(
    const ExplainRequest& request) const {
  return ExplainVia(Enumerate(EnumerateRequestFor(request)), request);
}

// --- incremental updates -------------------------------------------------

namespace {

/// Parses the request's text-form facts and appends them to `facts`.
util::Status ParseDeltaFacts(const EngineState& state,
                             const std::vector<std::string>& texts,
                             std::vector<dl::Fact>& facts) {
  for (const std::string& text : texts) {
    util::Result<dl::Fact> fact =
        dl::Parser::ParseFact(state.model.symbols_ptr(), text);
    if (!fact.ok()) return fact.status();
    facts.push_back(std::move(fact).value());
  }
  return util::Status::Ok();
}

/// Every delta fact must be extensional: intensional facts are derived,
/// not stored, so "removing" one is not a database operation.
util::Status ValidateExtensional(const EngineState& state,
                                 const std::vector<dl::Fact>& facts) {
  for (const dl::Fact& fact : facts) {
    if (!state.program.IsIntensional(fact.predicate)) continue;
    const util::MutexLock lock(*state.parse_mutex);
    return util::Status::InvalidArgument(
        "delta fact '" + dl::FactToString(fact, state.program.symbols()) +
        "' has an intensional predicate; only database facts can be "
        "added or removed");
  }
  return util::Status::Ok();
}

/// True iff the plan's downward closure contains any touched fact
/// (`touched` is sorted; iterate whichever side is smaller).
bool PlanTouchedBy(const pv::QueryPlan& plan,
                   const std::vector<dl::FactId>& touched) {
  const auto& closure = plan.closure_facts();
  if (touched.size() <= closure.size()) {
    for (dl::FactId fact : touched) {
      if (closure.contains(fact)) return true;
    }
    return false;
  }
  for (dl::FactId fact : closure) {
    if (std::binary_search(touched.begin(), touched.end(), fact)) return true;
  }
  return false;
}

}  // namespace

util::Result<EvaluatedDelta> Engine::EvaluateDelta(
    const DeltaRequest& request) const {
  util::Timer eval_timer;
  const auto old_state = snapshot();

  std::vector<dl::Fact> added = request.added_facts;
  std::vector<dl::Fact> removed = request.removed_facts;
  {
    // Text-form facts intern constants into the shared symbol table.
    const util::MutexLock lock(*old_state->parse_mutex);
    util::Status status =
        ParseDeltaFacts(*old_state, request.added_fact_texts, added);
    if (!status.ok()) return status;
    status = ParseDeltaFacts(*old_state, request.removed_fact_texts, removed);
    if (!status.ok()) return status;
  }
  util::Status status = ValidateExtensional(*old_state, added);
  if (!status.ok()) return status;
  status = ValidateExtensional(*old_state, removed);
  if (!status.ok()) return status;

  // Drop no-ops and duplicates; reject add/remove of the same fact in one
  // delta (the intent is ambiguous, so make the caller pick an order).
  std::unordered_set<dl::Fact, dl::FactHash> removed_set;
  std::vector<dl::Fact> apply_removed;
  for (dl::Fact& fact : removed) {
    if (!old_state->InDatabase(fact)) continue;
    if (removed_set.insert(fact).second) {
      apply_removed.push_back(std::move(fact));
    }
  }
  std::unordered_set<dl::Fact, dl::FactHash> added_set;
  std::vector<dl::Fact> apply_added;
  for (dl::Fact& fact : added) {
    if (removed_set.contains(fact)) {
      return util::Status::InvalidArgument(
          "a delta cannot both add and remove the same fact");
    }
    if (old_state->InDatabase(fact)) continue;
    if (added_set.insert(fact).second) {
      apply_added.push_back(std::move(fact));
    }
  }

  // Semi-naive delta re-evaluation on a snapshot of the model (copy-on-
  // write, so this is O(touched), not O(model)); the published model is
  // never mutated, so in-flight executions are safe. The successor's
  // database view materialises lazily from the model — a delta never
  // pays O(database) to republish the fact list.
  EvaluatedDelta result{old_state->model_version,
                        apply_added.empty() && apply_removed.empty(),
                        old_state->model.Clone(),
                        {},
                        DeltaStats{}};
  if (result.noop) {
    result.stats.model_version = old_state->model_version;
    result.stats.total_seconds = eval_timer.ElapsedSeconds();
    return result;
  }
  dl::DeltaEvalResult delta = dl::IncrementalEvaluator::Apply(
      old_state->program, result.model, apply_added, apply_removed);
  result.stats.eval_seconds = eval_timer.ElapsedSeconds();
  result.stats.facts_added = delta.base_added;
  result.stats.facts_removed = delta.base_removed;
  result.stats.facts_derived = delta.derived_added;
  result.stats.facts_deleted = delta.derived_deleted;
  result.stats.facts_rederived = delta.rederived;
  result.stats.facts_touched = delta.touched.size();
  result.touched = std::move(delta.touched);
  return result;
}

util::Result<DeltaStats> Engine::AdoptLocked(const EvaluatedDelta& delta,
                                             dl::Model model) {
  util::Timer total_timer;
  const auto old_state = snapshot();
  DeltaStats stats = delta.stats;

  if (delta.noop) {
    // Nothing to do: keep the current snapshot (and its hot plans).
    stats.model_version = old_state->model_version;
    stats.plans_retained = old_state->plan_cache.stats().size;
    stats.total_seconds = total_timer.ElapsedSeconds();
    return stats;
  }
  if (old_state->model_version != delta.base_version) {
    return util::Status::InvalidArgument(
        "AdoptDelta requires lockstep replicas: this engine serves model "
        "version " +
        std::to_string(old_state->model_version) +
        " but the delta was evaluated on version " +
        std::to_string(delta.base_version));
  }

  const std::uint64_t version = delta.base_version + 1;
  stats.plans_retained = 0;
  stats.plans_invalidated = 0;
  auto next = std::make_shared<EngineState>(*old_state, std::move(model),
                                            version,
                                            delta.stats.eval_seconds);

  // Selective plan carry-over: a plan survives iff the delta touched
  // nothing in its downward closure — then its closure sub-hypergraph,
  // CNF encoding, and rank-greedy hints are all still exact, so it is
  // re-stamped for the new version and stays hot. The rest are dropped
  // and rebuilt lazily on their next use.
  for (const PlanCache::Entry& entry : old_state->plan_cache.Entries()) {
    if (!next->model.alive(entry.plan->target()) ||
        PlanTouchedBy(*entry.plan, delta.touched)) {
      ++stats.plans_invalidated;
      continue;
    }
    entry.plan->set_model_version(version);
    next->plan_cache.Put(entry.target, entry.acyclicity, entry.plan);
    ++stats.plans_retained;
  }
  next->plan_cache.CountInvalidated(stats.plans_invalidated);

  {
    const util::MutexLock lock(*state_mutex_);
    state_ = std::move(next);
  }

  stats.model_version = version;
  stats.total_seconds = total_timer.ElapsedSeconds();
  return stats;
}

util::Result<DeltaStats> Engine::AdoptDelta(const EvaluatedDelta& delta) {
  const util::MutexLock update_lock(*update_mutex_);
  // Clone: the caller's EvaluatedDelta stays adoptable by sibling
  // replicas (structurally shared chunks make this cheap).
  return AdoptLocked(delta, delta.model.Clone());
}

void Engine::AdoptRecovered(dl::Model model, std::uint64_t version) {
  const util::MutexLock update_lock(*update_mutex_);
  const auto old_state = snapshot();
  // The successor constructor inherits program/options/parse_mutex and
  // starts the plan cache from the predecessor's counters without its
  // entries — exactly right here, where every old plan is invalid.
  auto next = std::make_shared<EngineState>(*old_state, std::move(model),
                                            version, /*eval_seconds_in=*/0);
  const util::MutexLock lock(*state_mutex_);
  state_ = std::move(next);
}

util::Result<DeltaStats> Engine::ApplyDelta(const DeltaRequest& request) {
  // One delta at a time; readers keep serving the published snapshot.
  const util::MutexLock update_lock(*update_mutex_);
  util::Timer total_timer;
  util::Result<EvaluatedDelta> evaluated = EvaluateDelta(request);
  if (!evaluated.ok()) return evaluated.status();
  // Single consumer: publish the evaluated model directly, no clone.
  EvaluatedDelta delta = std::move(evaluated).value();
  util::Result<DeltaStats> stats = AdoptLocked(delta, std::move(delta.model));
  if (!stats.ok()) return stats.status();
  DeltaStats result = std::move(stats).value();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

// --- batch serving -------------------------------------------------------

namespace {

/// The scaffolding both batch flavours used to duplicate: pin one
/// snapshot's plan-cache counters, resolve every target up front on the
/// calling thread (fact-text parsing mutates the shared symbol table, so
/// it stays out of the fan-out), fan the per-request work across a scoped
/// `util::Executor` (the calling thread participates as one worker), and
/// fill the aggregate stats. `run_one(request, outcome)` executes one
/// already-resolved request.
template <typename RequestT, typename OutcomeT, typename ResolveT,
          typename RunOne>
BatchStats RunBatch(const EngineState& state,
                    const std::vector<RequestT>& requests,
                    const BatchOptions& options,
                    std::vector<OutcomeT>& outcomes,
                    const ResolveT& resolve, const RunOne& run_one) {
  outcomes.resize(requests.size());
  const PlanCacheStats before = state.plan_cache.stats();
  util::Timer timer;

  std::vector<dl::FactId> targets(requests.size(), dl::kInvalidFact);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    util::Result<dl::FactId> target =
        resolve(requests[i].target, requests[i].target_text);
    if (!target.ok()) {
      outcomes[i].status = target.status();
    } else {
      targets[i] = target.value();
    }
  }

  const auto run_indexed = [&](std::size_t i) {
    OutcomeT& outcome = outcomes[i];
    if (!outcome.status.ok()) return;
    util::Timer request_timer;
    RequestT request = requests[i];
    request.target = targets[i];
    request.target_text.clear();
    run_one(request, outcome);
    outcome.seconds = request_timer.ElapsedSeconds();
  };

  const std::size_t participants =
      std::min(util::ResolveThreadCount(options.num_threads),
               std::max<std::size_t>(requests.size(), 1));
  if (participants <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) run_indexed(i);
  } else {
    util::Executor executor(
        {/*num_threads=*/participants - 1,
         /*queue_capacity=*/participants - 1});
    executor.Map(requests.size(), run_indexed);
  }

  BatchStats stats;
  for (const OutcomeT& outcome : outcomes) {
    if (outcome.status.ok()) {
      ++stats.succeeded;
    } else {
      ++stats.failed;
    }
  }
  FinishBatchStats(before, state.plan_cache.stats(), timer.ElapsedSeconds(),
                   requests.size(), stats);
  return stats;
}

}  // namespace

BatchEnumerateResult Engine::EnumerateBatch(
    const std::vector<EnumerateRequest>& requests,
    const BatchOptions& options) const {
  // One snapshot serves the whole batch: a delta landing mid-batch cannot
  // mix model versions between the batch's requests.
  const auto state = snapshot();
  BatchEnumerateResult result;
  result.stats = RunBatch(
      *state, requests, options, result.outcomes,
      [&state](dl::FactId target, const std::string& text) {
        return ResolveTarget(*state, target, text);
      },
      [&state](const EnumerateRequest& request,
               BatchEnumerateOutcome& outcome) {
        util::Result<Enumeration> enumeration = EnumerateOn(state, request);
        if (!enumeration.ok()) {
          outcome.status = enumeration.status();
          return;
        }
        outcome.members = enumeration.value().All();
        outcome.status = enumeration.value().interruption_status();
        outcome.exhausted = enumeration.value().exhausted();
        outcome.incomplete = enumeration.value().incomplete();
        outcome.hit_member_cap = enumeration.value().hit_member_cap();
        outcome.hit_timeout = enumeration.value().hit_timeout();
      });
  for (const BatchEnumerateOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      result.stats.members_emitted += outcome.members.size();
    }
  }
  return result;
}

BatchDecideResult Engine::DecideBatch(
    const std::vector<DecideRequest>& requests,
    const BatchOptions& options) const {
  const auto state = snapshot();
  BatchDecideResult result;
  result.stats = RunBatch(
      *state, requests, options, result.outcomes,
      [&state](dl::FactId target, const std::string& text) {
        return ResolveTarget(*state, target, text);
      },
      [&state](const DecideRequest& request, BatchDecideOutcome& outcome) {
        util::Result<bool> verdict = DecideOn(state, request);
        if (!verdict.ok()) {
          outcome.status = verdict.status();
        } else {
          outcome.member = verdict.value();
        }
      });
  return result;
}

}  // namespace whyprov
