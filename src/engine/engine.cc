#include "engine/engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "datalog/parser.h"
#include "provenance/proof_dag.h"
#include "sat/solver_factory.h"
#include "util/parallel.h"

namespace whyprov {

namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

namespace {

dl::Model EvaluateTimed(const dl::Program& program,
                        const dl::Database& database, double* seconds) {
  util::Timer timer;
  dl::Model model = dl::Evaluator::Evaluate(program, database);
  *seconds = timer.ElapsedSeconds();
  return model;
}

/// Instantiates the request's backend (or the engine default) with the
/// engine's solver tuning.
util::Result<std::unique_ptr<sat::SolverInterface>> MakeSolver(
    const EngineState& state, const std::string& request_backend) {
  const std::string& backend =
      request_backend.empty() ? state.options.solver_backend : request_backend;
  return sat::SolverFactory::Instance().Create(backend, state.options.solver);
}

/// The SAT Decide step against a prepared plan (kUnambiguous only).
util::Result<bool> ExecuteDecideSat(const EngineState& state,
                                    const pv::QueryPlan& plan,
                                    const DecideRequest& request) {
  auto solver = MakeSolver(state, request.solver_backend);
  if (!solver.ok()) return solver.status();
  // Propagates kResourceExhausted when the backend gives up instead of
  // misreporting "not a member".
  return pv::IsWhyUnMemberPrepared(plan, state.model, request.candidate,
                                   *solver.value());
}

/// The exhaustive-reference Decide step; needs no plan (and must not
/// trigger a closure+encode compile just to learn the target).
util::Result<bool> ExecuteDecideExhaustive(const EngineState& state,
                                           dl::FactId target,
                                           const DecideRequest& request) {
  util::Result<pv::ProvenanceFamily> family = pv::EnumerateWhyExhaustive(
      state.program, state.model, target, request.tree_class,
      state.options.baseline_limits);
  if (!family.ok()) return family.status();
  std::vector<dl::Fact> candidate = request.candidate;
  std::sort(candidate.begin(), candidate.end());
  return family.value().contains(candidate);
}

/// The shared Explain tail: advance the enumeration to the requested
/// member and reconstruct its witnessing tree.
util::Result<Explanation> ExplainVia(util::Result<Enumeration> enumeration,
                                     const ExplainRequest& request) {
  if (!enumeration.ok()) return enumeration.status();
  std::optional<std::vector<dl::Fact>> member;
  for (std::size_t i = 0; i <= request.member_index; ++i) {
    member = enumeration.value().Next();
    if (!member.has_value()) {
      return util::Status::NotFound(
          "the enumeration has only " +
          std::to_string(enumeration.value().members_emitted()) +
          " member(s); cannot explain member index " +
          std::to_string(request.member_index));
    }
  }
  util::Result<pv::ProofTree> tree =
      enumeration.value().ExplainLast(request.max_tree_nodes);
  if (!tree.ok()) return tree.status();
  return Explanation{std::move(*member), std::move(tree).value()};
}

/// Turns an ExplainRequest into the enumeration that serves it.
EnumerateRequest EnumerateRequestFor(const ExplainRequest& request) {
  EnumerateRequest enumerate;
  enumerate.target = request.target;
  enumerate.target_text = request.target_text;
  enumerate.max_members = request.member_index + 1;
  enumerate.acyclicity = request.acyclicity;
  enumerate.solver_backend = request.solver_backend;
  return enumerate;
}

/// Fills the aggregate batch counters common to both batch flavours.
void FinishBatchStats(const PlanCacheStats& before,
                      const PlanCacheStats& after, double wall_seconds,
                      std::size_t requests, BatchStats& stats) {
  stats.requests = requests;
  stats.wall_seconds = wall_seconds;
  stats.queries_per_second =
      wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0;
  stats.plan_cache_hits = after.hits - before.hits;
  stats.plan_cache_misses = after.misses - before.misses;
}

}  // namespace

// --- EngineState ---------------------------------------------------------

EngineState::EngineState(dl::Program program_in, dl::Database database_in,
                         dl::PredicateId answer_predicate_in,
                         EngineOptions options_in)
    : program(std::move(program_in)),
      database(std::move(database_in)),
      answer_predicate(answer_predicate_in),
      options(std::move(options_in)),
      model(EvaluateTimed(program, database, &eval_seconds)),
      plan_cache(options.plan_cache_capacity) {}

std::shared_ptr<const pv::QueryPlan> EngineState::PlanFor(
    dl::FactId target, pv::AcyclicityEncoding acyclicity) const {
  if (auto plan = plan_cache.Get(target, acyclicity)) return plan;
  pv::CnfEncoder::Options encoder_options;
  encoder_options.acyclicity = acyclicity;
  auto plan = pv::QueryPlan::Build(program, model, target, encoder_options);
  plan_cache.Put(target, acyclicity, plan);
  return plan;
}

// --- Enumeration ---------------------------------------------------------

std::optional<std::vector<dl::Fact>> Enumeration::Next() {
  if (exhausted_ || hit_member_cap_ || hit_timeout_) return std::nullopt;
  if (emitted_ >= max_members_) {
    hit_member_cap_ = true;
    return std::nullopt;
  }
  if (timeout_seconds_ > 0 && clock_.ElapsedSeconds() > timeout_seconds_) {
    hit_timeout_ = true;
    return std::nullopt;
  }
  std::optional<std::vector<dl::Fact>> member = impl_->Next();
  if (!member.has_value()) {
    exhausted_ = true;
    return std::nullopt;
  }
  ++emitted_;
  return member;
}

std::vector<std::vector<dl::Fact>> Enumeration::All() {
  std::vector<std::vector<dl::Fact>> members;
  for (std::optional<std::vector<dl::Fact>> member = Next();
       member.has_value(); member = Next()) {
    members.push_back(std::move(*member));
  }
  return members;
}

util::Result<pv::ProofTree> Enumeration::ExplainLast(
    std::size_t max_tree_nodes) const {
  if (emitted_ == 0) {
    return util::Status::NotFound(
        "no member has been emitted yet; call Next() first");
  }
  const pv::CompressedDag dag(&impl_->closure(),
                              impl_->last_witness_choices());
  return dag.UnravelToProofTree(state_->program, state_->model,
                                max_tree_nodes);
}

// --- PreparedQuery -------------------------------------------------------

util::Result<Enumeration> PreparedQuery::ExecutePlan(
    std::shared_ptr<const EngineState> state,
    std::shared_ptr<const pv::QueryPlan> plan,
    const EnumerateRequest& request) {
  auto solver = MakeSolver(*state, request.solver_backend);
  if (!solver.ok()) return solver.status();
  const dl::FactId target = plan->target();
  auto impl = std::make_unique<pv::WhyProvenanceEnumerator>(
      state->model, std::move(plan), std::move(solver).value());
  return Enumeration(std::move(state), std::move(impl), target,
                     request.max_members, request.timeout_seconds);
}

dl::FactId PreparedQuery::target() const { return plan_->target(); }

std::string PreparedQuery::target_text() const {
  const std::lock_guard<std::mutex> lock(state_->parse_mutex);
  return dl::FactToString(state_->model.fact(plan_->target()),
                          state_->program.symbols());
}

pv::AcyclicityEncoding PreparedQuery::acyclicity() const {
  return plan_->acyclicity();
}

const pv::PlanTimings& PreparedQuery::timings() const {
  return plan_->timings();
}

const pv::DownwardClosure& PreparedQuery::closure() const {
  return plan_->closure();
}

const pv::Encoding& PreparedQuery::encoding() const {
  return plan_->encoding();
}

const sat::CnfFormula& PreparedQuery::formula() const {
  return plan_->formula();
}

util::Result<Enumeration> PreparedQuery::Enumerate(
    const EnumerateRequest& request) const {
  return ExecutePlan(state_, plan_, request);
}

util::Result<bool> PreparedQuery::Decide(const DecideRequest& request) const {
  if (request.tree_class == pv::TreeClass::kUnambiguous) {
    return ExecuteDecideSat(*state_, *plan_, request);
  }
  return ExecuteDecideExhaustive(*state_, plan_->target(), request);
}

util::Result<Explanation> PreparedQuery::Explain(
    const ExplainRequest& request) const {
  return ExplainVia(Enumerate(EnumerateRequestFor(request)), request);
}

// --- Engine --------------------------------------------------------------

Engine::Engine(dl::Program program, dl::Database database,
               dl::PredicateId answer_predicate, EngineOptions options)
    : state_(std::make_shared<EngineState>(std::move(program),
                                           std::move(database),
                                           answer_predicate,
                                           std::move(options))) {}

util::Result<Engine> Engine::FromText(std::string_view program_text,
                                      std::string_view database_text,
                                      std::string_view answer_predicate,
                                      EngineOptions options) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  util::Result<dl::Program> program =
      dl::Parser::ParseProgram(symbols, program_text);
  if (!program.ok()) return program.status();
  util::Result<dl::Database> database =
      dl::Parser::ParseDatabase(symbols, database_text);
  if (!database.ok()) return database.status();
  util::Result<dl::PredicateId> predicate =
      symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) {
    return util::Status::NotFound("answer predicate '" +
                                  std::string(answer_predicate) +
                                  "' does not occur in the program");
  }
  if (!program.value().IsIntensional(predicate.value())) {
    return util::Status::InvalidArgument("answer predicate '" +
                                         std::string(answer_predicate) +
                                         "' is not intensional");
  }
  if (!sat::SolverFactory::Instance().Has(options.solver_backend)) {
    return util::Status::NotFound("unknown SAT backend '" +
                                  options.solver_backend + "'");
  }
  return Engine(std::move(program).value(), std::move(database).value(),
                predicate.value(), std::move(options));
}

Engine Engine::FromParts(dl::Program program, dl::Database database,
                         dl::PredicateId answer_predicate,
                         EngineOptions options) {
  return Engine(std::move(program), std::move(database), answer_predicate,
                std::move(options));
}

std::vector<dl::FactId> Engine::AnswerFactIds() const {
  return state_->model.Relation(state_->answer_predicate);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count) const {
  util::Rng rng(state_->options.sampling_seed);
  return SampleAnswers(count, rng);
}

std::vector<dl::FactId> Engine::SampleAnswers(std::size_t count,
                                              util::Rng& rng) const {
  std::vector<dl::FactId> answers = AnswerFactIds();
  rng.Shuffle(answers);
  if (answers.size() > count) answers.resize(count);
  return answers;
}

util::Result<dl::FactId> Engine::FactIdOf(std::string_view fact_text) const {
  // ParseFact interns constants into the shared symbol table, so parses
  // must not run concurrently.
  const std::lock_guard<std::mutex> lock(state_->parse_mutex);
  util::Result<dl::Fact> fact =
      dl::Parser::ParseFact(state_->database.symbols_ptr(), fact_text);
  if (!fact.ok()) return fact.status();
  auto id = state_->model.Find(fact.value());
  if (!id.has_value()) {
    return util::Status::NotFound("fact '" + std::string(fact_text) +
                                  "' is not derivable");
  }
  return *id;
}

std::string Engine::FactToText(dl::FactId id) const {
  // Rendering reads the symbol table FactIdOf may be interning into from
  // another thread, so it takes the same lock.
  const std::lock_guard<std::mutex> lock(state_->parse_mutex);
  return dl::FactToString(state_->model.fact(id), state_->program.symbols());
}

std::string Engine::FactToText(const dl::Fact& fact) const {
  const std::lock_guard<std::mutex> lock(state_->parse_mutex);
  return dl::FactToString(fact, state_->program.symbols());
}

util::Result<dl::FactId> Engine::ResolveTarget(
    dl::FactId target, const std::string& target_text) const {
  if (target != dl::kInvalidFact) return target;
  if (target_text.empty()) {
    return util::Status::InvalidArgument(
        "the request names no target: set `target` or `target_text`");
  }
  return FactIdOf(target_text);
}

util::Result<PreparedQuery> Engine::Prepare(
    const PrepareRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  auto plan = state_->PlanFor(
      target.value(), request.acyclicity.value_or(state_->options.acyclicity));
  return PreparedQuery(state_, std::move(plan));
}

util::Result<PreparedQuery> Engine::Prepare(dl::FactId target) const {
  PrepareRequest request;
  request.target = target;
  return Prepare(request);
}

util::Result<PreparedQuery> Engine::Prepare(
    std::string_view target_text) const {
  PrepareRequest request;
  request.target_text = std::string(target_text);
  return Prepare(request);
}

util::Result<Enumeration> Engine::Enumerate(
    const EnumerateRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  auto plan = state_->PlanFor(
      target.value(), request.acyclicity.value_or(state_->options.acyclicity));
  return PreparedQuery::ExecutePlan(state_, std::move(plan), request);
}

util::Result<bool> Engine::Decide(const DecideRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  // Only the SAT path consumes a plan; the exhaustive reference
  // algorithms must not pay (or cache-pollute with) a closure+encode.
  if (request.tree_class != pv::TreeClass::kUnambiguous) {
    return ExecuteDecideExhaustive(*state_, target.value(), request);
  }
  auto plan = state_->PlanFor(
      target.value(), request.acyclicity.value_or(state_->options.acyclicity));
  return ExecuteDecideSat(*state_, *plan, request);
}

util::Result<pv::ProvenanceFamily> Engine::Baseline(
    const BaselineRequest& request) const {
  util::Result<dl::FactId> target =
      ResolveTarget(request.target, request.target_text);
  if (!target.ok()) return target.status();
  return pv::ComputeWhyAllAtOnce(
      state_->program, state_->model, target.value(),
      request.limits.value_or(state_->options.baseline_limits));
}

util::Result<Explanation> Engine::Explain(
    const ExplainRequest& request) const {
  return ExplainVia(Enumerate(EnumerateRequestFor(request)), request);
}

// --- batch serving -------------------------------------------------------

BatchEnumerateResult Engine::EnumerateBatch(
    const std::vector<EnumerateRequest>& requests,
    const BatchOptions& options) const {
  BatchEnumerateResult result;
  result.outcomes.resize(requests.size());
  const PlanCacheStats before = state_->plan_cache.stats();
  util::Timer timer;

  // Resolve every target up front on this thread: fact-text parsing
  // mutates the shared symbol table, so it stays out of the fan-out.
  std::vector<dl::FactId> targets(requests.size(), dl::kInvalidFact);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    util::Result<dl::FactId> target =
        ResolveTarget(requests[i].target, requests[i].target_text);
    if (!target.ok()) {
      result.outcomes[i].status = target.status();
    } else {
      targets[i] = target.value();
    }
  }

  util::ParallelFor(requests.size(), options.num_threads,
                    [&](std::size_t i) {
    BatchEnumerateOutcome& outcome = result.outcomes[i];
    if (!outcome.status.ok()) return;
    util::Timer request_timer;
    EnumerateRequest request = requests[i];
    request.target = targets[i];
    request.target_text.clear();
    util::Result<Enumeration> enumeration = Enumerate(request);
    if (!enumeration.ok()) {
      outcome.status = enumeration.status();
      outcome.seconds = request_timer.ElapsedSeconds();
      return;
    }
    outcome.members = enumeration.value().All();
    outcome.exhausted = enumeration.value().exhausted();
    outcome.incomplete = enumeration.value().incomplete();
    outcome.hit_member_cap = enumeration.value().hit_member_cap();
    outcome.hit_timeout = enumeration.value().hit_timeout();
    outcome.seconds = request_timer.ElapsedSeconds();
  });

  const double wall_seconds = timer.ElapsedSeconds();
  for (const BatchEnumerateOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
      result.stats.members_emitted += outcome.members.size();
    } else {
      ++result.stats.failed;
    }
  }
  FinishBatchStats(before, state_->plan_cache.stats(), wall_seconds,
                   requests.size(), result.stats);
  return result;
}

BatchDecideResult Engine::DecideBatch(
    const std::vector<DecideRequest>& requests,
    const BatchOptions& options) const {
  BatchDecideResult result;
  result.outcomes.resize(requests.size());
  const PlanCacheStats before = state_->plan_cache.stats();
  util::Timer timer;

  std::vector<dl::FactId> targets(requests.size(), dl::kInvalidFact);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    util::Result<dl::FactId> target =
        ResolveTarget(requests[i].target, requests[i].target_text);
    if (!target.ok()) {
      result.outcomes[i].status = target.status();
    } else {
      targets[i] = target.value();
    }
  }

  util::ParallelFor(requests.size(), options.num_threads,
                    [&](std::size_t i) {
    BatchDecideOutcome& outcome = result.outcomes[i];
    if (!outcome.status.ok()) return;
    util::Timer request_timer;
    DecideRequest request = requests[i];
    request.target = targets[i];
    request.target_text.clear();
    util::Result<bool> verdict = Decide(request);
    if (!verdict.ok()) {
      outcome.status = verdict.status();
    } else {
      outcome.member = verdict.value();
    }
    outcome.seconds = request_timer.ElapsedSeconds();
  });

  const double wall_seconds = timer.ElapsedSeconds();
  for (const BatchDecideOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
    } else {
      ++result.stats.failed;
    }
  }
  FinishBatchStats(before, state_->plan_cache.stats(), wall_seconds,
                   requests.size(), result.stats);
  return result;
}

}  // namespace whyprov
