#ifndef WHYPROV_ENGINE_ENGINE_H_
#define WHYPROV_ENGINE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "engine/plan_cache.h"
#include "provenance/acyclicity.h"
#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "provenance/proof_tree.h"
#include "provenance/query_plan.h"
#include "sat/solver_interface.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace whyprov {

/// "No cap" sentinel re-exported at the facade level.
using provenance::kNoLimit;

/// One consolidated option block for the whole engine: acyclicity
/// encoding, SAT backend selection and tuning, materialisation budgets,
/// plan-cache sizing, and sampling determinism. Per-request structs can
/// override the request-scoped subset.
struct EngineOptions {
  /// phi_acyclic encoding used by SAT-based services.
  provenance::AcyclicityEncoding acyclicity =
      provenance::AcyclicityEncoding::kVertexElimination;
  /// SolverFactory backend name ("cdcl", "dpll", "dimacs-pipe", ...).
  std::string solver_backend = "cdcl";
  /// Tuning passed to whichever backend is instantiated.
  sat::SolverOptions solver;
  /// Budgets for the exhaustive/materialising algorithms.
  provenance::BaselineLimits baseline_limits;
  /// Seed for SampleAnswers (same seed => same sample).
  std::uint64_t sampling_seed = 0;
  /// Plans kept by the LRU plan cache behind Enumerate/Decide/Explain
  /// (keyed by target fact and acyclicity encoding; 0 disables caching).
  std::size_t plan_cache_capacity = 64;
};

/// Parameters of Engine::Enumerate.
struct EnumerateRequest {
  /// The answer fact to explain; either a fact id of the engine's model
  /// or, when kInvalidFact, the parse of `target_text`.
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Stop after this many members (kNoLimit = enumerate to exhaustion).
  std::size_t max_members = kNoLimit;
  /// Stop once this much wall-clock time has elapsed (<= 0 = no timeout).
  double timeout_seconds = 0;
  /// Request-scoped overrides of the engine defaults. (PreparedQuery
  /// executions ignore `target`/`target_text`/`acyclicity`: those are
  /// plan-scoped and fixed at Prepare time.)
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Parameters of Engine::Decide: is `candidate` a member of the
/// why-provenance of `target` w.r.t. `tree_class`?
struct DecideRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  std::vector<datalog::Fact> candidate;  ///< the D' to test
  provenance::TreeClass tree_class = provenance::TreeClass::kUnambiguous;
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Parameters of Engine::Baseline (all-at-once materialisation).
struct BaselineRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  std::optional<provenance::BaselineLimits> limits;  ///< engine default if unset
};

/// Parameters of Engine::Explain (proof-tree reconstruction).
struct ExplainRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Explain the (member_index + 1)-th member of the enumeration.
  std::size_t member_index = 0;
  /// Node cap for unravelling the compressed DAG into a tree.
  std::size_t max_tree_nodes = 1u << 20;
  /// Request-scoped overrides, as in EnumerateRequest.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Parameters of Engine::Prepare.
struct PrepareRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Overrides the engine's acyclicity encoding for this plan.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
};

/// Result of Engine::Explain: one why-provenance member together with a
/// witnessing unambiguous proof tree.
struct Explanation {
  std::vector<datalog::Fact> member;
  provenance::ProofTree tree;
};

/// The shared, immutable core of an engine: the parsed inputs, the
/// evaluated least model, the options, and (logically mutable but
/// internally synchronised) the plan cache. Held by shared_ptr from the
/// engine and from every live handle (Enumeration, PreparedQuery), so
/// moving or destroying the Engine object never invalidates a handle.
/// Everything here except the plan cache and the parse mutex is
/// bitwise-immutable after construction and therefore thread-shareable.
struct EngineState {
  EngineState(datalog::Program program_in, datalog::Database database_in,
              datalog::PredicateId answer_predicate_in,
              EngineOptions options_in);

  /// Cache-through plan lookup: returns the cached plan for
  /// (target, acyclicity) or builds and caches a fresh one.
  std::shared_ptr<const provenance::QueryPlan> PlanFor(
      datalog::FactId target,
      provenance::AcyclicityEncoding acyclicity) const;

  datalog::Program program;
  datalog::Database database;
  datalog::PredicateId answer_predicate;
  EngineOptions options;
  // eval_seconds is written while model is initialised, so it must be
  // declared (and thus initialised) before model.
  double eval_seconds = 0;
  datalog::Model model;
  /// Serialises every engine-surface touch of the shared symbol table:
  /// fact-text parsing (ParseFact interns constants, mutating the table)
  /// and fact rendering (which reads the interned names). Callers going
  /// straight to model().symbols() from several threads are on their own.
  mutable std::mutex parse_mutex;
  mutable PlanCache plan_cache;
};

/// A live why-provenance enumeration: a move-only, range-style handle
/// unifying incremental Next(), draining All(), per-member delays, phase
/// timings, and budget outcomes. Obtained from Engine::Enumerate or
/// PreparedQuery::Enumerate; shares ownership of the engine state, so it
/// stays valid even if the Engine object is moved or destroyed.
class Enumeration {
 public:
  Enumeration(Enumeration&&) = default;
  Enumeration& operator=(Enumeration&&) = default;

  /// The next member of the family as a sorted set of database facts, or
  /// nullopt once exhausted or a request budget (member cap / timeout)
  /// has been hit.
  std::optional<std::vector<datalog::Fact>> Next();

  /// Drains the remaining members (still subject to the request budgets).
  std::vector<std::vector<datalog::Fact>> All();

  /// Reconstructs an unambiguous proof tree witnessing the most recently
  /// emitted member. kNotFound before the first Next().
  util::Result<provenance::ProofTree> ExplainLast(
      std::size_t max_tree_nodes = 1u << 20) const;

  /// Members emitted so far through this handle.
  std::size_t members_emitted() const { return emitted_; }

  /// True once Next() returned nullopt because the solver answered UNSAT
  /// or gave up (see incomplete() to tell the two apart).
  bool exhausted() const { return exhausted_; }

  /// True if the backend answered kUnknown (e.g. a failed external
  /// solver or an exhausted conflict budget): the enumeration stopped
  /// but the emitted members may not be the whole family.
  bool incomplete() const { return impl_->incomplete(); }

  /// True once the request's max_members stopped the enumeration.
  bool hit_member_cap() const { return hit_member_cap_; }

  /// True once the request's timeout stopped the enumeration.
  bool hit_timeout() const { return hit_timeout_; }

  /// The fact being explained.
  datalog::FactId target() const { return target_; }

  /// Per-member delays in milliseconds (the paper's Figures 2/4).
  const std::vector<double>& delays_ms() const { return impl_->delays_ms(); }

  /// Closure/encode phase timings of the plan (the paper's Figures 1/3).
  /// Zero marginal cost when the plan came from the cache.
  const provenance::PlanTimings& timings() const { return impl_->timings(); }

  /// The shared plan this enumeration executes.
  const std::shared_ptr<const provenance::QueryPlan>& plan() const {
    return impl_->plan();
  }

  /// The downward closure (e.g. for size reporting).
  const provenance::DownwardClosure& closure() const {
    return impl_->closure();
  }

  /// The encoding layout (e.g. for variable/clause counts).
  const provenance::Encoding& encoding() const { return impl_->encoding(); }

  /// The SAT backend serving this enumeration.
  const sat::SolverInterface& solver() const { return impl_->solver(); }

  /// Witness choices of the most recent member (see WhyProvenanceEnumerator).
  const std::unordered_map<datalog::FactId, std::size_t>&
  last_witness_choices() const {
    return impl_->last_witness_choices();
  }

  /// Minimal input-iterator support so the handle works with range-for:
  ///   for (const auto& member : enumeration) { ... }
  class Iterator {
   public:
    using value_type = std::vector<datalog::Fact>;

    Iterator() = default;
    explicit Iterator(Enumeration* owner) : owner_(owner) { ++*this; }
    const value_type& operator*() const { return *current_; }
    Iterator& operator++() {
      current_ = owner_->Next();
      if (!current_.has_value()) owner_ = nullptr;
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.owner_ == b.owner_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return !(a == b);
    }

   private:
    Enumeration* owner_ = nullptr;
    std::optional<value_type> current_;
  };

  Iterator begin() { return Iterator(this); }
  Iterator end() { return Iterator(); }

 private:
  friend class Engine;
  friend class PreparedQuery;

  Enumeration(std::shared_ptr<const EngineState> state,
              std::unique_ptr<provenance::WhyProvenanceEnumerator> impl,
              datalog::FactId target, std::size_t max_members,
              double timeout_seconds)
      : state_(std::move(state)),
        impl_(std::move(impl)),
        target_(target),
        max_members_(max_members),
        timeout_seconds_(timeout_seconds) {}

  std::shared_ptr<const EngineState> state_;
  std::unique_ptr<provenance::WhyProvenanceEnumerator> impl_;
  datalog::FactId target_;
  std::size_t max_members_;
  double timeout_seconds_;
  util::Timer clock_;  // starts when Enumerate returns the handle
  std::size_t emitted_ = 0;
  bool exhausted_ = false;
  bool hit_member_cap_ = false;
  bool hit_timeout_ = false;
};

/// An immutable, thread-shareable compiled query: the downward closure and
/// CNF encoding of one target fact, plus shared ownership of the engine
/// state it was compiled against. Obtained from Engine::Prepare; cheap to
/// copy (two shared_ptrs) and safe to use from any number of threads
/// simultaneously — every execution instantiates its own fresh SAT solver
/// and replays the plan's formula into it, so executions never contend.
/// A PreparedQuery may outlive the Engine object it came from.
class PreparedQuery {
 public:
  /// The compiled target fact.
  datalog::FactId target() const;

  /// The compiled target rendered as text, e.g. "path(a, b)".
  std::string target_text() const;

  /// The acyclicity encoding the plan was compiled with.
  provenance::AcyclicityEncoding acyclicity() const;

  /// Closure/encode phase timings of the compile step.
  const provenance::PlanTimings& timings() const;

  /// The downward closure (e.g. for size reporting).
  const provenance::DownwardClosure& closure() const;

  /// The encoding layout (e.g. for variable/clause counts).
  const provenance::Encoding& encoding() const;

  /// The backend-neutral CNF formula (e.g. for variable/clause counts).
  const sat::CnfFormula& formula() const;

  /// The underlying shared plan.
  const std::shared_ptr<const provenance::QueryPlan>& plan() const {
    return plan_;
  }

  /// Starts an incremental whyUN enumeration against this plan with a
  /// fresh solver. The request's plan-scoped fields (`target`,
  /// `target_text`, `acyclicity`) are ignored; budgets and the solver
  /// backend apply. Thread-safe: concurrent calls each get their own
  /// solver.
  util::Result<Enumeration> Enumerate(
      const EnumerateRequest& request = EnumerateRequest()) const;

  /// Decides membership of `request.candidate` against this plan
  /// (SAT-based for kUnambiguous; the exhaustive reference algorithms
  /// ignore the plan's formula but reuse the engine state). Thread-safe.
  util::Result<bool> Decide(const DecideRequest& request) const;

  /// Reconstructs one member plus a witnessing unambiguous proof tree.
  /// Thread-safe.
  util::Result<Explanation> Explain(
      const ExplainRequest& request = ExplainRequest()) const;

 private:
  friend class Engine;

  PreparedQuery(std::shared_ptr<const EngineState> state,
                std::shared_ptr<const provenance::QueryPlan> plan)
      : state_(std::move(state)), plan_(std::move(plan)) {}

  /// The shared execute step (also used by Engine's cache-through entry
  /// points): fresh solver, replay the plan, wrap the budgeted handle.
  static util::Result<Enumeration> ExecutePlan(
      std::shared_ptr<const EngineState> state,
      std::shared_ptr<const provenance::QueryPlan> plan,
      const EnumerateRequest& request);

  std::shared_ptr<const EngineState> state_;
  std::shared_ptr<const provenance::QueryPlan> plan_;
};

/// Thread-count knob for the batch entry points.
struct BatchOptions {
  /// Worker threads fanning the batch out (0 = one per hardware thread).
  std::size_t num_threads = 0;
};

/// Aggregated throughput statistics of one batch call.
struct BatchStats {
  std::size_t requests = 0;   ///< batch size
  std::size_t succeeded = 0;  ///< requests that completed without error
  std::size_t failed = 0;     ///< requests that returned an error status
  std::size_t members_emitted = 0;  ///< total members (enumerate batches)
  double wall_seconds = 0;          ///< end-to-end batch wall-clock
  double queries_per_second = 0;    ///< requests / wall_seconds
  std::size_t plan_cache_hits = 0;    ///< cache hits during the batch
  std::size_t plan_cache_misses = 0;  ///< cache misses during the batch
};

/// Per-request outcome of Engine::EnumerateBatch: the materialised members
/// (subject to the request budgets) plus the handle flags.
struct BatchEnumerateOutcome {
  util::Status status;  ///< per-request failure (target resolution, backend)
  std::vector<std::vector<datalog::Fact>> members;
  bool exhausted = false;
  bool incomplete = false;
  bool hit_member_cap = false;
  bool hit_timeout = false;
  double seconds = 0;  ///< wall-clock spent on this request
};

struct BatchEnumerateResult {
  std::vector<BatchEnumerateOutcome> outcomes;  ///< parallel to the requests
  BatchStats stats;
};

/// Per-request outcome of Engine::DecideBatch.
struct BatchDecideOutcome {
  util::Status status;
  bool member = false;  ///< meaningful only when status.ok()
  double seconds = 0;
};

struct BatchDecideResult {
  std::vector<BatchDecideOutcome> outcomes;  ///< parallel to the requests
  BatchStats stats;
};

/// The unified public facade over the whole reproduction: owns parsing,
/// semi-naive evaluation, and every provenance service of the paper —
/// incremental whyUN enumeration (Section 5), membership decision
/// (Section 3), all-at-once materialisation (the Figure 5 baseline), and
/// proof-tree reconstruction — behind typed request/response structs.
/// SAT backends are pluggable via `sat::SolverFactory`.
///
/// The engine follows a compile-once/execute-many model: the expensive,
/// immutable part of a query (downward closure + CNF encoding) is a
/// `PreparedQuery` plan, built by Prepare and cached behind the request
/// entry points in an LRU plan cache; each execution then runs against a
/// fresh per-request solver. All request methods are const and
/// thread-safe — hammer one engine from as many threads as you like, or
/// use EnumerateBatch/DecideBatch to let the engine do the fan-out.
class Engine {
 public:
  /// Parses program/database text, resolves the answer predicate, and
  /// evaluates the least model eagerly.
  static util::Result<Engine> FromText(std::string_view program_text,
                                       std::string_view database_text,
                                       std::string_view answer_predicate,
                                       EngineOptions options = EngineOptions());

  /// Builds an engine from already-parsed pieces (evaluates eagerly).
  static Engine FromParts(datalog::Program program,
                          datalog::Database database,
                          datalog::PredicateId answer_predicate,
                          EngineOptions options = EngineOptions());

  // --- views ------------------------------------------------------------

  const datalog::Program& program() const { return state_->program; }
  const datalog::Database& database() const { return state_->database; }
  const datalog::Model& model() const { return state_->model; }
  datalog::PredicateId answer_predicate() const {
    return state_->answer_predicate;
  }
  const EngineOptions& options() const { return state_->options; }

  /// Seconds spent evaluating the least model.
  double eval_seconds() const { return state_->eval_seconds; }

  /// Hit/miss/eviction counters of the plan cache behind the request
  /// entry points.
  PlanCacheStats plan_cache_stats() const {
    return state_->plan_cache.stats();
  }

  // --- answers ----------------------------------------------------------

  /// The answer facts R(t) of the query.
  std::vector<datalog::FactId> AnswerFactIds() const;

  /// Picks `count` answers uniformly without replacement, deterministic in
  /// `options().sampling_seed` (repeated calls return the same sample).
  std::vector<datalog::FactId> SampleAnswers(std::size_t count) const;

  /// Same, but driven by a caller-owned RNG stream.
  std::vector<datalog::FactId> SampleAnswers(std::size_t count,
                                             util::Rng& rng) const;

  /// Parses a fact like "path(a, b)" and returns its model id.
  /// Thread-safe (parsing is serialised internally).
  util::Result<datalog::FactId> FactIdOf(std::string_view fact_text) const;

  /// Renders a fact id / fact for display.
  std::string FactToText(datalog::FactId id) const;
  std::string FactToText(const datalog::Fact& fact) const;

  // --- prepare/execute --------------------------------------------------

  /// Compiles the target into an immutable, thread-shareable plan
  /// (downward closure + CNF encoding + variable layout, with phase
  /// timings). Goes through the plan cache, so preparing an already-hot
  /// target is free. The returned PreparedQuery shares ownership of the
  /// engine state and may outlive this Engine object.
  util::Result<PreparedQuery> Prepare(const PrepareRequest& request) const;
  util::Result<PreparedQuery> Prepare(datalog::FactId target) const;
  util::Result<PreparedQuery> Prepare(std::string_view target_text) const;

  // --- provenance services ----------------------------------------------
  //
  // Each request entry point resolves its target, fetches (or compiles and
  // caches) the plan, and executes it with a fresh per-request solver.
  // All of them are const and thread-safe.

  /// Starts an incremental whyUN enumeration for the requested answer.
  util::Result<Enumeration> Enumerate(const EnumerateRequest& request) const;

  /// Decides membership of `request.candidate` in the why-provenance
  /// family of the target w.r.t. the requested proof-tree class
  /// (SAT-based for kUnambiguous, exhaustive reference otherwise).
  util::Result<bool> Decide(const DecideRequest& request) const;

  /// Materialises the complete why(t, D, Q) family in one all-at-once
  /// fixpoint pass (the paper's Figure 5 comparator).
  util::Result<provenance::ProvenanceFamily> Baseline(
      const BaselineRequest& request) const;

  /// Reconstructs one member plus a witnessing unambiguous proof tree.
  util::Result<Explanation> Explain(const ExplainRequest& request) const;

  // --- batch serving ----------------------------------------------------

  /// Fans the requests across a worker pool: targets are resolved
  /// up front, then every request executes a (cached) prepared plan with
  /// its own solver, honouring its per-request budgets. Outcomes are
  /// positionally parallel to the requests; `stats` aggregates throughput
  /// and plan-cache effectiveness over the batch.
  BatchEnumerateResult EnumerateBatch(
      const std::vector<EnumerateRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

  /// Same fan-out for membership decisions.
  BatchDecideResult DecideBatch(
      const std::vector<DecideRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

 private:
  Engine(datalog::Program program, datalog::Database database,
         datalog::PredicateId answer_predicate, EngineOptions options);

  /// Resolves the (id, text) target pair every request struct carries.
  util::Result<datalog::FactId> ResolveTarget(
      datalog::FactId target, const std::string& target_text) const;

  std::shared_ptr<const EngineState> state_;
};

}  // namespace whyprov

#endif  // WHYPROV_ENGINE_ENGINE_H_
