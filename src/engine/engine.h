#ifndef WHYPROV_ENGINE_ENGINE_H_
#define WHYPROV_ENGINE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/acyclicity.h"
#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "provenance/proof_tree.h"
#include "sat/solver_interface.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace whyprov {

/// "No cap" sentinel re-exported at the facade level.
using provenance::kNoLimit;

/// One consolidated option block for the whole engine: acyclicity
/// encoding, SAT backend selection and tuning, materialisation budgets,
/// and sampling determinism. Per-request structs can override the
/// request-scoped subset.
struct EngineOptions {
  /// phi_acyclic encoding used by SAT-based services.
  provenance::AcyclicityEncoding acyclicity =
      provenance::AcyclicityEncoding::kVertexElimination;
  /// SolverFactory backend name ("cdcl", "dpll", "dimacs-pipe", ...).
  std::string solver_backend = "cdcl";
  /// Tuning passed to whichever backend is instantiated.
  sat::SolverOptions solver;
  /// Budgets for the exhaustive/materialising algorithms.
  provenance::BaselineLimits baseline_limits;
  /// Seed for SampleAnswers (same seed => same sample).
  std::uint64_t sampling_seed = 0;
};

/// Parameters of Engine::Enumerate.
struct EnumerateRequest {
  /// The answer fact to explain; either a fact id of the engine's model
  /// or, when kInvalidFact, the parse of `target_text`.
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Stop after this many members (kNoLimit = enumerate to exhaustion).
  std::size_t max_members = kNoLimit;
  /// Stop once this much wall-clock time has elapsed (<= 0 = no timeout).
  double timeout_seconds = 0;
  /// Request-scoped overrides of the engine defaults.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Parameters of Engine::Decide: is `candidate` a member of the
/// why-provenance of `target` w.r.t. `tree_class`?
struct DecideRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  std::vector<datalog::Fact> candidate;  ///< the D' to test
  provenance::TreeClass tree_class = provenance::TreeClass::kUnambiguous;
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Parameters of Engine::Baseline (all-at-once materialisation).
struct BaselineRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  std::optional<provenance::BaselineLimits> limits;  ///< engine default if unset
};

/// Parameters of Engine::Explain (proof-tree reconstruction).
struct ExplainRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Explain the (member_index + 1)-th member of the enumeration.
  std::size_t member_index = 0;
  /// Node cap for unravelling the compressed DAG into a tree.
  std::size_t max_tree_nodes = 1u << 20;
  /// Request-scoped overrides, as in EnumerateRequest.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
};

/// Result of Engine::Explain: one why-provenance member together with a
/// witnessing unambiguous proof tree.
struct Explanation {
  std::vector<datalog::Fact> member;
  provenance::ProofTree tree;
};

/// A live why-provenance enumeration: a move-only, range-style handle
/// unifying incremental Next(), draining All(), per-member delays, phase
/// timings, and budget outcomes. Obtained from Engine::Enumerate; keeps
/// the engine borrowed (the engine must outlive it).
class Enumeration {
 public:
  Enumeration(Enumeration&&) = default;
  Enumeration& operator=(Enumeration&&) = default;

  /// The next member of the family as a sorted set of database facts, or
  /// nullopt once exhausted or a request budget (member cap / timeout)
  /// has been hit.
  std::optional<std::vector<datalog::Fact>> Next();

  /// Drains the remaining members (still subject to the request budgets).
  std::vector<std::vector<datalog::Fact>> All();

  /// Reconstructs an unambiguous proof tree witnessing the most recently
  /// emitted member. kNotFound before the first Next().
  util::Result<provenance::ProofTree> ExplainLast(
      std::size_t max_tree_nodes = 1u << 20) const;

  /// Members emitted so far through this handle.
  std::size_t members_emitted() const { return emitted_; }

  /// True once Next() returned nullopt because the solver answered UNSAT
  /// or gave up (see incomplete() to tell the two apart).
  bool exhausted() const { return exhausted_; }

  /// True if the backend answered kUnknown (e.g. a failed external
  /// solver or an exhausted conflict budget): the enumeration stopped
  /// but the emitted members may not be the whole family.
  bool incomplete() const { return impl_->incomplete(); }

  /// True once the request's max_members stopped the enumeration.
  bool hit_member_cap() const { return hit_member_cap_; }

  /// True once the request's timeout stopped the enumeration.
  bool hit_timeout() const { return hit_timeout_; }

  /// The fact being explained.
  datalog::FactId target() const { return target_; }

  /// Per-member delays in milliseconds (the paper's Figures 2/4).
  const std::vector<double>& delays_ms() const { return impl_->delays_ms(); }

  /// Closure/encode phase timings (the paper's Figures 1/3).
  const provenance::WhyProvenanceEnumerator::Timings& timings() const {
    return impl_->timings();
  }

  /// The downward closure (e.g. for size reporting).
  const provenance::DownwardClosure& closure() const {
    return impl_->closure();
  }

  /// The encoding layout (e.g. for variable/clause counts).
  const provenance::Encoding& encoding() const { return impl_->encoding(); }

  /// The SAT backend serving this enumeration.
  const sat::SolverInterface& solver() const { return impl_->solver(); }

  /// Witness choices of the most recent member (see WhyProvenanceEnumerator).
  const std::unordered_map<datalog::FactId, std::size_t>&
  last_witness_choices() const {
    return impl_->last_witness_choices();
  }

  /// Minimal input-iterator support so the handle works with range-for:
  ///   for (const auto& member : enumeration) { ... }
  class Iterator {
   public:
    using value_type = std::vector<datalog::Fact>;

    Iterator() = default;
    explicit Iterator(Enumeration* owner) : owner_(owner) { ++*this; }
    const value_type& operator*() const { return *current_; }
    Iterator& operator++() {
      current_ = owner_->Next();
      if (!current_.has_value()) owner_ = nullptr;
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.owner_ == b.owner_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return !(a == b);
    }

   private:
    Enumeration* owner_ = nullptr;
    std::optional<value_type> current_;
  };

  Iterator begin() { return Iterator(this); }
  Iterator end() { return Iterator(); }

 private:
  friend class Engine;

  Enumeration(const datalog::Program* program, const datalog::Model* model,
              std::unique_ptr<provenance::WhyProvenanceEnumerator> impl,
              datalog::FactId target, std::size_t max_members,
              double timeout_seconds)
      : program_(program),
        model_(model),
        impl_(std::move(impl)),
        target_(target),
        max_members_(max_members),
        timeout_seconds_(timeout_seconds) {}

  const datalog::Program* program_;
  const datalog::Model* model_;
  std::unique_ptr<provenance::WhyProvenanceEnumerator> impl_;
  datalog::FactId target_;
  std::size_t max_members_;
  double timeout_seconds_;
  util::Timer clock_;  // starts when Enumerate returns the handle
  std::size_t emitted_ = 0;
  bool exhausted_ = false;
  bool hit_member_cap_ = false;
  bool hit_timeout_ = false;
};

/// The unified public facade over the whole reproduction: owns parsing,
/// semi-naive evaluation, and every provenance service of the paper —
/// incremental whyUN enumeration (Section 5), membership decision
/// (Section 3), all-at-once materialisation (the Figure 5 baseline), and
/// proof-tree reconstruction — behind typed request/response structs.
/// SAT backends are pluggable via `sat::SolverFactory`.
class Engine {
 public:
  /// Parses program/database text, resolves the answer predicate, and
  /// evaluates the least model eagerly.
  static util::Result<Engine> FromText(std::string_view program_text,
                                       std::string_view database_text,
                                       std::string_view answer_predicate,
                                       EngineOptions options = EngineOptions());

  /// Builds an engine from already-parsed pieces (evaluates eagerly).
  static Engine FromParts(datalog::Program program,
                          datalog::Database database,
                          datalog::PredicateId answer_predicate,
                          EngineOptions options = EngineOptions());

  // --- views ------------------------------------------------------------

  const datalog::Program& program() const { return program_; }
  const datalog::Database& database() const { return database_; }
  const datalog::Model& model() const { return model_; }
  datalog::PredicateId answer_predicate() const { return answer_predicate_; }
  const EngineOptions& options() const { return options_; }

  /// Seconds spent evaluating the least model.
  double eval_seconds() const { return eval_seconds_; }

  // --- answers ----------------------------------------------------------

  /// The answer facts R(t) of the query.
  std::vector<datalog::FactId> AnswerFactIds() const;

  /// Picks `count` answers uniformly without replacement, deterministic in
  /// `options().sampling_seed` (repeated calls return the same sample).
  std::vector<datalog::FactId> SampleAnswers(std::size_t count) const;

  /// Same, but driven by a caller-owned RNG stream.
  std::vector<datalog::FactId> SampleAnswers(std::size_t count,
                                             util::Rng& rng) const;

  /// Parses a fact like "path(a, b)" and returns its model id.
  util::Result<datalog::FactId> FactIdOf(std::string_view fact_text) const;

  /// Renders a fact id / fact for display.
  std::string FactToText(datalog::FactId id) const;
  std::string FactToText(const datalog::Fact& fact) const;

  // --- provenance services ----------------------------------------------

  /// Starts an incremental whyUN enumeration for the requested answer.
  util::Result<Enumeration> Enumerate(const EnumerateRequest& request) const;

  /// Decides membership of `request.candidate` in the why-provenance
  /// family of the target w.r.t. the requested proof-tree class
  /// (SAT-based for kUnambiguous, exhaustive reference otherwise).
  util::Result<bool> Decide(const DecideRequest& request) const;

  /// Materialises the complete why(t, D, Q) family in one all-at-once
  /// fixpoint pass (the paper's Figure 5 comparator).
  util::Result<provenance::ProvenanceFamily> Baseline(
      const BaselineRequest& request) const;

  /// Reconstructs one member plus a witnessing unambiguous proof tree.
  util::Result<Explanation> Explain(const ExplainRequest& request) const;

 private:
  Engine(datalog::Program program, datalog::Database database,
         datalog::PredicateId answer_predicate, EngineOptions options);

  /// Resolves the (id, text) target pair every request struct carries.
  util::Result<datalog::FactId> ResolveTarget(
      datalog::FactId target, const std::string& target_text) const;

  datalog::Program program_;
  datalog::Database database_;
  datalog::PredicateId answer_predicate_;
  EngineOptions options_;
  // eval_seconds_ is written while model_ is initialised, so it must be
  // declared (and thus initialised) before model_.
  double eval_seconds_ = 0;
  datalog::Model model_;
};

}  // namespace whyprov

#endif  // WHYPROV_ENGINE_ENGINE_H_
