#ifndef WHYPROV_ENGINE_ENGINE_H_
#define WHYPROV_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "engine/plan_cache.h"
#include "provenance/acyclicity.h"
#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "provenance/proof_tree.h"
#include "provenance/query_plan.h"
#include "sat/simplify.h"
#include "sat/solver_interface.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace whyprov {

/// "No cap" sentinel re-exported at the facade level.
using provenance::kNoLimit;

/// One consolidated option block for the whole engine: acyclicity
/// encoding, SAT backend selection and tuning, materialisation budgets,
/// plan-cache sizing, and sampling determinism. Per-request structs can
/// override the request-scoped subset.
struct EngineOptions {
  /// phi_acyclic encoding used by SAT-based services.
  provenance::AcyclicityEncoding acyclicity =
      provenance::AcyclicityEncoding::kVertexElimination;
  /// SolverFactory backend name ("cdcl", "dpll", "dimacs-pipe", ...).
  std::string solver_backend = "cdcl";
  /// Tuning passed to whichever backend is instantiated.
  sat::SolverOptions solver;
  /// Budgets for the exhaustive/materialising algorithms.
  provenance::BaselineLimits baseline_limits;
  /// Seed for SampleAnswers (same seed => same sample).
  std::uint64_t sampling_seed = 0;
  /// Plans kept by the LRU plan cache behind Enumerate/Decide/Explain
  /// (keyed by target fact and acyclicity encoding; 0 disables caching).
  std::size_t plan_cache_capacity = 64;
  /// Plan-time CNF inprocessing (sat/simplify.h), run once under the
  /// plan-cache single-flight latch; every execution of the plan then
  /// replays the cheaper formula. Semantics are unchanged: the pass
  /// preserves the exact model set projected onto the fact-selector
  /// variables, so enumeration families and decision answers are
  /// identical to kOff. kFast (default) is one budgeted round; kFull
  /// iterates with larger budgets.
  sat::SimplifyMode plan_simplify = sat::SimplifyMode::kFast;
  /// Snapshot GC policy (serving-side): the number of deltas a running
  /// request may trail the published model by while keeping its snapshot
  /// pinned. When > 0, the serving layer fails an enumeration whose
  /// pinned version lags the engine's by more than this
  /// (kResourceExhausted, counted under ServiceStats::snapshot_evictions)
  /// — cutting the pin so the COW chain stays bounded instead of growing
  /// with the slowest consumer. 0 = never evict (the default).
  std::size_t max_snapshot_lag = 0;
  /// Alarm threshold on retained snapshot bytes: when > 0 and the COW
  /// chain's approximate footprint exceeds it, ServiceStats reports
  /// snapshot_alarm = true. Observability only; pair with
  /// max_snapshot_lag for enforcement. 0 = no alarm.
  std::size_t snapshot_alarm_bytes = 0;
  /// Serialisation of fact-text parsing/rendering against the symbol
  /// table. Normally left null (the engine makes its own mutex); a
  /// multi-engine layer whose engines share one symbol table — the
  /// sharded service's replicas — must inject one shared mutex here, or
  /// concurrent parses on two engines would race on the shared table.
  std::shared_ptr<util::Mutex> parse_mutex;
  /// Durability (consumed by the serving layer, not the engine itself):
  /// directory holding the write-ahead delta log and checkpoints. When
  /// non-empty, Service/ShardedService open a storage::DurableStore
  /// there, recover checkpoint + WAL tail on construction, and log
  /// every committed delta before applying it. Empty = memory-only.
  /// Deltas applied directly through Engine::ApplyDelta (bypassing the
  /// serving layer) are NOT logged.
  std::string data_dir;
  /// fsync the WAL on every append (durable against power loss, not
  /// just process crash). Off by default: the bench_durability numbers
  /// gate the non-fsync path.
  bool wal_fsync = false;
  /// Group commit: with wal_fsync on, coalesce fsyncs across
  /// consecutive ordered-lane deltas — each delta is appended
  /// immediately, but the fsync is deferred until no further delta is
  /// already waiting behind it (then one fsync covers the whole run).
  /// The committed data is identical; what moves is the moment the
  /// "durable against power loss" guarantee attaches: a delta's ticket
  /// may complete a few records before its fsync. Recovery is
  /// unaffected — a torn tail truncates exactly as without batching.
  /// Ignored when wal_fsync is off.
  bool wal_group_commit = false;
  /// Committed deltas between snapshot checkpoints; 0 = never
  /// checkpoint (recovery replays the full log).
  std::size_t checkpoint_interval = 32;
};

/// Parameters of Engine::Enumerate.
struct EnumerateRequest {
  /// The answer fact to explain; either a fact id of the engine's model
  /// or, when kInvalidFact, the parse of `target_text`.
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Stop after this many members (kNoLimit = enumerate to exhaustion).
  std::size_t max_members = kNoLimit;
  /// Stop once this much wall-clock time has elapsed (<= 0 = no timeout).
  double timeout_seconds = 0;
  /// Request-scoped overrides of the engine defaults. (PreparedQuery
  /// executions ignore `target`/`target_text`/`acyclicity`: those are
  /// plan-scoped and fixed at Prepare time.)
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
  /// Cooperative cancellation/deadline token (empty = never interrupts):
  /// checked between members *and* polled inside the SAT search, so a
  /// cancel or deadline stops a long solve promptly. The Enumeration
  /// handle reports the reason via cancelled()/deadline_exceeded().
  util::CancellationToken cancellation;
};

/// Parameters of Engine::Decide: is `candidate` a member of the
/// why-provenance of `target` w.r.t. `tree_class`?
struct DecideRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  std::vector<datalog::Fact> candidate;  ///< the D' to test
  provenance::TreeClass tree_class = provenance::TreeClass::kUnambiguous;
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
  /// Interrupts the SAT decision mid-solve; an interrupted Decide returns
  /// kCancelled/kDeadlineExceeded instead of a verdict.
  util::CancellationToken cancellation;
};

/// Parameters of Engine::Baseline (all-at-once materialisation).
struct BaselineRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Engine default if unset.
  std::optional<provenance::BaselineLimits> limits;
};

/// Parameters of Engine::Explain (proof-tree reconstruction).
struct ExplainRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Explain the (member_index + 1)-th member of the enumeration.
  std::size_t member_index = 0;
  /// Node cap for unravelling the compressed DAG into a tree.
  std::size_t max_tree_nodes = 1u << 20;
  /// Request-scoped overrides, as in EnumerateRequest.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
  std::string solver_backend;  ///< empty = engine default
  /// Interrupts the backing enumeration, as in EnumerateRequest.
  util::CancellationToken cancellation;
};

/// Parameters of Engine::Prepare.
struct PrepareRequest {
  datalog::FactId target = datalog::kInvalidFact;
  std::string target_text;
  /// Overrides the engine's acyclicity encoding for this plan.
  std::optional<provenance::AcyclicityEncoding> acyclicity;
};

/// Parameters of Engine::ApplyDelta: a fact-level database update. Facts
/// can be given parsed or as text ("edge(a, b)"); both lists may be used
/// together. Every fact must be extensional (rules derive the rest).
/// Additions already in the database and removals not in it are no-ops.
struct DeltaRequest {
  std::vector<datalog::Fact> added_facts;
  std::vector<std::string> added_fact_texts;
  std::vector<datalog::Fact> removed_facts;
  std::vector<std::string> removed_fact_texts;
};

/// Outcome of Engine::ApplyDelta: the new model version plus counters for
/// what the delta did to the model and the plan cache.
struct DeltaStats {
  std::uint64_t model_version = 0;  ///< the engine's version after the delta
  std::size_t facts_added = 0;      ///< database facts actually inserted
  std::size_t facts_removed = 0;    ///< database facts actually removed
  std::size_t facts_derived = 0;    ///< derived facts added by propagation
  std::size_t facts_deleted = 0;    ///< derived facts deleted by DRed
  std::size_t facts_rederived = 0;  ///< deletion suspects that survived
  std::size_t facts_touched = 0;    ///< facts whose derivations/rank changed
  std::size_t plans_retained = 0;   ///< cached plans that survived the delta
  std::size_t plans_invalidated = 0;  ///< cached plans dropped by the delta
  double eval_seconds = 0;   ///< semi-naive delta evaluation time
  double total_seconds = 0;  ///< end-to-end ApplyDelta time
};

/// Result of Engine::Explain: one why-provenance member together with a
/// witnessing unambiguous proof tree.
struct Explanation {
  std::vector<datalog::Fact> member;
  provenance::ProofTree tree;
};

/// An already-evaluated delta, produced by Engine::EvaluateDelta: the
/// post-delta model (structurally sharing unchanged storage with the
/// source snapshot) plus everything a replica needs to publish it —
/// the touched facts driving selective plan invalidation and the fact
/// counters. One evaluation can be adopted by every engine of a replica
/// group (see AdoptDelta), so N lockstep shards pay the semi-naive
/// propagation once, not N times.
struct EvaluatedDelta {
  std::uint64_t base_version = 0;  ///< version the delta was evaluated on
  bool noop = false;  ///< delta had no effective facts (nothing to adopt)
  datalog::Model model;  ///< the post-delta model (COW; = base when noop)
  std::vector<datalog::FactId> touched;  ///< sorted; plan invalidation key
  DeltaStats stats;  ///< fact counters + eval time (plan fields unset)
};

/// Side-effect-free cost signals for one query target, read by
/// Engine::PeekPlanCost for the QoS admission layer (qos/cost.h prices
/// them). `plan_cached` means a plan for the target is cached at the
/// *current* model version, in which case the closure/CNF sizes are the
/// cached plan's; otherwise they are 0 and `database_facts` is the
/// fallback size proxy.
struct PlanCostPeek {
  bool plan_cached = false;
  std::size_t closure_facts = 0;
  std::size_t cnf_clauses = 0;
  std::size_t cnf_variables = 0;
  std::size_t database_facts = 0;
};

/// Snapshot-retention accounting of one engine (see Engine::snapshot_
/// stats): how many model-state snapshots are currently alive — the
/// published one plus every older version pinned by in-flight
/// PreparedQuery/Enumeration handles — and their approximate heap bytes.
/// Bytes are attributed at snapshot birth from the COW chunk stats,
/// weighting each chunk by its sharer count (a chunk shared by k
/// versions contributes its size once across the k), so the sum tracks
/// the chain's footprint without walking retired snapshots.
struct SnapshotStats {
  std::size_t retained_snapshots = 0;
  std::size_t approx_bytes = 0;
};

/// The shared, immutable core of an engine: the parsed inputs, the
/// evaluated least model, the options, and (logically mutable but
/// internally synchronised) the plan cache. Held by shared_ptr from the
/// engine and from every live handle (Enumeration, PreparedQuery), so
/// moving or destroying the Engine object never invalidates a handle.
/// Everything here except the plan cache and the parse mutex is
/// bitwise-immutable after construction and therefore thread-shareable.
struct EngineState {
  /// Shared retention counters of one engine's snapshot chain: every
  /// EngineState registers at construction and deregisters at
  /// destruction, so the counts reflect exactly the versions still pinned
  /// somewhere (the engine itself, or a live handle).
  struct SnapshotAccounting {
    std::atomic<std::size_t> retained{0};
    std::atomic<std::size_t> bytes{0};
  };

  EngineState(datalog::Program program_in, datalog::Database database_in,
              datalog::PredicateId answer_predicate_in,
              EngineOptions options_in);

  /// The successor state ApplyDelta builds: the delta-updated model, the
  /// bumped version, and a plan cache that starts from the predecessor's
  /// counters (retained plans are re-inserted by the caller). The parse
  /// mutex is inherited: all versions share one symbol table, so they
  /// must share the lock that guards it. The database view is NOT copied:
  /// it materialises lazily from the model on first access.
  EngineState(const EngineState& predecessor, datalog::Model model_in,
              std::uint64_t model_version_in, double eval_seconds_in);

  ~EngineState();

  /// Cache-through plan lookup: returns the cached plan for
  /// (target, acyclicity) — provided it is stamped with this state's
  /// model version — or builds, stamps, and caches a fresh one.
  std::shared_ptr<const provenance::QueryPlan> PlanFor(
      datalog::FactId target,
      provenance::AcyclicityEncoding acyclicity) const;

  /// This version's database. Version 0 stores the parsed input; delta
  /// successors materialise the view lazily from the model (the live
  /// rank-0 facts are exactly the database), so ApplyDelta never pays
  /// O(database) to republish the fact list. Thread-safe.
  const datalog::Database& database() const;

  /// True iff `fact` is a database fact of this version (answered from
  /// the model, without materialising the database view).
  bool InDatabase(const datalog::Fact& fact) const;

  datalog::Program program;
  datalog::PredicateId answer_predicate;
  EngineOptions options;
  /// Monotonic database/model version: 0 at construction, +1 per applied
  /// delta. Plans are stamped with the version they are valid for.
  std::uint64_t model_version = 0;
  // eval_seconds is written while model is initialised, so it must be
  // declared (and thus initialised) before model.
  double eval_seconds = 0;
  datalog::Model model;
  /// Serialises every engine-surface touch of the shared symbol table:
  /// fact-text parsing (ParseFact interns constants, mutating the table)
  /// and fact rendering (which reads the interned names). Shared across
  /// the engine's state versions, which share the table. Callers going
  /// straight to model().symbols() from several threads are on their own.
  std::shared_ptr<util::Mutex> parse_mutex;
  mutable PlanCache plan_cache;
  /// Shared across the engine's versions; see SnapshotAccounting.
  std::shared_ptr<SnapshotAccounting> accounting;

 private:
  mutable util::Mutex database_mutex_;
  /// The lazily materialised database view (eager for version 0). Write
  /// -once under the mutex; the reference database() returns stays valid
  /// because the view is never re-materialised.
  mutable std::optional<datalog::Database> database_
      GUARDED_BY(database_mutex_);
  /// This version's at-birth exclusive bytes (what it adds to, and on
  /// destruction removes from, the accounting).
  std::size_t accounted_bytes_ = 0;
};

/// A live why-provenance enumeration: a move-only, range-style handle
/// unifying incremental Next(), draining All(), per-member delays, phase
/// timings, and budget outcomes. Obtained from Engine::Enumerate or
/// PreparedQuery::Enumerate; shares ownership of the engine state, so it
/// stays valid even if the Engine object is moved or destroyed.
class Enumeration {
 public:
  Enumeration(Enumeration&&) = default;
  Enumeration& operator=(Enumeration&&) = default;

  /// The next member of the family as a sorted set of database facts, or
  /// nullopt once exhausted or a request budget (member cap / timeout)
  /// has been hit.
  std::optional<std::vector<datalog::Fact>> Next();

  /// Drains the remaining members (still subject to the request budgets).
  std::vector<std::vector<datalog::Fact>> All();

  /// Reconstructs an unambiguous proof tree witnessing the most recently
  /// emitted member. kNotFound before the first Next().
  util::Result<provenance::ProofTree> ExplainLast(
      std::size_t max_tree_nodes = 1u << 20) const;

  /// Members emitted so far through this handle.
  std::size_t members_emitted() const { return emitted_; }

  /// True once Next() returned nullopt because the solver answered UNSAT
  /// or gave up (see incomplete() to tell the two apart).
  bool exhausted() const { return exhausted_; }

  /// True if the backend answered kUnknown (e.g. a failed external
  /// solver or an exhausted conflict budget): the enumeration stopped
  /// but the emitted members may not be the whole family.
  bool incomplete() const { return impl_->incomplete(); }

  /// True once the request's max_members stopped the enumeration.
  bool hit_member_cap() const { return hit_member_cap_; }

  /// True once the request's timeout stopped the enumeration.
  bool hit_timeout() const { return hit_timeout_; }

  /// True once the request's cancellation token stopped the enumeration
  /// (between members or mid-solve).
  bool cancelled() const { return cancelled_; }

  /// True once the request's deadline (carried by the token) expired.
  bool deadline_exceeded() const { return hit_deadline_; }

  /// kCancelled/kDeadlineExceeded once the token stopped the enumeration,
  /// Ok() otherwise (including exhaustion and budget stops).
  util::Status interruption_status() const {
    if (cancelled_) return util::Status::Cancelled("the request was cancelled");
    if (hit_deadline_) {
      return util::Status::DeadlineExceeded("the request deadline passed");
    }
    return util::Status::Ok();
  }

  /// The model version of the engine-state snapshot this enumeration is
  /// pinned to (what a serving layer reports as the version it answered
  /// from).
  std::uint64_t model_version() const { return state_->model_version; }

  /// The fact being explained.
  datalog::FactId target() const { return target_; }

  /// Per-member delays in milliseconds (the paper's Figures 2/4).
  const std::vector<double>& delays_ms() const { return impl_->delays_ms(); }

  /// Closure/encode phase timings of the plan (the paper's Figures 1/3).
  /// Zero marginal cost when the plan came from the cache.
  const provenance::PlanTimings& timings() const { return impl_->timings(); }

  /// The shared plan this enumeration executes.
  const std::shared_ptr<const provenance::QueryPlan>& plan() const {
    return impl_->plan();
  }

  /// The downward closure (e.g. for size reporting).
  const provenance::DownwardClosure& closure() const {
    return impl_->closure();
  }

  /// The encoding layout (e.g. for variable/clause counts).
  const provenance::Encoding& encoding() const { return impl_->encoding(); }

  /// The SAT backend serving this enumeration.
  const sat::SolverInterface& solver() const { return impl_->solver(); }

  /// Witness choices of the most recent member (see WhyProvenanceEnumerator).
  const std::unordered_map<datalog::FactId, std::size_t>&
  last_witness_choices() const {
    return impl_->last_witness_choices();
  }

  /// Minimal input-iterator support so the handle works with range-for:
  ///   for (const auto& member : enumeration) { ... }
  class Iterator {
   public:
    using value_type = std::vector<datalog::Fact>;

    Iterator() = default;
    explicit Iterator(Enumeration* owner) : owner_(owner) { ++*this; }
    const value_type& operator*() const { return *current_; }
    Iterator& operator++() {
      current_ = owner_->Next();
      if (!current_.has_value()) owner_ = nullptr;
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.owner_ == b.owner_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return !(a == b);
    }

   private:
    Enumeration* owner_ = nullptr;
    std::optional<value_type> current_;
  };

  Iterator begin() { return Iterator(this); }
  Iterator end() { return Iterator(); }

 private:
  friend class Engine;
  friend class PreparedQuery;

  Enumeration(std::shared_ptr<const EngineState> state,
              std::unique_ptr<provenance::WhyProvenanceEnumerator> impl,
              datalog::FactId target, std::size_t max_members,
              double timeout_seconds, util::CancellationToken cancellation)
      : state_(std::move(state)),
        impl_(std::move(impl)),
        target_(target),
        max_members_(max_members),
        timeout_seconds_(timeout_seconds),
        cancel_(std::move(cancellation)) {}

  std::shared_ptr<const EngineState> state_;
  std::unique_ptr<provenance::WhyProvenanceEnumerator> impl_;
  datalog::FactId target_;
  std::size_t max_members_;
  double timeout_seconds_;
  util::CancellationToken cancel_;
  util::Timer clock_;  // starts when Enumerate returns the handle
  std::size_t emitted_ = 0;
  bool exhausted_ = false;
  bool hit_member_cap_ = false;
  bool hit_timeout_ = false;
  bool cancelled_ = false;
  bool hit_deadline_ = false;
};

/// An immutable, thread-shareable compiled query: the downward closure and
/// CNF encoding of one target fact, plus shared ownership of the engine
/// state it was compiled against. Obtained from Engine::Prepare; cheap to
/// copy (two shared_ptrs) and safe to use from any number of threads
/// simultaneously — every execution instantiates its own fresh SAT solver
/// and replays the plan's formula into it, so executions never contend.
/// A PreparedQuery may outlive the Engine object it came from.
class PreparedQuery {
 public:
  /// The compiled target fact.
  datalog::FactId target() const;

  /// The compiled target rendered as text, e.g. "path(a, b)".
  std::string target_text() const;

  /// The acyclicity encoding the plan was compiled with.
  provenance::AcyclicityEncoding acyclicity() const;

  /// Closure/encode phase timings of the compile step.
  const provenance::PlanTimings& timings() const;

  /// The downward closure (e.g. for size reporting).
  const provenance::DownwardClosure& closure() const;

  /// The encoding layout (e.g. for variable/clause counts).
  const provenance::Encoding& encoding() const;

  /// The backend-neutral CNF formula (e.g. for variable/clause counts).
  const sat::CnfFormula& formula() const;

  /// The model version of the engine-state snapshot this plan is pinned
  /// to (every execution through this handle serves that version).
  std::uint64_t model_version() const { return state_->model_version; }

  /// The underlying shared plan.
  const std::shared_ptr<const provenance::QueryPlan>& plan() const {
    return plan_;
  }

  /// Starts an incremental whyUN enumeration against this plan with a
  /// fresh solver. The request's plan-scoped fields (`target`,
  /// `target_text`, `acyclicity`) are ignored; budgets and the solver
  /// backend apply. Thread-safe: concurrent calls each get their own
  /// solver.
  util::Result<Enumeration> Enumerate(
      const EnumerateRequest& request = EnumerateRequest()) const;

  /// Decides membership of `request.candidate` against this plan
  /// (SAT-based for kUnambiguous; the exhaustive reference algorithms
  /// ignore the plan's formula but reuse the engine state). Thread-safe.
  util::Result<bool> Decide(const DecideRequest& request) const;

  /// Reconstructs one member plus a witnessing unambiguous proof tree.
  /// Thread-safe.
  util::Result<Explanation> Explain(
      const ExplainRequest& request = ExplainRequest()) const;

 private:
  friend class Engine;

  PreparedQuery(std::shared_ptr<const EngineState> state,
                std::shared_ptr<const provenance::QueryPlan> plan)
      : state_(std::move(state)), plan_(std::move(plan)) {}

  /// The shared execute step (also used by Engine's cache-through entry
  /// points): fresh solver, replay the plan, wrap the budgeted handle.
  static util::Result<Enumeration> ExecutePlan(
      std::shared_ptr<const EngineState> state,
      std::shared_ptr<const provenance::QueryPlan> plan,
      const EnumerateRequest& request);

  std::shared_ptr<const EngineState> state_;
  std::shared_ptr<const provenance::QueryPlan> plan_;
};

/// Thread-count knob for the batch entry points.
struct BatchOptions {
  /// Worker threads fanning the batch out (0 = one per hardware thread).
  std::size_t num_threads = 0;
};

/// Aggregated throughput statistics of one batch call.
struct BatchStats {
  std::size_t requests = 0;   ///< batch size
  std::size_t succeeded = 0;  ///< requests that completed without error
  std::size_t failed = 0;     ///< requests that returned an error status
  std::size_t members_emitted = 0;  ///< total members (enumerate batches)
  double wall_seconds = 0;          ///< end-to-end batch wall-clock
  double queries_per_second = 0;    ///< requests / wall_seconds
  std::size_t plan_cache_hits = 0;    ///< cache hits during the batch
  std::size_t plan_cache_misses = 0;  ///< cache misses during the batch
};

/// Per-request outcome of Engine::EnumerateBatch: the materialised members
/// (subject to the request budgets) plus the handle flags.
struct BatchEnumerateOutcome {
  util::Status status;  ///< per-request failure (target resolution, backend)
  std::vector<std::vector<datalog::Fact>> members;
  bool exhausted = false;
  bool incomplete = false;
  bool hit_member_cap = false;
  bool hit_timeout = false;
  double seconds = 0;  ///< wall-clock spent on this request
};

struct BatchEnumerateResult {
  std::vector<BatchEnumerateOutcome> outcomes;  ///< parallel to the requests
  BatchStats stats;
};

/// Per-request outcome of Engine::DecideBatch.
struct BatchDecideOutcome {
  util::Status status;
  bool member = false;  ///< meaningful only when status.ok()
  double seconds = 0;
};

struct BatchDecideResult {
  std::vector<BatchDecideOutcome> outcomes;  ///< parallel to the requests
  BatchStats stats;
};

/// The unified public facade over the whole reproduction: owns parsing,
/// semi-naive evaluation, and every provenance service of the paper —
/// incremental whyUN enumeration (Section 5), membership decision
/// (Section 3), all-at-once materialisation (the Figure 5 baseline), and
/// proof-tree reconstruction — behind typed request/response structs.
/// SAT backends are pluggable via `sat::SolverFactory`.
///
/// The engine follows a compile-once/execute-many model: the expensive,
/// immutable part of a query (downward closure + CNF encoding) is a
/// `PreparedQuery` plan, built by Prepare and cached behind the request
/// entry points in an LRU plan cache; each execution then runs against a
/// fresh per-request solver. All request methods are const and
/// thread-safe — hammer one engine from as many threads as you like, or
/// use EnumerateBatch/DecideBatch to let the engine do the fan-out.
///
/// The database is mutable between requests: ApplyDelta applies a
/// fact-level update by semi-naive delta re-evaluation (never a from-
/// scratch rebuild), publishes a fresh immutable state snapshot under a
/// bumped model version, and selectively invalidates only the cached
/// plans whose downward closure the delta touched. Requests in flight
/// (and PreparedQuery/Enumeration handles) keep serving the snapshot they
/// started on.
class Engine {
 public:
  /// Parses program/database text, resolves the answer predicate, and
  /// evaluates the least model eagerly.
  static util::Result<Engine> FromText(std::string_view program_text,
                                       std::string_view database_text,
                                       std::string_view answer_predicate,
                                       EngineOptions options = EngineOptions());

  /// Builds an engine from already-parsed pieces (evaluates eagerly).
  static Engine FromParts(datalog::Program program,
                          datalog::Database database,
                          datalog::PredicateId answer_predicate,
                          EngineOptions options = EngineOptions());

  // --- views ------------------------------------------------------------
  //
  // Views return references into the engine's *current* state snapshot.
  // They stay valid until the next ApplyDelta retires that snapshot; code
  // that must keep reading one consistent model across deltas should hold
  // a PreparedQuery (which pins its snapshot) instead.

  const datalog::Program& program() const { return snapshot()->program; }
  const datalog::Database& database() const { return snapshot()->database(); }
  const datalog::Model& model() const { return snapshot()->model; }
  datalog::PredicateId answer_predicate() const {
    return snapshot()->answer_predicate;
  }
  const EngineOptions& options() const { return snapshot()->options; }

  /// Seconds spent evaluating the least model (for version 0) or applying
  /// the latest delta (after ApplyDelta).
  double eval_seconds() const { return snapshot()->eval_seconds; }

  /// The monotonic model version: 0 at construction, +1 per ApplyDelta.
  std::uint64_t model_version() const { return snapshot()->model_version; }

  /// Hit/miss/eviction/invalidation counters of the plan cache behind the
  /// request entry points (cumulative across deltas).
  PlanCacheStats plan_cache_stats() const {
    return snapshot()->plan_cache.stats();
  }

  /// Live snapshot count and approximate retained bytes: the published
  /// state plus every older version still pinned by an in-flight
  /// PreparedQuery/Enumeration handle (long-lived tickets show up here).
  SnapshotStats snapshot_stats() const {
    const auto state = snapshot();
    SnapshotStats stats;
    stats.retained_snapshots = state->accounting->retained.load();
    stats.approx_bytes = state->accounting->bytes.load();
    return stats;
  }

  // --- incremental updates ----------------------------------------------

  /// Applies a fact-level database delta in place: removals run
  /// delete-and-rederive, additions propagate forward semi-naively, ranks
  /// are relaxed to their exact values, and a fresh state snapshot is
  /// published under `model_version() + 1`. Cached plans whose downward
  /// closure is disjoint from the touched facts are carried over (still
  /// hot); the rest are invalidated and rebuilt lazily on their next use.
  /// Thread-safe: concurrent requests keep serving the snapshot they
  /// started on, and concurrent ApplyDelta calls are serialised. Facts
  /// must be extensional; unknown predicates or malformed text fail the
  /// whole delta without publishing anything.
  util::Result<DeltaStats> ApplyDelta(const DeltaRequest& request);

  /// The evaluate half of ApplyDelta, without publishing: parses and
  /// validates the request, runs the semi-naive insertion propagation and
  /// delete-and-rederive against the *current* snapshot, and returns the
  /// resulting model plus the touched-fact set. Pure with respect to this
  /// engine's published state. The caller owns ordering: adopting the
  /// result is only valid while the engine still serves `base_version`
  /// (AdoptDelta checks). This is the replication primitive behind
  /// sharded serving — one shard evaluates, every lockstep replica
  /// adopts.
  util::Result<EvaluatedDelta> EvaluateDelta(const DeltaRequest& request) const;

  /// Pins the current state snapshot for out-of-band readers (the
  /// storage tier serializes `model` + `model_version` from it without
  /// stalling queries; checkpoint encoding must additionally hold the
  /// snapshot's parse_mutex while reading the symbol table).
  std::shared_ptr<const EngineState> PinSnapshot() const {
    return snapshot();
  }

  /// Publishes a recovered model under an explicit version (the
  /// checkpoint-restore path of the durability tier). Builds a
  /// successor state inheriting this engine's program, options, and
  /// parse mutex; the plan cache starts cold (plans compiled against
  /// the pre-recovery fact-id space would be wrong). Must run before
  /// the engine starts serving deltas for versions to stay monotonic.
  void AdoptRecovered(datalog::Model model, std::uint64_t version);

  /// The publish half of ApplyDelta: clones `delta.model` (cheap —
  /// structurally shared chunks), runs this engine's own selective
  /// plan-cache carry-over against `delta.touched`, and swaps in the new
  /// snapshot under `base_version + 1`. Fails with kInvalidArgument when
  /// this engine's published version is not `delta.base_version` — adopt
  /// requires replicas in lockstep (identical fact-id spaces), which the
  /// sharded delta lane guarantees by total-ordering deltas.
  util::Result<DeltaStats> AdoptDelta(const EvaluatedDelta& delta);

  // --- answers ----------------------------------------------------------

  /// The answer facts R(t) of the query.
  std::vector<datalog::FactId> AnswerFactIds() const;

  /// Picks `count` answers uniformly without replacement, deterministic in
  /// `options().sampling_seed` (repeated calls return the same sample).
  std::vector<datalog::FactId> SampleAnswers(std::size_t count) const;

  /// Same, but driven by a caller-owned RNG stream.
  std::vector<datalog::FactId> SampleAnswers(std::size_t count,
                                             util::Rng& rng) const;

  /// Parses a fact like "path(a, b)" and returns its model id.
  /// Thread-safe (parsing is serialised internally).
  util::Result<datalog::FactId> FactIdOf(std::string_view fact_text) const;

  /// Cost signals for pricing a request *before* admitting it: resolves
  /// the target against the current snapshot and peeks the plan cache —
  /// never compiles a plan or touches the cache's counters/LRU order.
  /// An unresolvable target returns the fallback signals (database size
  /// only); pricing must stay cheap even for garbage input.
  PlanCostPeek PeekPlanCost(
      datalog::FactId target, const std::string& target_text,
      std::optional<provenance::AcyclicityEncoding> acyclicity) const;

  /// Renders a fact id / fact for display.
  std::string FactToText(datalog::FactId id) const;
  std::string FactToText(const datalog::Fact& fact) const;

  // --- prepare/execute --------------------------------------------------

  /// Compiles the target into an immutable, thread-shareable plan
  /// (downward closure + CNF encoding + variable layout, with phase
  /// timings). Goes through the plan cache, so preparing an already-hot
  /// target is free. The returned PreparedQuery shares ownership of the
  /// engine state and may outlive this Engine object.
  util::Result<PreparedQuery> Prepare(const PrepareRequest& request) const;
  util::Result<PreparedQuery> Prepare(datalog::FactId target) const;
  util::Result<PreparedQuery> Prepare(std::string_view target_text) const;

  // --- provenance services ----------------------------------------------
  //
  // Each request entry point resolves its target, fetches (or compiles and
  // caches) the plan, and executes it with a fresh per-request solver.
  // All of them are const and thread-safe.

  /// Starts an incremental whyUN enumeration for the requested answer.
  util::Result<Enumeration> Enumerate(const EnumerateRequest& request) const;

  /// Decides membership of `request.candidate` in the why-provenance
  /// family of the target w.r.t. the requested proof-tree class
  /// (SAT-based for kUnambiguous, exhaustive reference otherwise).
  util::Result<bool> Decide(const DecideRequest& request) const;

  /// Materialises the complete why(t, D, Q) family in one all-at-once
  /// fixpoint pass (the paper's Figure 5 comparator).
  util::Result<provenance::ProvenanceFamily> Baseline(
      const BaselineRequest& request) const;

  /// Reconstructs one member plus a witnessing unambiguous proof tree.
  util::Result<Explanation> Explain(const ExplainRequest& request) const;

  // --- batch serving ----------------------------------------------------

  /// Fans the requests across a worker pool: targets are resolved
  /// up front, then every request executes a (cached) prepared plan with
  /// its own solver, honouring its per-request budgets. Outcomes are
  /// positionally parallel to the requests; `stats` aggregates throughput
  /// and plan-cache effectiveness over the batch.
  BatchEnumerateResult EnumerateBatch(
      const std::vector<EnumerateRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

  /// Same fan-out for membership decisions.
  BatchDecideResult DecideBatch(
      const std::vector<DecideRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

 private:
  Engine(datalog::Program program, datalog::Database database,
         datalog::PredicateId answer_predicate, EngineOptions options);

  /// The current state snapshot (the engine's one word of mutable state,
  /// swapped atomically by ApplyDelta).
  std::shared_ptr<const EngineState> snapshot() const {
    const util::MutexLock lock(*state_mutex_);
    return state_;
  }

  /// Resolves the (id, text) target pair every request struct carries
  /// against one pinned snapshot.
  static util::Result<datalog::FactId> ResolveTarget(
      const EngineState& state, datalog::FactId target,
      const std::string& target_text);

  /// The request entry points against one pinned snapshot (shared by the
  /// singular and batch paths, so a delta landing mid-batch cannot mix
  /// model versions within the batch).
  static util::Result<Enumeration> EnumerateOn(
      std::shared_ptr<const EngineState> state,
      const EnumerateRequest& request);
  static util::Result<bool> DecideOn(
      const std::shared_ptr<const EngineState>& state,
      const DecideRequest& request);

  /// The publish half of a delta, with update_mutex_ already held.
  /// `model` is the model to publish: AdoptDelta passes a clone (so the
  /// shared EvaluatedDelta stays adoptable by sibling replicas), while
  /// ApplyDelta moves its own evaluation in — the single-engine write
  /// path pays exactly one clone, as before the split. Must not read
  /// `delta.model` (ApplyDelta's call has moved it out).
  util::Result<DeltaStats> AdoptLocked(const EvaluatedDelta& delta,
                                       datalog::Model model)
      REQUIRES(*update_mutex_);

  /// Guards reads/swaps of `state_` (behind unique_ptr to stay movable).
  std::unique_ptr<util::Mutex> state_mutex_ =
      std::make_unique<util::Mutex>();
  /// Serialises ApplyDelta calls end to end.
  std::unique_ptr<util::Mutex> update_mutex_ =
      std::make_unique<util::Mutex>();
  std::shared_ptr<const EngineState> state_ GUARDED_BY(*state_mutex_);
};

}  // namespace whyprov

#endif  // WHYPROV_ENGINE_ENGINE_H_
