#ifndef WHYPROV_ENGINE_PLAN_CACHE_H_
#define WHYPROV_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/evaluator.h"
#include "provenance/query_plan.h"
#include "sat/simplify.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whyprov {

/// Point-in-time snapshot of plan-cache effectiveness.
struct PlanCacheStats {
  std::size_t hits = 0;       ///< Get calls answered from the cache
  std::size_t misses = 0;     ///< Get calls that found nothing (or stale)
  std::size_t evictions = 0;  ///< plans dropped to respect the capacity
  std::size_t invalidated = 0;  ///< plans dropped because a delta touched
                                ///< their closure (or their stamp trailed
                                ///< the engine's model version)
  std::size_t coalesced = 0;  ///< GetOrBuild calls that waited on another
                              ///< thread's in-flight build instead of
                              ///< compiling the plan themselves
  std::size_t size = 0;       ///< plans currently cached
  std::size_t capacity = 0;   ///< configured capacity (0 = disabled)

  // Cumulative plan-time CNF inprocessing counters (sat/simplify.h),
  // recorded once per plan build when EngineOptions::plan_simplify is on.
  std::uint64_t plans_simplified = 0;
  std::uint64_t simplify_vars_removed = 0;
  std::uint64_t simplify_clauses_removed = 0;
  std::uint64_t simplify_micros = 0;  ///< total simplify wall time, µs
};

/// A thread-safe LRU cache of query plans, keyed by (target fact,
/// acyclicity encoding). Plans are immutable and handed out as
/// shared_ptr, so an evicted plan stays valid for executions already
/// holding it. Capacity 0 disables caching (every Get misses, Put is a
/// no-op) while still counting misses.
///
/// Plans are version-stamped against the engine's monotonic model
/// version. `Get` treats a plan whose stamp trails the expected version
/// as missing (dropping it and counting an invalidation), so stale plans
/// are rebuilt lazily on their next hit; `Entries`/`CountInvalidated`
/// support the delta path's selective carry-over into a successor cache.
///
/// `GetOrBuild` is the single-flight entry point: concurrent misses on
/// one (key, version) compile the plan once — the first thread builds
/// while the rest wait on a build latch and share the result (counted
/// under `coalesced`), so a post-delta stampede on a hot target costs one
/// compilation instead of one per requester. The raw Get/Put pair remains
/// for callers that want the racy fallback; correctness never depends on
/// single-flight building, only latency does.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// A successor cache (after ApplyDelta): same capacity, counters carried
  /// over from the predecessor so engine-level stats stay cumulative.
  PlanCache(std::size_t capacity, const PlanCacheStats& carried)
      : capacity_(capacity),
        hits_(carried.hits),
        misses_(carried.misses),
        evictions_(carried.evictions),
        invalidated_(carried.invalidated),
        coalesced_(carried.coalesced),
        plans_simplified_(carried.plans_simplified),
        simplify_vars_removed_(carried.simplify_vars_removed),
        simplify_clauses_removed_(carried.simplify_clauses_removed),
        simplify_micros_(carried.simplify_micros) {}

  /// Returns the cached plan for the key if present and stamped with
  /// `expected_version`; a stale entry is dropped (counted under
  /// `invalidated`) and reported as a miss so the caller rebuilds it.
  std::shared_ptr<const provenance::QueryPlan> Get(
      datalog::FactId target, provenance::AcyclicityEncoding acyclicity,
      std::uint64_t expected_version = 0) EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    return GetLocked(MakeKey(target, acyclicity), expected_version);
  }

  void Put(datalog::FactId target, provenance::AcyclicityEncoding acyclicity,
           std::shared_ptr<const provenance::QueryPlan> plan)
      EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    PutLocked(MakeKey(target, acyclicity), std::move(plan));
  }

  /// Single-flight cache-through lookup: the cached plan for the key at
  /// `expected_version`, or the result of running `build` — exactly once
  /// across every thread concurrently missing on this key. The winner
  /// compiles (outside the cache lock: builds are the expensive part) and
  /// Puts; the others block on the build latch and share the winner's
  /// plan. `build` must return a plan already stamped with
  /// `expected_version`; a waiter handed a plan stamped otherwise (a
  /// delta landed mid-build) retries the whole lookup, becoming the
  /// builder for its own version if need be. Works with capacity 0 too:
  /// the latch map is independent of the LRU, so concurrent misses still
  /// coalesce even when nothing is retained afterwards.
  template <typename BuildFn>
  std::shared_ptr<const provenance::QueryPlan> GetOrBuild(
      datalog::FactId target, provenance::AcyclicityEncoding acyclicity,
      std::uint64_t expected_version, const BuildFn& build)
      EXCLUDES(mutex_) {
    const Key key = MakeKey(target, acyclicity);
    while (true) {
      std::shared_ptr<Flight> flight;
      bool builder = false;
      {
        const util::MutexLock lock(mutex_);
        if (auto plan = GetLocked(key, expected_version)) return plan;
        auto it = flights_.find(key);
        if (it == flights_.end()) {
          flight = std::make_shared<Flight>();
          flights_.emplace(key, flight);
          builder = true;
        } else {
          flight = it->second;
          ++coalesced_;
        }
      }
      if (builder) {
        std::shared_ptr<const provenance::QueryPlan> plan = build();
        {
          const util::MutexLock lock(mutex_);
          PutLocked(key, plan);
          flights_.erase(key);
        }
        {
          const util::MutexLock lock(flight->mutex);
          flight->plan = plan;
          flight->done = true;
        }
        flight->cv.NotifyAll();
        return plan;
      }
      std::shared_ptr<const provenance::QueryPlan> plan;
      {
        const util::MutexLock lock(flight->mutex);
        while (!flight->done) flight->cv.Wait(flight->mutex);
        plan = flight->plan;
      }
      if (plan != nullptr && plan->model_version() == expected_version) {
        return plan;
      }
      // The build this thread latched onto was for another model version;
      // loop and build (or find) one for the expected version.
    }
  }

  /// Side-effect-free lookup for cost estimation (the QoS admission
  /// path): the cached plan for the key at `expected_version`, or null.
  /// Touches no counters, drops no stale entry, and does not bump the
  /// LRU order — a peek is not a use.
  std::shared_ptr<const provenance::QueryPlan> Peek(
      datalog::FactId target, provenance::AcyclicityEncoding acyclicity,
      std::uint64_t expected_version) const EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    const auto it = index_.find(MakeKey(target, acyclicity));
    if (it == index_.end()) return nullptr;
    if (it->second->second->model_version() != expected_version) {
      return nullptr;
    }
    return it->second->second;
  }

  /// One cached plan together with its key, for delta carry-over.
  struct Entry {
    datalog::FactId target;
    provenance::AcyclicityEncoding acyclicity;
    std::shared_ptr<const provenance::QueryPlan> plan;
  };

  /// The cached plans from least- to most-recently used, so re-Putting
  /// them in order into a successor cache preserves the LRU order.
  std::vector<Entry> Entries() const EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    std::vector<Entry> entries;
    entries.reserve(lru_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      entries.push_back(Entry{static_cast<datalog::FactId>(it->first >> 8),
                              static_cast<provenance::AcyclicityEncoding>(
                                  it->first & 0xff),
                              it->second});
    }
    return entries;
  }

  /// Records plans dropped by a delta's selective invalidation (they never
  /// reach the successor cache, so Get cannot count them).
  void CountInvalidated(std::size_t count) EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    invalidated_ += count;
  }

  /// Records one plan build's inprocessing outcome (the builder thread of
  /// GetOrBuild calls this right after QueryPlan::Build).
  void RecordSimplify(const sat::SimplifyStats& stats) EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    ++plans_simplified_;
    simplify_vars_removed_ += stats.vars_before - stats.vars_after;
    simplify_clauses_removed_ +=
        stats.clauses_before > stats.clauses_after
            ? stats.clauses_before - stats.clauses_after
            : 0;
    simplify_micros_ += static_cast<std::uint64_t>(stats.seconds * 1e6);
  }

  PlanCacheStats stats() const EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    PlanCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.invalidated = invalidated_;
    stats.coalesced = coalesced_;
    stats.size = lru_.size();
    stats.capacity = capacity_;
    stats.plans_simplified = plans_simplified_;
    stats.simplify_vars_removed = simplify_vars_removed_;
    stats.simplify_clauses_removed = simplify_clauses_removed_;
    stats.simplify_micros = simplify_micros_;
    return stats;
  }

 private:
  /// (target << 8) | acyclicity: FactId is 32-bit and the encoding enum is
  /// tiny, so the pair packs collision-free into one key.
  using Key = std::uint64_t;
  static Key MakeKey(datalog::FactId target,
                     provenance::AcyclicityEncoding acyclicity) {
    return (static_cast<Key>(target) << 8) |
           static_cast<Key>(acyclicity);
  }

  /// One in-flight plan build: the latch concurrent missers wait on.
  struct Flight {
    util::Mutex mutex;
    util::CondVar cv;
    bool done GUARDED_BY(mutex) = false;
    std::shared_ptr<const provenance::QueryPlan> plan GUARDED_BY(mutex);
  };

  /// Get with mutex_ already held (shared by Get and GetOrBuild).
  std::shared_ptr<const provenance::QueryPlan> GetLocked(
      Key key, std::uint64_t expected_version) REQUIRES(mutex_) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    if (it->second->second->model_version() != expected_version) {
      lru_.erase(it->second);
      index_.erase(it);
      ++invalidated_;
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
    return it->second->second;
  }

  /// Put with mutex_ already held (shared by Put and GetOrBuild).
  void PutLocked(Key key, std::shared_ptr<const provenance::QueryPlan> plan)
      REQUIRES(mutex_) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(plan));
    index_.emplace(key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }
  using LruEntry =
      std::pair<Key, std::shared_ptr<const provenance::QueryPlan>>;

  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  /// front = most recently used
  std::list<LruEntry> lru_ GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<LruEntry>::iterator> index_
      GUARDED_BY(mutex_);
  /// In-flight builds by key (see GetOrBuild).
  std::unordered_map<Key, std::shared_ptr<Flight>> flights_
      GUARDED_BY(mutex_);
  std::size_t hits_ GUARDED_BY(mutex_) = 0;
  std::size_t misses_ GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ GUARDED_BY(mutex_) = 0;
  std::size_t invalidated_ GUARDED_BY(mutex_) = 0;
  std::size_t coalesced_ GUARDED_BY(mutex_) = 0;
  std::uint64_t plans_simplified_ GUARDED_BY(mutex_) = 0;
  std::uint64_t simplify_vars_removed_ GUARDED_BY(mutex_) = 0;
  std::uint64_t simplify_clauses_removed_ GUARDED_BY(mutex_) = 0;
  std::uint64_t simplify_micros_ GUARDED_BY(mutex_) = 0;
};

}  // namespace whyprov

#endif  // WHYPROV_ENGINE_PLAN_CACHE_H_
