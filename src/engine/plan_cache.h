#ifndef WHYPROV_ENGINE_PLAN_CACHE_H_
#define WHYPROV_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "datalog/evaluator.h"
#include "provenance/query_plan.h"

namespace whyprov {

/// Point-in-time snapshot of plan-cache effectiveness.
struct PlanCacheStats {
  std::size_t hits = 0;       ///< Get calls answered from the cache
  std::size_t misses = 0;     ///< Get calls that found nothing
  std::size_t evictions = 0;  ///< plans dropped to respect the capacity
  std::size_t size = 0;       ///< plans currently cached
  std::size_t capacity = 0;   ///< configured capacity (0 = disabled)
};

/// A thread-safe LRU cache of query plans, keyed by (target fact,
/// acyclicity encoding). Plans are immutable and handed out as
/// shared_ptr, so an evicted plan stays valid for executions already
/// holding it. Capacity 0 disables caching (every Get misses, Put is a
/// no-op) while still counting misses.
///
/// Two threads missing on the same key both build the plan and race the
/// Put; the loser's plan simply replaces (or is replaced by) an identical
/// one — correctness does not depend on single-flight building.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const provenance::QueryPlan> Get(
      datalog::FactId target, provenance::AcyclicityEncoding acyclicity) {
    const Key key = MakeKey(target, acyclicity);
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
    return it->second->second;
  }

  void Put(datalog::FactId target, provenance::AcyclicityEncoding acyclicity,
           std::shared_ptr<const provenance::QueryPlan> plan) {
    if (capacity_ == 0) return;
    const Key key = MakeKey(target, acyclicity);
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(plan));
    index_.emplace(key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  PlanCacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    PlanCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.size = lru_.size();
    stats.capacity = capacity_;
    return stats;
  }

 private:
  /// (target << 8) | acyclicity: FactId is 32-bit and the encoding enum is
  /// tiny, so the pair packs collision-free into one key.
  using Key = std::uint64_t;
  static Key MakeKey(datalog::FactId target,
                     provenance::AcyclicityEncoding acyclicity) {
    return (static_cast<Key>(target) << 8) |
           static_cast<Key>(acyclicity);
  }

  using Entry = std::pair<Key, std::shared_ptr<const provenance::QueryPlan>>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace whyprov

#endif  // WHYPROV_ENGINE_PLAN_CACHE_H_
