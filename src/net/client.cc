#include "net/client.h"

#include <utility>

namespace whyprov::net {

util::Result<Client> Client::Connect(const std::string& host,
                                     std::uint16_t port) {
  auto socket = util::ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  Client client;
  client.socket_ = std::move(socket).value();
  return client;
}

util::Status Client::Send(const EnumerateFrame& frame) {
  return WriteFrame(socket_, kFrameEnumerate, Encode(frame));
}

util::Status Client::Send(const DecideFrame& frame) {
  return WriteFrame(socket_, kFrameDecide, Encode(frame));
}

util::Status Client::Send(const ExplainFrame& frame) {
  return WriteFrame(socket_, kFrameExplain, Encode(frame));
}

util::Status Client::Send(const DeltaFrame& frame) {
  return WriteFrame(socket_, kFrameDelta, Encode(frame));
}

util::Status Client::Send(const StatsFrame& frame) {
  return WriteFrame(socket_, kFrameStats, Encode(frame));
}

util::Status Client::SendRaw(std::uint8_t type, std::string_view body) {
  return WriteFrame(socket_, type, body);
}

util::Status Client::SendBytes(const void* data, std::size_t size) {
  // The deliberately unframed escape hatch: tests use it to send
  // malformed and hostile byte sequences past the framing helpers.
  // NOLINTNEXTLINE(whyprov-raw-frame-io): hostile-input escape hatch
  return socket_.SendAll(data, size);
}

util::Status Client::ReadFrameRaw(std::uint8_t* type, std::string* body) {
  return ReadFrame(socket_, type, body);
}

util::Result<Outcome> Client::AwaitFinal(std::uint64_t request_id,
                                         const MemberCallback& on_member) {
  Outcome outcome;
  bool consuming = true;
  while (true) {
    std::uint8_t type = 0;
    std::string body;
    if (auto status = ReadFrame(socket_, &type, &body); !status.ok()) {
      if (status.code() == util::StatusCode::kNotFound) {
        return util::Status::Error(
            "the server closed the connection before the final frame");
      }
      return status;
    }
    switch (type) {
      case kFrameMembers: {
        auto members = DecodeMembers(body);
        if (!members.ok()) return members.status();
        if (members.value().request_id != request_id) {
          return util::Status::Error(
              "member batch for an unexpected request id");
        }
        for (auto& member : members.value().members) {
          if (on_member != nullptr) {
            if (consuming && !on_member(member)) consuming = false;
          } else {
            outcome.streamed_members.push_back(std::move(member));
          }
        }
        break;
      }
      case kFrameFinal: {
        auto final = DecodeFinal(body);
        if (!final.ok()) return final.status();
        if (final.value().request_id != request_id) {
          return util::Status::Error(
              "final frame for an unexpected request id");
        }
        outcome.final = std::move(final).value();
        return outcome;
      }
      case kFrameError: {
        auto error = DecodeError(body);
        if (!error.ok()) return error.status();
        return util::Status::Error(
            static_cast<util::StatusCode>(error.value().status_code),
            "server error: " + error.value().message);
      }
      default:
        return util::Status::Error("unexpected frame type " +
                                   std::to_string(static_cast<int>(type)));
    }
  }
}

util::Result<Outcome> Client::Enumerate(const std::string& target,
                                        std::uint64_t max_members,
                                        double deadline_seconds, bool stream,
                                        std::uint32_t batch_size,
                                        MemberCallback on_member) {
  EnumerateFrame frame;
  frame.request_id = NextRequestId();
  frame.target = target;
  frame.max_members = max_members;
  frame.deadline_seconds = deadline_seconds;
  frame.stream = stream ? 1 : 0;
  frame.batch_size = batch_size;
  frame.qos_class = qos_class_;
  frame.tenant = tenant_;
  if (auto status = Send(frame); !status.ok()) return status;
  return AwaitFinal(frame.request_id, on_member);
}

util::Result<Outcome> Client::Decide(
    const std::string& target,
    const std::vector<std::string>& candidate_facts,
    whyprov_tree_class tree_class, double deadline_seconds) {
  DecideFrame frame;
  frame.request_id = NextRequestId();
  frame.target = target;
  frame.tree_class = static_cast<std::uint8_t>(tree_class);
  frame.candidate_facts = candidate_facts;
  frame.deadline_seconds = deadline_seconds;
  frame.qos_class = qos_class_;
  frame.tenant = tenant_;
  if (auto status = Send(frame); !status.ok()) return status;
  return AwaitFinal(frame.request_id);
}

util::Result<Outcome> Client::Explain(const std::string& target,
                                      std::uint64_t member_index,
                                      double deadline_seconds) {
  ExplainFrame frame;
  frame.request_id = NextRequestId();
  frame.target = target;
  frame.member_index = member_index;
  frame.deadline_seconds = deadline_seconds;
  frame.qos_class = qos_class_;
  frame.tenant = tenant_;
  if (auto status = Send(frame); !status.ok()) return status;
  return AwaitFinal(frame.request_id);
}

util::Result<Outcome> Client::ApplyDelta(
    const std::vector<std::string>& added_facts,
    const std::vector<std::string>& removed_facts, double deadline_seconds) {
  DeltaFrame frame;
  frame.request_id = NextRequestId();
  frame.added_facts = added_facts;
  frame.removed_facts = removed_facts;
  frame.deadline_seconds = deadline_seconds;
  frame.qos_class = qos_class_;
  frame.tenant = tenant_;
  if (auto status = Send(frame); !status.ok()) return status;
  return AwaitFinal(frame.request_id);
}

util::Result<whyprov_stats> Client::Stats() {
  auto reply = StatsWithTenants();
  if (!reply.ok()) return reply.status();
  return reply.value().stats;
}

util::Result<StatsReplyFrame> Client::StatsWithTenants() {
  StatsFrame frame;
  frame.request_id = NextRequestId();
  if (auto status = Send(frame); !status.ok()) return status;
  while (true) {
    std::uint8_t type = 0;
    std::string body;
    if (auto status = ReadFrame(socket_, &type, &body); !status.ok()) {
      return status;
    }
    if (type == kFrameStatsReply) {
      auto reply = DecodeStatsReply(body);
      if (!reply.ok()) return reply.status();
      if (reply.value().request_id != frame.request_id) {
        return util::Status::Error(
            "stats reply for an unexpected request id");
      }
      return std::move(reply).value();
    }
    if (type == kFrameError) {
      auto error = DecodeError(body);
      if (!error.ok()) return error.status();
      return util::Status::Error(
          static_cast<util::StatusCode>(error.value().status_code),
          "server error: " + error.value().message);
    }
    return util::Status::Error("unexpected frame type " +
                               std::to_string(static_cast<int>(type)));
  }
}

}  // namespace whyprov::net
