#ifndef WHYPROV_NET_CLIENT_H_
#define WHYPROV_NET_CLIENT_H_

// Wire-protocol client: the counterpart of net/server.h for tests, the
// load generator, and anything else that wants the serving tier over a
// socket. Two levels:
//
//   * High-level synchronous calls (Enumerate/Decide/Explain/
//     ApplyDelta/Stats): send one request, read frames until its final
//     frame, return the decoded payload. Streamed member batches are
//     delivered through an optional per-member callback and (when no
//     callback consumes them) accumulated on the outcome — so the
//     streamed and materialised modes produce comparable results.
//   * Low-level Send*/ReadFrameRaw for pipelining several requests on
//     one connection, protocol tests (malformed frames via SendRaw),
//     and mid-stream disconnect tests (Close mid-enumeration).
//
// A Client is one connection and is not thread-safe; use one per
// thread. Request ids are assigned monotonically per connection.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/whyprov_c.h"
#include "net/wire.h"
#include "util/socket.h"
#include "util/status.h"

namespace whyprov::net {

/// Outcome of one high-level call: the decoded final frame plus, for a
/// streaming enumeration without a consuming callback, the members
/// gathered from the batch frames (in emission order).
struct Outcome {
  FinalFrame final;
  std::vector<std::vector<std::string>> streamed_members;

  bool ok() const { return final.status_code == WHYPROV_OK; }
  whyprov_status code() const {
    return static_cast<whyprov_status>(final.status_code);
  }
};

class Client {
 public:
  /// Called once per streamed member; return false to stop consuming
  /// (remaining frames are still drained so the connection stays usable).
  using MemberCallback =
      std::function<bool(const std::vector<std::string>& member)>;

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  static util::Result<Client> Connect(const std::string& host,
                                      std::uint16_t port);

  bool connected() const { return socket_.valid(); }

  /// Abrupt teardown — from the server's point of view, a disconnect.
  /// The destructor does the same; this is for tests that need to
  /// drop the connection mid-stream, deliberately.
  void Close() { socket_.Close(); }

  /// Sets the QoS identity stamped on every subsequent high-level
  /// request from this client: the priority lane and the tenant the
  /// server schedules and accounts it under. The default (interactive,
  /// "") is the shared default identity, under which requests behave
  /// exactly like pre-QoS traffic. Low-level Send callers set the
  /// frame fields themselves.
  void SetQos(whyprov_qos_class qos_class, std::string tenant) {
    qos_class_ = static_cast<std::uint8_t>(qos_class);
    tenant_ = std::move(tenant);
  }

  // --- high-level synchronous calls ------------------------------------

  /// Enumerate `target`. With `stream` the members arrive as batch
  /// frames (`on_member` sees each one; without a callback they are
  /// accumulated on the outcome); without it they ride the final frame.
  util::Result<Outcome> Enumerate(const std::string& target,
                                  std::uint64_t max_members = 0,
                                  double deadline_seconds = 0,
                                  bool stream = false,
                                  std::uint32_t batch_size = 0,
                                  MemberCallback on_member = nullptr);

  util::Result<Outcome> Decide(
      const std::string& target,
      const std::vector<std::string>& candidate_facts,
      whyprov_tree_class tree_class = WHYPROV_TREE_UNAMBIGUOUS,
      double deadline_seconds = 0);

  util::Result<Outcome> Explain(const std::string& target,
                                std::uint64_t member_index = 0,
                                double deadline_seconds = 0);

  util::Result<Outcome> ApplyDelta(
      const std::vector<std::string>& added_facts,
      const std::vector<std::string>& removed_facts,
      double deadline_seconds = 0);

  util::Result<whyprov_stats> Stats();

  /// As Stats, but returns the whole decoded reply including the
  /// appended per-tenant/per-lane rows (empty when talking to a
  /// pre-QoS server).
  util::Result<StatsReplyFrame> StatsWithTenants();

  // --- low-level access -------------------------------------------------

  /// Next request id (also what the following Send* will stamp).
  std::uint64_t NextRequestId() { return ++next_id_; }

  util::Status Send(const EnumerateFrame& frame);
  util::Status Send(const DecideFrame& frame);
  util::Status Send(const ExplainFrame& frame);
  util::Status Send(const DeltaFrame& frame);
  util::Status Send(const StatsFrame& frame);

  /// Raw frame write — for protocol tests (malformed bodies, unknown
  /// types, hand-built length prefixes go straight through SendBytes).
  util::Status SendRaw(std::uint8_t type, std::string_view body);
  util::Status SendBytes(const void* data, std::size_t size);

  /// Reads one frame (type + body). kNotFound = server closed cleanly.
  util::Status ReadFrameRaw(std::uint8_t* type, std::string* body);

  /// Reads frames for `request_id` until its final frame: member
  /// batches go to `on_member`/`streamed` (either may be null), an
  /// error frame fails the call with its carried status. Used by the
  /// high-level calls; exposed for pipelined low-level use.
  util::Result<Outcome> AwaitFinal(std::uint64_t request_id,
                                   const MemberCallback& on_member = nullptr);

 private:
  util::Socket socket_;
  std::uint64_t next_id_ = 0;
  std::uint8_t qos_class_ = WHYPROV_QOS_INTERACTIVE;
  std::string tenant_;
};

}  // namespace whyprov::net

#endif  // WHYPROV_NET_CLIENT_H_
