#include "net/server.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whyprov::net {

namespace internal {

// One accepted connection: the socket, its two threads, and the FIFO of
// submitted-but-unanswered work connecting them. The queue entries own
// their tickets until the responder serves (and destroys) them.
struct ServerSession {
  /// One submitted request (or the two ticketless cases: a stats poll
  /// and a failed submit), queued for the responder in submission order.
  /// kind == 0 marks the connection-level error entry that ends the
  /// session after the responses already owed.
  struct Pending {
    std::uint64_t request_id = 0;
    std::uint8_t kind = 0;
    whyprov_ticket* ticket = nullptr;
    bool stream = false;
    std::uint32_t batch_size = 0;
    whyprov_status submit_status = WHYPROV_OK;
    std::string error_message;
  };

  util::Socket socket;
  /// The connection's identity in the server's per-connection rate
  /// limiter ("conn-<n>"); set by the accept loop before the threads
  /// start, immutable afterwards.
  std::string rate_identity;
  std::thread reader;
  std::thread responder;

  util::Mutex mutex;
  util::CondVar work_cv;   // responder: queue non-empty / done
  util::CondVar space_cv;  // reader: below the in-flight cap
  std::deque<Pending> queue GUARDED_BY(mutex);
  /// The entry the responder serves now.
  whyprov_ticket* active GUARDED_BY(mutex) = nullptr;
  /// No further entries will arrive.
  bool reader_done GUARDED_BY(mutex) = false;
  /// A write failed or the error entry was served: drain the rest
  /// without touching the socket.
  bool failed GUARDED_BY(mutex) = false;
};

}  // namespace internal

namespace {

using internal::ServerSession;

/// Maps the server's rate-limit knobs onto a QoS admission
/// configuration: a pure token bucket (no outstanding-cost budget),
/// one bucket per connection identity.
qos::QosOptions RateLimitOptions(const ServerOptions& options) {
  qos::QosOptions qos;
  qos.refill_per_second = options.max_requests_per_second;
  qos.burst = options.rate_limit_burst;
  return qos;
}

/// Cancels every ticket the session still holds (queued + active).
void CancelSession(ServerSession& session) {
  const util::MutexLock lock(session.mutex);
  for (auto& pending : session.queue) {
    if (pending.ticket != nullptr) whyprov_ticket_cancel(pending.ticket);
  }
  if (session.active != nullptr) whyprov_ticket_cancel(session.active);
}

/// Blocks until the session is below its in-flight cap, then queues the
/// entry — the reader-side half of the per-connection bound.
void Push(ServerSession& session, ServerSession::Pending pending,
          std::size_t cap) {
  const util::MutexLock lock(session.mutex);
  while (session.queue.size() >= cap && !session.failed) {
    session.space_cv.Wait(session.mutex);
  }
  if (session.failed) {
    // The connection is already dead; don't leave the ticket to leak.
    if (pending.ticket != nullptr) {
      whyprov_ticket_cancel(pending.ticket);
      whyprov_ticket_destroy(pending.ticket);
    }
    return;
  }
  session.queue.push_back(std::move(pending));
  session.work_cv.NotifyAll();
}

/// The responder's single write point: once a write fails the session
/// flips to failed (the client is gone) and every remaining ticket is
/// cancelled so the drain is quick.
bool WriteOrFail(ServerSession& session, std::uint8_t type,
                 const std::string& body) {
  {
    const util::MutexLock lock(session.mutex);
    if (session.failed) return false;
  }
  if (WriteFrame(session.socket, type, body).ok()) return true;
  {
    const util::MutexLock lock(session.mutex);
    session.failed = true;
    for (auto& pending : session.queue) {
      if (pending.ticket != nullptr) whyprov_ticket_cancel(pending.ticket);
    }
    if (session.active != nullptr) whyprov_ticket_cancel(session.active);
  }
  session.space_cv.NotifyAll();
  return false;
}

/// Copies the ABI's scratch-buffer member into owned strings.
std::vector<std::string> CopyMember(const char* const* facts,
                                    std::size_t num_facts) {
  std::vector<std::string> member;
  member.reserve(num_facts);
  for (std::size_t i = 0; i < num_facts; ++i) member.emplace_back(facts[i]);
  return member;
}

/// Answers one ticketed request: member-batch frames for a streaming
/// enumeration, then the final frame built entirely from ABI accessors.
void ServeTicket(ServerSession& session, ServerSession::Pending& pending) {
  whyprov_ticket* ticket = pending.ticket;

  if (pending.kind == kFrameEnumerate && pending.stream) {
    // Stream member batches as the bounded MemberStream yields them.
    // The pull below blocks on the stream (which blocks the producer:
    // backpressure), and the write blocks on the socket — chaining the
    // client's read pace all the way into the SAT enumeration.
    MembersFrame batch;
    batch.request_id = pending.request_id;
    const char* const* facts = nullptr;
    std::size_t num_facts = 0;
    while (whyprov_ticket_next_member(ticket, &facts, &num_facts) != 0) {
      batch.members.push_back(CopyMember(facts, num_facts));
      if (batch.members.size() >= pending.batch_size) {
        if (!WriteOrFail(session, kFrameMembers, Encode(batch))) break;
        batch.members.clear();
      }
    }
    if (!batch.members.empty()) {
      WriteOrFail(session, kFrameMembers, Encode(batch));
    }
  }

  FinalFrame final;
  final.request_id = pending.request_id;
  final.kind = pending.kind;
  final.status_code =
      static_cast<std::uint8_t>(whyprov_ticket_status(ticket));
  final.status_message = whyprov_ticket_status_message(ticket);
  final.model_version = whyprov_ticket_model_version(ticket);
  switch (pending.kind) {
    case kFrameEnumerate: {
      final.members_emitted = whyprov_ticket_members_emitted(ticket);
      final.enumerate_flags =
          static_cast<std::uint8_t>(whyprov_ticket_enumerate_flags(ticket));
      if (!pending.stream) {
        const std::size_t count = whyprov_ticket_num_members(ticket);
        final.members.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          const char* const* facts = nullptr;
          std::size_t num_facts = 0;
          if (whyprov_ticket_member(ticket, i, &facts, &num_facts) != 0) {
            final.members.push_back(CopyMember(facts, num_facts));
          }
        }
      }
      break;
    }
    case kFrameDecide:
      final.verdict =
          static_cast<std::uint8_t>(whyprov_ticket_decision(ticket));
      break;
    case kFrameExplain: {
      const char* const* facts = nullptr;
      std::size_t num_facts = 0;
      const char* tree = nullptr;
      if (whyprov_ticket_explanation(ticket, &facts, &num_facts, &tree) !=
          0) {
        final.has_explanation = 1;
        final.explanation_member = CopyMember(facts, num_facts);
        final.proof_tree = tree;
      }
      break;
    }
    case kFrameDelta:
      if (whyprov_ticket_delta_stats(ticket, &final.delta) != 0) {
        final.has_delta = 1;
      }
      break;
    default:
      break;
  }
  WriteOrFail(session, kFrameFinal, Encode(final));
}

}  // namespace

Server::Server(whyprov_service* service, ServerOptions options)
    : service_(service),
      options_(options),
      rate_limiter_(RateLimitOptions(options_)) {}

Server::~Server() { Stop(); }

util::Status Server::Start(std::uint16_t port) {
  {
    const util::MutexLock lock(mutex_);
    if (started_) return util::Status::InvalidArgument("Start called twice");
    started_ = true;
  }
  auto listener = util::ListenSocket::Listen(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void Server::Stop() {
  {
    const util::MutexLock lock(mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  listener_.Close();  // a blocked Accept returns kCancelled
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so the session list is frozen: take it
  // over under the lock, then tear the sessions down without it.
  std::vector<std::unique_ptr<internal::ServerSession>> sessions;
  {
    const util::MutexLock lock(mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    // Wake a reader blocked in recv (it sees EOF and cancels the
    // session's tickets) and fail any in-flight responder write.
    session->socket.ShutdownBoth();
  }
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
    if (session->responder.joinable()) session->responder.join();
  }
}

std::size_t Server::connections_accepted() const {
  const util::MutexLock lock(mutex_);
  return connections_accepted_;
}

void Server::AcceptLoop() {
  while (true) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;  // kCancelled: Stop closed the listener
    auto session = std::make_unique<ServerSession>();
    session->socket = std::move(accepted).value();
    ServerSession* raw = session.get();
    {
      const util::MutexLock lock(mutex_);
      if (stopped_) return;  // raced with Stop; drop the connection
      ++connections_accepted_;
      raw->rate_identity = "conn-" + std::to_string(connections_accepted_);
      sessions_.push_back(std::move(session));
    }
    raw->reader = std::thread([this, raw] { RunReader(*raw); });
    raw->responder = std::thread([this, raw] { RunResponder(*raw); });
  }
}

void Server::RunReader(ServerSession& session) {
  bool disconnected = false;
  while (true) {
    std::uint8_t type = 0;
    std::string body;
    const auto read =
        ReadFrame(session.socket, &type, &body, options_.max_frame_bytes);
    if (!read.ok()) {
      if (read.code() == util::StatusCode::kInvalidArgument) {
        // Oversized/zero-length frame: a protocol violation, answered
        // after the responses already owed, then the connection ends.
        ServerSession::Pending error;
        error.submit_status = WHYPROV_INVALID_ARGUMENT;
        error.error_message = read.message();
        Push(session, std::move(error), options_.max_session_tickets);
      } else {
        // EOF or socket error: the client is gone.
        disconnected = true;
      }
      break;
    }

    // Per-connection rate limiting: work frames charge one unit from
    // the connection's token bucket; an empty bucket answers the
    // request with a RESOURCE_EXHAUSTED final frame (the client can
    // back off and retry) instead of submitting it. Stats polls stay
    // free so a throttled client can still observe the service.
    const bool rate_limited =
        type >= kFrameEnumerate && type <= kFrameDelta &&
        !rate_limiter_.unlimited() &&
        !rate_limiter_.Admit(session.rate_identity, 1.0).ok();

    ServerSession::Pending pending;
    pending.kind = type;
    bool malformed = false;
    std::string malformed_message;
    switch (type) {
      case kFrameEnumerate: {
        auto frame = DecodeEnumerate(body);
        if (!frame.ok()) {
          malformed = true;
          malformed_message = frame.status().message();
          break;
        }
        pending.request_id = frame.value().request_id;
        pending.stream = frame.value().stream != 0;
        pending.batch_size = frame.value().batch_size > 0
                                 ? frame.value().batch_size
                                 : options_.default_batch_size;
        if (rate_limited) break;
        whyprov_ticket* ticket = nullptr;
        pending.submit_status = whyprov_submit_enumerate_qos(
            service_, frame.value().target.c_str(),
            frame.value().max_members, frame.value().deadline_seconds,
            pending.stream ? pending.batch_size : 0,
            static_cast<int>(frame.value().qos_class),
            frame.value().tenant.c_str(), &ticket);
        pending.ticket = ticket;
        break;
      }
      case kFrameDecide: {
        auto frame = DecodeDecide(body);
        if (!frame.ok()) {
          malformed = true;
          malformed_message = frame.status().message();
          break;
        }
        pending.request_id = frame.value().request_id;
        if (rate_limited) break;
        std::vector<const char*> candidates;
        candidates.reserve(frame.value().candidate_facts.size());
        for (const auto& fact : frame.value().candidate_facts) {
          candidates.push_back(fact.c_str());
        }
        whyprov_ticket* ticket = nullptr;
        pending.submit_status = whyprov_submit_decide_qos(
            service_, frame.value().target.c_str(), candidates.data(),
            candidates.size(),
            static_cast<whyprov_tree_class>(frame.value().tree_class),
            frame.value().deadline_seconds,
            static_cast<int>(frame.value().qos_class),
            frame.value().tenant.c_str(), &ticket);
        pending.ticket = ticket;
        break;
      }
      case kFrameExplain: {
        auto frame = DecodeExplain(body);
        if (!frame.ok()) {
          malformed = true;
          malformed_message = frame.status().message();
          break;
        }
        pending.request_id = frame.value().request_id;
        if (rate_limited) break;
        whyprov_ticket* ticket = nullptr;
        pending.submit_status = whyprov_submit_explain_qos(
            service_, frame.value().target.c_str(),
            frame.value().member_index, frame.value().deadline_seconds,
            static_cast<int>(frame.value().qos_class),
            frame.value().tenant.c_str(), &ticket);
        pending.ticket = ticket;
        break;
      }
      case kFrameDelta: {
        auto frame = DecodeDelta(body);
        if (!frame.ok()) {
          malformed = true;
          malformed_message = frame.status().message();
          break;
        }
        pending.request_id = frame.value().request_id;
        if (rate_limited) break;
        std::vector<const char*> added;
        std::vector<const char*> removed;
        added.reserve(frame.value().added_facts.size());
        for (const auto& fact : frame.value().added_facts) {
          added.push_back(fact.c_str());
        }
        removed.reserve(frame.value().removed_facts.size());
        for (const auto& fact : frame.value().removed_facts) {
          removed.push_back(fact.c_str());
        }
        whyprov_ticket* ticket = nullptr;
        pending.submit_status = whyprov_submit_delta_qos(
            service_, added.data(), added.size(), removed.data(),
            removed.size(), frame.value().deadline_seconds,
            static_cast<int>(frame.value().qos_class),
            frame.value().tenant.c_str(), &ticket);
        pending.ticket = ticket;
        break;
      }
      case kFrameStats: {
        auto frame = DecodeStats(body);
        if (!frame.ok()) {
          malformed = true;
          malformed_message = frame.status().message();
          break;
        }
        pending.request_id = frame.value().request_id;
        break;
      }
      default:
        malformed = true;
        malformed_message =
            "unknown frame type " + std::to_string(static_cast<int>(type));
        break;
    }

    if (malformed) {
      ServerSession::Pending error;
      error.submit_status = WHYPROV_INVALID_ARGUMENT;
      error.error_message = std::move(malformed_message);
      Push(session, std::move(error), options_.max_session_tickets);
      break;
    }
    if (rate_limited) {
      pending.submit_status = WHYPROV_RESOURCE_EXHAUSTED;
      pending.error_message = "per-connection rate limit exceeded";
    }
    Push(session, std::move(pending), options_.max_session_tickets);
  }

  {
    const util::MutexLock lock(session.mutex);
    session.reader_done = true;
  }
  session.work_cv.NotifyAll();
  // Cancel-on-disconnect: a vanished client must not keep a SAT
  // enumeration running (or its model snapshot pinned) to the end.
  if (disconnected) CancelSession(session);
}

void Server::RunResponder(ServerSession& session) {
  while (true) {
    ServerSession::Pending pending;
    {
      const util::MutexLock lock(session.mutex);
      while (session.queue.empty() && !session.reader_done) {
        session.work_cv.Wait(session.mutex);
      }
      if (session.queue.empty()) break;  // reader done, everything served
      pending = std::move(session.queue.front());
      session.queue.pop_front();
      session.active = pending.ticket;
    }
    session.space_cv.NotifyAll();

    if (pending.kind == 0) {
      // The connection-level error entry: report, then end the session.
      ErrorFrame error;
      error.request_id = pending.request_id;
      error.status_code = pending.submit_status;
      error.message = std::move(pending.error_message);
      WriteOrFail(session, kFrameError, Encode(error));
      session.socket.ShutdownWrite();
    } else if (pending.kind == kFrameStats) {
      StatsReplyFrame reply;
      reply.request_id = pending.request_id;
      whyprov_service_stats(service_, &reply.stats);
      // The appended per-tenant section: size the buffer from the
      // ABI's row count (a second call is fine — rows only ever grow).
      const std::size_t rows =
          whyprov_service_tenant_stats(service_, nullptr, 0);
      if (rows > 0) {
        std::vector<whyprov_tenant_stats> buffer(rows);
        const std::size_t copied = std::min(
            rows,
            whyprov_service_tenant_stats(service_, buffer.data(), rows));
        reply.tenants.reserve(copied);
        for (std::size_t i = 0; i < copied; ++i) {
          WireTenantStats row;
          row.tenant = buffer[i].tenant;
          row.qos_class = static_cast<std::uint8_t>(buffer[i].qos_class);
          row.queued = buffer[i].queued;
          row.served = buffer[i].served;
          row.rejected = buffer[i].rejected;
          row.cancelled = buffer[i].cancelled;
          row.cost_served = buffer[i].cost_served;
          row.queue_p50_seconds = buffer[i].queue_p50_seconds;
          row.queue_p99_seconds = buffer[i].queue_p99_seconds;
          reply.tenants.push_back(std::move(row));
        }
      }
      WriteOrFail(session, kFrameStatsReply, Encode(reply));
    } else if (pending.ticket == nullptr) {
      // Admission (or argument) failure: the submit itself refused, or
      // the connection's rate limiter refused before it.
      FinalFrame final;
      final.request_id = pending.request_id;
      final.kind = pending.kind;
      final.status_code = pending.submit_status;
      final.status_message = pending.error_message.empty()
                                 ? whyprov_status_name(pending.submit_status)
                                 : pending.error_message;
      WriteOrFail(session, kFrameFinal, Encode(final));
    } else {
      ServeTicket(session, pending);
    }

    whyprov_ticket* done = pending.ticket;
    {
      const util::MutexLock lock(session.mutex);
      session.active = nullptr;
    }
    // Destroy only after `active` is cleared: CancelSession must never
    // race a live pointer against the free.
    if (done != nullptr) whyprov_ticket_destroy(done);
  }
}

}  // namespace whyprov::net
