#ifndef WHYPROV_NET_SERVER_H_
#define WHYPROV_NET_SERVER_H_

// The TCP front end of the serving tier: accepts connections on
// loopback and speaks the length-prefixed wire protocol (net/wire.h)
// over the flat C ABI (net/whyprov_c.h) — and over *nothing else*. The
// server deliberately never touches the C++ Service classes directly:
// every submit, wait, cancel, stream-pull, and stat read goes through
// whyprov_c.h, which keeps the ABI honest (anything the server can do,
// a foreign-language binding can do).
//
// Per connection the server runs two threads:
//
//   reader    — parses request frames, submits them through the ABI,
//               and pushes the resulting tickets onto a bounded FIFO.
//               The bound is the per-connection in-flight cap; a client
//               that keeps submitting past it blocks in the kernel's
//               socket buffers (backpressure, not rejection).
//   responder — pops the FIFO in submission order and writes responses:
//               for a streaming enumeration, member batches as the
//               bounded MemberStream yields them (a slow client blocks
//               the socket write, which blocks the stream pull, which
//               blocks the SAT producer — backpressure end to end),
//               then the final frame; one final frame for everything
//               else.
//
// Responses on one connection are therefore delivered in submission
// order, while the service executes the requests concurrently.
//
// Disconnect handling: when the reader sees EOF or a socket error it
// cancels every ticket of the session — queued and active — through
// whyprov_ticket_cancel, so a mid-stream client disconnect promptly
// stops the SAT enumeration and unpins its model snapshot. A responder
// write failure (client vanished while a batch was in flight) triggers
// the same cancellation. A malformed, oversized, or unknown frame is
// answered — after the responses already owed — with one error frame,
// and the connection closes.
//
// Deadlines travel in the request frames' deadline_seconds field and
// are handed to the ABI's submit, which installs them on the request's
// CancellationToken (measured from submission, queue wait included).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/whyprov_c.h"
#include "net/wire.h"
#include "qos/cost.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace whyprov::net {

namespace internal {
struct ServerSession;  // one accepted connection (defined in server.cc)
}  // namespace internal

struct ServerOptions {
  /// In-flight tickets one connection may hold (queued + being served);
  /// the reader stops parsing past it until responses drain.
  std::size_t max_session_tickets = 64;
  /// Members per kFrameMembers batch when the client's batch_size is 0.
  std::uint32_t default_batch_size = 8;
  /// Per-frame byte cap enforced on reads (writes use kMaxFrameBytes).
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Per-connection request-rate limit, a thin reuse of the QoS
  /// admission controller: every connection gets its own token bucket
  /// (identity "conn-<n>") charging one unit per work frame (stats
  /// polls are exempt). An empty bucket answers the request with
  /// RESOURCE_EXHAUSTED instead of submitting — the client sees a
  /// normal final frame and may back off and retry. 0 = unlimited.
  double max_requests_per_second = 0;
  /// Token-bucket depth of the rate limit; 0 = one second of refill.
  double rate_limit_burst = 0;
};

/// The wire-protocol server. Does not own the service handle: the
/// caller creates it with whyprov_service_create, keeps it alive past
/// Stop(), and destroys it afterwards. Thread-safe lifecycle: Start
/// once, Stop from any thread (idempotent; the destructor stops too).
class Server {
 public:
  explicit Server(whyprov_service* service,
                  ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept loop.
  util::Status Start(std::uint16_t port);

  /// The bound port (after a successful Start).
  std::uint16_t port() const { return listener_.port(); }

  /// Closes the listener and every live session (cancelling their
  /// in-flight tickets), then joins all threads. Idempotent.
  void Stop();

  /// Connections accepted so far (diagnostics).
  std::size_t connections_accepted() const;

 private:
  void AcceptLoop();
  void RunReader(internal::ServerSession& session);
  void RunResponder(internal::ServerSession& session);

  whyprov_service* const service_;
  const ServerOptions options_;
  /// The per-connection rate limiter (see ServerOptions); unlimited when
  /// max_requests_per_second is 0.
  qos::AdmissionController rate_limiter_;
  util::ListenSocket listener_;
  std::thread accept_thread_;

  mutable util::Mutex mutex_;
  /// Only the accept loop appends; Stop() iterates after joining it, so
  /// the list is frozen by then (hence no annotation on the iteration).
  std::vector<std::unique_ptr<internal::ServerSession>> sessions_
      GUARDED_BY(mutex_);
  std::size_t connections_accepted_ GUARDED_BY(mutex_) = 0;
  bool started_ GUARDED_BY(mutex_) = false;
  bool stopped_ GUARDED_BY(mutex_) = false;
};

}  // namespace whyprov::net

#endif  // WHYPROV_NET_SERVER_H_
