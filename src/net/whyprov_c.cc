#include "net/whyprov_c.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "datalog/ast.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "provenance/proof_tree.h"
#include "qos/qos.h"
#include "qos/tenant_registry.h"
#include "service/service.h"
#include "shard/sharded_service.h"
#include "util/mutex.h"
#include "util/status.h"

namespace {

namespace wp = whyprov;

// The enum mirrors are load-bearing: the wire protocol ships these raw.
static_assert(WHYPROV_OK == static_cast<int>(wp::util::StatusCode::kOk));
static_assert(WHYPROV_UNKNOWN ==
              static_cast<int>(wp::util::StatusCode::kUnknown));
static_assert(WHYPROV_INVALID_ARGUMENT ==
              static_cast<int>(wp::util::StatusCode::kInvalidArgument));
static_assert(WHYPROV_NOT_FOUND ==
              static_cast<int>(wp::util::StatusCode::kNotFound));
static_assert(WHYPROV_PARSE_ERROR ==
              static_cast<int>(wp::util::StatusCode::kParseError));
static_assert(WHYPROV_RESOURCE_EXHAUSTED ==
              static_cast<int>(wp::util::StatusCode::kResourceExhausted));
static_assert(WHYPROV_CANCELLED ==
              static_cast<int>(wp::util::StatusCode::kCancelled));
static_assert(WHYPROV_DEADLINE_EXCEEDED ==
              static_cast<int>(wp::util::StatusCode::kDeadlineExceeded));
static_assert(WHYPROV_TREE_ANY ==
              static_cast<int>(wp::provenance::TreeClass::kAny));
static_assert(WHYPROV_TREE_NON_RECURSIVE ==
              static_cast<int>(wp::provenance::TreeClass::kNonRecursive));
static_assert(WHYPROV_TREE_MINIMAL_DEPTH ==
              static_cast<int>(wp::provenance::TreeClass::kMinimalDepth));
static_assert(WHYPROV_TREE_UNAMBIGUOUS ==
              static_cast<int>(wp::provenance::TreeClass::kUnambiguous));
static_assert(WHYPROV_QOS_INTERACTIVE ==
              static_cast<int>(wp::qos::QosClass::kInteractive));
static_assert(WHYPROV_QOS_BATCH ==
              static_cast<int>(wp::qos::QosClass::kBatch));

whyprov_status ToC(const wp::util::Status& status) {
  return static_cast<whyprov_status>(status.code());
}

void CopyError(const wp::util::Status& status, char* buffer,
               std::size_t size) {
  if (buffer == nullptr || size == 0) return;
  const std::string& message = status.message();
  const std::size_t n = std::min(size - 1, message.size());
  std::memcpy(buffer, message.data(), n);
  buffer[n] = '\0';
}

}  // namespace

// The handle behind whyprov_service: exactly one of the two serving
// front ends, plus the pieces the ABI needs that the C++ API keeps
// implicit — the shared parse mutex (candidate-fact parsing, proof-tree
// rendering) reaches the symbol table the engines share.
struct whyprov_service {
  std::unique_ptr<wp::Service> single;
  std::unique_ptr<wp::ShardedService> sharded;
  std::shared_ptr<wp::util::Mutex> parse_mutex;

  const wp::Engine& engine() const {
    return single ? single->engine() : sharded->engine();
  }

  wp::util::Result<wp::Ticket> Submit(
      wp::Request request, std::shared_ptr<wp::MemberSink> sink = nullptr) {
    return single ? single->Submit(std::move(request), std::move(sink))
                  : sharded->Submit(std::move(request), std::move(sink));
  }

  wp::ServiceStats stats() const {
    return single ? single->stats() : sharded->stats();
  }
};

// The handle behind whyprov_ticket. `facts`/`fact_ptrs` (and the
// explain/message strings) are the single-consumer scratch buffer the
// header's lifetime rule describes: each accessor call re-fills them.
struct whyprov_ticket {
  wp::Ticket ticket;
  std::shared_ptr<wp::MemberStream> stream;  // null = materialised
  const whyprov_service* owner = nullptr;
  std::size_t member_cursor = 0;  // next_member over materialised members
  std::vector<std::string> facts;
  std::vector<const char*> fact_ptrs;
  std::string text;  // status message / proof-tree rendering

  // Renders one member into the scratch buffer; returns the pointers.
  void Render(const std::vector<wp::datalog::Fact>& member,
              const char* const** out_facts, std::size_t* out_num_facts) {
    facts.clear();
    fact_ptrs.clear();
    facts.reserve(member.size());
    for (const auto& fact : member) {
      facts.push_back(owner->engine().FactToText(fact));
    }
    fact_ptrs.reserve(facts.size());
    for (const auto& fact : facts) fact_ptrs.push_back(fact.c_str());
    *out_facts = fact_ptrs.data();
    *out_num_facts = fact_ptrs.size();
  }
};

extern "C" {

const char* whyprov_status_name(whyprov_status status) {
  switch (status) {
    case WHYPROV_OK:
      return "OK";
    case WHYPROV_UNKNOWN:
      return "UNKNOWN";
    case WHYPROV_INVALID_ARGUMENT:
      return "INVALID_ARGUMENT";
    case WHYPROV_NOT_FOUND:
      return "NOT_FOUND";
    case WHYPROV_PARSE_ERROR:
      return "PARSE_ERROR";
    case WHYPROV_RESOURCE_EXHAUSTED:
      return "RESOURCE_EXHAUSTED";
    case WHYPROV_CANCELLED:
      return "CANCELLED";
    case WHYPROV_DEADLINE_EXCEEDED:
      return "DEADLINE_EXCEEDED";
  }
  return "INVALID_STATUS";
}

void whyprov_options_init(whyprov_options* options) {
  if (options == nullptr) return;
  std::memset(options, 0, sizeof(*options));
}

whyprov_status whyprov_service_create(const char* program_text,
                                      const char* database_text,
                                      const char* answer_predicate,
                                      const whyprov_options* options,
                                      whyprov_service** out_service,
                                      char* error_message,
                                      size_t error_message_size) {
  if (out_service == nullptr) return WHYPROV_INVALID_ARGUMENT;
  *out_service = nullptr;
  if (program_text == nullptr || database_text == nullptr ||
      answer_predicate == nullptr) {
    const auto status = wp::util::Status::InvalidArgument(
        "program_text, database_text, and answer_predicate must be non-NULL");
    CopyError(status, error_message, error_message_size);
    return ToC(status);
  }
  whyprov_options defaults;
  whyprov_options_init(&defaults);
  if (options == nullptr) options = &defaults;

  wp::EngineOptions engine_options;
  if (options->plan_cache_capacity > 0) {
    engine_options.plan_cache_capacity = options->plan_cache_capacity;
  }
  engine_options.max_snapshot_lag = options->max_snapshot_lag;
  engine_options.snapshot_alarm_bytes = options->snapshot_alarm_bytes;
  if (options->solver_backend != nullptr && options->solver_backend[0]) {
    engine_options.solver_backend = options->solver_backend;
  }
  if (options->data_dir != nullptr && options->data_dir[0]) {
    engine_options.data_dir = options->data_dir;
    engine_options.wal_fsync = options->wal_fsync != 0;
    if (options->checkpoint_interval > 0) {
      engine_options.checkpoint_interval = options->checkpoint_interval;
    }
  }
  engine_options.wal_group_commit = options->wal_group_commit != 0;
  switch (options->plan_simplify) {
    case WHYPROV_SIMPLIFY_OFF:
      engine_options.plan_simplify = wp::sat::SimplifyMode::kOff;
      break;
    case WHYPROV_SIMPLIFY_FAST:
      engine_options.plan_simplify = wp::sat::SimplifyMode::kFast;
      break;
    case WHYPROV_SIMPLIFY_FULL:
      engine_options.plan_simplify = wp::sat::SimplifyMode::kFull;
      break;
    default:  /* WHYPROV_SIMPLIFY_DEFAULT keeps the engine default */
      break;
  }
  wp::ServiceOptions service_options;
  service_options.num_threads = options->num_threads;
  if (options->queue_capacity > 0) {
    service_options.queue_capacity = options->queue_capacity;
  }
  service_options.default_deadline_seconds =
      options->default_deadline_seconds;
  // Zero-initialised options mean "QoS on with defaults" (invariant:
  // default-class traffic then behaves exactly like the pre-QoS FIFO).
  service_options.qos.fair_queueing = options->qos_disable == 0;
  if (options->qos_quantum > 0) {
    service_options.qos.quantum = options->qos_quantum;
  }
  if (options->qos_batch_escape > 0) {
    service_options.qos.batch_escape = options->qos_batch_escape;
  }
  service_options.qos.tenant_cost_budget = options->qos_tenant_cost_budget;
  service_options.qos.refill_per_second = options->qos_refill_per_second;
  service_options.qos.burst = options->qos_burst;

  auto handle = std::make_unique<whyprov_service>();
  if (options->num_shards >= 2) {
    wp::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = options->num_shards;
    sharded_options.engine = engine_options;
    sharded_options.service = service_options;
    auto sharded = wp::ShardedService::FromText(
        program_text, database_text, answer_predicate, sharded_options);
    if (!sharded.ok()) {
      CopyError(sharded.status(), error_message, error_message_size);
      return ToC(sharded.status());
    }
    handle->sharded = std::move(sharded).value();
  } else {
    // The ABI parses candidate facts itself, so the engine must share
    // its symbol-table lock with us: inject one instead of letting the
    // engine make a private one.
    engine_options.parse_mutex = std::make_shared<wp::util::Mutex>();
    auto engine = wp::Engine::FromText(program_text, database_text,
                                       answer_predicate, engine_options);
    if (!engine.ok()) {
      CopyError(engine.status(), error_message, error_message_size);
      return ToC(engine.status());
    }
    handle->single = std::make_unique<wp::Service>(std::move(engine).value(),
                                                   service_options);
  }
  handle->parse_mutex = handle->engine().options().parse_mutex;
  // A requested-but-failed durability tier fails creation: callers that
  // set data_dir asked for persistence, and serving memory-only behind
  // their back would silently lose every delta.
  const wp::util::Status durability =
      handle->single ? handle->single->durability_status()
                     : handle->sharded->durability_status();
  if (!durability.ok()) {
    CopyError(durability, error_message, error_message_size);
    return ToC(durability);
  }
  *out_service = handle.release();
  return WHYPROV_OK;
}

void whyprov_service_destroy(whyprov_service* service) { delete service; }

void whyprov_service_stats(const whyprov_service* service,
                           whyprov_stats* out_stats) {
  if (service == nullptr || out_stats == nullptr) return;
  const wp::ServiceStats stats = service->stats();
  std::memset(out_stats, 0, sizeof(*out_stats));
  out_stats->submitted = stats.submitted;
  out_stats->rejected = stats.rejected;
  out_stats->completed = stats.completed;
  out_stats->succeeded = stats.succeeded;
  out_stats->cancelled = stats.cancelled;
  out_stats->deadline_exceeded = stats.deadline_exceeded;
  out_stats->failed = stats.failed;
  out_stats->members_delivered = stats.members_delivered;
  out_stats->queue_depth = stats.queue_depth;
  out_stats->in_flight = stats.in_flight;
  out_stats->queries_per_second = stats.queries_per_second;
  out_stats->model_version = stats.model_version;
  out_stats->retained_snapshots = stats.retained_snapshots;
  out_stats->retained_snapshot_bytes = stats.retained_snapshot_bytes;
  out_stats->snapshot_evictions = stats.snapshot_evictions;
  out_stats->snapshot_alarm = stats.snapshot_alarm ? 1 : 0;
  out_stats->version_skew = stats.version_skew;
  out_stats->num_shards = std::max<std::size_t>(1, stats.shards.size());
  out_stats->wal_appends = stats.wal_appends;
  out_stats->wal_bytes = stats.wal_bytes;
  out_stats->checkpoints_written = stats.checkpoints_written;
  out_stats->recovery_replayed_deltas = stats.recovery_replayed_deltas;
  out_stats->plans_simplified = stats.plans_simplified;
  out_stats->simplify_vars_removed = stats.simplify_vars_removed;
  out_stats->simplify_clauses_removed = stats.simplify_clauses_removed;
  out_stats->simplify_micros = stats.simplify_micros;
}

size_t whyprov_service_tenant_stats(const whyprov_service* service,
                                    whyprov_tenant_stats* out_rows,
                                    size_t capacity) {
  if (service == nullptr) return 0;
  const wp::ServiceStats stats = service->stats();
  const std::size_t copied = std::min(capacity, stats.tenants.size());
  for (std::size_t i = 0; i < copied; ++i) {
    const wp::qos::TenantStats& row = stats.tenants[i];
    whyprov_tenant_stats& out = out_rows[i];
    std::memset(&out, 0, sizeof(out));
    const std::size_t n =
        std::min(row.tenant.size(), sizeof(out.tenant) - 1);
    std::memcpy(out.tenant, row.tenant.data(), n);
    out.tenant[n] = '\0';
    out.qos_class = static_cast<int>(row.lane);
    out.queued = row.queued;
    out.served = row.served;
    out.rejected = row.rejected;
    out.cancelled = row.cancelled;
    out.cost_served = row.cost_served;
    out.queue_p50_seconds = row.queue_p50_seconds;
    out.queue_p99_seconds = row.queue_p99_seconds;
  }
  return stats.tenants.size();
}

namespace {

// Validates and stamps a submit's QoS identity onto the request.
bool StampQos(int qos_class, const char* tenant, wp::Request& request) {
  if (qos_class != WHYPROV_QOS_INTERACTIVE &&
      qos_class != WHYPROV_QOS_BATCH) {
    return false;
  }
  request.qos_class = static_cast<wp::qos::QosClass>(qos_class);
  if (tenant != nullptr) request.tenant = tenant;
  return true;
}

// Shared tail of every submit: runs Submit, wraps the ticket handle.
whyprov_status FinishSubmit(whyprov_service* service, wp::Request request,
                            std::shared_ptr<wp::MemberStream> stream,
                            whyprov_ticket** out_ticket) {
  auto submitted = service->Submit(std::move(request), stream);
  if (!submitted.ok()) return ToC(submitted.status());
  auto* ticket = new whyprov_ticket;
  ticket->ticket = std::move(submitted).value();
  ticket->stream = std::move(stream);
  ticket->owner = service;
  *out_ticket = ticket;
  return WHYPROV_OK;
}

}  // namespace

whyprov_status whyprov_submit_enumerate_qos(
    whyprov_service* service, const char* target, uint64_t max_members,
    double deadline_seconds, size_t stream_capacity, int qos_class,
    const char* tenant, whyprov_ticket** out_ticket) {
  if (service == nullptr || target == nullptr || out_ticket == nullptr) {
    return WHYPROV_INVALID_ARGUMENT;
  }
  *out_ticket = nullptr;
  wp::EnumerateRequest op;
  op.target_text = target;
  op.max_members = max_members == 0
                       ? wp::kNoLimit
                       : static_cast<std::size_t>(max_members);
  std::shared_ptr<wp::MemberStream> stream;
  if (stream_capacity > 0) {
    stream = std::make_shared<wp::MemberStream>(stream_capacity);
  }
  wp::Request request;
  if (!StampQos(qos_class, tenant, request)) return WHYPROV_INVALID_ARGUMENT;
  request.op = std::move(op);
  request.deadline_seconds = deadline_seconds;
  return FinishSubmit(service, std::move(request), std::move(stream),
                      out_ticket);
}

whyprov_status whyprov_submit_enumerate(whyprov_service* service,
                                        const char* target,
                                        uint64_t max_members,
                                        double deadline_seconds,
                                        size_t stream_capacity,
                                        whyprov_ticket** out_ticket) {
  return whyprov_submit_enumerate_qos(service, target, max_members,
                                      deadline_seconds, stream_capacity,
                                      WHYPROV_QOS_INTERACTIVE, nullptr,
                                      out_ticket);
}

whyprov_status whyprov_submit_decide_qos(
    whyprov_service* service, const char* target,
    const char* const* candidate_facts, size_t num_candidate_facts,
    whyprov_tree_class tree_class, double deadline_seconds, int qos_class,
    const char* tenant, whyprov_ticket** out_ticket) {
  if (service == nullptr || target == nullptr || out_ticket == nullptr ||
      (num_candidate_facts > 0 && candidate_facts == nullptr)) {
    return WHYPROV_INVALID_ARGUMENT;
  }
  *out_ticket = nullptr;
  wp::DecideRequest op;
  op.target_text = target;
  op.tree_class = static_cast<wp::provenance::TreeClass>(tree_class);
  op.candidate.reserve(num_candidate_facts);
  {
    // DecideRequest carries parsed facts, so the ABI parses here — under
    // the engine's own symbol-table lock.
    const wp::util::MutexLock lock(*service->parse_mutex);
    const auto& symbols = service->engine().program().symbols_ptr();
    for (std::size_t i = 0; i < num_candidate_facts; ++i) {
      if (candidate_facts[i] == nullptr) return WHYPROV_INVALID_ARGUMENT;
      auto fact = wp::datalog::Parser::ParseFact(symbols, candidate_facts[i]);
      if (!fact.ok()) return ToC(fact.status());
      op.candidate.push_back(std::move(fact).value());
    }
  }
  wp::Request request;
  if (!StampQos(qos_class, tenant, request)) return WHYPROV_INVALID_ARGUMENT;
  request.op = std::move(op);
  request.deadline_seconds = deadline_seconds;
  return FinishSubmit(service, std::move(request), nullptr, out_ticket);
}

whyprov_status whyprov_submit_decide(whyprov_service* service,
                                     const char* target,
                                     const char* const* candidate_facts,
                                     size_t num_candidate_facts,
                                     whyprov_tree_class tree_class,
                                     double deadline_seconds,
                                     whyprov_ticket** out_ticket) {
  return whyprov_submit_decide_qos(service, target, candidate_facts,
                                   num_candidate_facts, tree_class,
                                   deadline_seconds,
                                   WHYPROV_QOS_INTERACTIVE, nullptr,
                                   out_ticket);
}

whyprov_status whyprov_submit_explain_qos(whyprov_service* service,
                                          const char* target,
                                          uint64_t member_index,
                                          double deadline_seconds,
                                          int qos_class, const char* tenant,
                                          whyprov_ticket** out_ticket) {
  if (service == nullptr || target == nullptr || out_ticket == nullptr) {
    return WHYPROV_INVALID_ARGUMENT;
  }
  *out_ticket = nullptr;
  wp::ExplainRequest op;
  op.target_text = target;
  op.member_index = static_cast<std::size_t>(member_index);
  wp::Request request;
  if (!StampQos(qos_class, tenant, request)) return WHYPROV_INVALID_ARGUMENT;
  request.op = std::move(op);
  request.deadline_seconds = deadline_seconds;
  return FinishSubmit(service, std::move(request), nullptr, out_ticket);
}

whyprov_status whyprov_submit_explain(whyprov_service* service,
                                      const char* target,
                                      uint64_t member_index,
                                      double deadline_seconds,
                                      whyprov_ticket** out_ticket) {
  return whyprov_submit_explain_qos(service, target, member_index,
                                    deadline_seconds,
                                    WHYPROV_QOS_INTERACTIVE, nullptr,
                                    out_ticket);
}

whyprov_status whyprov_submit_delta_qos(
    whyprov_service* service, const char* const* added_facts,
    size_t num_added, const char* const* removed_facts, size_t num_removed,
    double deadline_seconds, int qos_class, const char* tenant,
    whyprov_ticket** out_ticket) {
  if (service == nullptr || out_ticket == nullptr ||
      (num_added > 0 && added_facts == nullptr) ||
      (num_removed > 0 && removed_facts == nullptr)) {
    return WHYPROV_INVALID_ARGUMENT;
  }
  *out_ticket = nullptr;
  wp::DeltaRequest op;
  op.added_fact_texts.reserve(num_added);
  for (std::size_t i = 0; i < num_added; ++i) {
    if (added_facts[i] == nullptr) return WHYPROV_INVALID_ARGUMENT;
    op.added_fact_texts.emplace_back(added_facts[i]);
  }
  op.removed_fact_texts.reserve(num_removed);
  for (std::size_t i = 0; i < num_removed; ++i) {
    if (removed_facts[i] == nullptr) return WHYPROV_INVALID_ARGUMENT;
    op.removed_fact_texts.emplace_back(removed_facts[i]);
  }
  wp::Request request;
  if (!StampQos(qos_class, tenant, request)) return WHYPROV_INVALID_ARGUMENT;
  request.op = std::move(op);
  request.deadline_seconds = deadline_seconds;
  return FinishSubmit(service, std::move(request), nullptr, out_ticket);
}

whyprov_status whyprov_submit_delta(whyprov_service* service,
                                    const char* const* added_facts,
                                    size_t num_added,
                                    const char* const* removed_facts,
                                    size_t num_removed,
                                    double deadline_seconds,
                                    whyprov_ticket** out_ticket) {
  return whyprov_submit_delta_qos(service, added_facts, num_added,
                                  removed_facts, num_removed,
                                  deadline_seconds,
                                  WHYPROV_QOS_INTERACTIVE, nullptr,
                                  out_ticket);
}

int whyprov_ticket_done(const whyprov_ticket* ticket) {
  return ticket != nullptr && ticket->ticket.done() ? 1 : 0;
}

void whyprov_ticket_wait(const whyprov_ticket* ticket) {
  if (ticket != nullptr) ticket->ticket.Wait();
}

int whyprov_ticket_wait_for(const whyprov_ticket* ticket, double seconds) {
  return ticket != nullptr && ticket->ticket.WaitFor(seconds) ? 1 : 0;
}

void whyprov_ticket_cancel(whyprov_ticket* ticket) {
  if (ticket != nullptr) ticket->ticket.Cancel();
}

void whyprov_ticket_destroy(whyprov_ticket* ticket) {
  if (ticket == nullptr) return;
  // Close the stream first so a producer blocked on the bounded buffer
  // unblocks (its next OnMember returns false) instead of producing into
  // a buffer nobody will drain.
  if (ticket->stream) ticket->stream->Close();
  delete ticket;
}

whyprov_status whyprov_ticket_status(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return WHYPROV_INVALID_ARGUMENT;
  return ToC(ticket->ticket.Wait().status);
}

const char* whyprov_ticket_status_message(whyprov_ticket* ticket) {
  if (ticket == nullptr) return "";
  ticket->text = ticket->ticket.Wait().status.message();
  return ticket->text.c_str();
}

int whyprov_ticket_next_member(whyprov_ticket* ticket,
                               const char* const** out_facts,
                               size_t* out_num_facts) {
  if (ticket == nullptr || out_facts == nullptr || out_num_facts == nullptr) {
    return 0;
  }
  *out_facts = nullptr;
  *out_num_facts = 0;
  if (ticket->stream) {
    auto member = ticket->stream->Pop();  // blocks: the backpressure point
    if (!member.has_value()) return 0;
    ticket->Render(*member, out_facts, out_num_facts);
    return 1;
  }
  const wp::Response& response = ticket->ticket.Wait();
  if (ticket->member_cursor >= response.members.size()) return 0;
  ticket->Render(response.members[ticket->member_cursor++], out_facts,
                 out_num_facts);
  return 1;
}

size_t whyprov_ticket_num_members(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return 0;
  return ticket->ticket.Wait().members.size();
}

int whyprov_ticket_member(whyprov_ticket* ticket, size_t index,
                          const char* const** out_facts,
                          size_t* out_num_facts) {
  if (ticket == nullptr || out_facts == nullptr || out_num_facts == nullptr) {
    return 0;
  }
  *out_facts = nullptr;
  *out_num_facts = 0;
  const wp::Response& response = ticket->ticket.Wait();
  if (index >= response.members.size()) return 0;
  ticket->Render(response.members[index], out_facts, out_num_facts);
  return 1;
}

uint64_t whyprov_ticket_members_emitted(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return 0;
  return ticket->ticket.Wait().members_emitted;
}

uint32_t whyprov_ticket_enumerate_flags(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return 0;
  const wp::Response& response = ticket->ticket.Wait();
  uint32_t flags = 0;
  if (response.exhausted) flags |= WHYPROV_ENUM_EXHAUSTED;
  if (response.incomplete) flags |= WHYPROV_ENUM_INCOMPLETE;
  if (response.hit_member_cap) flags |= WHYPROV_ENUM_HIT_MEMBER_CAP;
  if (response.hit_timeout) flags |= WHYPROV_ENUM_HIT_TIMEOUT;
  return flags;
}

int whyprov_ticket_decision(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return 0;
  return ticket->ticket.Wait().member ? 1 : 0;
}

int whyprov_ticket_explanation(whyprov_ticket* ticket,
                               const char* const** out_member_facts,
                               size_t* out_num_facts,
                               const char** out_tree_text) {
  if (ticket == nullptr || out_member_facts == nullptr ||
      out_num_facts == nullptr || out_tree_text == nullptr) {
    return 0;
  }
  *out_member_facts = nullptr;
  *out_num_facts = 0;
  *out_tree_text = nullptr;
  const wp::Response& response = ticket->ticket.Wait();
  if (!response.explanation.has_value()) return 0;
  ticket->Render(response.explanation->member, out_member_facts,
                 out_num_facts);
  {
    // ProofTree::ToString reads the shared symbol table.
    const wp::util::MutexLock lock(*ticket->owner->parse_mutex);
    ticket->text = response.explanation->tree.ToString(
        ticket->owner->engine().program().symbols());
  }
  *out_tree_text = ticket->text.c_str();
  return 1;
}

int whyprov_ticket_delta_stats(const whyprov_ticket* ticket,
                               whyprov_delta_stats* out_stats) {
  if (ticket == nullptr || out_stats == nullptr) return 0;
  std::memset(out_stats, 0, sizeof(*out_stats));
  const wp::Response& response = ticket->ticket.Wait();
  if (!response.delta.has_value()) return 0;
  const wp::DeltaStats& delta = *response.delta;
  out_stats->model_version = delta.model_version;
  out_stats->facts_added = delta.facts_added;
  out_stats->facts_removed = delta.facts_removed;
  out_stats->facts_derived = delta.facts_derived;
  out_stats->facts_deleted = delta.facts_deleted;
  out_stats->facts_rederived = delta.facts_rederived;
  out_stats->facts_touched = delta.facts_touched;
  out_stats->plans_retained = delta.plans_retained;
  out_stats->plans_invalidated = delta.plans_invalidated;
  return 1;
}

uint64_t whyprov_ticket_model_version(const whyprov_ticket* ticket) {
  if (ticket == nullptr) return 0;
  return ticket->ticket.Wait().model_version;
}

}  // extern "C"
