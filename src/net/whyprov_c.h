#ifndef WHYPROV_NET_WHYPROV_C_H_
#define WHYPROV_NET_WHYPROV_C_H_

/* whyprov C ABI — a flat, stable C89-callable surface over the serving
 * tier (whyprov::Service / whyprov::ShardedService / whyprov::Ticket /
 * whyprov::MemberStream). This is the layer foreign runtimes and the
 * wire-protocol server (src/net/server.cc) bind against: opaque handles,
 * integer status codes mirroring util::StatusCode, and an explicit
 * create / submit / wait / cancel / stream-next / destroy lifecycle.
 *
 * Threading: a whyprov_service is thread-safe (submit from any thread).
 * A whyprov_ticket is a single-consumer handle: wait/cancel/done are
 * thread-safe, but the accessors returning pointers (next_member,
 * member, status_message, explanation) share one per-ticket scratch
 * buffer and must be called from one thread at a time. Returned
 * pointers stay valid until the next accessor call on the same ticket
 * or whyprov_ticket_destroy, whichever comes first.
 *
 * Ownership: every *_create/submit_* out-parameter hands the caller an
 * owned handle that must be released with the matching *_destroy.
 * Destroying a service with live tickets is undefined; destroy tickets
 * first (destroying a ticket never abandons the request — the service
 * finishes it; call whyprov_ticket_cancel for that).
 */

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Mirrors whyprov::util::StatusCode value for value (static_asserted in
 * whyprov_c.cc). */
typedef enum whyprov_status {
  WHYPROV_OK = 0,
  WHYPROV_UNKNOWN = 1,
  WHYPROV_INVALID_ARGUMENT = 2,
  WHYPROV_NOT_FOUND = 3,
  WHYPROV_PARSE_ERROR = 4,
  WHYPROV_RESOURCE_EXHAUSTED = 5,
  WHYPROV_CANCELLED = 6,
  WHYPROV_DEADLINE_EXCEEDED = 7
} whyprov_status;

/* Human-readable name of a status code ("OK", "CANCELLED", ...). Static
 * storage; never NULL. */
const char* whyprov_status_name(whyprov_status status);

/* Mirrors whyprov::provenance::TreeClass value for value. */
typedef enum whyprov_tree_class {
  WHYPROV_TREE_ANY = 0,
  WHYPROV_TREE_NON_RECURSIVE = 1,
  WHYPROV_TREE_MINIMAL_DEPTH = 2,
  WHYPROV_TREE_UNAMBIGUOUS = 3
} whyprov_tree_class;

/* Mirrors whyprov::qos::QosClass value for value (static_asserted in
 * whyprov_c.cc). Interactive is the default class everywhere; batch
 * yields to interactive traffic (with starvation protection). */
typedef enum whyprov_qos_class {
  WHYPROV_QOS_INTERACTIVE = 0,
  WHYPROV_QOS_BATCH = 1
} whyprov_qos_class;

/* Flags reported by whyprov_ticket_enumerate_flags. */
#define WHYPROV_ENUM_EXHAUSTED 0x1u      /* full family emitted */
#define WHYPROV_ENUM_INCOMPLETE 0x2u     /* backend gave up (kUnknown) */
#define WHYPROV_ENUM_HIT_MEMBER_CAP 0x4u /* stopped by max_members */
#define WHYPROV_ENUM_HIT_TIMEOUT 0x8u    /* stopped by the request timeout */

typedef struct whyprov_service whyprov_service; /* opaque */
typedef struct whyprov_ticket whyprov_ticket;   /* opaque */

/* Construction knobs; zero-initialise with whyprov_options_init, then
 * override fields. Zero means "the engine/service default" throughout. */
typedef struct whyprov_options {
  size_t num_threads;        /* worker threads; 0 = one per hw thread */
  size_t queue_capacity;     /* admission bound; 0 = default (256) */
  double default_deadline_seconds; /* applied to deadline-less requests */
  size_t num_shards;         /* >= 2 serves a ShardedService; else Service */
  size_t plan_cache_capacity;     /* 0 = engine default (64) */
  size_t max_snapshot_lag;        /* snapshot GC knob; 0 = never evict */
  size_t snapshot_alarm_bytes;    /* retained-bytes alarm; 0 = off */
  const char* solver_backend;     /* "cdcl", "dpll", ...; NULL = default */
  /* Durability (docs/STORAGE_FORMAT.md): directory for the write-ahead
   * delta log + snapshot checkpoints. NULL/empty = memory-only. When
   * set, creation recovers the persisted state (checkpoint + WAL tail)
   * before serving, and every committed delta is logged first; a store
   * that fails to open fails whyprov_service_create. */
  const char* data_dir;
  int wal_fsync;             /* 1 = fsync the WAL on every append */
  size_t checkpoint_interval; /* deltas between checkpoints; 0 = default (32) */
  /* Multi-tenant QoS (appended fields — zero-initialised means "QoS on
   * with defaults", which behaves exactly like the pre-QoS FIFO for
   * default-class requests). */
  int qos_disable;           /* 1 = plain FIFO scheduling, no fair queueing */
  double qos_quantum;        /* deficit round-robin quantum; 0 = default (16) */
  size_t qos_batch_escape;   /* consecutive interactive pops before one
                              * queued batch task is served; 0 = default (8) */
  double qos_tenant_cost_budget; /* outstanding-cost cap per tenant;
                                  * 0 = unlimited */
  double qos_refill_per_second;  /* admission token-bucket refill rate in
                                  * cost units/s per tenant; 0 = unlimited */
  double qos_burst;          /* token-bucket depth; 0 = one second of refill */
  int wal_group_commit;      /* 1 = coalesce WAL fsyncs across queued deltas */
  /* Plan-time CNF inprocessing (EngineOptions::plan_simplify): one of
   * the WHYPROV_SIMPLIFY_* values. 0 keeps the engine default (fast). */
  int plan_simplify;
} whyprov_options;

/* Values for whyprov_options.plan_simplify. */
#define WHYPROV_SIMPLIFY_DEFAULT 0 /* engine default (fast) */
#define WHYPROV_SIMPLIFY_OFF 1     /* replay the encoder's CNF verbatim */
#define WHYPROV_SIMPLIFY_FAST 2    /* one budgeted inprocessing round */
#define WHYPROV_SIMPLIFY_FULL 3    /* iterate with larger budgets */

void whyprov_options_init(whyprov_options* options);

/* Parses `program_text`/`database_text`, resolves `answer_predicate`,
 * evaluates the least model, and starts the serving stack. On failure
 * the status is returned, *out_service stays NULL, and the error message
 * is copied (NUL-terminated, truncated to fit) into `error_message` when
 * it is non-NULL and `error_message_size` > 0. `options` may be NULL for
 * all defaults. */
whyprov_status whyprov_service_create(const char* program_text,
                                      const char* database_text,
                                      const char* answer_predicate,
                                      const whyprov_options* options,
                                      whyprov_service** out_service,
                                      char* error_message,
                                      size_t error_message_size);

/* Drains this service's in-flight requests, then frees it. NULL is ok. */
void whyprov_service_destroy(whyprov_service* service);

/* Point-in-time serving counters (see whyprov::ServiceStats). */
typedef struct whyprov_stats {
  uint64_t submitted;
  uint64_t rejected;
  uint64_t completed;
  uint64_t succeeded;
  uint64_t cancelled;
  uint64_t deadline_exceeded;
  uint64_t failed;
  uint64_t members_delivered;
  size_t queue_depth;
  size_t in_flight;
  double queries_per_second;
  uint64_t model_version;
  size_t retained_snapshots;
  size_t retained_snapshot_bytes;
  uint64_t snapshot_evictions; /* requests failed by the GC policy */
  int snapshot_alarm;          /* 1 while retained bytes exceed the alarm */
  uint64_t version_skew;       /* sharded only: newest - oldest version */
  size_t num_shards;           /* 1 for a single-engine service */
  /* Durability tier counters (all zero when data_dir was not set). */
  uint64_t wal_appends;        /* delta records logged this process */
  uint64_t wal_bytes;          /* framed WAL bytes appended */
  uint64_t checkpoints_written;
  uint64_t recovery_replayed_deltas; /* WAL tail replayed at create */
  /* Plan-time CNF inprocessing counters (all zero when plan_simplify is
   * off), summed across shards on a sharded service. */
  uint64_t plans_simplified;         /* plan builds that ran the pass */
  uint64_t simplify_vars_removed;    /* variables removed, cumulative */
  uint64_t simplify_clauses_removed; /* clauses removed, cumulative */
  uint64_t simplify_micros;          /* total simplify wall time, us */
} whyprov_stats;

void whyprov_service_stats(const whyprov_service* service,
                           whyprov_stats* out_stats);

/* One per-tenant/per-lane observability row (see whyprov::qos::
 * TenantStats). Tenant names longer than the buffer are truncated with a
 * NUL kept. */
typedef struct whyprov_tenant_stats {
  char tenant[64];           /* "" is the shared default tenant */
  int qos_class;             /* whyprov_qos_class of this row */
  uint64_t queued;           /* admitted, not yet completed */
  uint64_t served;           /* completed without cancellation */
  uint64_t rejected;         /* refused by admission (queue or budget) */
  uint64_t cancelled;        /* completed cancelled / past deadline */
  double cost_served;        /* summed estimated cost of served requests */
  double queue_p50_seconds;  /* median queue wait (recent window) */
  double queue_p99_seconds;  /* tail queue wait (recent window) */
} whyprov_tenant_stats;

/* Copies up to `capacity` per-tenant rows (sorted by tenant, then lane)
 * into `out_rows` and returns the TOTAL number of rows available — call
 * with capacity 0 to size a buffer, or with a fixed buffer and treat the
 * return value as the row count when it fits. One registry snapshot per
 * call. */
size_t whyprov_service_tenant_stats(const whyprov_service* service,
                                    whyprov_tenant_stats* out_rows,
                                    size_t capacity);

/* --- submission --------------------------------------------------------
 *
 * Each submit admits one request and hands back an owned ticket, or
 * fails fast (most commonly WHYPROV_RESOURCE_EXHAUSTED: the admission
 * queue is full — back off and retry). `deadline_seconds` <= 0 means no
 * per-request deadline (the service default may still apply). Targets
 * and facts are given as text ("path(a, b)"); parsing happens behind
 * the handle with the same semantics as the C++ API.
 */

/* Enumerate the why-provenance family of `target`.
 * `max_members` 0 = enumerate to exhaustion. `stream_capacity` > 0
 * streams members through a bounded buffer (pull them one by one with
 * whyprov_ticket_next_member — blocking the consumer blocks the
 * producer: backpressure); 0 materialises the members into the response
 * (whyprov_ticket_member indexes them after the wait). */
whyprov_status whyprov_submit_enumerate(whyprov_service* service,
                                        const char* target,
                                        uint64_t max_members,
                                        double deadline_seconds,
                                        size_t stream_capacity,
                                        whyprov_ticket** out_ticket);

/* Decide whether {candidate_facts} is a member of `target`'s family
 * w.r.t. `tree_class`. */
whyprov_status whyprov_submit_decide(whyprov_service* service,
                                     const char* target,
                                     const char* const* candidate_facts,
                                     size_t num_candidate_facts,
                                     whyprov_tree_class tree_class,
                                     double deadline_seconds,
                                     whyprov_ticket** out_ticket);

/* Reconstruct member `member_index` of `target`'s enumeration plus a
 * witnessing unambiguous proof tree. */
whyprov_status whyprov_submit_explain(whyprov_service* service,
                                      const char* target,
                                      uint64_t member_index,
                                      double deadline_seconds,
                                      whyprov_ticket** out_ticket);

/* Apply a fact-level database delta (facts as text; additions already
 * present and removals absent are no-ops; all facts must be
 * extensional). Deltas serialise against each other; in-flight reads
 * keep their snapshot. */
whyprov_status whyprov_submit_delta(whyprov_service* service,
                                    const char* const* added_facts,
                                    size_t num_added,
                                    const char* const* removed_facts,
                                    size_t num_removed,
                                    double deadline_seconds,
                                    whyprov_ticket** out_ticket);

/* --- QoS submission variants --------------------------------------------
 *
 * Each mirrors its base submit with an explicit QoS identity: the lane
 * (`qos_class`, one of whyprov_qos_class — anything else is
 * WHYPROV_INVALID_ARGUMENT) and the tenant name (`tenant`; NULL or ""
 * is the shared default tenant). The base submits are exactly the
 * `_qos` variants with (WHYPROV_QOS_INTERACTIVE, NULL).
 */

whyprov_status whyprov_submit_enumerate_qos(
    whyprov_service* service, const char* target, uint64_t max_members,
    double deadline_seconds, size_t stream_capacity, int qos_class,
    const char* tenant, whyprov_ticket** out_ticket);

whyprov_status whyprov_submit_decide_qos(
    whyprov_service* service, const char* target,
    const char* const* candidate_facts, size_t num_candidate_facts,
    whyprov_tree_class tree_class, double deadline_seconds, int qos_class,
    const char* tenant, whyprov_ticket** out_ticket);

whyprov_status whyprov_submit_explain_qos(whyprov_service* service,
                                          const char* target,
                                          uint64_t member_index,
                                          double deadline_seconds,
                                          int qos_class, const char* tenant,
                                          whyprov_ticket** out_ticket);

whyprov_status whyprov_submit_delta_qos(
    whyprov_service* service, const char* const* added_facts,
    size_t num_added, const char* const* removed_facts, size_t num_removed,
    double deadline_seconds, int qos_class, const char* tenant,
    whyprov_ticket** out_ticket);

/* --- ticket lifecycle -------------------------------------------------- */

/* 1 once the response is available. Non-blocking. */
int whyprov_ticket_done(const whyprov_ticket* ticket);

/* Blocks until the response is available. */
void whyprov_ticket_wait(const whyprov_ticket* ticket);

/* Waits up to `seconds`; 1 iff the response became available. */
int whyprov_ticket_wait_for(const whyprov_ticket* ticket, double seconds);

/* Requests cooperative cancellation (raises the token the SAT loop
 * polls, unblocks a streaming producer). Idempotent; never un-finishes
 * an already-complete response. */
void whyprov_ticket_cancel(whyprov_ticket* ticket);

/* Frees the handle. Does NOT cancel the request: the service still
 * finishes it (cancel first if the work should stop). NULL is ok. */
void whyprov_ticket_destroy(whyprov_ticket* ticket);

/* Final status / message of the response (both wait). The message
 * pointer follows the scratch-buffer lifetime rule above. */
whyprov_status whyprov_ticket_status(const whyprov_ticket* ticket);
const char* whyprov_ticket_status_message(whyprov_ticket* ticket);

/* --- results ------------------------------------------------------------ */

/* Pulls the next member, as `*out_num_facts` rendered fact strings in
 * `(*out_facts)[0 .. n)`. Returns 1 while members keep coming and 0 once
 * the stream finished (then read whyprov_ticket_status for the final
 * verdict). On a streaming ticket this blocks on the bounded buffer (the
 * backpressure point); on a materialised ticket it waits for the
 * response, then walks the member list — the same pull loop works for
 * both modes. */
int whyprov_ticket_next_member(whyprov_ticket* ticket,
                               const char* const** out_facts,
                               size_t* out_num_facts);

/* Materialised enumeration accessors (wait). num_members is 0 for a
 * streaming ticket (members went through next_member instead). */
size_t whyprov_ticket_num_members(const whyprov_ticket* ticket);
int whyprov_ticket_member(whyprov_ticket* ticket, size_t index,
                          const char* const** out_facts,
                          size_t* out_num_facts);

/* Members emitted (streamed + materialised; waits). */
uint64_t whyprov_ticket_members_emitted(const whyprov_ticket* ticket);

/* WHYPROV_ENUM_* bitmask of the enumeration outcome (waits). */
uint32_t whyprov_ticket_enumerate_flags(const whyprov_ticket* ticket);

/* Decide verdict: 1 = member, 0 = not (meaningful when status is OK;
 * waits). */
int whyprov_ticket_decision(const whyprov_ticket* ticket);

/* Explain payload: the member's rendered facts plus the proof tree as
 * indented text. Returns 1 and fills the out-parameters when the
 * response carries an explanation, 0 otherwise (waits). */
int whyprov_ticket_explanation(whyprov_ticket* ticket,
                               const char* const** out_member_facts,
                               size_t* out_num_facts,
                               const char** out_tree_text);

/* Delta payload (see whyprov::DeltaStats). */
typedef struct whyprov_delta_stats {
  uint64_t model_version;
  uint64_t facts_added;
  uint64_t facts_removed;
  uint64_t facts_derived;
  uint64_t facts_deleted;
  uint64_t facts_rederived;
  uint64_t facts_touched;
  uint64_t plans_retained;
  uint64_t plans_invalidated;
} whyprov_delta_stats;

/* Returns 1 and fills `out_stats` when the response carries delta
 * stats, 0 otherwise (waits). */
int whyprov_ticket_delta_stats(const whyprov_ticket* ticket,
                               whyprov_delta_stats* out_stats);

/* The model version the request was served from / produced (waits). */
uint64_t whyprov_ticket_model_version(const whyprov_ticket* ticket);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* WHYPROV_NET_WHYPROV_C_H_ */
