#include "net/wire.h"

#include <cstring>
#include <utility>

namespace whyprov::net {

namespace {

util::Status Malformed(const char* what) {
  return util::Status::InvalidArgument(std::string("malformed frame: ") +
                                       what);
}

}  // namespace

// WireWriter/WireReader live in util/wire_format.cc (shared with the
// on-disk storage formats); this file only frames and encodes.

// --- framing ---------------------------------------------------------------

util::Status WriteFrame(util::Socket& socket, std::uint8_t type,
                        std::string_view body) {
  if (body.size() + 1 > kMaxFrameBytes) {
    return util::Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(body.size() + 1);
  std::string frame;
  frame.reserve(4 + length);
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<char>((length >> shift) & 0xffu));
  }
  frame.push_back(static_cast<char>(type));
  frame.append(body.data(), body.size());
  return socket.SendAll(frame.data(), frame.size());
}

util::Status ReadFrame(util::Socket& socket, std::uint8_t* type,
                       std::string* body, std::uint32_t max_frame_bytes) {
  std::uint8_t header[4];
  if (auto status = socket.RecvAll(header, sizeof(header)); !status.ok()) {
    return status;  // kNotFound = clean EOF between frames
  }
  std::uint32_t length = 0;
  for (int shift = 0, i = 0; shift < 32; shift += 8, ++i) {
    length |= static_cast<std::uint32_t>(header[i]) << shift;
  }
  if (length == 0) return Malformed("zero-length frame");
  if (length > max_frame_bytes) {
    return util::Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds the cap of " +
        std::to_string(max_frame_bytes) + " bytes");
  }
  std::string payload(length, '\0');
  if (auto status = socket.RecvAll(payload.data(), payload.size());
      !status.ok()) {
    // Even a clean EOF here is mid-frame: the length prefix promised
    // more bytes.
    return status.code() == util::StatusCode::kNotFound
               ? util::Status::Error("connection closed mid-frame")
               : status;
  }
  *type = static_cast<std::uint8_t>(payload[0]);
  body->assign(payload, 1, payload.size() - 1);
  return util::Status::Ok();
}

// --- encode ----------------------------------------------------------------

namespace {

/// The appended QoS identity tail every request frame carries (see the
/// compatibility appendix: fields are only ever appended).
void PutQosTail(WireWriter& writer, std::uint8_t qos_class,
                const std::string& tenant) {
  writer.PutU8(qos_class);
  writer.PutString(tenant);
}

/// Reads the appended QoS identity if present; a frame ending at the
/// pre-QoS boundary keeps the defaults. A present-but-invalid class
/// poisons the decode through the canonicality check below.
bool GetQosTail(WireReader& reader, std::uint8_t* qos_class,
                std::string* tenant) {
  if (reader.exhausted()) return true;  // pre-QoS frame: defaults hold
  if (!reader.GetU8(qos_class)) return false;
  if (!reader.GetString(tenant)) return false;
  // The encoder only ever writes 0 or 1 (mirrors whyprov_qos_class);
  // anything else is a protocol violation, not a future lane.
  return *qos_class <= WHYPROV_QOS_BATCH;
}

}  // namespace

std::string Encode(const EnumerateFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutString(frame.target);
  writer.PutU64(frame.max_members);
  writer.PutF64(frame.deadline_seconds);
  writer.PutU8(frame.stream);
  writer.PutU32(frame.batch_size);
  PutQosTail(writer, frame.qos_class, frame.tenant);
  return writer.Take();
}

std::string Encode(const DecideFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutString(frame.target);
  writer.PutU8(frame.tree_class);
  writer.PutStringList(frame.candidate_facts);
  writer.PutF64(frame.deadline_seconds);
  PutQosTail(writer, frame.qos_class, frame.tenant);
  return writer.Take();
}

std::string Encode(const ExplainFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutString(frame.target);
  writer.PutU64(frame.member_index);
  writer.PutF64(frame.deadline_seconds);
  PutQosTail(writer, frame.qos_class, frame.tenant);
  return writer.Take();
}

std::string Encode(const DeltaFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutStringList(frame.added_facts);
  writer.PutStringList(frame.removed_facts);
  writer.PutF64(frame.deadline_seconds);
  PutQosTail(writer, frame.qos_class, frame.tenant);
  return writer.Take();
}

std::string Encode(const StatsFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  return writer.Take();
}

namespace {

void PutMembers(WireWriter& writer,
                const std::vector<std::vector<std::string>>& members) {
  writer.PutU32(static_cast<std::uint32_t>(members.size()));
  for (const auto& member : members) writer.PutStringList(member);
}

bool GetMembers(WireReader& reader,
                std::vector<std::vector<std::string>>* members) {
  std::uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;
  members->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::vector<std::string> member;
    if (!reader.GetStringList(&member)) return false;
    members->push_back(std::move(member));
  }
  return true;
}

}  // namespace

std::string Encode(const MembersFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  PutMembers(writer, frame.members);
  return writer.Take();
}

std::string Encode(const FinalFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutU8(frame.status_code);
  writer.PutString(frame.status_message);
  writer.PutU8(frame.kind);
  writer.PutU64(frame.model_version);
  switch (frame.kind) {
    case kFrameEnumerate:
      writer.PutU64(frame.members_emitted);
      writer.PutU8(frame.enumerate_flags);
      PutMembers(writer, frame.members);
      break;
    case kFrameDecide:
      writer.PutU8(frame.verdict);
      break;
    case kFrameExplain:
      writer.PutU8(frame.has_explanation);
      if (frame.has_explanation) {
        writer.PutStringList(frame.explanation_member);
        writer.PutString(frame.proof_tree);
      }
      break;
    case kFrameDelta:
      writer.PutU8(frame.has_delta);
      if (frame.has_delta) {
        writer.PutU64(frame.delta.model_version);
        writer.PutU64(frame.delta.facts_added);
        writer.PutU64(frame.delta.facts_removed);
        writer.PutU64(frame.delta.facts_derived);
        writer.PutU64(frame.delta.facts_deleted);
        writer.PutU64(frame.delta.facts_rederived);
        writer.PutU64(frame.delta.facts_touched);
        writer.PutU64(frame.delta.plans_retained);
        writer.PutU64(frame.delta.plans_invalidated);
      }
      break;
    default:
      break;
  }
  return writer.Take();
}

std::string Encode(const ErrorFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutU8(frame.status_code);
  writer.PutString(frame.message);
  return writer.Take();
}

std::string Encode(const StatsReplyFrame& frame) {
  WireWriter writer;
  writer.PutU64(frame.request_id);
  writer.PutU64(frame.stats.submitted);
  writer.PutU64(frame.stats.rejected);
  writer.PutU64(frame.stats.completed);
  writer.PutU64(frame.stats.succeeded);
  writer.PutU64(frame.stats.cancelled);
  writer.PutU64(frame.stats.deadline_exceeded);
  writer.PutU64(frame.stats.failed);
  writer.PutU64(frame.stats.members_delivered);
  writer.PutU64(frame.stats.queue_depth);
  writer.PutU64(frame.stats.in_flight);
  writer.PutF64(frame.stats.queries_per_second);
  writer.PutU64(frame.stats.model_version);
  writer.PutU64(frame.stats.retained_snapshots);
  writer.PutU64(frame.stats.retained_snapshot_bytes);
  writer.PutU64(frame.stats.snapshot_evictions);
  writer.PutU8(frame.stats.snapshot_alarm ? 1 : 0);
  writer.PutU64(frame.stats.version_skew);
  writer.PutU64(frame.stats.num_shards);
  writer.PutU64(frame.stats.wal_appends);
  writer.PutU64(frame.stats.wal_bytes);
  writer.PutU64(frame.stats.checkpoints_written);
  writer.PutU64(frame.stats.recovery_replayed_deltas);
  // Appended per-tenant section (u32 count + rows).
  writer.PutU32(static_cast<std::uint32_t>(frame.tenants.size()));
  for (const WireTenantStats& row : frame.tenants) {
    writer.PutString(row.tenant);
    writer.PutU8(row.qos_class);
    writer.PutU64(row.queued);
    writer.PutU64(row.served);
    writer.PutU64(row.rejected);
    writer.PutU64(row.cancelled);
    writer.PutF64(row.cost_served);
    writer.PutF64(row.queue_p50_seconds);
    writer.PutF64(row.queue_p99_seconds);
  }
  // Appended plan-simplify counters (append-only tail after the tenant
  // section; older decoders stop before it, older frames decode as zero).
  writer.PutU64(frame.stats.plans_simplified);
  writer.PutU64(frame.stats.simplify_vars_removed);
  writer.PutU64(frame.stats.simplify_clauses_removed);
  writer.PutU64(frame.stats.simplify_micros);
  return writer.Take();
}

// --- decode ----------------------------------------------------------------

namespace {

/// Shared epilogue: a successful decode must have consumed every byte.
template <typename Frame>
util::Result<Frame> FinishDecode(const WireReader& reader, Frame frame,
                                 const char* kind) {
  if (!reader.ok()) {
    return Malformed(
        (std::string("truncated ") + kind + " body").c_str());
  }
  if (!reader.exhausted()) {
    return Malformed(
        (std::string("trailing bytes after ") + kind + " body").c_str());
  }
  return frame;
}

}  // namespace

util::Result<EnumerateFrame> DecodeEnumerate(std::string_view body) {
  WireReader reader(body);
  EnumerateFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetString(&frame.target);
  reader.GetU64(&frame.max_members);
  reader.GetF64(&frame.deadline_seconds);
  reader.GetU8(&frame.stream);
  reader.GetU32(&frame.batch_size);
  if (!GetQosTail(reader, &frame.qos_class, &frame.tenant)) {
    return Malformed("non-canonical qos identity tail");
  }
  return FinishDecode(reader, std::move(frame), "enumerate");
}

util::Result<DecideFrame> DecodeDecide(std::string_view body) {
  WireReader reader(body);
  DecideFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetString(&frame.target);
  reader.GetU8(&frame.tree_class);
  reader.GetStringList(&frame.candidate_facts);
  reader.GetF64(&frame.deadline_seconds);
  if (!GetQosTail(reader, &frame.qos_class, &frame.tenant)) {
    return Malformed("non-canonical qos identity tail");
  }
  return FinishDecode(reader, std::move(frame), "decide");
}

util::Result<ExplainFrame> DecodeExplain(std::string_view body) {
  WireReader reader(body);
  ExplainFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetString(&frame.target);
  reader.GetU64(&frame.member_index);
  reader.GetF64(&frame.deadline_seconds);
  if (!GetQosTail(reader, &frame.qos_class, &frame.tenant)) {
    return Malformed("non-canonical qos identity tail");
  }
  return FinishDecode(reader, std::move(frame), "explain");
}

util::Result<DeltaFrame> DecodeDelta(std::string_view body) {
  WireReader reader(body);
  DeltaFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetStringList(&frame.added_facts);
  reader.GetStringList(&frame.removed_facts);
  reader.GetF64(&frame.deadline_seconds);
  if (!GetQosTail(reader, &frame.qos_class, &frame.tenant)) {
    return Malformed("non-canonical qos identity tail");
  }
  return FinishDecode(reader, std::move(frame), "delta");
}

util::Result<StatsFrame> DecodeStats(std::string_view body) {
  WireReader reader(body);
  StatsFrame frame;
  reader.GetU64(&frame.request_id);
  return FinishDecode(reader, std::move(frame), "stats");
}

util::Result<MembersFrame> DecodeMembers(std::string_view body) {
  WireReader reader(body);
  MembersFrame frame;
  reader.GetU64(&frame.request_id);
  GetMembers(reader, &frame.members);
  return FinishDecode(reader, std::move(frame), "members");
}

util::Result<FinalFrame> DecodeFinal(std::string_view body) {
  WireReader reader(body);
  FinalFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetU8(&frame.status_code);
  reader.GetString(&frame.status_message);
  reader.GetU8(&frame.kind);
  reader.GetU64(&frame.model_version);
  switch (frame.kind) {
    case kFrameEnumerate:
      reader.GetU64(&frame.members_emitted);
      reader.GetU8(&frame.enumerate_flags);
      GetMembers(reader, &frame.members);
      break;
    case kFrameDecide:
      reader.GetU8(&frame.verdict);
      break;
    case kFrameExplain:
      reader.GetU8(&frame.has_explanation);
      if (frame.has_explanation) {
        reader.GetStringList(&frame.explanation_member);
        reader.GetString(&frame.proof_tree);
      }
      break;
    case kFrameDelta:
      reader.GetU8(&frame.has_delta);
      if (frame.has_delta) {
        reader.GetU64(&frame.delta.model_version);
        reader.GetU64(&frame.delta.facts_added);
        reader.GetU64(&frame.delta.facts_removed);
        reader.GetU64(&frame.delta.facts_derived);
        reader.GetU64(&frame.delta.facts_deleted);
        reader.GetU64(&frame.delta.facts_rederived);
        reader.GetU64(&frame.delta.facts_touched);
        reader.GetU64(&frame.delta.plans_retained);
        reader.GetU64(&frame.delta.plans_invalidated);
      }
      break;
    case kFrameStats:
      break;
    default:
      return Malformed("final frame with unknown request kind");
  }
  return FinishDecode(reader, std::move(frame), "final");
}

util::Result<ErrorFrame> DecodeError(std::string_view body) {
  WireReader reader(body);
  ErrorFrame frame;
  reader.GetU64(&frame.request_id);
  reader.GetU8(&frame.status_code);
  reader.GetString(&frame.message);
  return FinishDecode(reader, std::move(frame), "error");
}

util::Result<StatsReplyFrame> DecodeStatsReply(std::string_view body) {
  WireReader reader(body);
  StatsReplyFrame frame;
  std::uint64_t value = 0;
  std::uint8_t flag = 0;
  reader.GetU64(&frame.request_id);
  reader.GetU64(&frame.stats.submitted);
  reader.GetU64(&frame.stats.rejected);
  reader.GetU64(&frame.stats.completed);
  reader.GetU64(&frame.stats.succeeded);
  reader.GetU64(&frame.stats.cancelled);
  reader.GetU64(&frame.stats.deadline_exceeded);
  reader.GetU64(&frame.stats.failed);
  reader.GetU64(&frame.stats.members_delivered);
  if (reader.GetU64(&value)) {
    frame.stats.queue_depth = static_cast<std::size_t>(value);
  }
  if (reader.GetU64(&value)) {
    frame.stats.in_flight = static_cast<std::size_t>(value);
  }
  reader.GetF64(&frame.stats.queries_per_second);
  reader.GetU64(&frame.stats.model_version);
  if (reader.GetU64(&value)) {
    frame.stats.retained_snapshots = static_cast<std::size_t>(value);
  }
  if (reader.GetU64(&value)) {
    frame.stats.retained_snapshot_bytes = static_cast<std::size_t>(value);
  }
  reader.GetU64(&frame.stats.snapshot_evictions);
  if (reader.GetU8(&flag)) {
    // Fuzzing found this decoder accepting any non-zero byte as "alarm
    // set", which broke the documented Encode/Decode symmetry (the
    // encoder only ever writes 0 or 1). Reject non-canonical flags.
    if (flag > 1) return Malformed("non-canonical snapshot_alarm flag");
    frame.stats.snapshot_alarm = flag != 0;
  }
  reader.GetU64(&frame.stats.version_skew);
  if (reader.GetU64(&value)) {
    frame.stats.num_shards = static_cast<std::size_t>(value);
  }
  reader.GetU64(&frame.stats.wal_appends);
  reader.GetU64(&frame.stats.wal_bytes);
  reader.GetU64(&frame.stats.checkpoints_written);
  reader.GetU64(&frame.stats.recovery_replayed_deltas);
  // Appended per-tenant section; a frame ending at the pre-QoS boundary
  // decodes with no rows.
  if (!reader.exhausted()) {
    std::uint32_t count = 0;
    if (reader.GetU32(&count)) {
      for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
        WireTenantStats row;
        reader.GetString(&row.tenant);
        reader.GetU8(&row.qos_class);
        if (row.qos_class > WHYPROV_QOS_BATCH) {
          return Malformed("non-canonical tenant stats lane");
        }
        reader.GetU64(&row.queued);
        reader.GetU64(&row.served);
        reader.GetU64(&row.rejected);
        reader.GetU64(&row.cancelled);
        reader.GetF64(&row.cost_served);
        reader.GetF64(&row.queue_p50_seconds);
        reader.GetF64(&row.queue_p99_seconds);
        frame.tenants.push_back(std::move(row));
      }
    }
  }
  // Appended plan-simplify counters; a frame ending at the pre-simplify
  // boundary decodes as all-zero (WireReader poisons on a partial tail,
  // which FinishDecode rejects).
  if (!reader.exhausted()) {
    reader.GetU64(&frame.stats.plans_simplified);
    reader.GetU64(&frame.stats.simplify_vars_removed);
    reader.GetU64(&frame.stats.simplify_clauses_removed);
    reader.GetU64(&frame.stats.simplify_micros);
  }
  return FinishDecode(reader, std::move(frame), "stats reply");
}

}  // namespace whyprov::net
