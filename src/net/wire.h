#ifndef WHYPROV_NET_WIRE_H_
#define WHYPROV_NET_WIRE_H_

// The length-prefixed binary wire protocol of the network serving tier.
//
// Every frame on the socket is
//
//   u32 length (LE)  — byte count of what follows: type + body
//   u8  type         — kFrame* below
//   body             — type-specific, encoded with the primitives here
//
// Primitives: unsigned integers are little-endian; f64 is the IEEE-754
// bit pattern as a u64; a string is u32 length + raw bytes; a list is
// u32 count + elements. A "member" is a list of rendered fact strings.
//
// Request frames (client -> server) all begin with a u64 request_id the
// client picks; responses echo it. The server answers every request on
// one connection in submission order: for a streaming enumeration, zero
// or more kFrameMembers batches followed by exactly one kFrameFinal;
// for everything else exactly one kFrameFinal (or kFrameStatsReply).
// kFrameError is connection-level — a malformed, oversized, or unknown
// frame is answered with it and the connection is closed.
//
// Framing errors (truncated/oversized/unknown) are detected before any
// body decoding, so a bad client cannot wedge a session past its own
// connection. The maximum frame size is kMaxFrameBytes on both sides.
//
// Encode/Decode pairs below are exactly symmetric — tests round-trip
// every frame kind through them, and the server/client share them, so
// there is a single definition of the byte layout.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/whyprov_c.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/wire_format.h"

namespace whyprov::net {

/// Frame type bytes. Requests have the high bit clear, responses set.
enum FrameType : std::uint8_t {
  kFrameEnumerate = 0x01,
  kFrameDecide = 0x02,
  kFrameExplain = 0x03,
  kFrameDelta = 0x04,
  kFrameStats = 0x05,
  kFrameMembers = 0x81,
  kFrameFinal = 0x82,
  kFrameError = 0x83,
  kFrameStatsReply = 0x84,
};

/// Hard ceiling on one frame's length field (type + body). Large
/// enumerations stream as many small member batches, so frames stay
/// modest; anything beyond this is a protocol violation, not data.
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

// --- low-level primitives --------------------------------------------------

// The little-endian encode/decode primitives live in
// util/wire_format.h so the on-disk storage formats (src/storage/) can
// share them without depending on the network tier; these aliases keep
// the net-facing spelling stable.
using WireWriter = util::WireWriter;
using WireReader = util::WireReader;

/// Writes one framed message (length prefix + type + body) to `socket`.
util::Status WriteFrame(util::Socket& socket, std::uint8_t type,
                        std::string_view body);

/// Reads one framed message. kNotFound = clean EOF at a frame boundary
/// (the peer hung up); kInvalidArgument = oversized length field;
/// kUnknown = mid-frame EOF or socket error.
util::Status ReadFrame(util::Socket& socket, std::uint8_t* type,
                       std::string* body,
                       std::uint32_t max_frame_bytes = kMaxFrameBytes);

// --- request frames --------------------------------------------------------

// Every request frame ends with the appended QoS identity fields
// (compatibility appendix of docs/WIRE_PROTOCOL.md: fields are only ever
// appended): `qos_class` u8 (0 interactive / 1 batch; anything else is
// malformed) then `tenant` string ("" = the shared default tenant). A
// frame that ends before them decodes with the defaults, so pre-QoS
// clients keep working unchanged.

struct EnumerateFrame {
  std::uint64_t request_id = 0;
  std::string target;
  std::uint64_t max_members = 0;  ///< 0 = unlimited
  double deadline_seconds = 0;    ///< <= 0 = none; server maps to token
  std::uint8_t stream = 0;        ///< 1 = member-batch frames, 0 = in final
  std::uint32_t batch_size = 0;   ///< members per kFrameMembers; 0 = default
  std::uint8_t qos_class = WHYPROV_QOS_INTERACTIVE;  ///< appended
  std::string tenant;                                ///< appended
};

struct DecideFrame {
  std::uint64_t request_id = 0;
  std::string target;
  std::uint8_t tree_class = WHYPROV_TREE_UNAMBIGUOUS;
  std::vector<std::string> candidate_facts;
  double deadline_seconds = 0;
  std::uint8_t qos_class = WHYPROV_QOS_INTERACTIVE;  ///< appended
  std::string tenant;                                ///< appended
};

struct ExplainFrame {
  std::uint64_t request_id = 0;
  std::string target;
  std::uint64_t member_index = 0;
  double deadline_seconds = 0;
  std::uint8_t qos_class = WHYPROV_QOS_INTERACTIVE;  ///< appended
  std::string tenant;                                ///< appended
};

struct DeltaFrame {
  std::uint64_t request_id = 0;
  std::vector<std::string> added_facts;
  std::vector<std::string> removed_facts;
  double deadline_seconds = 0;
  std::uint8_t qos_class = WHYPROV_QOS_INTERACTIVE;  ///< appended
  std::string tenant;                                ///< appended
};

struct StatsFrame {
  std::uint64_t request_id = 0;
};

// --- response frames -------------------------------------------------------

/// One batch of streamed members (enumeration with stream = 1).
struct MembersFrame {
  std::uint64_t request_id = 0;
  std::vector<std::vector<std::string>> members;
};

/// The terminal response of one request. `kind` echoes the request's
/// frame type; the kind-specific payload is only meaningful for it.
struct FinalFrame {
  std::uint64_t request_id = 0;
  std::uint8_t status_code = WHYPROV_OK;
  std::string status_message;
  std::uint8_t kind = kFrameEnumerate;
  std::uint64_t model_version = 0;

  // kFrameEnumerate
  std::uint64_t members_emitted = 0;
  std::uint8_t enumerate_flags = 0;  ///< WHYPROV_ENUM_* bitmask
  std::vector<std::vector<std::string>> members;  ///< materialised mode only

  // kFrameDecide
  std::uint8_t verdict = 0;

  // kFrameExplain
  std::uint8_t has_explanation = 0;
  std::vector<std::string> explanation_member;
  std::string proof_tree;

  // kFrameDelta
  std::uint8_t has_delta = 0;
  whyprov_delta_stats delta = {};
};

/// Connection-level failure (malformed frame, unknown type, over-cap
/// in-flight): the server sends one and closes the connection.
struct ErrorFrame {
  std::uint64_t request_id = 0;  ///< 0 when no request could be identified
  std::uint8_t status_code = WHYPROV_UNKNOWN;
  std::string message;
};

/// One per-tenant/per-lane stats row of the appended StatsReply section
/// (mirrors whyprov_tenant_stats without the fixed-size name buffer).
struct WireTenantStats {
  std::string tenant;
  std::uint8_t qos_class = WHYPROV_QOS_INTERACTIVE;
  std::uint64_t queued = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  double cost_served = 0;
  double queue_p50_seconds = 0;
  double queue_p99_seconds = 0;
};

struct StatsReplyFrame {
  std::uint64_t request_id = 0;
  whyprov_stats stats = {};
  /// Appended section (u32 count + rows); absent in pre-QoS frames.
  std::vector<WireTenantStats> tenants;
};

// --- encode/decode (exactly symmetric per kind) ----------------------------

std::string Encode(const EnumerateFrame& frame);
std::string Encode(const DecideFrame& frame);
std::string Encode(const ExplainFrame& frame);
std::string Encode(const DeltaFrame& frame);
std::string Encode(const StatsFrame& frame);
std::string Encode(const MembersFrame& frame);
std::string Encode(const FinalFrame& frame);
std::string Encode(const ErrorFrame& frame);
std::string Encode(const StatsReplyFrame& frame);

util::Result<EnumerateFrame> DecodeEnumerate(std::string_view body);
util::Result<DecideFrame> DecodeDecide(std::string_view body);
util::Result<ExplainFrame> DecodeExplain(std::string_view body);
util::Result<DeltaFrame> DecodeDelta(std::string_view body);
util::Result<StatsFrame> DecodeStats(std::string_view body);
util::Result<MembersFrame> DecodeMembers(std::string_view body);
util::Result<FinalFrame> DecodeFinal(std::string_view body);
util::Result<ErrorFrame> DecodeError(std::string_view body);
util::Result<StatsReplyFrame> DecodeStatsReply(std::string_view body);

}  // namespace whyprov::net

#endif  // WHYPROV_NET_WIRE_H_
