#include "provenance/acyclicity.h"

#include <map>
#include <queue>
#include <unordered_map>
#include <utility>

namespace whyprov::provenance {

std::string AcyclicityEncodingName(AcyclicityEncoding e) {
  switch (e) {
    case AcyclicityEncoding::kTransitiveClosure:
      return "transitive-closure";
    case AcyclicityEncoding::kVertexElimination:
      return "vertex-elimination";
  }
  return "unknown";
}

namespace {

/// Collapses parallel arcs into one literal per ordered pair (creating an
/// OR variable where needed) and handles self-loops. The result maps
/// (from, to) -> literal.
std::map<std::pair<int, int>, sat::Lit> NormalizeArcs(
    const std::vector<Arc>& arcs, sat::SolverInterface& solver,
    AcyclicityStats& stats) {
  std::map<std::pair<int, int>, sat::Lit> merged;
  for (const Arc& arc : arcs) {
    if (arc.from == arc.to) {
      // A selected self-loop is a cycle outright.
      solver.AddUnit(~arc.lit);
      ++stats.clauses;
      continue;
    }
    const auto key = std::make_pair(arc.from, arc.to);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, arc.lit);
      continue;
    }
    // Second arc on the same pair: introduce (or extend) an OR variable.
    const sat::Var o = solver.NewVar();
    ++stats.auxiliary_variables;
    const sat::Lit or_lit = sat::Lit::Make(o, false);
    solver.AddBinary(~it->second, or_lit);
    solver.AddBinary(~arc.lit, or_lit);
    stats.clauses += 2;
    it->second = or_lit;
  }
  return merged;
}

AcyclicityStats EncodeTransitiveClosure(int num_nodes,
                                        const std::vector<Arc>& arcs,
                                        sat::SolverInterface& solver) {
  AcyclicityStats stats;
  auto merged = NormalizeArcs(arcs, solver, stats);

  // t(u, v) for every ordered pair of distinct nodes.
  std::unordered_map<std::int64_t, sat::Lit> t;
  auto t_lit = [&](int u, int v) {
    const std::int64_t key = static_cast<std::int64_t>(u) * num_nodes + v;
    auto it = t.find(key);
    if (it == t.end()) {
      const sat::Var var = solver.NewVar();
      ++stats.auxiliary_variables;
      it = t.emplace(key, sat::Lit::Make(var, false)).first;
    }
    return it->second;
  };

  for (const auto& [pair, lit] : merged) {
    const auto [u, v] = pair;
    // Arc implies closure.
    solver.AddBinary(~lit, t_lit(u, v));
    ++stats.clauses;
    // Arc composes with closure: z(u,v) & t(v,w) -> t(u,w); w == u closes
    // a cycle, which is forbidden.
    for (int w = 0; w < num_nodes; ++w) {
      if (w == v) continue;
      if (w == u) {
        solver.AddBinary(~lit, ~t_lit(v, u));
      } else {
        solver.AddTernary(~lit, ~t_lit(v, w), t_lit(u, w));
      }
      ++stats.clauses;
    }
  }
  return stats;
}

AcyclicityStats EncodeVertexElimination(int num_nodes,
                                        const std::vector<Arc>& arcs,
                                        sat::SolverInterface& solver) {
  AcyclicityStats stats;
  auto merged = NormalizeArcs(arcs, solver, stats);

  // Shadow every arc with a one-way reachability literal r(u,v) and run
  // the elimination on the shadow layer. Shortcuts must never force the
  // *selection* literal of a coincident original arc — only reachability.
  std::vector<std::unordered_map<int, sat::Lit>> out(num_nodes);
  std::vector<std::unordered_map<int, sat::Lit>> in(num_nodes);
  for (const auto& [pair, lit] : merged) {
    const sat::Var var = solver.NewVar();
    ++stats.auxiliary_variables;
    const sat::Lit shadow = sat::Lit::Make(var, false);
    solver.AddBinary(~lit, shadow);
    ++stats.clauses;
    out[pair.first].emplace(pair.second, shadow);
    in[pair.second].emplace(pair.first, shadow);
  }

  // Min-degree elimination order via a lazy priority queue (stale entries
  // are skipped when popped).
  using Entry = std::pair<std::size_t, int>;  // (degree, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  std::vector<bool> eliminated(num_nodes, false);
  auto degree = [&](int v) { return out[v].size() + in[v].size(); };
  for (int v = 0; v < num_nodes; ++v) queue.emplace(degree(v), v);

  for (int round = 0; round < num_nodes; ++round) {
    int x = -1;
    while (!queue.empty()) {
      auto [d, v] = queue.top();
      queue.pop();
      if (eliminated[v]) continue;
      if (d != degree(v)) {
        queue.emplace(degree(v), v);  // stale; reinsert with fresh degree
        continue;
      }
      x = v;
      break;
    }
    if (x < 0) break;
    eliminated[x] = true;

    // Shortcut every in-arc/out-arc pair through x.
    for (const auto& [u, in_lit] : in[x]) {
      if (eliminated[u]) continue;
      for (const auto& [w, out_lit] : out[x]) {
        if (eliminated[w]) continue;
        if (u == w) {
          // u -> x -> u is a cycle.
          solver.AddBinary(~in_lit, ~out_lit);
          ++stats.clauses;
          continue;
        }
        auto it = out[u].find(w);
        sat::Lit shortcut;
        if (it != out[u].end()) {
          shortcut = it->second;
        } else {
          const sat::Var var = solver.NewVar();
          ++stats.auxiliary_variables;
          shortcut = sat::Lit::Make(var, false);
          out[u].emplace(w, shortcut);
          in[w].emplace(u, shortcut);
          queue.emplace(degree(u), u);
          queue.emplace(degree(w), w);
        }
        solver.AddTernary(~in_lit, ~out_lit, shortcut);
        ++stats.clauses;
      }
    }
    // Detach x from its neighbours.
    for (const auto& [u, lit] : in[x]) {
      (void)lit;
      out[u].erase(x);
      queue.emplace(degree(u), u);
    }
    for (const auto& [w, lit] : out[x]) {
      (void)lit;
      in[w].erase(x);
      queue.emplace(degree(w), w);
    }
    in[x].clear();
    out[x].clear();
  }
  return stats;
}

}  // namespace

AcyclicityStats EncodeAcyclicity(AcyclicityEncoding kind, int num_nodes,
                                 const std::vector<Arc>& arcs,
                                 sat::SolverInterface& solver) {
  switch (kind) {
    case AcyclicityEncoding::kTransitiveClosure:
      return EncodeTransitiveClosure(num_nodes, arcs, solver);
    case AcyclicityEncoding::kVertexElimination:
      return EncodeVertexElimination(num_nodes, arcs, solver);
  }
  return AcyclicityStats{};
}

}  // namespace whyprov::provenance
