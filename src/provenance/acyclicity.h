#ifndef WHYPROV_PROVENANCE_ACYCLICITY_H_
#define WHYPROV_PROVENANCE_ACYCLICITY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sat/solver_interface.h"
#include "sat/types.h"

namespace whyprov::provenance {

/// Which CNF acyclicity encoding phi_acyclic uses.
enum class AcyclicityEncoding {
  /// The appendix's simple encoding: materialise the transitive closure
  /// with one variable per ordered node pair. O(n^2) variables,
  /// O(|E| * n) clauses. Simple but heavy on connected graphs.
  kTransitiveClosure,
  /// Vertex elimination (Rankooh & Rintanen, AAAI 2022), the encoding the
  /// paper's implementation uses: O(n * delta) variables where delta is
  /// the elimination width of the graph.
  kVertexElimination,
};

/// Human-readable name.
std::string AcyclicityEncodingName(AcyclicityEncoding e);

/// A potential arc of the graph: selected iff `lit` is true.
struct Arc {
  int from = 0;
  int to = 0;
  sat::Lit lit;
};

/// Statistics of one acyclicity encoding.
struct AcyclicityStats {
  std::size_t auxiliary_variables = 0;
  std::size_t clauses = 0;
};

/// Adds clauses to `solver` forcing that the arcs whose literals are true
/// form an acyclic graph over nodes 0..num_nodes-1. Parallel arcs and
/// self-loops are handled. Returns encoding statistics.
AcyclicityStats EncodeAcyclicity(AcyclicityEncoding kind, int num_nodes,
                                 const std::vector<Arc>& arcs,
                                 sat::SolverInterface& solver);

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_ACYCLICITY_H_
