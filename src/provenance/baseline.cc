#include "provenance/baseline.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "provenance/downward_closure.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

using IdSet = std::vector<dl::FactId>;        // sorted, unique
using IdFamily = std::set<IdSet>;

IdSet UnionSets(const IdSet& a, const IdSet& b) {
  IdSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

util::Result<ProvenanceFamily> ComputeWhyAllAtOnce(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    const BaselineLimits& limits) {
  const DownwardClosure closure =
      DownwardClosure::Build(program, model, target);
  if (!closure.derivable()) return ProvenanceFamily{};

  std::unordered_map<dl::FactId, IdFamily> supports;
  for (dl::FactId leaf : closure.DatabaseLeaves()) {
    supports[leaf] = IdFamily{IdSet{leaf}};
  }

  // Least fixpoint: keep applying every hyperedge until nothing grows.
  std::size_t combination_budget = limits.max_combinations;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DownwardClosure::Hyperedge& edge : closure.edges()) {
      // Product of the body families, unioning the supports.
      IdFamily additions;
      bool feasible = true;
      std::vector<const IdFamily*> body_families;
      for (dl::FactId body_fact : edge.body) {
        auto it = supports.find(body_fact);
        if (it == supports.end() || it->second.empty()) {
          feasible = false;
          break;
        }
        body_families.push_back(&it->second);
      }
      if (!feasible) continue;

      // Depth-first product over the body families.
      IdSet current;
      bool overflow = false;
      auto product = [&](auto&& self, std::size_t index,
                         const IdSet& acc) -> void {
        if (overflow) return;
        if (combination_budget == 0) {
          overflow = true;
          return;
        }
        --combination_budget;
        if (index == body_families.size()) {
          additions.insert(acc);
          return;
        }
        for (const IdSet& s : *body_families[index]) {
          self(self, index + 1, UnionSets(acc, s));
        }
      };
      product(product, 0, IdSet{});
      if (overflow) {
        return util::Status::Error(
            "all-at-once baseline exceeded its combination budget "
            "(family materialisation blow-up)");
      }

      IdFamily& head_family = supports[edge.head];
      for (const IdSet& s : additions) {
        if (head_family.insert(s).second) changed = true;
      }
      if (head_family.size() > limits.max_family_size) {
        return util::Status::Error(
            "all-at-once baseline exceeded its family-size budget "
            "(out-of-memory analogue)");
      }
    }
  }

  ProvenanceFamily family;
  auto it = supports.find(target);
  if (it != supports.end()) {
    for (const IdSet& s : it->second) {
      std::vector<dl::Fact> member;
      member.reserve(s.size());
      for (dl::FactId id : s) member.push_back(model.fact(id));
      std::sort(member.begin(), member.end());
      family.insert(std::move(member));
    }
  }
  return family;
}

}  // namespace whyprov::provenance
