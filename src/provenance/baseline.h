#ifndef WHYPROV_PROVENANCE_BASELINE_H_
#define WHYPROV_PROVENANCE_BASELINE_H_

#include <cstddef>
#include <set>
#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "util/status.h"

namespace whyprov::provenance {

/// A why-provenance family: a set of members, each a sorted set of
/// database facts.
using ProvenanceFamily = std::set<std::vector<datalog::Fact>>;

/// Resource limits for the materialising algorithms. They are exponential
/// in the worst case (the problem is NP-hard), so explosion is reported as
/// an error instead of hanging.
struct BaselineLimits {
  std::size_t max_family_size = 1u << 20;    ///< per-fact support families
  std::size_t max_combinations = 1u << 24;   ///< product steps per round
};

/// The "all-at-once" baseline (the paper's Figure 5 comparator, standing
/// in for the existential-rules approach of Elhalawati et al.): computes
/// the *entire* set why(t, D, Q) in one least-fixpoint pass over the
/// downward closure, interpreting each fact's annotation in the
/// set-of-supports semiring:
///
///   W(alpha) = {{alpha}}                                alpha in D
///   W(alpha) >= { S_1 u ... u S_k :  (alpha,{b_1..b_k}) a rule instance,
///                                     S_i in W(b_i) }
///
/// For arbitrary proof trees this fixpoint is exactly the why-provenance
/// (each member is the support of some proof tree and vice versa).
util::Result<ProvenanceFamily> ComputeWhyAllAtOnce(
    const datalog::Program& program, const datalog::Model& model,
    datalog::FactId target, const BaselineLimits& limits = BaselineLimits());

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_BASELINE_H_
