#include "provenance/cnf_encoder.h"

#include <map>
#include <set>
#include <utility>

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

Encoding CnfEncoder::Encode(const DownwardClosure& closure,
                            sat::SolverInterface& solver,
                            const Options& options) {
  Encoding enc;
  enc.database_leaves = closure.DatabaseLeaves();
  if (!closure.derivable()) {
    solver.AddClause({});  // empty clause: unsatisfiable
    enc.trivially_unsat = true;
    return enc;
  }

  // --- variables ---
  // x_alpha per closure node.
  for (dl::FactId fact : closure.nodes()) {
    enc.node_vars.emplace(fact, solver.NewVar());
  }
  // y_e per hyperedge.
  enc.hyperedge_vars.reserve(closure.edges().size());
  for (std::size_t e = 0; e < closure.edges().size(); ++e) {
    enc.hyperedge_vars.push_back(solver.NewVar());
  }
  // z_(alpha,beta) per distinct (head, body-fact) pair over all hyperedges.
  std::map<std::pair<dl::FactId, dl::FactId>, sat::Var> edge_var_of;
  for (const DownwardClosure::Hyperedge& edge : closure.edges()) {
    for (dl::FactId body_fact : edge.body) {
      const auto key = std::make_pair(edge.head, body_fact);
      if (!edge_var_of.contains(key)) {
        const sat::Var var = solver.NewVar();
        edge_var_of.emplace(key, var);
        enc.edge_vars.push_back(Encoding::EdgeVar{edge.head, body_fact, var});
      }
    }
  }
  auto pos = [](sat::Var v) { return sat::Lit::Make(v, false); };
  auto neg = [](sat::Var v) { return sat::Lit::Make(v, true); };

  // --- phi_graph: z_(a,b) -> x_a and z_(a,b) -> x_b ---
  for (const Encoding::EdgeVar& z : enc.edge_vars) {
    solver.AddBinary(neg(z.var), pos(enc.node_vars.at(z.from)));
    solver.AddBinary(neg(z.var), pos(enc.node_vars.at(z.to)));
    enc.num_clauses += 2;
  }

  // --- phi_root ---
  const dl::FactId root = closure.target();
  solver.AddUnit(pos(enc.node_vars.at(root)));
  ++enc.num_clauses;
  // No incoming arcs into the root; every other present node needs one.
  std::unordered_map<dl::FactId, std::vector<sat::Var>> incoming;
  for (const Encoding::EdgeVar& z : enc.edge_vars) {
    incoming[z.to].push_back(z.var);
  }
  for (sat::Var var : incoming[root]) {
    solver.AddUnit(neg(var));
    ++enc.num_clauses;
  }
  for (dl::FactId fact : closure.nodes()) {
    if (fact == root) continue;
    std::vector<sat::Lit> clause;
    clause.push_back(neg(enc.node_vars.at(fact)));
    for (sat::Var var : incoming[fact]) clause.push_back(pos(var));
    solver.AddClause(std::move(clause));
    ++enc.num_clauses;
  }

  // --- phi_proof ---
  // Intensional nodes must select a hyperedge...
  for (dl::FactId fact : closure.nodes()) {
    const std::vector<std::size_t>& edges = closure.EdgesWithHead(fact);
    if (edges.empty()) continue;  // database leaf
    std::vector<sat::Lit> clause;
    clause.push_back(neg(enc.node_vars.at(fact)));
    for (std::size_t e : edges) clause.push_back(pos(enc.hyperedge_vars[e]));
    solver.AddClause(std::move(clause));
    ++enc.num_clauses;
  }
  // ... and the selected hyperedge pins down exactly its arcs: for every
  // z_(a,b) variable with a = head(e): y_e -> z_(a,b) if b in body(e),
  // y_e -> ~z_(a,b) otherwise.
  std::unordered_map<dl::FactId, std::vector<std::pair<dl::FactId, sat::Var>>>
      arcs_from;
  for (const Encoding::EdgeVar& z : enc.edge_vars) {
    arcs_from[z.from].emplace_back(z.to, z.var);
  }
  for (std::size_t e = 0; e < closure.edges().size(); ++e) {
    const DownwardClosure::Hyperedge& edge = closure.edges()[e];
    const std::set<dl::FactId> body(edge.body.begin(), edge.body.end());
    for (const auto& [to, z_var] : arcs_from[edge.head]) {
      if (body.contains(to)) {
        solver.AddBinary(neg(enc.hyperedge_vars[e]), pos(z_var));
      } else {
        solver.AddBinary(neg(enc.hyperedge_vars[e]), neg(z_var));
      }
      ++enc.num_clauses;
    }
  }

  // --- phi_acyclic over the z arcs ---
  // Dense node renumbering for the acyclicity encoder.
  std::unordered_map<dl::FactId, int> dense;
  for (dl::FactId fact : closure.nodes()) {
    dense.emplace(fact, static_cast<int>(dense.size()));
  }
  std::vector<Arc> arcs;
  arcs.reserve(enc.edge_vars.size());
  for (const Encoding::EdgeVar& z : enc.edge_vars) {
    arcs.push_back(Arc{dense.at(z.from), dense.at(z.to), pos(z.var)});
  }
  enc.acyclicity = EncodeAcyclicity(options.acyclicity,
                                    static_cast<int>(dense.size()), arcs,
                                    solver);
  return enc;
}

}  // namespace whyprov::provenance
