#ifndef WHYPROV_PROVENANCE_CNF_ENCODER_H_
#define WHYPROV_PROVENANCE_CNF_ENCODER_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/acyclicity.h"
#include "provenance/downward_closure.h"
#include "sat/solver_interface.h"

namespace whyprov::provenance {

/// The variable layout of the Boolean formula phi(t, D, Q) of Section 5.1 /
/// Appendix D.2, plus encoding statistics. The formula itself lives inside
/// the solver the encoder filled.
struct Encoding {
  /// x_alpha: "fact alpha is a node of the compressed DAG".
  std::unordered_map<datalog::FactId, sat::Var> node_vars;
  /// y_e, parallel to closure.edges(): "hyperedge e is alpha's derivation".
  std::vector<sat::Var> hyperedge_vars;
  /// z_(alpha,beta) arcs, as (from fact, to fact, var).
  struct EdgeVar {
    datalog::FactId from;
    datalog::FactId to;
    sat::Var var;
  };
  std::vector<EdgeVar> edge_vars;
  /// The database facts of the closure (the blocking-clause set S).
  std::vector<datalog::FactId> database_leaves;

  std::size_t num_clauses = 0;           ///< clauses emitted (excl. acyclicity)
  AcyclicityStats acyclicity;            ///< phi_acyclic statistics
  bool trivially_unsat = false;          ///< formula collapsed at encode time
};

/// Builds phi(t, D, Q) = phi_graph & phi_root & phi_proof & phi_acyclic
/// into `solver`, following Appendix D.2 of the paper. Satisfying
/// assignments correspond one-to-one (Lemma 44) to compressed proof DAGs
/// of the closure's target fact, and hence (Proposition 41) db(tau) ranges
/// exactly over whyUN(t, D, Q).
class CnfEncoder {
 public:
  struct Options {
    AcyclicityEncoding acyclicity = AcyclicityEncoding::kVertexElimination;
  };

  /// Encodes the closure into `solver`. If the closure's target is not
  /// derivable the encoding is marked trivially unsatisfiable.
  static Encoding Encode(const DownwardClosure& closure,
                         sat::SolverInterface& solver,
                         const Options& options);
  static Encoding Encode(const DownwardClosure& closure,
                         sat::SolverInterface& solver) {
    return Encode(closure, solver, Options());
  }
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_CNF_ENCODER_H_
