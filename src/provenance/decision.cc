#include "provenance/decision.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "provenance/proof_dag.h"
#include "sat/solver.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

using IdSet = std::vector<dl::FactId>;  // sorted, unique
using IdFamily = std::set<IdSet>;

IdSet UnionSets(const IdSet& a, const IdSet& b) {
  IdSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

ProvenanceFamily ToFamily(const IdFamily& ids, const dl::Model& model) {
  ProvenanceFamily family;
  for (const IdSet& s : ids) {
    std::vector<dl::Fact> member;
    member.reserve(s.size());
    for (dl::FactId id : s) member.push_back(model.fact(id));
    std::sort(member.begin(), member.end());
    family.insert(std::move(member));
  }
  return family;
}

/// Budget-guarded product of body families, unioning supports.
util::Status ProductInto(const std::vector<const IdFamily*>& body_families,
                         std::size_t& budget, IdFamily& out) {
  bool overflow = false;
  auto product = [&](auto&& self, std::size_t index,
                     const IdSet& acc) -> void {
    if (overflow) return;
    if (budget == 0) {
      overflow = true;
      return;
    }
    --budget;
    if (index == body_families.size()) {
      out.insert(acc);
      return;
    }
    for (const IdSet& s : *body_families[index]) {
      self(self, index + 1, UnionSets(acc, s));
    }
  };
  product(product, 0, IdSet{});
  if (overflow) {
    return util::Status::ResourceExhausted(
        "exhaustive enumeration exceeded its budget");
  }
  return util::Status::Ok();
}

// --- non-recursive proof trees: path-avoiding recursion ---

util::Result<IdFamily> NonRecursiveSupports(const DownwardClosure& closure,
                                            dl::FactId fact,
                                            std::set<dl::FactId>& forbidden,
                                            std::size_t& budget) {
  if (budget == 0) {
    return util::Status::ResourceExhausted(
        "exhaustive enumeration exceeded its budget");
  }
  --budget;
  if (closure.EdgesWithHead(fact).empty()) {
    return IdFamily{IdSet{fact}};
  }
  IdFamily result;
  forbidden.insert(fact);
  for (std::size_t e : closure.EdgesWithHead(fact)) {
    const DownwardClosure::Hyperedge& edge = closure.edges()[e];
    bool blocked = false;
    std::vector<IdFamily> body_families;
    for (dl::FactId body_fact : edge.body) {
      if (forbidden.contains(body_fact)) {
        blocked = true;
        break;
      }
      util::Result<IdFamily> sub =
          NonRecursiveSupports(closure, body_fact, forbidden, budget);
      if (!sub.ok()) {
        forbidden.erase(fact);
        return sub.status();
      }
      if (sub.value().empty()) {
        blocked = true;
        break;
      }
      body_families.push_back(std::move(sub).value());
    }
    if (blocked) continue;
    std::vector<const IdFamily*> pointers;
    pointers.reserve(body_families.size());
    for (const IdFamily& f : body_families) pointers.push_back(&f);
    util::Status status = ProductInto(pointers, budget, result);
    if (!status.ok()) {
      forbidden.erase(fact);
      return status;
    }
  }
  forbidden.erase(fact);
  return result;
}

// --- minimal-depth proof trees: depth-budgeted dynamic program ---

util::Result<IdFamily> DepthBoundedSupports(
    const DownwardClosure& closure, dl::FactId fact, int depth,
    std::map<std::pair<dl::FactId, int>, IdFamily>& memo,
    std::size_t& budget) {
  if (closure.EdgesWithHead(fact).empty()) {
    return IdFamily{IdSet{fact}};
  }
  if (depth <= 0) return IdFamily{};
  auto it = memo.find({fact, depth});
  if (it != memo.end()) return it->second;
  IdFamily result;
  for (std::size_t e : closure.EdgesWithHead(fact)) {
    const DownwardClosure::Hyperedge& edge = closure.edges()[e];
    bool blocked = false;
    std::vector<IdFamily> body_families;
    for (dl::FactId body_fact : edge.body) {
      util::Result<IdFamily> sub =
          DepthBoundedSupports(closure, body_fact, depth - 1, memo, budget);
      if (!sub.ok()) return sub.status();
      if (sub.value().empty()) {
        blocked = true;
        break;
      }
      body_families.push_back(std::move(sub).value());
    }
    if (blocked) continue;
    std::vector<const IdFamily*> pointers;
    pointers.reserve(body_families.size());
    for (const IdFamily& f : body_families) pointers.push_back(&f);
    util::Status status = ProductInto(pointers, budget, result);
    if (!status.ok()) return status;
  }
  memo.emplace(std::make_pair(fact, depth), result);
  return result;
}

// --- unambiguous proof trees: enumerate compressed DAGs ---

util::Result<IdFamily> UnambiguousSupports(const DownwardClosure& closure,
                                           const dl::Model& model,
                                           std::size_t budget) {
  // Reachability-guided backtracking over choice functions: only facts
  // actually pulled into the DAG get a hyperedge assigned, and a choice
  // that would close a cycle (a body fact already reaching the head
  // through chosen arcs) is pruned immediately. Every complete assignment
  // is a valid compressed DAG (Definition 40), so its reachable database
  // leaves form a whyUN member (Proposition 41).
  IdFamily result;
  std::unordered_map<dl::FactId, std::size_t> choice;

  // Can `from` reach `to` via currently chosen hyperedges?
  auto reaches = [&](auto&& self, dl::FactId from, dl::FactId to,
                     std::set<dl::FactId>& visited) -> bool {
    if (from == to) return true;
    if (!visited.insert(from).second) return false;
    auto it = choice.find(from);
    if (it == choice.end()) return false;
    for (dl::FactId next : closure.edges()[it->second].body) {
      if (self(self, next, to, visited)) return true;
    }
    return false;
  };

  bool overflow = false;
  // `pending` holds reachable internal facts still needing a choice.
  auto enumerate = [&](auto&& self, std::vector<dl::FactId> pending) -> void {
    if (overflow) return;
    if (budget == 0) {
      overflow = true;
      return;
    }
    --budget;
    // Drop already-chosen or leaf facts.
    while (!pending.empty() &&
           (choice.contains(pending.back()) ||
            closure.EdgesWithHead(pending.back()).empty())) {
      pending.pop_back();
    }
    if (pending.empty()) {
      const CompressedDag dag(&closure, choice);
      util::Result<IdSet> support = dag.Support(model);
      if (support.ok()) result.insert(std::move(support).value());
      return;
    }
    const dl::FactId fact = pending.back();
    pending.pop_back();
    for (std::size_t e : closure.EdgesWithHead(fact)) {
      const DownwardClosure::Hyperedge& edge = closure.edges()[e];
      // Prune choices that close a cycle.
      bool cyclic = false;
      for (dl::FactId body_fact : edge.body) {
        std::set<dl::FactId> visited;
        if (reaches(reaches, body_fact, fact, visited)) {
          cyclic = true;
          break;
        }
      }
      if (cyclic) continue;
      choice.emplace(fact, e);
      std::vector<dl::FactId> next_pending = pending;
      for (dl::FactId body_fact : edge.body) {
        next_pending.push_back(body_fact);
      }
      self(self, std::move(next_pending));
      choice.erase(fact);
    }
  };
  enumerate(enumerate, {closure.target()});
  if (overflow) {
    return util::Status::ResourceExhausted(
        "exhaustive enumeration exceeded its budget");
  }
  return result;
}

}  // namespace

bool IsWhyUnMemberSat(const dl::Program& program, const dl::Model& model,
                      dl::FactId target,
                      const std::vector<dl::Fact>& dprime,
                      AcyclicityEncoding acyclicity) {
  // The in-tree CDCL solver only answers kUnknown under an explicit
  // conflict budget, which this overload never sets.
  sat::Solver solver;
  return IsWhyUnMemberSat(program, model, target, dprime, acyclicity,
                          solver)
      .value_or(false);
}

util::Result<bool> IsWhyUnMemberSat(const dl::Program& program,
                                    const dl::Model& model, dl::FactId target,
                                    const std::vector<dl::Fact>& dprime,
                                    AcyclicityEncoding acyclicity,
                                    sat::SolverInterface& solver) {
  CnfEncoder::Options options;
  options.acyclicity = acyclicity;
  const auto plan = QueryPlan::Build(program, model, target, options);
  return IsWhyUnMemberPrepared(*plan, model, dprime, solver);
}

util::Result<bool> IsWhyUnMemberPrepared(const QueryPlan& plan,
                                         const dl::Model& model,
                                         const std::vector<dl::Fact>& dprime,
                                         sat::SolverInterface& solver) {
  const DownwardClosure& closure = plan.closure();
  if (!closure.derivable()) return false;

  // Map D' to closure leaves; facts outside the closure cannot be in any
  // support, so the answer is immediately negative.
  std::unordered_set<dl::FactId> dprime_ids;
  for (const dl::Fact& fact : dprime) {
    auto id = model.Find(fact);
    if (!id.has_value()) return false;
    bool is_leaf = false;
    for (dl::FactId leaf : closure.DatabaseLeaves()) {
      if (leaf == *id) {
        is_leaf = true;
        break;
      }
    }
    if (!is_leaf) return false;
    dprime_ids.insert(*id);
  }

  const Encoding& encoding = plan.encoding();
  if (encoding.trivially_unsat) return false;
  plan.LoadInto(solver);
  // Pin the leaves: support must be exactly D'.
  for (dl::FactId leaf : closure.DatabaseLeaves()) {
    // Fact selectors are frozen under plan simplification, so the mapped
    // literal is always defined (identity for an unsimplified plan).
    const sat::Lit lit = plan.SolverLitFor(encoding.node_vars.at(leaf));
    if (!solver.AddUnit(dprime_ids.contains(leaf) ? lit : ~lit)) {
      return false;
    }
  }
  const sat::SolveResult result = solver.Solve();
  if (result == sat::SolveResult::kUnknown) {
    return util::Status::ResourceExhausted(
        "the SAT backend gave up without deciding membership");
  }
  return result == sat::SolveResult::kSat;
}

util::Result<ProvenanceFamily> EnumerateWhyExhaustive(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    TreeClass tree_class, const BaselineLimits& limits) {
  if (tree_class == TreeClass::kAny) {
    return ComputeWhyAllAtOnce(program, model, target, limits);
  }
  const DownwardClosure closure =
      DownwardClosure::Build(program, model, target);
  if (!closure.derivable()) return ProvenanceFamily{};
  std::size_t budget = limits.max_combinations;
  util::Result<IdFamily> ids = util::Status::Error("unreachable");
  switch (tree_class) {
    case TreeClass::kNonRecursive: {
      std::set<dl::FactId> forbidden;
      ids = NonRecursiveSupports(closure, target, forbidden, budget);
      break;
    }
    case TreeClass::kMinimalDepth: {
      std::map<std::pair<dl::FactId, int>, IdFamily> memo;
      ids = DepthBoundedSupports(closure, target, model.rank(target), memo,
                                 budget);
      break;
    }
    case TreeClass::kUnambiguous:
      ids = UnambiguousSupports(closure, model, budget);
      break;
    case TreeClass::kAny:
      break;  // handled above
  }
  if (!ids.ok()) return ids.status();
  return ToFamily(ids.value(), model);
}

}  // namespace whyprov::provenance
