#ifndef WHYPROV_PROVENANCE_DECISION_H_
#define WHYPROV_PROVENANCE_DECISION_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/acyclicity.h"
#include "provenance/baseline.h"
#include "provenance/proof_tree.h"
#include "provenance/query_plan.h"
#include "sat/solver_interface.h"
#include "util/status.h"

namespace whyprov::provenance {

/// The decision problem Why-Provenance[Q] (Section 3): given the least
/// model of (Q, D), an answer fact R(t), and a candidate explanation D',
/// decide membership of D' in the why-provenance family. Two kinds of
/// procedures are provided:
///
///  * a SAT-based decision for unambiguous proof trees (the NP witness of
///    Theorem 14(1): a compressed proof DAG with support exactly D'), and
///  * exhaustive reference algorithms for all four proof-tree classes,
///    used as ground truth in tests (exponential; limit-guarded).

/// SAT decision of D' in whyUN(t, D, Q): encodes phi(t, D, Q) and pins the
/// leaf variables to D'. `dprime` facts outside the closure's database
/// leaves make the answer trivially false. Uses the default CDCL backend.
bool IsWhyUnMemberSat(
    const datalog::Program& program, const datalog::Model& model,
    datalog::FactId target, const std::vector<datalog::Fact>& dprime,
    AcyclicityEncoding acyclicity = AcyclicityEncoding::kVertexElimination);

/// Same, but encodes into the caller-supplied (fresh) solver backend.
/// A backend that gives up (SolveResult::kUnknown — e.g. a failed
/// external solver or an exhausted conflict budget) is reported as
/// kResourceExhausted instead of being collapsed to "not a member".
util::Result<bool> IsWhyUnMemberSat(const datalog::Program& program,
                                    const datalog::Model& model,
                                    datalog::FactId target,
                                    const std::vector<datalog::Fact>& dprime,
                                    AcyclicityEncoding acyclicity,
                                    sat::SolverInterface& solver);

/// Decides membership against a prebuilt shared plan: replays the plan's
/// formula into the fresh `solver`, pins the leaf variables to D', and
/// solves. Skips the closure+encode phase entirely, so repeated decisions
/// on one target (or concurrent decisions across threads, each with its
/// own solver) pay only the solve. `model` must be the model the plan was
/// built from.
util::Result<bool> IsWhyUnMemberPrepared(
    const QueryPlan& plan, const datalog::Model& model,
    const std::vector<datalog::Fact>& dprime, sat::SolverInterface& solver);

/// Exhaustively materialises the why-provenance family of `target` for the
/// given proof-tree class:
///   kAny          — set-of-supports fixpoint (equals the baseline),
///   kNonRecursive — path-avoiding enumeration over the closure,
///   kMinimalDepth — depth-budgeted dynamic program (budget = rank),
///   kUnambiguous  — enumeration of compressed DAGs (choice functions).
/// Exponential in general; explosion is reported via the limits.
util::Result<ProvenanceFamily> EnumerateWhyExhaustive(
    const datalog::Program& program, const datalog::Model& model,
    datalog::FactId target, TreeClass tree_class,
    const BaselineLimits& limits = BaselineLimits());

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_DECISION_H_
