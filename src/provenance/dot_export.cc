#include "provenance/dot_export.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

/// Escapes a label for DOT double-quoted strings.
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ProofTreeToDot(const ProofTree& tree,
                           const dl::SymbolTable& symbols) {
  std::string out = "digraph proof_tree {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    const auto& node = tree.nodes()[i];
    out += "  n" + std::to_string(i) + " [label=\"" +
           Escape(dl::FactToString(node.fact, symbols)) + "\"";
    if (node.children.empty()) out += ", shape=box";
    out += "];\n";
  }
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    for (std::size_t child : tree.nodes()[i].children) {
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(child) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string DownwardClosureToDot(const DownwardClosure& closure,
                                 const dl::Model& model) {
  std::string out = "digraph downward_closure {\n  rankdir=TB;\n";
  for (dl::FactId fact : closure.nodes()) {
    out += "  f" + std::to_string(fact) + " [label=\"" +
           Escape(dl::FactToString(model.fact(fact), model.symbols())) +
           "\"";
    if (model.rank(fact) == 0) out += ", shape=box";
    if (fact == closure.target()) out += ", style=bold";
    out += "];\n";
  }
  for (std::size_t e = 0; e < closure.edges().size(); ++e) {
    const auto& edge = closure.edges()[e];
    const std::string junction = "e" + std::to_string(e);
    out += "  " + junction + " [shape=point];\n";
    out += "  f" + std::to_string(edge.head) + " -> " + junction + ";\n";
    for (dl::FactId body : edge.body) {
      out += "  " + junction + " -> f" + std::to_string(body) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace whyprov::provenance
