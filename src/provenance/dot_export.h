#ifndef WHYPROV_PROVENANCE_DOT_EXPORT_H_
#define WHYPROV_PROVENANCE_DOT_EXPORT_H_

#include <string>

#include "datalog/evaluator.h"
#include "provenance/downward_closure.h"
#include "provenance/proof_tree.h"

namespace whyprov::provenance {

/// Renders a proof tree as Graphviz DOT (facts as nodes, parent->child
/// edges; database facts drawn as boxes).
std::string ProofTreeToDot(const ProofTree& tree,
                           const datalog::SymbolTable& symbols);

/// Renders a downward closure as Graphviz DOT: facts as nodes, hyperedges
/// as small junction points connecting a head to its body facts (the
/// standard bipartite rendering of a hypergraph).
std::string DownwardClosureToDot(const DownwardClosure& closure,
                                 const datalog::Model& model);

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_DOT_EXPORT_H_
