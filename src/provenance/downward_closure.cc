#include "provenance/downward_closure.h"

#include <algorithm>
#include <deque>
#include <set>

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

DownwardClosure DownwardClosure::Build(const dl::Program& program,
                                       const dl::Model& model,
                                       dl::FactId target) {
  DownwardClosure closure;
  closure.target_ = target;
  // A tombstoned target (deleted by an incremental delta) is no longer
  // derivable and yields an empty closure, like an unknown id.
  if (target >= model.size() || !model.alive(target)) return closure;
  closure.derivable_ = true;

  const dl::Grounder grounder(program, model);

  std::deque<dl::FactId> queue;
  queue.push_back(target);
  closure.edge_index_.emplace(target, std::vector<std::size_t>{});
  closure.nodes_.push_back(target);

  // Hyperedge identity is (head, body-set); rule indices are witnesses.
  std::set<std::pair<dl::FactId, std::vector<dl::FactId>>> seen_edges;

  while (!queue.empty()) {
    const dl::FactId fact = queue.front();
    queue.pop_front();
    // Database facts are leaves of the closure: no expansion. (A database
    // is over edb(Sigma), so no rule can rederive them anyway; checking the
    // rank is the cheap equivalent.)
    if (model.rank(fact) == 0) {
      closure.database_leaves_.push_back(fact);
      continue;
    }
    for (dl::RuleInstance& instance : grounder.InstancesWithHead(fact)) {
      if (!seen_edges.emplace(instance.head, instance.body).second) continue;
      const std::size_t edge_id = closure.edges_.size();
      closure.edge_index_[fact].push_back(edge_id);
      for (dl::FactId body_fact : instance.body) {
        auto [it, inserted] = closure.edge_index_.emplace(
            body_fact, std::vector<std::size_t>{});
        if (inserted) {
          closure.nodes_.push_back(body_fact);
          queue.push_back(body_fact);
        }
      }
      closure.edges_.push_back(Hyperedge{instance.head,
                                         std::move(instance.body),
                                         instance.rule_index});
    }
  }
  return closure;
}

const std::vector<std::size_t>& DownwardClosure::EdgesWithHead(
    dl::FactId fact) const {
  static const auto& kEmpty = *new std::vector<std::size_t>();
  auto it = edge_index_.find(fact);
  if (it == edge_index_.end()) return kEmpty;
  return it->second;
}

}  // namespace whyprov::provenance
