#ifndef WHYPROV_PROVENANCE_DOWNWARD_CLOSURE_H_
#define WHYPROV_PROVENANCE_DOWNWARD_CLOSURE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/grounder.h"
#include "datalog/program.h"

namespace whyprov::provenance {

/// The downward closure down(D, Sigma, alpha) of a target fact
/// (Definition 42 and the surrounding discussion): the sub-hypergraph of
/// the graph of rule instances gri(D, Sigma) restricted to the facts
/// backward-reachable from alpha. Nodes are model fact ids; hyperedges are
/// deduplicated rule instances (head, {body facts}).
///
/// The paper computes this object by evaluating a rewritten Datalog query
/// Q-down over an extended database D-down with DLV; here the engine's
/// grounder enumerates the same hyperedges on demand during a backward
/// breadth-first traversal from the target.
class DownwardClosure {
 public:
  /// One hyperedge (alpha, T): `head` = alpha, `body` = T (sorted, unique).
  struct Hyperedge {
    datalog::FactId head = datalog::kInvalidFact;
    std::vector<datalog::FactId> body;
    std::size_t rule_index = 0;  ///< a witnessing rule (diagnostics only)
  };

  /// Builds the closure of `target` (a fact id of `model`). `model` must
  /// be the least model of (program, database). Both must outlive the
  /// returned object.
  static DownwardClosure Build(const datalog::Program& program,
                               const datalog::Model& model,
                               datalog::FactId target);

  /// The target fact id.
  datalog::FactId target() const { return target_; }

  /// True iff the target is derivable (i.e. present in the model); an
  /// underivable target yields an empty closure.
  bool derivable() const { return derivable_; }

  /// All facts of the closure (backward-reachable from the target),
  /// in BFS discovery order (the target is first).
  const std::vector<datalog::FactId>& nodes() const { return nodes_; }

  /// All hyperedges.
  const std::vector<Hyperedge>& edges() const { return edges_; }

  /// Indices into edges() of the hyperedges with head `fact`; empty for
  /// leaves and unknown facts.
  const std::vector<std::size_t>& EdgesWithHead(datalog::FactId fact) const;

  /// True iff `fact` is a node of the closure.
  bool ContainsNode(datalog::FactId fact) const {
    return edge_index_.contains(fact);
  }

  /// The database facts (rank 0 in the model) appearing in the closure —
  /// the set S over which blocking clauses are formed.
  const std::vector<datalog::FactId>& DatabaseLeaves() const {
    return database_leaves_;
  }

 private:
  datalog::FactId target_ = datalog::kInvalidFact;
  bool derivable_ = false;
  std::vector<datalog::FactId> nodes_;
  std::vector<Hyperedge> edges_;
  std::unordered_map<datalog::FactId, std::vector<std::size_t>> edge_index_;
  std::vector<datalog::FactId> database_leaves_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_DOWNWARD_CLOSURE_H_
