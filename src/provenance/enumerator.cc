#include "provenance/enumerator.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_set>
#include <utility>

#include "sat/solver.h"
#include "sat/solver_factory.h"
#include "util/timer.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

/// Resolves `options` into a solver instance, falling back to the default
/// CDCL backend when the named backend cannot be created. The fallback is
/// announced on stderr so a misconfigured backend cannot silently turn a
/// two-backend cross-check into CDCL-vs-CDCL.
std::unique_ptr<sat::SolverInterface> MakeSolver(
    const WhyProvenanceEnumerator::Options& options) {
  auto solver = sat::SolverFactory::Instance().Create(options.solver_backend,
                                                      options.solver_options);
  if (solver.ok()) return std::move(solver).value();
  std::fprintf(stderr,
               "whyprov: falling back to the cdcl backend: %s\n",
               solver.status().message().c_str());
  return std::make_unique<sat::Solver>(options.solver_options);
}

}  // namespace

WhyProvenanceEnumerator::WhyProvenanceEnumerator(const dl::Program& program,
                                                 const dl::Model& model,
                                                 dl::FactId target,
                                                 const Options& options)
    : WhyProvenanceEnumerator(program, model, target, options,
                              MakeSolver(options)) {}

WhyProvenanceEnumerator::WhyProvenanceEnumerator(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    const Options& options, std::unique_ptr<sat::SolverInterface> solver)
    : model_(model), solver_(std::move(solver)) {
  util::Timer timer;
  closure_ = DownwardClosure::Build(program, model, target);
  timings_.closure_seconds = timer.ElapsedSeconds();

  timer.Reset();
  CnfEncoder::Options encoder_options;
  encoder_options.acyclicity = options.acyclicity;
  encoding_ = CnfEncoder::Encode(closure_, *solver_, encoder_options);
  SeedCanonicalWitness();
  timings_.encode_seconds = timer.ElapsedSeconds();
}

void WhyProvenanceEnumerator::SeedCanonicalWitness() {
  // Seed the solver's decision phases with the rank-greedy compressed DAG:
  // for every internal fact pick the hyperedge whose deepest body fact is
  // shallowest. Ranks strictly decrease along its arcs (a fact of rank r
  // has an instance with max body rank r-1), so the choice is acyclic and
  // the seeded assignment is a model of phi. The first Solve then lands on
  // it almost decision-free, and phase saving keeps later solves nearby.
  if (encoding_.trivially_unsat) return;
  std::unordered_map<dl::FactId, std::size_t> greedy;
  for (dl::FactId fact : closure_.nodes()) {
    const std::vector<std::size_t>& edges = closure_.EdgesWithHead(fact);
    if (edges.empty()) continue;
    std::size_t best = edges[0];
    int best_rank = std::numeric_limits<int>::max();
    for (std::size_t e : edges) {
      int max_rank = 0;
      for (dl::FactId body : closure_.edges()[e].body) {
        max_rank = std::max(max_rank, model_.rank(body));
      }
      if (max_rank < best_rank) {
        best_rank = max_rank;
        best = e;
      }
    }
    greedy.emplace(fact, best);
  }
  // Facts reachable from the target under the greedy choices.
  std::vector<dl::FactId> stack{closure_.target()};
  std::unordered_set<dl::FactId> reachable{closure_.target()};
  while (!stack.empty()) {
    const dl::FactId fact = stack.back();
    stack.pop_back();
    auto it = greedy.find(fact);
    if (it == greedy.end()) continue;
    solver_->SetPolarity(encoding_.hyperedge_vars[it->second], true);
    for (dl::FactId body : closure_.edges()[it->second].body) {
      if (reachable.insert(body).second) stack.push_back(body);
    }
  }
  for (dl::FactId fact : reachable) {
    solver_->SetPolarity(encoding_.node_vars.at(fact), true);
  }
  for (const Encoding::EdgeVar& z : encoding_.edge_vars) {
    auto it = greedy.find(z.from);
    if (it == greedy.end() || !reachable.contains(z.from)) continue;
    const auto& body = closure_.edges()[it->second].body;
    if (std::find(body.begin(), body.end(), z.to) != body.end()) {
      solver_->SetPolarity(z.var, true);
    }
  }
  // Decide the structural variables (nodes, hyperedges, arcs) before the
  // acyclicity auxiliaries: the seeded phases then reproduce the greedy
  // model with next to no conflicts, and the auxiliaries just propagate.
  for (const auto& [fact, var] : encoding_.node_vars) {
    solver_->BumpActivityHint(var, 1.0);
  }
  for (sat::Var var : encoding_.hyperedge_vars) {
    solver_->BumpActivityHint(var, 1.0);
  }
  for (const Encoding::EdgeVar& z : encoding_.edge_vars) {
    solver_->BumpActivityHint(z.var, 1.0);
  }
}

std::optional<std::vector<dl::Fact>> WhyProvenanceEnumerator::Next() {
  if (exhausted_ || !solver_->ok()) {
    exhausted_ = true;
    return std::nullopt;
  }
  util::Timer timer;
  const sat::SolveResult result = solver_->Solve();
  if (result != sat::SolveResult::kSat) {
    exhausted_ = true;
    if (result == sat::SolveResult::kUnknown) incomplete_ = true;
    return std::nullopt;
  }

  // Record the witness: for each present internal fact, its selected
  // hyperedge (exactly one y_e is true for a present head).
  last_witness_choices_.clear();
  for (std::size_t e = 0; e < closure_.edges().size(); ++e) {
    if (solver_->ModelValue(encoding_.hyperedge_vars[e]) != sat::LBool::kTrue)
      continue;
    const dl::FactId head = closure_.edges()[e].head;
    const sat::Var head_var = encoding_.node_vars.at(head);
    if (solver_->ModelValue(head_var) == sat::LBool::kTrue) {
      last_witness_choices_.emplace(head, e);
    }
  }

  // db(tau): the database facts of the closure whose node variable is true.
  std::vector<dl::Fact> member;
  std::vector<sat::Lit> blocking;
  blocking.reserve(encoding_.database_leaves.size());
  for (dl::FactId fact : encoding_.database_leaves) {
    const sat::Var var = encoding_.node_vars.at(fact);
    const bool present = solver_->ModelValue(var) == sat::LBool::kTrue;
    if (present) member.push_back(model_.fact(fact));
    // Blocking clause over S: flip at least one database fact.
    blocking.push_back(sat::Lit::Make(var, present));
  }
  if (!solver_->AddClause(std::move(blocking))) exhausted_ = true;
  delays_ms_.push_back(timer.ElapsedMillis());
  std::sort(member.begin(), member.end());
  return member;
}

std::vector<std::vector<dl::Fact>> WhyProvenanceEnumerator::All(
    std::size_t max_members) {
  std::vector<std::vector<dl::Fact>> members;
  while (members.size() < max_members) {
    std::optional<std::vector<dl::Fact>> member = Next();
    if (!member.has_value()) break;
    members.push_back(std::move(*member));
  }
  return members;
}

}  // namespace whyprov::provenance
