#include "provenance/enumerator.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sat/solver.h"
#include "sat/solver_factory.h"
#include "util/timer.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

/// Resolves `options` into a solver instance, falling back to the default
/// CDCL backend when the named backend cannot be created. The fallback is
/// announced on stderr so a misconfigured backend cannot silently turn a
/// two-backend cross-check into CDCL-vs-CDCL.
std::unique_ptr<sat::SolverInterface> MakeSolver(
    const WhyProvenanceEnumerator::Options& options) {
  auto solver = sat::SolverFactory::Instance().Create(options.solver_backend,
                                                      options.solver_options);
  if (solver.ok()) return std::move(solver).value();
  std::fprintf(stderr,
               "whyprov: falling back to the cdcl backend: %s\n",
               solver.status().message().c_str());
  return std::make_unique<sat::Solver>(options.solver_options);
}

CnfEncoder::Options EncoderOptions(
    const WhyProvenanceEnumerator::Options& options) {
  CnfEncoder::Options encoder_options;
  encoder_options.acyclicity = options.acyclicity;
  return encoder_options;
}

}  // namespace

WhyProvenanceEnumerator::WhyProvenanceEnumerator(const dl::Program& program,
                                                 const dl::Model& model,
                                                 dl::FactId target,
                                                 const Options& options)
    : WhyProvenanceEnumerator(program, model, target, options,
                              MakeSolver(options)) {}

WhyProvenanceEnumerator::WhyProvenanceEnumerator(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    const Options& options, std::unique_ptr<sat::SolverInterface> solver)
    : WhyProvenanceEnumerator(
          model, QueryPlan::Build(program, model, target,
                                  EncoderOptions(options)),
          std::move(solver)) {}

WhyProvenanceEnumerator::WhyProvenanceEnumerator(
    const dl::Model& model, std::shared_ptr<const QueryPlan> plan,
    std::unique_ptr<sat::SolverInterface> solver)
    : model_(&model), plan_(std::move(plan)), solver_(std::move(solver)) {
  plan_->LoadInto(*solver_);
}

void WhyProvenanceEnumerator::SetCancellation(util::CancellationToken token) {
  cancel_ = std::move(token);
  if (cancel_.valid()) {
    // The solver re-polls the same token inside its search loop, so a
    // cancel/deadline fires mid-solve, not just between members.
    solver_->SetInterruptCheck(
        [token = cancel_] { return token.ShouldStop(); });
    // A deadline additionally becomes a budget hint, so a deadline-bound
    // backend can stop at a restart boundary (kUnknown, enumeration
    // incomplete) instead of being chopped mid-search by the poll. A
    // token without one clears any hint a previous token installed.
    if (const auto deadline = cancel_.deadline()) {
      solver_->SetDeadlineHint(*deadline);
    } else {
      solver_->ClearDeadlineHint();
    }
  } else {
    solver_->SetInterruptCheck(nullptr);
    solver_->ClearDeadlineHint();
  }
}

std::optional<std::vector<dl::Fact>> WhyProvenanceEnumerator::Next() {
  if (cancel_.ShouldStop()) {
    interrupted_ = true;
    return std::nullopt;
  }
  if (exhausted_ || !solver_->ok()) {
    exhausted_ = true;
    return std::nullopt;
  }
  util::Timer timer;
  const sat::SolveResult result = solver_->Solve();
  if (result != sat::SolveResult::kSat) {
    if (result == sat::SolveResult::kUnknown && cancel_.ShouldStop()) {
      // An interrupted search is not exhaustion: the family may have more
      // members, the request just stopped wanting them.
      interrupted_ = true;
      return std::nullopt;
    }
    exhausted_ = true;
    if (result == sat::SolveResult::kUnknown) incomplete_ = true;
    return std::nullopt;
  }

  const DownwardClosure& closure = plan_->closure();
  const Encoding& encoding = plan_->encoding();

  // The solver's model is over the execution formula; witness extraction
  // needs the original encoding variables, so translate (and, for a
  // simplified plan, replay the reconstruction stack for variables the
  // inprocessing pass removed).
  const std::vector<sat::LBool> model = plan_->ReconstructModel(*solver_);

  // Record the witness: for each present internal fact, its selected
  // hyperedge (exactly one y_e is true for a present head).
  last_witness_choices_.clear();
  for (std::size_t e = 0; e < closure.edges().size(); ++e) {
    const auto edge_var =
        static_cast<std::size_t>(encoding.hyperedge_vars[e]);
    if (model[edge_var] != sat::LBool::kTrue) continue;
    const dl::FactId head = closure.edges()[e].head;
    const auto head_var =
        static_cast<std::size_t>(encoding.node_vars.at(head));
    if (model[head_var] == sat::LBool::kTrue) {
      last_witness_choices_.emplace(head, e);
    }
  }

  // db(tau): the database facts of the closure whose node variable is true.
  // Fact selectors are frozen, so each one has a live solver literal to
  // block on.
  std::vector<dl::Fact> member;
  std::vector<sat::Lit> blocking;
  blocking.reserve(encoding.database_leaves.size());
  for (dl::FactId fact : encoding.database_leaves) {
    const sat::Var var = encoding.node_vars.at(fact);
    const bool present =
        model[static_cast<std::size_t>(var)] == sat::LBool::kTrue;
    if (present) member.push_back(model_->fact(fact));
    // Blocking clause over S: flip at least one database fact.
    const sat::Lit lit = plan_->SolverLitFor(var);
    blocking.push_back(present ? ~lit : lit);
  }
  if (!solver_->AddClause(std::move(blocking))) exhausted_ = true;
  delays_ms_.push_back(timer.ElapsedMillis());
  std::sort(member.begin(), member.end());
  return member;
}

std::vector<std::vector<dl::Fact>> WhyProvenanceEnumerator::All(
    std::size_t max_members) {
  std::vector<std::vector<dl::Fact>> members;
  while (members.size() < max_members) {
    std::optional<std::vector<dl::Fact>> member = Next();
    if (!member.has_value()) break;
    members.push_back(std::move(*member));
  }
  return members;
}

}  // namespace whyprov::provenance
