#ifndef WHYPROV_PROVENANCE_ENUMERATOR_H_
#define WHYPROV_PROVENANCE_ENUMERATOR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "sat/solver.h"
#include "util/stats.h"

namespace whyprov::provenance {

/// Incremental enumeration of whyUN(t, D, Q) via a SAT solver with
/// blocking clauses (Section 5.1/5.2 of the paper):
///
///   1. build the downward closure of the target fact,
///   2. encode phi(t, D, Q) into the CDCL solver,
///   3. repeatedly ask for a model, emit db(tau), and add the blocking
///      clause over the closure's database facts S until unsatisfiable.
///
/// The per-member wall-clock delays (the paper's Figures 2/4) are recorded
/// on the fly.
class WhyProvenanceEnumerator {
 public:
  struct Options {
    AcyclicityEncoding acyclicity = AcyclicityEncoding::kVertexElimination;
  };

  /// Phase timings, for the construction-time figures (Figures 1/3).
  struct Timings {
    double closure_seconds = 0;   ///< downward-closure construction
    double encode_seconds = 0;    ///< Boolean-formula construction
  };

  /// Builds the closure and the formula for `target` (a fact id of
  /// `model`, which must be the least model of (program, database)).
  /// `program` and `model` must outlive the enumerator.
  WhyProvenanceEnumerator(const datalog::Program& program,
                          const datalog::Model& model,
                          datalog::FactId target, const Options& options);
  WhyProvenanceEnumerator(const datalog::Program& program,
                          const datalog::Model& model, datalog::FactId target)
      : WhyProvenanceEnumerator(program, model, target, Options()) {}

  /// Returns the next member of whyUN(t, D, Q) as a sorted set of database
  /// facts, or nullopt when the enumeration is exhausted. Never repeats a
  /// member (blocking clauses).
  std::optional<std::vector<datalog::Fact>> Next();

  /// Drains the enumeration (up to `max_members`) and returns all members.
  std::vector<std::vector<datalog::Fact>> All(
      std::size_t max_members = static_cast<std::size_t>(-1));

  /// Per-member delays in milliseconds, one entry per emitted member.
  const std::vector<double>& delays_ms() const { return delays_ms_; }

  /// Phase timings of the constructor.
  const Timings& timings() const { return timings_; }

  /// The downward closure (e.g. for size reporting).
  const DownwardClosure& closure() const { return closure_; }

  /// The encoding layout (e.g. for variable/clause counts).
  const Encoding& encoding() const { return encoding_; }

  /// The underlying SAT solver (e.g. for statistics).
  const sat::Solver& solver() const { return *solver_; }

  /// The witness of the most recent member: for every internal fact of the
  /// compressed proof DAG, the index (into closure().edges()) of its chosen
  /// hyperedge. Feed into `CompressedDag` to reconstruct an unambiguous
  /// proof tree for the member. Empty before the first Next().
  const std::unordered_map<datalog::FactId, std::size_t>&
  last_witness_choices() const {
    return last_witness_choices_;
  }

 private:
  void SeedCanonicalWitness();

  const datalog::Model& model_;
  DownwardClosure closure_;
  std::unique_ptr<sat::Solver> solver_;
  Encoding encoding_;
  Timings timings_;
  std::vector<double> delays_ms_;
  std::unordered_map<datalog::FactId, std::size_t> last_witness_choices_;
  bool exhausted_ = false;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_ENUMERATOR_H_
