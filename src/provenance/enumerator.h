#ifndef WHYPROV_PROVENANCE_ENUMERATOR_H_
#define WHYPROV_PROVENANCE_ENUMERATOR_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "provenance/query_plan.h"
#include "sat/solver_interface.h"
#include "util/cancellation.h"
#include "util/stats.h"

namespace whyprov::provenance {

/// "No cap" sentinel for member-count limits, shared by
/// `WhyProvenanceEnumerator::All` and the engine's `EnumerateRequest`.
inline constexpr std::size_t kNoLimit =
    std::numeric_limits<std::size_t>::max();

/// Incremental enumeration of whyUN(t, D, Q) via a SAT solver with
/// blocking clauses (Section 5.1/5.2 of the paper):
///
///   1. build (or reuse) a `QueryPlan`: the downward closure of the target
///      fact plus the CNF encoding of phi(t, D, Q),
///   2. replay the plan's formula into a fresh solver backend,
///   3. repeatedly ask for a model, emit db(tau), and add the blocking
///      clause over the closure's database facts S until unsatisfiable.
///
/// The plan is immutable and shared; only the solver and the emission
/// state are per-enumerator, so any number of enumerators can execute the
/// same plan concurrently. The per-member wall-clock delays (the paper's
/// Figures 2/4) are recorded on the fly.
class WhyProvenanceEnumerator {
 public:
  struct Options {
    AcyclicityEncoding acyclicity = AcyclicityEncoding::kVertexElimination;
    /// SolverFactory backend used when no solver is injected. An unknown
    /// name silently falls back to the CDCL solver; callers that want a
    /// diagnosable error should resolve the backend via `SolverFactory`
    /// (as `whyprov::Engine` does) and inject the instance.
    std::string solver_backend = "cdcl";
    sat::SolverOptions solver_options;
  };

  /// Phase timings, for the construction-time figures (Figures 1/3).
  /// Now owned by the plan; the alias keeps older callers compiling.
  using Timings = PlanTimings;

  /// Builds a plan for `target` (a fact id of `model`, which must be the
  /// least model of (program, database)) and executes it. `model` must
  /// outlive the enumerator. The solver is created via `SolverFactory`
  /// from `options.solver_backend`.
  WhyProvenanceEnumerator(const datalog::Program& program,
                          const datalog::Model& model,
                          datalog::FactId target, const Options& options);
  WhyProvenanceEnumerator(const datalog::Program& program,
                          const datalog::Model& model, datalog::FactId target)
      : WhyProvenanceEnumerator(program, model, target, Options()) {}

  /// Same, but executes with the injected solver backend (must be fresh).
  WhyProvenanceEnumerator(const datalog::Program& program,
                          const datalog::Model& model, datalog::FactId target,
                          const Options& options,
                          std::unique_ptr<sat::SolverInterface> solver);

  /// Executes a prebuilt shared plan: replays the plan's formula into the
  /// fresh `solver` and enumerates. `model` must be the model the plan was
  /// built from and must outlive the enumerator.
  WhyProvenanceEnumerator(const datalog::Model& model,
                          std::shared_ptr<const QueryPlan> plan,
                          std::unique_ptr<sat::SolverInterface> solver);

  /// Returns the next member of whyUN(t, D, Q) as a sorted set of database
  /// facts, or nullopt when the enumeration is exhausted. Never repeats a
  /// member (blocking clauses).
  std::optional<std::vector<datalog::Fact>> Next();

  /// Drains the enumeration (up to `max_members`) and returns all members.
  std::vector<std::vector<datalog::Fact>> All(
      std::size_t max_members = kNoLimit);

  /// Installs a cancellation/deadline token: Next() checks it between
  /// solver calls and the solver polls it *during* a solve, so a cancelled
  /// or expired request stops promptly even mid-search. An interrupted
  /// Next() returns nullopt without marking the enumeration exhausted —
  /// see interrupted() — and the caller classifies the reason via the
  /// token it holds.
  void SetCancellation(util::CancellationToken token);

  /// True if a cancellation and/or deadline interrupt (not exhaustion and
  /// not a backend give-up) stopped the most recent Next().
  bool interrupted() const { return interrupted_; }

  /// True if a Solve() answered kUnknown (backend failure or budget
  /// exhaustion): the enumeration stopped, but the emitted members may
  /// not be the whole family. Distinguishes "no more members" from
  /// "the solver gave up".
  bool incomplete() const { return incomplete_; }

  /// Per-member delays in milliseconds, one entry per emitted member.
  const std::vector<double>& delays_ms() const { return delays_ms_; }

  /// Phase timings of the plan (zero-cost when the plan was reused).
  const Timings& timings() const { return plan_->timings(); }

  /// The shared plan this enumerator executes.
  const std::shared_ptr<const QueryPlan>& plan() const { return plan_; }

  /// The downward closure (e.g. for size reporting).
  const DownwardClosure& closure() const { return plan_->closure(); }

  /// The encoding layout (e.g. for variable/clause counts).
  const Encoding& encoding() const { return plan_->encoding(); }

  /// The underlying SAT solver (e.g. for statistics).
  const sat::SolverInterface& solver() const { return *solver_; }

  /// The witness of the most recent member: for every internal fact of the
  /// compressed proof DAG, the index (into closure().edges()) of its chosen
  /// hyperedge. Feed into `CompressedDag` to reconstruct an unambiguous
  /// proof tree for the member. Empty before the first Next().
  const std::unordered_map<datalog::FactId, std::size_t>&
  last_witness_choices() const {
    return last_witness_choices_;
  }

 private:
  const datalog::Model* model_;
  std::shared_ptr<const QueryPlan> plan_;
  std::unique_ptr<sat::SolverInterface> solver_;
  util::CancellationToken cancel_;
  std::vector<double> delays_ms_;
  std::unordered_map<datalog::FactId, std::size_t> last_witness_choices_;
  bool exhausted_ = false;
  bool incomplete_ = false;
  bool interrupted_ = false;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_ENUMERATOR_H_
