#include "provenance/fo_rewriting.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "datalog/evaluator.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

/// A partial unfolding: a goal list of atoms (mixed extensional and
/// intensional) plus the head terms, over a private variable space.
struct State {
  std::vector<dl::Term> head_terms;
  std::vector<dl::Atom> atoms;
  std::uint32_t num_variables = 0;
};

/// Applies `subst` (variable -> term) to a term.
dl::Term Apply(const std::map<std::uint32_t, dl::Term>& subst, dl::Term t) {
  while (t.is_variable()) {
    auto it = subst.find(t.variable());
    if (it == subst.end()) return t;
    t = it->second;
  }
  return t;
}

/// Unifies two terms under `subst`; binds variables as needed. Returns
/// false on a constant clash.
bool Unify(std::map<std::uint32_t, dl::Term>& subst, dl::Term a, dl::Term b) {
  a = Apply(subst, a);
  b = Apply(subst, b);
  if (a == b) return true;
  if (a.is_variable()) {
    subst.emplace(a.variable(), b);
    return true;
  }
  if (b.is_variable()) {
    subst.emplace(b.variable(), a);
    return true;
  }
  return false;  // distinct constants
}

/// Cheap canonical form for deduplication: atoms sorted, variables
/// renumbered by first occurrence, iterated once. (Imperfect — CQ
/// isomorphism is graph-isomorphism-hard — but missing a duplicate only
/// costs time in Decide, never correctness.)
std::string CanonicalKey(const State& state) {
  // First pass: stable pattern sort of atoms ignoring variable names.
  std::vector<std::string> patterns;
  std::vector<std::size_t> order(state.atoms.size());
  for (std::size_t i = 0; i < state.atoms.size(); ++i) {
    std::string p = std::to_string(state.atoms[i].predicate);
    for (dl::Term t : state.atoms[i].terms) {
      p += t.is_constant() ? "c" + std::to_string(t.constant()) : "v";
    }
    patterns.push_back(std::move(p));
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return patterns[a] < patterns[b];
  });
  // Second pass: renumber variables in traversal order.
  std::map<std::uint32_t, int> renumber;
  auto term_key = [&](dl::Term t) {
    if (t.is_constant()) return "c" + std::to_string(t.constant());
    auto [it, inserted] =
        renumber.emplace(t.variable(), static_cast<int>(renumber.size()));
    return "v" + std::to_string(it->second);
  };
  std::string key;
  for (dl::Term t : state.head_terms) key += term_key(t) + ",";
  key += "|";
  for (std::size_t i : order) {
    key += std::to_string(state.atoms[i].predicate) + "(";
    for (dl::Term t : state.atoms[i].terms) key += term_key(t) + ",";
    key += ")";
  }
  return key;
}

/// Rewrites a state's terms through a substitution and renumbers the
/// variables densely.
State Normalize(const State& state,
                const std::map<std::uint32_t, dl::Term>& subst) {
  State out;
  std::map<std::uint32_t, std::uint32_t> dense;
  auto map_term = [&](dl::Term t) {
    t = Apply(subst, t);
    if (t.is_constant()) return t;
    auto [it, inserted] = dense.emplace(
        t.variable(), static_cast<std::uint32_t>(dense.size()));
    return dl::Term::Variable(it->second);
  };
  out.head_terms.reserve(state.head_terms.size());
  for (dl::Term t : state.head_terms) out.head_terms.push_back(map_term(t));
  out.atoms.reserve(state.atoms.size());
  for (const dl::Atom& atom : state.atoms) {
    dl::Atom mapped;
    mapped.predicate = atom.predicate;
    mapped.terms.reserve(atom.terms.size());
    for (dl::Term t : atom.terms) mapped.terms.push_back(map_term(t));
    out.atoms.push_back(std::move(mapped));
  }
  out.num_variables = static_cast<std::uint32_t>(dense.size());
  return out;
}

}  // namespace

util::Result<FoRewriting> FoRewriting::Build(
    const dl::Program& program, dl::PredicateId answer_predicate,
    const Options& options) {
  if (program.IsRecursive()) {
    return util::Status::Error(
        "first-order rewriting requires a non-recursive program");
  }
  if (!program.IsIntensional(answer_predicate)) {
    return util::Status::Error("the answer predicate is not intensional");
  }

  FoRewriting rewriting;
  const int arity = program.symbols().Predicate(answer_predicate).arity;

  State initial;
  initial.num_variables = static_cast<std::uint32_t>(arity);
  dl::Atom goal;
  goal.predicate = answer_predicate;
  for (int i = 0; i < arity; ++i) {
    goal.terms.push_back(dl::Term::Variable(static_cast<std::uint32_t>(i)));
    initial.head_terms.push_back(
        dl::Term::Variable(static_cast<std::uint32_t>(i)));
  }
  initial.atoms.push_back(std::move(goal));

  std::deque<State> worklist;
  worklist.push_back(std::move(initial));
  std::unordered_set<std::string> seen_complete;
  std::size_t states_explored = 0;

  while (!worklist.empty()) {
    if (++states_explored > options.max_states) {
      return util::Status::Error("unfolding exceeded the state budget");
    }
    State state = std::move(worklist.front());
    worklist.pop_front();

    // Find the first intensional atom.
    std::size_t pick = state.atoms.size();
    for (std::size_t i = 0; i < state.atoms.size(); ++i) {
      if (program.IsIntensional(state.atoms[i].predicate)) {
        pick = i;
        break;
      }
    }
    if (pick == state.atoms.size()) {
      // Complete unfolding: all atoms extensional.
      if (seen_complete.insert(CanonicalKey(state)).second) {
        ConjunctiveQuery cq;
        cq.head_terms = state.head_terms;
        cq.atoms = state.atoms;
        cq.num_variables = state.num_variables;
        rewriting.unfoldings_.push_back(std::move(cq));
      }
      continue;
    }

    const dl::Atom picked = state.atoms[pick];
    for (std::size_t rule_index :
         program.RulesForHead(picked.predicate)) {
      const dl::Rule& rule = program.rules()[rule_index];
      // Rename rule variables into the state's space (offset).
      const std::uint32_t offset = state.num_variables;
      auto rename = [&](dl::Term t) {
        return t.is_constant() ? t
                               : dl::Term::Variable(t.variable() + offset);
      };
      // Unify the renamed rule head with the picked atom.
      std::map<std::uint32_t, dl::Term> subst;
      bool ok = true;
      for (std::size_t i = 0; i < picked.terms.size(); ++i) {
        if (!Unify(subst, rename(rule.head.terms[i]), picked.terms[i])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // Build the successor: goal atoms with `picked` replaced by the
      // renamed rule body, all under the substitution.
      State next;
      next.head_terms = state.head_terms;
      next.num_variables = state.num_variables + rule.num_variables;
      for (std::size_t i = 0; i < state.atoms.size(); ++i) {
        if (i == pick) {
          for (const dl::Atom& body_atom : rule.body) {
            dl::Atom renamed;
            renamed.predicate = body_atom.predicate;
            renamed.terms.reserve(body_atom.terms.size());
            for (dl::Term t : body_atom.terms) {
              renamed.terms.push_back(rename(t));
            }
            next.atoms.push_back(std::move(renamed));
          }
        } else {
          next.atoms.push_back(state.atoms[i]);
        }
      }
      worklist.push_back(Normalize(next, subst));
    }
  }
  return rewriting;
}

bool FoRewriting::Decide(const dl::Database& dprime,
                         const std::vector<dl::SymbolId>& tuple) const {
  // A model over just D' gives us the join machinery.
  dl::Model model(dprime.symbols_ptr());
  for (const dl::Fact& fact : dprime.facts()) model.Add(fact, 0);

  for (const ConjunctiveQuery& cq : unfoldings_) {
    if (cq.head_terms.size() != tuple.size()) continue;
    // Bind head terms to the tuple.
    std::vector<dl::SymbolId> binding(cq.num_variables, dl::kUnboundSymbol);
    bool ok = true;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      const dl::Term t = cq.head_terms[i];
      if (t.is_constant()) {
        if (t.constant() != tuple[i]) {
          ok = false;
          break;
        }
      } else {
        dl::SymbolId& slot = binding[t.variable()];
        if (slot == dl::kUnboundSymbol) {
          slot = tuple[i];
        } else if (slot != tuple[i]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;

    // Look for a homomorphism whose image covers D' exactly.
    bool found = false;
    dl::MatchBody(model, cq.atoms, std::nullopt, nullptr, binding,
                  [&](const std::vector<dl::FactId>& matched) {
                    if (found) return;
                    std::set<dl::FactId> used(matched.begin(), matched.end());
                    if (used.size() == dprime.size()) found = true;
                  });
    if (found) return true;
  }
  return false;
}

std::string FoRewriting::ToString(const dl::SymbolTable& symbols) const {
  std::string out;
  for (const ConjunctiveQuery& cq : unfoldings_) {
    out += "ans(";
    std::vector<std::string> names;
    for (std::uint32_t v = 0; v < cq.num_variables; ++v) {
      names.push_back("X" + std::to_string(v));
    }
    for (std::size_t i = 0; i < cq.head_terms.size(); ++i) {
      if (i > 0) out += ", ";
      out += dl::TermToString(cq.head_terms[i], symbols, names);
    }
    out += ") <- ";
    for (std::size_t i = 0; i < cq.atoms.size(); ++i) {
      if (i > 0) out += ", ";
      out += dl::AtomToString(cq.atoms[i], symbols, names);
    }
    out += "\n";
  }
  return out;
}

}  // namespace whyprov::provenance
