#ifndef WHYPROV_PROVENANCE_FO_REWRITING_H_
#define WHYPROV_PROVENANCE_FO_REWRITING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "util/status.h"

namespace whyprov::provenance {

/// The executable counterpart of the paper's AC0 upper bound for
/// non-recursive queries (Theorem 9 / Lemma 12). A non-recursive Datalog
/// query (Sigma, R) is unfolded into a finite union of conjunctive queries
/// over edb(Sigma) — the CQs induced by Q-trees (Definition 10, modulo
/// variable identification, which the membership check absorbs by allowing
/// non-injective homomorphisms). Membership of D' in why(t, D, Q) is then
/// decided per Lemma 12: some unfolding phi admits a homomorphism h into
/// D' with h(head) = t whose image *covers D' exactly* (the phi_1..phi_3
/// exact-match semantics).
class FoRewriting {
 public:
  /// One unfolding: a CQ over extensional predicates. Variables are
  /// numbered densely; `head_terms` are the answer terms.
  struct ConjunctiveQuery {
    std::vector<datalog::Term> head_terms;
    std::vector<datalog::Atom> atoms;
    std::uint32_t num_variables = 0;
  };

  struct Options {
    /// Cap on the number of unfolding states explored (the UCQ can be
    /// exponential in the program size — program size is fixed in data
    /// complexity, but guard anyway).
    std::size_t max_states = 1u << 20;
  };

  /// Unfolds the non-recursive query (program, answer_predicate). Fails on
  /// recursive programs or when the cap is exceeded.
  static util::Result<FoRewriting> Build(const datalog::Program& program,
                                         datalog::PredicateId answer_predicate,
                                         const Options& options);
  static util::Result<FoRewriting> Build(
      const datalog::Program& program,
      datalog::PredicateId answer_predicate) {
    return Build(program, answer_predicate, Options());
  }

  /// The deduplicated unfoldings.
  const std::vector<ConjunctiveQuery>& unfoldings() const {
    return unfoldings_;
  }

  /// Decides D' in why(t, D, Q): true iff some unfolding maps onto D'
  /// exactly with the head bound to `tuple`. Runs entirely over D'
  /// (the defining property of the first-order rewriting).
  bool Decide(const datalog::Database& dprime,
              const std::vector<datalog::SymbolId>& tuple) const;

  /// Renders the UCQ, one CQ per line.
  std::string ToString(const datalog::SymbolTable& symbols) const;

 private:
  std::vector<ConjunctiveQuery> unfoldings_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_FO_REWRITING_H_
