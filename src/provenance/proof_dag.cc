#include "provenance/proof_dag.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

ProofDag::ProofDag(dl::Fact root_fact) {
  nodes_.push_back(Node{std::move(root_fact), {}});
}

std::size_t ProofDag::AddNode(dl::Fact fact) {
  nodes_.push_back(Node{std::move(fact), {}});
  return nodes_.size() - 1;
}

void ProofDag::AddEdge(std::size_t parent, std::size_t child) {
  nodes_[parent].children.push_back(child);
}

std::set<dl::Fact> ProofDag::Support() const {
  std::set<dl::Fact> support;
  for (const Node& node : nodes_) {
    if (node.children.empty()) support.insert(node.fact);
  }
  return support;
}

namespace {

/// Topological order of a DAG given as children lists; empty when cyclic.
std::vector<std::size_t> TopologicalOrder(
    const std::vector<ProofDag::Node>& nodes) {
  std::vector<std::size_t> in_degree(nodes.size(), 0);
  for (const auto& node : nodes) {
    for (std::size_t child : node.children) ++in_degree[child];
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    const std::size_t n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (std::size_t child : nodes[n].children) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  if (order.size() != nodes.size()) order.clear();  // cycle
  return order;
}

}  // namespace

std::size_t ProofDag::Depth() const {
  const std::vector<std::size_t> order = TopologicalOrder(nodes_);
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t result = 0;
  for (std::size_t i = order.size(); i-- > 0;) {
    const std::size_t n = order[i];
    for (std::size_t child : nodes_[n].children) {
      depth[n] = std::max(depth[n], depth[child] + 1);
    }
    result = std::max(result, depth[n]);
  }
  return result;
}

util::Status ProofDag::Validate(const dl::Program& program,
                                const dl::Database& database,
                                const dl::Fact& expected_root) const {
  if (!(nodes_[0].fact == expected_root)) {
    return util::Status::Error("root label mismatch");
  }
  // Node 0 must be the unique source.
  std::vector<bool> has_incoming(nodes_.size(), false);
  for (const Node& node : nodes_) {
    for (std::size_t child : node.children) has_incoming[child] = true;
  }
  if (has_incoming[0]) {
    return util::Status::Error("the root has an incoming edge");
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (!has_incoming[i]) {
      return util::Status::Error(
          "node " + dl::FactToString(nodes_[i].fact, program.symbols()) +
          " is a second source");
    }
  }
  if (TopologicalOrder(nodes_).empty() && !nodes_.empty()) {
    return util::Status::Error("the graph has a cycle");
  }
  for (const Node& node : nodes_) {
    if (node.children.empty()) {
      if (!database.Contains(node.fact)) {
        return util::Status::Error(
            "leaf " + dl::FactToString(node.fact, program.symbols()) +
            " is not a database fact");
      }
      continue;
    }
    std::vector<const dl::Fact*> child_facts;
    child_facts.reserve(node.children.size());
    for (std::size_t child : node.children) {
      child_facts.push_back(&nodes_[child].fact);
    }
    if (!IsRuleInstance(program, node.fact, child_facts)) {
      return util::Status::Error(
          "node " + dl::FactToString(node.fact, program.symbols()) +
          " is not a rule instance");
    }
  }
  return util::Status::Ok();
}

bool ProofDag::IsNonRecursive() const {
  // DFS over the DAG keeping the label multiset of the current path.
  // Each node may be visited several times (once per path), so this is
  // worst-case exponential; fine for the test-sized DAGs it serves.
  std::map<dl::Fact, int> on_path;
  bool ok = true;
  auto dfs = [&](auto&& self, std::size_t node) -> void {
    if (!ok) return;
    if (++on_path[nodes_[node].fact] > 1) {
      ok = false;
      return;
    }
    for (std::size_t child : nodes_[node].children) self(self, child);
    if (--on_path[nodes_[node].fact] == 0) on_path.erase(nodes_[node].fact);
  };
  dfs(dfs, 0);
  return ok;
}

std::optional<ProofTree> ProofDag::Unravel(std::size_t max_nodes) const {
  ProofTree tree(nodes_[0].fact);
  bool overflow = false;
  auto clone = [&](auto&& self, std::size_t dag_node,
                   std::size_t tree_node) -> void {
    if (overflow) return;
    for (std::size_t child : nodes_[dag_node].children) {
      if (tree.size() >= max_nodes) {
        overflow = true;
        return;
      }
      const std::size_t t = tree.AddChild(tree_node, nodes_[child].fact);
      self(self, child, t);
    }
  };
  clone(clone, 0, 0);
  if (overflow) return std::nullopt;
  return tree;
}

util::Result<std::vector<dl::FactId>> CompressedDag::ReachableFacts() const {
  std::vector<dl::FactId> reachable;
  std::deque<dl::FactId> queue;
  std::unordered_map<dl::FactId, bool> visited;
  queue.push_back(closure_->target());
  visited[closure_->target()] = true;
  while (!queue.empty()) {
    const dl::FactId fact = queue.front();
    queue.pop_front();
    reachable.push_back(fact);
    if (closure_->EdgesWithHead(fact).empty()) continue;  // leaf
    auto it = choice_.find(fact);
    if (it == choice_.end()) {
      return util::Status::Error("reachable internal fact has no choice");
    }
    const DownwardClosure::Hyperedge& edge = closure_->edges()[it->second];
    if (edge.head != fact) {
      return util::Status::Error("choice maps a fact to a foreign edge");
    }
    for (dl::FactId body_fact : edge.body) {
      if (!visited[body_fact]) {
        visited[body_fact] = true;
        queue.push_back(body_fact);
      }
    }
  }
  return reachable;
}

util::Status CompressedDag::Validate() const {
  util::Result<std::vector<dl::FactId>> reachable = ReachableFacts();
  if (!reachable.ok()) return reachable.status();
  // Acyclicity of the reachable chosen subgraph via three-colour DFS.
  enum : char { kWhite, kGrey, kBlack };
  std::unordered_map<dl::FactId, char> colour;
  auto dfs = [&](auto&& self, dl::FactId fact) -> bool {
    colour[fact] = kGrey;
    if (!closure_->EdgesWithHead(fact).empty()) {
      const DownwardClosure::Hyperedge& edge =
          closure_->edges()[choice_.at(fact)];
      for (dl::FactId body_fact : edge.body) {
        const char c = colour.contains(body_fact) ? colour[body_fact]
                                                  : static_cast<char>(kWhite);
        if (c == kGrey) return false;
        if (c == kWhite && !self(self, body_fact)) return false;
      }
    }
    colour[fact] = kBlack;
    return true;
  };
  if (!dfs(dfs, closure_->target())) {
    return util::Status::Error("the chosen subgraph has a cycle");
  }
  return util::Status::Ok();
}

util::Result<std::vector<dl::FactId>> CompressedDag::Support(
    const dl::Model& model) const {
  util::Result<std::vector<dl::FactId>> reachable = ReachableFacts();
  if (!reachable.ok()) return reachable.status();
  std::vector<dl::FactId> support;
  for (dl::FactId fact : reachable.value()) {
    if (model.rank(fact) == 0) support.push_back(fact);
  }
  std::sort(support.begin(), support.end());
  return support;
}

util::Result<ProofTree> CompressedDag::UnravelToProofTree(
    const dl::Program& program, const dl::Model& model,
    std::size_t max_nodes) const {
  util::Status valid = Validate();
  if (!valid.ok()) return valid;

  // Precompute, per reachable internal fact, a fixed ground body in
  // rule-body order (re-expanding facts a rule instance uses twice).
  util::Result<std::vector<dl::FactId>> reachable = ReachableFacts();
  if (!reachable.ok()) return reachable.status();
  std::unordered_map<dl::FactId, std::vector<dl::Fact>> expansion;
  for (dl::FactId fact : reachable.value()) {
    if (closure_->EdgesWithHead(fact).empty()) continue;
    const DownwardClosure::Hyperedge& edge =
        closure_->edges()[choice_.at(fact)];
    std::vector<dl::Fact> children_set;
    children_set.reserve(edge.body.size());
    for (dl::FactId body_fact : edge.body) {
      children_set.push_back(model.fact(body_fact));
    }
    auto witness =
        FindRuleWitnessForSet(program, model.fact(fact), children_set);
    if (!witness.has_value()) {
      return util::Status::Error(
          "hyperedge is not witnessed by any rule (corrupt closure)");
    }
    expansion.emplace(fact, std::move(witness->second));
  }

  ProofTree tree(model.fact(closure_->target()));
  bool overflow = false;
  auto expand = [&](auto&& self, dl::FactId fact,
                    std::size_t tree_node) -> void {
    if (overflow) return;
    auto it = expansion.find(fact);
    if (it == expansion.end()) return;  // leaf
    for (const dl::Fact& child_fact : it->second) {
      if (tree.size() >= max_nodes) {
        overflow = true;
        return;
      }
      const std::size_t t = tree.AddChild(tree_node, child_fact);
      // Children facts are closure nodes; look up their ids for recursion.
      self(self, *model.Find(child_fact), t);
    }
  };
  expand(expand, closure_->target(), 0);
  if (overflow) {
    return util::Status::Error("unravelled tree exceeds the node budget");
  }
  return tree;
}

}  // namespace whyprov::provenance
