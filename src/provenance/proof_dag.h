#ifndef WHYPROV_PROVENANCE_PROOF_DAG_H_
#define WHYPROV_PROVENANCE_PROOF_DAG_H_

#include <cstddef>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "provenance/downward_closure.h"
#include "provenance/proof_tree.h"
#include "util/status.h"

namespace whyprov::provenance {

/// A proof DAG (Definition 4): like a proof tree, but nodes may be shared.
/// Node 0 is the root. Children are ordered (they correspond positionally
/// to the body atoms of a witnessing rule).
class ProofDag {
 public:
  struct Node {
    datalog::Fact fact;
    std::vector<std::size_t> children;
  };

  /// Creates a DAG with just a root labelled `root_fact`.
  explicit ProofDag(datalog::Fact root_fact);

  /// Appends a detached node labelled `fact`; returns its index.
  std::size_t AddNode(datalog::Fact fact);

  /// Adds an edge parent -> child (indices from AddNode / 0 for the root).
  void AddEdge(std::size_t parent, std::size_t child);

  /// All nodes; index 0 is the root.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// The support: facts labelling the sink (child-less) nodes.
  std::set<datalog::Fact> Support() const;

  /// Length of the longest root-to-leaf path.
  std::size_t Depth() const;

  /// Checks Definition 4: node 0 is the unique source and is labelled
  /// `expected_root`, the graph is acyclic, leaves are database facts, and
  /// each internal node's ordered children form a rule instance.
  util::Status Validate(const datalog::Program& program,
                        const datalog::Database& database,
                        const datalog::Fact& expected_root) const;

  /// True iff no two nodes on a directed path share a label (Def. 20).
  bool IsNonRecursive() const;

  /// Unravels the DAG into a proof tree with the same root, the same
  /// support, and the same depth (the (2) => (1) direction of
  /// Propositions 5, 21, 31, and 39). Exponential in the worst case;
  /// `max_nodes` guards against blow-up (returns nullopt when exceeded).
  std::optional<ProofTree> Unravel(std::size_t max_nodes = 1u << 20) const;

 private:
  std::vector<Node> nodes_;
};

/// A compressed DAG (Definition 40): at most one node per fact, each
/// internal fact derived by exactly one hyperedge of a downward closure.
/// This is the object the SAT encoding searches for; by Proposition 41 its
/// existence with support D' is equivalent to the existence of an
/// unambiguous proof tree with support D'.
class CompressedDag {
 public:
  /// `choice` maps each internal (intensional) fact to the index of its
  /// hyperedge in `closure.edges()`. Facts not reachable from the target
  /// under the choices are ignored.
  CompressedDag(const DownwardClosure* closure,
                std::unordered_map<datalog::FactId, std::size_t> choice)
      : closure_(closure), choice_(std::move(choice)) {}

  /// The facts reachable from the target under the choices, or an error if
  /// a reachable internal fact has no choice.
  util::Result<std::vector<datalog::FactId>> ReachableFacts() const;

  /// Checks Definition 40 on the reachable part: every reachable internal
  /// fact has a chosen hyperedge and the reachable subgraph is acyclic.
  util::Status Validate() const;

  /// The support: reachable database facts (model rank 0), sorted.
  util::Result<std::vector<datalog::FactId>> Support(
      const datalog::Model& model) const;

  /// Unravels the compressed DAG into an unambiguous proof tree with the
  /// same root and support (the (2) => (1) direction of Proposition 41):
  /// per reachable fact, one fixed (rule, substitution) witness of the
  /// chosen hyperedge is re-expanded everywhere the fact occurs. The tree
  /// can be exponentially larger than the DAG; `max_nodes` bounds it.
  util::Result<ProofTree> UnravelToProofTree(
      const datalog::Program& program, const datalog::Model& model,
      std::size_t max_nodes = 1u << 20) const;

 private:
  const DownwardClosure* closure_;
  std::unordered_map<datalog::FactId, std::size_t> choice_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_PROOF_DAG_H_
