#include "provenance/proof_tree.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

std::string TreeClassName(TreeClass c) {
  switch (c) {
    case TreeClass::kAny:
      return "arbitrary";
    case TreeClass::kNonRecursive:
      return "non-recursive";
    case TreeClass::kMinimalDepth:
      return "minimal-depth";
    case TreeClass::kUnambiguous:
      return "unambiguous";
  }
  return "unknown";
}

ProofTree::ProofTree(dl::Fact root_fact) {
  nodes_.push_back(Node{std::move(root_fact), {}});
}

std::size_t ProofTree::AddChild(std::size_t parent, dl::Fact fact) {
  const std::size_t index = nodes_.size();
  nodes_.push_back(Node{std::move(fact), {}});
  nodes_[parent].children.push_back(index);
  return index;
}

std::set<dl::Fact> ProofTree::Support() const {
  std::set<dl::Fact> support;
  for (const Node& node : nodes_) {
    if (node.children.empty()) support.insert(node.fact);
  }
  return support;
}

std::size_t ProofTree::Depth() const {
  // Nodes are appended after their parents, so a reverse sweep sees all
  // children before the parent.
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t result = 0;
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    for (std::size_t child : nodes_[i].children) {
      depth[i] = std::max(depth[i], depth[child] + 1);
    }
    if (i == 0) result = depth[0];
  }
  return result;
}

namespace {

/// Unifies `atom` with ground `fact` under (and extending) `binding`,
/// recording newly bound variables on `trail` for undo.
bool UnifyAtom(const dl::Atom& atom, const dl::Fact& fact,
               std::vector<dl::SymbolId>& binding,
               std::vector<std::uint32_t>* trail) {
  if (atom.predicate != fact.predicate) return false;
  const std::size_t start = trail != nullptr ? trail->size() : 0;
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const dl::Term t = atom.terms[i];
    bool ok = true;
    if (t.is_constant()) {
      ok = t.constant() == fact.args[i];
    } else {
      dl::SymbolId& slot = binding[t.variable()];
      if (slot == dl::kUnboundSymbol) {
        slot = fact.args[i];
        if (trail != nullptr) trail->push_back(t.variable());
      } else {
        ok = slot == fact.args[i];
      }
    }
    if (!ok) {
      if (trail != nullptr) {
        while (trail->size() > start) {
          binding[trail->back()] = dl::kUnboundSymbol;
          trail->pop_back();
        }
      }
      return false;
    }
  }
  return true;
}

/// Backtracking search assigning each body atom (from `index` on) to one
/// fact of `children_set`, consistent with `binding`. `used` counts how
/// many atoms chose each child; on full assignment every child must be
/// used at least once.
bool AssignBodyAtoms(const dl::Rule& rule, std::size_t index,
                     const std::vector<dl::Fact>& children_set,
                     std::vector<dl::SymbolId>& binding,
                     std::vector<int>& used,
                     std::vector<std::size_t>& assignment) {
  if (index == rule.body.size()) {
    for (int count : used) {
      if (count == 0) return false;
    }
    return true;
  }
  std::vector<std::uint32_t> trail;
  for (std::size_t c = 0; c < children_set.size(); ++c) {
    if (!UnifyAtom(rule.body[index], children_set[c], binding, &trail)) {
      continue;
    }
    ++used[c];
    assignment[index] = c;
    if (AssignBodyAtoms(rule, index + 1, children_set, binding, used,
                        assignment)) {
      return true;
    }
    --used[c];
    while (!trail.empty()) {
      binding[trail.back()] = dl::kUnboundSymbol;
      trail.pop_back();
    }
  }
  return false;
}

}  // namespace

bool IsRuleInstance(const dl::Program& program, const dl::Fact& head,
                    const std::vector<const dl::Fact*>& children) {
  for (const dl::Rule& rule : program.rules()) {
    if (rule.body.size() != children.size()) continue;
    std::vector<dl::SymbolId> binding(rule.num_variables, dl::kUnboundSymbol);
    if (!UnifyAtom(rule.head, head, binding, nullptr)) continue;
    bool all = true;
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (!UnifyAtom(rule.body[i], *children[i], binding, nullptr)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::optional<std::pair<std::size_t, std::vector<dl::Fact>>>
FindRuleWitnessForSet(const dl::Program& program, const dl::Fact& head,
                      const std::vector<dl::Fact>& children_set) {
  for (std::size_t rule_index :
       program.RulesForHead(head.predicate)) {
    const dl::Rule& rule = program.rules()[rule_index];
    if (rule.body.size() < children_set.size()) continue;
    std::vector<dl::SymbolId> binding(rule.num_variables, dl::kUnboundSymbol);
    if (!UnifyAtom(rule.head, head, binding, nullptr)) continue;
    std::vector<int> used(children_set.size(), 0);
    std::vector<std::size_t> assignment(rule.body.size(), 0);
    if (AssignBodyAtoms(rule, 0, children_set, binding, used, assignment)) {
      std::vector<dl::Fact> ground_body;
      ground_body.reserve(rule.body.size());
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        ground_body.push_back(children_set[assignment[i]]);
      }
      return std::make_pair(rule_index, std::move(ground_body));
    }
  }
  return std::nullopt;
}

util::Status ProofTree::Validate(const dl::Program& program,
                                 const dl::Database& database,
                                 const dl::Fact& expected_root) const {
  if (!(nodes_[0].fact == expected_root)) {
    return util::Status::Error(
        "root label is " +
        dl::FactToString(nodes_[0].fact, program.symbols()) +
        " but expected " +
        dl::FactToString(expected_root, program.symbols()));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.children.empty()) {
      if (!database.Contains(node.fact)) {
        return util::Status::Error(
            "leaf " + dl::FactToString(node.fact, program.symbols()) +
            " is not a database fact");
      }
      continue;
    }
    std::vector<const dl::Fact*> child_facts;
    child_facts.reserve(node.children.size());
    for (std::size_t child : node.children) {
      child_facts.push_back(&nodes_[child].fact);
    }
    if (!IsRuleInstance(program, node.fact, child_facts)) {
      return util::Status::Error(
          "node " + dl::FactToString(node.fact, program.symbols()) +
          " with " + std::to_string(node.children.size()) +
          " children is not a rule instance");
    }
  }
  return util::Status::Ok();
}

bool ProofTree::IsNonRecursive() const {
  // DFS keeping the multiset of facts on the current path.
  struct Frame {
    std::size_t node;
    std::size_t next_child;
  };
  std::map<dl::Fact, int> on_path;
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0});
  if (++on_path[nodes_[0].fact] > 1) return false;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];
    if (frame.next_child < node.children.size()) {
      const std::size_t child = node.children[frame.next_child++];
      if (++on_path[nodes_[child].fact] > 1) return false;
      stack.push_back(Frame{child, 0});
    } else {
      if (--on_path[node.fact] == 0) on_path.erase(node.fact);
      stack.pop_back();
    }
  }
  return true;
}

std::string ProofTree::CanonicalForm(std::size_t node) const {
  const Node& n = nodes_[node];
  std::string out = "(" + std::to_string(n.fact.predicate);
  for (dl::SymbolId arg : n.fact.args) {
    out += ',';
    out += std::to_string(arg);
  }
  if (!n.children.empty()) {
    std::vector<std::string> child_forms;
    child_forms.reserve(n.children.size());
    for (std::size_t child : n.children) {
      child_forms.push_back(CanonicalForm(child));
    }
    std::sort(child_forms.begin(), child_forms.end());
    for (const std::string& form : child_forms) {
      out += '|';
      out += form;
    }
  }
  out += ')';
  return out;
}

bool ProofTree::IsUnambiguous() const {
  std::map<dl::Fact, std::string> canonical_by_fact;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::string form = CanonicalForm(i);
    auto [it, inserted] =
        canonical_by_fact.emplace(nodes_[i].fact, std::move(form));
    if (!inserted && it->second != CanonicalForm(i)) return false;
  }
  return true;
}

bool ProofTree::IsMinimalDepth(const dl::Model& model) const {
  auto id = model.Find(nodes_[0].fact);
  if (!id.has_value()) return false;
  return Depth() == static_cast<std::size_t>(model.rank(*id));
}

bool ProofTree::InClass(TreeClass c, const dl::Model& model) const {
  switch (c) {
    case TreeClass::kAny:
      return true;
    case TreeClass::kNonRecursive:
      return IsNonRecursive();
    case TreeClass::kMinimalDepth:
      return IsMinimalDepth(model);
    case TreeClass::kUnambiguous:
      return IsUnambiguous();
  }
  return false;
}

std::size_t ProofTree::SubtreeCount() const {
  std::map<dl::Fact, std::unordered_set<std::string>> forms;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    forms[nodes_[i].fact].insert(CanonicalForm(i));
  }
  std::size_t count = 0;
  for (const auto& [fact, set] : forms) count = std::max(count, set.size());
  return count;
}

std::string ProofTree::ToString(const dl::SymbolTable& symbols) const {
  std::string out;
  struct Frame {
    std::size_t node;
    std::size_t depth;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    out.append(2 * frame.depth, ' ');
    out += dl::FactToString(nodes_[frame.node].fact, symbols);
    out += '\n';
    const auto& children = nodes_[frame.node].children;
    for (std::size_t i = children.size(); i-- > 0;) {
      stack.push_back(Frame{children[i], frame.depth + 1});
    }
  }
  return out;
}

}  // namespace whyprov::provenance
