#ifndef WHYPROV_PROVENANCE_PROOF_TREE_H_
#define WHYPROV_PROVENANCE_PROOF_TREE_H_

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "util/status.h"

namespace whyprov::provenance {

/// The four proof-tree classes whose why-provenance the paper studies.
enum class TreeClass {
  kAny,           ///< arbitrary proof trees (Definition 1)
  kNonRecursive,  ///< no fact repeats along a root-to-leaf path (Def. 18)
  kMinimalDepth,  ///< depth equals min-tree-depth of the root fact (Def. 26)
  kUnambiguous,   ///< equal-labelled nodes have isomorphic subtrees (Def. 13)
};

/// Human-readable name, e.g. "unambiguous".
std::string TreeClassName(TreeClass c);

/// True iff there is a rule sigma and a substitution h with
/// h(head(sigma)) = `head` and h(body_i(sigma)) = `*children[i]` for every
/// i, in order (property 3 of Definition 1).
bool IsRuleInstance(const datalog::Program& program,
                    const datalog::Fact& head,
                    const std::vector<const datalog::Fact*>& children);

/// Set-semantics witness search (property 3 of Definition 40): finds a
/// rule sigma and substitution h with h(head(sigma)) = `head` and
/// { h(body_i(sigma)) } = `children_set` (as sets; a body atom may repeat
/// a fact). On success returns the rule index and the ground body atoms in
/// rule-body order (length = |body(sigma)|, possibly with repeats).
std::optional<std::pair<std::size_t, std::vector<datalog::Fact>>>
FindRuleWitnessForSet(const datalog::Program& program,
                      const datalog::Fact& head,
                      const std::vector<datalog::Fact>& children_set);

/// A labelled rooted proof tree (Definition 1). Nodes are stored in a
/// vector; node 0 is the root; children hold node indices. The structure
/// itself is plain data — the semantic checks (validity w.r.t. a program
/// and database, class membership) are separate member functions so that
/// tests can also build *invalid* trees.
class ProofTree {
 public:
  /// One node: its fact label and its children (indices into nodes()).
  struct Node {
    datalog::Fact fact;
    std::vector<std::size_t> children;
  };

  /// Creates a tree with just a root labelled `root_fact`.
  explicit ProofTree(datalog::Fact root_fact);

  /// Appends a new node labelled `fact` as a child of `parent`.
  /// Returns the new node's index.
  std::size_t AddChild(std::size_t parent, datalog::Fact fact);

  /// All nodes; index 0 is the root.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// The root label.
  const datalog::Fact& root() const { return nodes_[0].fact; }

  /// Number of nodes.
  std::size_t size() const { return nodes_.size(); }

  /// The support: the set of facts labelling the leaves.
  std::set<datalog::Fact> Support() const;

  /// Length of the longest root-to-leaf path (a single node has depth 0).
  std::size_t Depth() const;

  /// Checks Definition 1 against (program, database): the root is
  /// `expected_root`, every leaf is a database fact, and every internal
  /// node is a rule instance. Returns the first violation found.
  util::Status Validate(const datalog::Program& program,
                        const datalog::Database& database,
                        const datalog::Fact& expected_root) const;

  /// True iff no fact appears twice on any root-to-leaf path (Def. 18).
  bool IsNonRecursive() const;

  /// True iff all nodes with equal labels have isomorphic subtrees
  /// (Definition 13).
  bool IsUnambiguous() const;

  /// True iff Depth() equals `model`'s rank of the root fact, which by
  /// Proposition 28 / Lemma 29 is min-tree-depth (Definition 26). The
  /// model must be the least model of the same program and database.
  bool IsMinimalDepth(const datalog::Model& model) const;

  /// True iff the tree belongs to `c` (kAny is always true; kMinimalDepth
  /// needs the model).
  bool InClass(TreeClass c, const datalog::Model& model) const;

  /// Canonical form of the subtree rooted at `node`: two subtrees are
  /// isomorphic (as unordered labelled trees) iff their canonical strings
  /// are equal.
  std::string CanonicalForm(std::size_t node) const;

  /// The subtree count scount(T): the maximum, over labels, of the number
  /// of pairwise non-isomorphic subtrees rooted at nodes with that label.
  std::size_t SubtreeCount() const;

  /// Indented multi-line rendering for debugging and the examples.
  std::string ToString(const datalog::SymbolTable& symbols) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_PROOF_TREE_H_
