#include "provenance/query_plan.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/timer.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

/// Seeds the solver's decision phases with the rank-greedy compressed DAG:
/// for every internal fact pick the hyperedge whose deepest body fact is
/// shallowest. Ranks strictly decrease along its arcs (a fact of rank r
/// has an instance with max body rank r-1), so the choice is acyclic and
/// the seeded assignment is a model of phi. The first Solve then lands on
/// it almost decision-free, and phase saving keeps later solves nearby.
/// Recorded here once at plan-build time; every execution replays the
/// hints into its own backend.
void SeedCanonicalWitness(const dl::Model& model,
                          const DownwardClosure& closure,
                          const Encoding& encoding,
                          sat::SolverInterface& solver) {
  if (encoding.trivially_unsat) return;
  std::unordered_map<dl::FactId, std::size_t> greedy;
  for (dl::FactId fact : closure.nodes()) {
    const std::vector<std::size_t>& edges = closure.EdgesWithHead(fact);
    if (edges.empty()) continue;
    std::size_t best = edges[0];
    int best_rank = std::numeric_limits<int>::max();
    for (std::size_t e : edges) {
      int max_rank = 0;
      for (dl::FactId body : closure.edges()[e].body) {
        max_rank = std::max(max_rank, model.rank(body));
      }
      if (max_rank < best_rank) {
        best_rank = max_rank;
        best = e;
      }
    }
    greedy.emplace(fact, best);
  }
  // Facts reachable from the target under the greedy choices.
  std::vector<dl::FactId> stack{closure.target()};
  std::unordered_set<dl::FactId> reachable{closure.target()};
  while (!stack.empty()) {
    const dl::FactId fact = stack.back();
    stack.pop_back();
    auto it = greedy.find(fact);
    if (it == greedy.end()) continue;
    solver.SetPolarity(encoding.hyperedge_vars[it->second], true);
    for (dl::FactId body : closure.edges()[it->second].body) {
      if (reachable.insert(body).second) stack.push_back(body);
    }
  }
  for (dl::FactId fact : reachable) {
    solver.SetPolarity(encoding.node_vars.at(fact), true);
  }
  for (const Encoding::EdgeVar& z : encoding.edge_vars) {
    auto it = greedy.find(z.from);
    if (it == greedy.end() || !reachable.contains(z.from)) continue;
    const auto& body = closure.edges()[it->second].body;
    if (std::find(body.begin(), body.end(), z.to) != body.end()) {
      solver.SetPolarity(z.var, true);
    }
  }
  // Decide the structural variables (nodes, hyperedges, arcs) before the
  // acyclicity auxiliaries: the seeded phases then reproduce the greedy
  // model with next to no conflicts, and the auxiliaries just propagate.
  for (const auto& [fact, var] : encoding.node_vars) {
    solver.BumpActivityHint(var, 1.0);
  }
  for (sat::Var var : encoding.hyperedge_vars) {
    solver.BumpActivityHint(var, 1.0);
  }
  for (const Encoding::EdgeVar& z : encoding.edge_vars) {
    solver.BumpActivityHint(z.var, 1.0);
  }
}

}  // namespace

std::shared_ptr<const QueryPlan> QueryPlan::Build(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    const CnfEncoder::Options& options) {
  sat::SimplifyOptions off;
  off.mode = sat::SimplifyMode::kOff;
  return Build(program, model, target, options, off);
}

std::shared_ptr<const QueryPlan> QueryPlan::Build(
    const dl::Program& program, const dl::Model& model, dl::FactId target,
    const CnfEncoder::Options& options,
    const sat::SimplifyOptions& simplify) {
  auto plan = std::shared_ptr<QueryPlan>(new QueryPlan());
  plan->acyclicity_ = options.acyclicity;

  util::Timer timer;
  plan->closure_ = DownwardClosure::Build(program, model, target);
  plan->closure_facts_.insert(plan->closure_.nodes().begin(),
                              plan->closure_.nodes().end());
  // An underivable target has an empty node list but still depends on the
  // target fact itself (re-adding it must invalidate this plan).
  plan->closure_facts_.insert(target);
  plan->timings_.closure_seconds = timer.ElapsedSeconds();

  timer.Reset();
  sat::ClauseRecorder recorder(&plan->formula_);
  plan->encoding_ = CnfEncoder::Encode(plan->closure_, recorder, options);
  SeedCanonicalWitness(model, plan->closure_, plan->encoding_, recorder);
  plan->timings_.encode_seconds = timer.ElapsedSeconds();

  if (simplify.mode != sat::SimplifyMode::kOff &&
      !plan->encoding_.trivially_unsat) {
    timer.Reset();
    // Freeze the fact-selector variables of the database leaves: blocking
    // clauses, membership pinning, and projected-model equivalence all run
    // over them. Only the acyclicity auxiliaries (variables that are
    // neither node, hyperedge, nor arc selectors) may be eliminated.
    std::vector<sat::Var> frozen;
    frozen.reserve(plan->encoding_.database_leaves.size());
    for (dl::FactId leaf : plan->encoding_.database_leaves) {
      frozen.push_back(plan->encoding_.node_vars.at(leaf));
    }
    std::vector<bool> structural(
        static_cast<std::size_t>(plan->formula_.num_vars), false);
    for (const auto& [fact, var] : plan->encoding_.node_vars) {
      structural[static_cast<std::size_t>(var)] = true;
    }
    for (sat::Var var : plan->encoding_.hyperedge_vars) {
      structural[static_cast<std::size_t>(var)] = true;
    }
    for (const Encoding::EdgeVar& z : plan->encoding_.edge_vars) {
      structural[static_cast<std::size_t>(z.var)] = true;
    }
    std::vector<sat::Var> eliminable;
    for (sat::Var v = 0; v < plan->formula_.num_vars; ++v) {
      if (!structural[static_cast<std::size_t>(v)]) eliminable.push_back(v);
    }
    sat::SimplifyResult result =
        sat::Simplify(plan->formula_, frozen, eliminable, simplify);
    plan->formula_ = std::move(result.formula);
    plan->var_map_ = std::move(result.var_map);
    plan->stack_ = std::move(result.stack);
    plan->num_original_vars_ = result.num_original_vars;
    plan->simplify_stats_ = result.stats;
    plan->simplified_ = true;
    plan->timings_.simplify_seconds = timer.ElapsedSeconds();
  }
  return plan;
}

std::vector<sat::LBool> QueryPlan::ReconstructModel(
    const sat::SolverInterface& solver) const {
  if (!simplified_) {
    std::vector<sat::LBool> model(
        static_cast<std::size_t>(formula_.num_vars), sat::LBool::kUndef);
    for (sat::Var v = 0; v < formula_.num_vars; ++v) {
      model[static_cast<std::size_t>(v)] = solver.ModelValue(v);
    }
    return model;
  }
  std::vector<sat::LBool> model(static_cast<std::size_t>(num_original_vars_),
                                sat::LBool::kUndef);
  for (sat::Var v = 0; v < num_original_vars_; ++v) {
    const sat::Lit mapped = var_map_[static_cast<std::size_t>(v)];
    if (!mapped.defined()) continue;
    model[static_cast<std::size_t>(v)] =
        sat::EvalLit(solver.ModelValue(mapped.var()), mapped);
  }
  stack_.Extend(model);
  return model;
}

}  // namespace whyprov::provenance
