#ifndef WHYPROV_PROVENANCE_QUERY_PLAN_H_
#define WHYPROV_PROVENANCE_QUERY_PLAN_H_

#include <memory>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "sat/cnf_formula.h"

namespace whyprov::provenance {

/// Phase timings of plan construction, for the construction-time figures
/// (the paper's Figures 1/3).
struct PlanTimings {
  double closure_seconds = 0;  ///< downward-closure construction
  double encode_seconds = 0;   ///< Boolean-formula construction
};

/// The compile artifact of the prepare/execute split: the downward closure
/// of one target fact, its CNF encoding phi(t, D, Q) as a backend-neutral
/// formula, the variable layout, and the phase timings. A plan is immutable
/// after Build and carries no solver, so one plan can back any number of
/// concurrent executions — each execution replays the formula into its own
/// fresh backend via `LoadInto`.
///
/// The plan borrows nothing from the model or program it was built from
/// except fact ids; callers that share plans across threads must keep the
/// corresponding model alive (the engine's `PreparedQuery` does this with a
/// shared_ptr).
class QueryPlan {
 public:
  /// Builds the closure and the formula for `target` (a fact id of
  /// `model`, which must be the least model of (program, database)). Also
  /// precomputes the rank-greedy canonical-witness search hints that steer
  /// the first Solve of every execution (recorded into the formula).
  static std::shared_ptr<const QueryPlan> Build(
      const datalog::Program& program, const datalog::Model& model,
      datalog::FactId target, const CnfEncoder::Options& options);

  datalog::FactId target() const { return closure_.target(); }
  AcyclicityEncoding acyclicity() const { return acyclicity_; }
  const DownwardClosure& closure() const { return closure_; }
  const Encoding& encoding() const { return encoding_; }
  const sat::CnfFormula& formula() const { return formula_; }
  const PlanTimings& timings() const { return timings_; }

  /// Replays the formula and search hints into a fresh backend.
  void LoadInto(sat::SolverInterface& solver) const {
    formula_.LoadInto(solver);
  }

 private:
  QueryPlan() = default;

  DownwardClosure closure_;
  Encoding encoding_;
  sat::CnfFormula formula_;
  PlanTimings timings_;
  AcyclicityEncoding acyclicity_ = AcyclicityEncoding::kVertexElimination;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_QUERY_PLAN_H_
