#ifndef WHYPROV_PROVENANCE_QUERY_PLAN_H_
#define WHYPROV_PROVENANCE_QUERY_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "sat/cnf_formula.h"
#include "sat/reconstruction.h"
#include "sat/simplify.h"

namespace whyprov::provenance {

/// Phase timings of plan construction, for the construction-time figures
/// (the paper's Figures 1/3).
struct PlanTimings {
  double closure_seconds = 0;   ///< downward-closure construction
  double encode_seconds = 0;    ///< Boolean-formula construction
  double simplify_seconds = 0;  ///< CNF inprocessing (0 when off)
};

/// The compile artifact of the prepare/execute split: the downward closure
/// of one target fact, its CNF encoding phi(t, D, Q) as a backend-neutral
/// formula, the variable layout, and the phase timings. A plan is immutable
/// after Build and carries no solver, so one plan can back any number of
/// concurrent executions — each execution replays the formula into its own
/// fresh backend via `LoadInto`.
///
/// The plan borrows nothing from the model or program it was built from
/// except fact ids; callers that share plans across threads must keep the
/// corresponding model alive (the engine's `PreparedQuery` does this with a
/// shared_ptr).
class QueryPlan {
 public:
  /// Builds the closure and the formula for `target` (a fact id of
  /// `model`, which must be the least model of (program, database)). Also
  /// precomputes the rank-greedy canonical-witness search hints that steer
  /// the first Solve of every execution (recorded into the formula).
  static std::shared_ptr<const QueryPlan> Build(
      const datalog::Program& program, const datalog::Model& model,
      datalog::FactId target, const CnfEncoder::Options& options);

  /// As above, but additionally runs the plan-time CNF inprocessing pass
  /// (sat/simplify.h) when `simplify.mode != kOff`: the stored formula is
  /// the simplified one, the fact-selector variables of the database
  /// leaves are frozen, and the reconstruction stack + variable map are
  /// kept so executions can translate models and literals between the
  /// original encoding space and the solver space.
  static std::shared_ptr<const QueryPlan> Build(
      const datalog::Program& program, const datalog::Model& model,
      datalog::FactId target, const CnfEncoder::Options& options,
      const sat::SimplifyOptions& simplify);

  datalog::FactId target() const { return closure_.target(); }
  AcyclicityEncoding acyclicity() const { return acyclicity_; }
  const DownwardClosure& closure() const { return closure_; }
  const Encoding& encoding() const { return encoding_; }

  /// The execution formula `LoadInto` replays: the simplified formula when
  /// inprocessing ran, otherwise the encoder's output verbatim. Its
  /// variable space is the solver space — map encoding variables through
  /// `SolverLitFor` before asserting or blocking on them.
  const sat::CnfFormula& formula() const { return formula_; }
  const PlanTimings& timings() const { return timings_; }

  /// True iff the plan stores a simplified formula (variable spaces may
  /// then differ; the identity fast paths below still hold when false).
  bool simplified() const { return simplified_; }
  const sat::SimplifyStats& simplify_stats() const { return simplify_stats_; }

  /// Maps an original encoding variable to its literal over the execution
  /// formula. Undefined iff the simplifier removed the variable — never
  /// the case for frozen fact-selector variables of database leaves.
  sat::Lit SolverLitFor(sat::Var original) const {
    if (!simplified_) return sat::Lit::Make(original, false);
    return var_map_[static_cast<std::size_t>(original)];
  }

  /// Reads the solver's model back into the original encoding's variable
  /// space, replaying the reconstruction stack for removed variables.
  /// Call only after a satisfiable Solve on a solver this plan was loaded
  /// into.
  std::vector<sat::LBool> ReconstructModel(
      const sat::SolverInterface& solver) const;

  /// True iff `fact` is a node of the plan's downward closure (including
  /// the target and the database leaves). This is the set an incremental
  /// delta intersects with its touched facts to decide whether the plan
  /// survives: a delta disjoint from the closure cannot change the
  /// closure's sub-hypergraph, so closure, CNF, and hints all stay exact.
  bool ClosureContains(datalog::FactId fact) const {
    return closure_facts_.contains(fact);
  }

  /// The closure's fact set (e.g. for invalidation diagnostics).
  const std::unordered_set<datalog::FactId>& closure_facts() const {
    return closure_facts_;
  }

  /// The engine-state model version this plan was compiled against (or
  /// re-validated for). Monotonic per engine; plans whose stamp trails the
  /// current state are stale and get rebuilt lazily on their next cache
  /// hit. The stamp is the one mutable field of a plan (atomic, so
  /// carry-over re-stamping never races concurrent executions).
  std::uint64_t model_version() const {
    return model_version_.load(std::memory_order_acquire);
  }
  void set_model_version(std::uint64_t version) const {
    model_version_.store(version, std::memory_order_release);
  }

  /// Replays the formula and search hints into a fresh backend.
  void LoadInto(sat::SolverInterface& solver) const {
    formula_.LoadInto(solver);
  }

 private:
  QueryPlan() = default;

  DownwardClosure closure_;
  std::unordered_set<datalog::FactId> closure_facts_;
  Encoding encoding_;
  sat::CnfFormula formula_;
  PlanTimings timings_;
  AcyclicityEncoding acyclicity_ = AcyclicityEncoding::kVertexElimination;
  mutable std::atomic<std::uint64_t> model_version_{0};

  bool simplified_ = false;
  sat::ReconstructionStack stack_;
  std::vector<sat::Lit> var_map_;  ///< Original var -> execution literal.
  int num_original_vars_ = 0;
  sat::SimplifyStats simplify_stats_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_QUERY_PLAN_H_
