#include "provenance/why_provenance.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "datalog/parser.h"
#include "util/timer.h"

namespace whyprov::provenance {

namespace dl = whyprov::datalog;

namespace {

dl::Model EvaluateTimed(const dl::Program& program,
                        const dl::Database& database, double* seconds) {
  util::Timer timer;
  dl::Model model = dl::Evaluator::Evaluate(program, database);
  *seconds = timer.ElapsedSeconds();
  return model;
}

}  // namespace

WhyProvenancePipeline::WhyProvenancePipeline(dl::Program program,
                                             dl::Database database,
                                             dl::PredicateId answer_predicate)
    : program_(std::move(program)),
      database_(std::move(database)),
      answer_predicate_(answer_predicate),
      model_(EvaluateTimed(program_, database_, &eval_seconds_)) {}

util::Result<WhyProvenancePipeline> WhyProvenancePipeline::FromText(
    std::string_view program_text, std::string_view database_text,
    std::string_view answer_predicate) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  util::Result<dl::Program> program =
      dl::Parser::ParseProgram(symbols, program_text);
  if (!program.ok()) return program.status();
  util::Result<dl::Database> database =
      dl::Parser::ParseDatabase(symbols, database_text);
  if (!database.ok()) return database.status();
  util::Result<dl::PredicateId> predicate =
      symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) return predicate.status();
  if (!program.value().IsIntensional(predicate.value())) {
    return util::Status::InvalidArgument("answer predicate '" +
                                         std::string(answer_predicate) +
                                         "' is not intensional");
  }
  return WhyProvenancePipeline(std::move(program).value(),
                               std::move(database).value(),
                               predicate.value());
}

std::vector<dl::FactId> WhyProvenancePipeline::AnswerFactIds() const {
  return model_.Relation(answer_predicate_);
}

std::vector<dl::FactId> WhyProvenancePipeline::SampleAnswers(
    std::size_t count, util::Rng& rng) const {
  std::vector<dl::FactId> answers = AnswerFactIds();
  rng.Shuffle(answers);
  if (answers.size() > count) answers.resize(count);
  return answers;
}

util::Result<dl::FactId> WhyProvenancePipeline::AnswerId(
    const std::vector<dl::SymbolId>& tuple) const {
  dl::Fact fact;
  fact.predicate = answer_predicate_;
  fact.args = tuple;
  auto id = model_.Find(fact);
  if (!id.has_value()) {
    return util::Status::NotFound("the tuple is not an answer");
  }
  return *id;
}

util::Result<dl::FactId> WhyProvenancePipeline::FactIdOf(
    std::string_view fact_text) const {
  util::Result<dl::Fact> fact =
      dl::Parser::ParseFact(database_.symbols_ptr(), fact_text);
  if (!fact.ok()) return fact.status();
  auto id = model_.Find(fact.value());
  if (!id.has_value()) {
    return util::Status::NotFound("fact '" + std::string(fact_text) +
                                  "' is not derivable");
  }
  return *id;
}

std::unique_ptr<WhyProvenanceEnumerator>
WhyProvenancePipeline::MakeEnumerator(
    dl::FactId target,
    const WhyProvenanceEnumerator::Options& options) const {
  return std::make_unique<WhyProvenanceEnumerator>(program_, model_, target,
                                                   options);
}

std::string WhyProvenancePipeline::FactToText(dl::FactId id) const {
  return dl::FactToString(model_.fact(id), program_.symbols());
}

}  // namespace whyprov::provenance
