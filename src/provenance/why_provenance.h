#ifndef WHYPROV_PROVENANCE_WHY_PROVENANCE_H_
#define WHYPROV_PROVENANCE_WHY_PROVENANCE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "provenance/enumerator.h"
#include "util/rng.h"
#include "util/status.h"

namespace whyprov::provenance {

/// Deprecated: prefer `whyprov::Engine` (engine/engine.h, or the umbrella
/// header whyprov.h), which subsumes this class and adds backend
/// selection, typed requests, and budgeted enumeration handles. Kept as a
/// thin shim for older callers and tests.
///
/// High-level entry point tying the whole pipeline together: parse/accept
/// a query and database, evaluate the least model, pick answer tuples, and
/// hand out why-provenance enumerators.
class WhyProvenancePipeline {
 public:
  /// Builds a pipeline from already-parsed pieces. Evaluates the model
  /// eagerly (semi-naive).
  WhyProvenancePipeline(datalog::Program program, datalog::Database database,
                        datalog::PredicateId answer_predicate);

  /// Convenience constructor from program/database text; `answer` names
  /// the answer predicate.
  static util::Result<WhyProvenancePipeline> FromText(
      std::string_view program_text, std::string_view database_text,
      std::string_view answer_predicate);

  const datalog::Program& program() const { return program_; }
  const datalog::Database& database() const { return database_; }
  const datalog::Model& model() const { return model_; }
  datalog::PredicateId answer_predicate() const { return answer_predicate_; }

  /// Seconds spent in evaluation (for end-to-end reporting).
  double eval_seconds() const { return eval_seconds_; }

  /// The answer facts R(t) for the query's answer predicate.
  std::vector<datalog::FactId> AnswerFactIds() const;

  /// Picks `count` answer facts uniformly at random (without replacement;
  /// fewer if there are fewer answers).
  std::vector<datalog::FactId> SampleAnswers(std::size_t count,
                                             util::Rng& rng) const;

  /// Finds the fact id of the answer R(tuple), if it is an answer.
  util::Result<datalog::FactId> AnswerId(
      const std::vector<datalog::SymbolId>& tuple) const;

  /// Parses a fact like "path(a, b)" and returns its id if it is in the
  /// model.
  util::Result<datalog::FactId> FactIdOf(std::string_view fact_text) const;

  /// Creates an incremental whyUN enumerator for the given answer fact.
  std::unique_ptr<WhyProvenanceEnumerator> MakeEnumerator(
      datalog::FactId target,
      const WhyProvenanceEnumerator::Options& options =
          WhyProvenanceEnumerator::Options()) const;

  /// Renders a fact for display.
  std::string FactToText(datalog::FactId id) const;

 private:
  datalog::Program program_;
  datalog::Database database_;
  datalog::PredicateId answer_predicate_;
  // eval_seconds_ is written while model_ is initialised, so it must be
  // declared (and thus initialised) before model_.
  double eval_seconds_ = 0;
  datalog::Model model_;
};

}  // namespace whyprov::provenance

#endif  // WHYPROV_PROVENANCE_WHY_PROVENANCE_H_
