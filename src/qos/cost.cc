#include "qos/cost.h"

#include <algorithm>
#include <chrono>

namespace whyprov::qos {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double CostEstimator::Query(const CostSignals& signals) {
  if (signals.plan_cached) {
    // Execution replays the compiled CNF into a fresh solver; the
    // search itself scales with the formula, but compilation — the
    // dominant term — is already paid.
    return kMinCost +
           static_cast<double>(signals.cnf_clauses) / 4096.0;
  }
  if (signals.closure_facts > 0 || signals.cnf_clauses > 0) {
    return kMinCost +
           static_cast<double>(signals.closure_facts) / 256.0 +
           static_cast<double>(signals.cnf_clauses) / 512.0 +
           static_cast<double>(signals.cnf_variables) / 1024.0;
  }
  // Nothing target-specific is known (unresolved target, cold cache):
  // price by database size, the upper bound on the closure.
  return kMinCost + static_cast<double>(signals.database_facts) / 512.0;
}

double CostEstimator::Delta(const CostSignals& signals) {
  // A delta re-derives through the affected stratum and invalidates
  // plans; the touched-fact count scales the risk, the database size
  // bounds it.
  return 2.0 * kMinCost +
         static_cast<double>(signals.delta_facts) * 0.5 +
         static_cast<double>(signals.database_facts) / 1024.0;
}

AdmissionController::AdmissionController(const QosOptions& options)
    : budget_(options.tenant_cost_budget),
      refill_per_second_(options.refill_per_second),
      burst_(options.burst > 0 ? options.burst
                               : options.refill_per_second) {}

util::Status AdmissionController::Admit(const std::string& tenant,
                                        double cost) {
  return AdmitAt(tenant, cost, MonotonicSeconds());
}

util::Status AdmissionController::AdmitAt(const std::string& tenant,
                                          double cost,
                                          double now_seconds) {
  if (unlimited()) return util::Status::Ok();
  const double charge = std::max(0.0, cost);
  const util::MutexLock lock(mutex_);
  Bucket& bucket = buckets_[tenant];
  if (budget_ > 0 && bucket.outstanding + charge > budget_) {
    return util::Status::ResourceExhausted(
        "tenant '" + tenant + "' exceeds its outstanding cost budget (" +
        std::to_string(budget_) + " units)");
  }
  if (refill_per_second_ > 0) {
    if (!bucket.primed) {
      bucket.tokens = burst_;
      bucket.last_refill_seconds = now_seconds;
      bucket.primed = true;
    } else if (now_seconds > bucket.last_refill_seconds) {
      bucket.tokens = std::min(
          burst_, bucket.tokens + (now_seconds -
                                   bucket.last_refill_seconds) *
                                      refill_per_second_);
      bucket.last_refill_seconds = now_seconds;
    }
    if (bucket.tokens < charge) {
      return util::Status::ResourceExhausted(
          "tenant '" + tenant + "' exceeds its admission rate (" +
          std::to_string(refill_per_second_) + " cost units/s)");
    }
    bucket.tokens -= charge;
  }
  bucket.outstanding += charge;
  return util::Status::Ok();
}

void AdmissionController::Release(const std::string& tenant, double cost) {
  if (unlimited()) return;
  const util::MutexLock lock(mutex_);
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) return;
  it->second.outstanding =
      std::max(0.0, it->second.outstanding - std::max(0.0, cost));
}

double AdmissionController::Outstanding(const std::string& tenant) const {
  const util::MutexLock lock(mutex_);
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? 0 : it->second.outstanding;
}

}  // namespace whyprov::qos
