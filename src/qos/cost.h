#ifndef WHYPROV_QOS_COST_H_
#define WHYPROV_QOS_COST_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "qos/qos.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace whyprov::qos {

/// The raw signals a request's cost estimate is priced from. The
/// service layer fills them from the engine (plan-cache peek, closure
/// and CNF sizes); keeping this a plain struct is what lets the qos
/// library stay independent of the engine.
struct CostSignals {
  /// A compiled plan for this target is cached at the current model
  /// version — execution skips closure computation and CNF compilation.
  bool plan_cached = false;
  /// Facts in the target's derivation closure (0 if unknown).
  std::size_t closure_facts = 0;
  /// Clauses in the compiled CNF (0 if unknown).
  std::size_t cnf_clauses = 0;
  /// Variables in the compiled CNF (0 if unknown).
  std::size_t cnf_variables = 0;
  /// Facts added + removed, for delta requests.
  std::size_t delta_facts = 0;
  /// Facts in the extensional database (the fallback size proxy when
  /// nothing target-specific is known).
  std::size_t database_facts = 0;
};

/// Prices a request in abstract cost units from its signals. The scale
/// is anchored at 1.0 = one cache-hit query execution; estimates feed
/// both the scheduler's deficit accounting and cost-based admission,
/// so only the *relative* ordering matters, not absolute accuracy.
class CostEstimator {
 public:
  /// Minimum estimate for any request (a cached plan still executes).
  static constexpr double kMinCost = 1.0;

  /// Cost of a query (enumerate / decide / explain) from its signals.
  /// Cached plans price near the floor; uncached plans pay for the
  /// closure they must compute and the CNF they must compile; with no
  /// target-specific signal the database size is the proxy.
  static double Query(const CostSignals& signals);

  /// Cost of a delta: every touched fact risks rederivation across the
  /// whole database.
  static double Delta(const CostSignals& signals);
};

/// Per-tenant cost-based admission: an outstanding-cost budget (charged
/// at admit, refunded at completion — including cancellation, which is
/// what makes refund-on-cancel a single code path) combined with an
/// optional token bucket limiting admitted cost per second. Thread-safe
/// behind its own annotated mutex; one controller is shared across
/// every shard of a serving stack, like the parse mutex.
class AdmissionController {
 public:
  explicit AdmissionController(const QosOptions& options);

  /// Admits `cost` units for `tenant`, or refuses with
  /// kResourceExhausted naming the exhausted limit. A refusal charges
  /// nothing.
  util::Status Admit(const std::string& tenant, double cost)
      EXCLUDES(mutex_);

  /// As Admit, with an explicit monotonic clock reading (seconds) for
  /// the token bucket — the deterministic entry point tests use.
  util::Status AdmitAt(const std::string& tenant, double cost,
                       double now_seconds) EXCLUDES(mutex_);

  /// Refunds `cost` units of `tenant`'s outstanding budget. Called
  /// exactly once per admitted request, at completion (success,
  /// failure, or cancellation alike).
  void Release(const std::string& tenant, double cost) EXCLUDES(mutex_);

  /// Outstanding admitted cost for `tenant` (0 for unknown tenants).
  double Outstanding(const std::string& tenant) const EXCLUDES(mutex_);

  /// True when no limit is configured (every Admit succeeds).
  bool unlimited() const { return budget_ <= 0 && refill_per_second_ <= 0; }

 private:
  struct Bucket {
    double outstanding = 0;
    double tokens = 0;
    double last_refill_seconds = 0;
    bool primed = false;  ///< tokens initialised to the burst capacity
  };

  const double budget_;
  const double refill_per_second_;
  const double burst_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_ GUARDED_BY(mutex_);
};

}  // namespace whyprov::qos

#endif  // WHYPROV_QOS_COST_H_
