#ifndef WHYPROV_QOS_QOS_H_
#define WHYPROV_QOS_QOS_H_

// Multi-tenant quality-of-service primitives shared by the serving
// stack. This library deliberately links against whyprov_util ONLY:
// the scheduler plugs into util::Executor's TaskQueue interface, the
// cost estimator prices a plain signals struct that the service layer
// fills from the engine, and the admission controller speaks
// util::Status — so both `Service` (above the engine) and
// `net::Server` (which otherwise sees the stack through the C ABI
// alone) can use it without new cross-layer dependencies.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace whyprov::qos {

/// The two priority lanes. Interactive traffic is served with
/// strict-ish priority; batch traffic is kept starvation-free by a
/// periodic escape hatch (see FairScheduler). Values mirror
/// util::TaskTag::lane and the wire/C-ABI `qos_class` byte.
enum class QosClass : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

/// Number of lanes (for per-lane arrays).
inline constexpr std::size_t kNumLanes = 2;

/// Canonical lane names, as emitted in stats rows and bench output.
inline const char* LaneName(QosClass lane) {
  return lane == QosClass::kBatch ? "batch" : "interactive";
}

/// QoS configuration for a serving stack. The zero-argument default is
/// the *enabled* configuration with no per-tenant limits: fair queueing
/// on, every tenant weight 1.0, no cost budget, no rate limit — under
/// which all-default-class traffic behaves exactly like the pre-QoS
/// FIFO (architecture invariant 6).
struct QosOptions {
  /// Run the deficit-weighted fair scheduler instead of the FIFO queue.
  bool fair_queueing = true;

  /// Deficit replenished per scheduling round, per unit of tenant
  /// weight, in cost units. Larger quanta give each tenant longer
  /// uninterrupted runs; throughput shares stay weight-proportional
  /// either way.
  double quantum = 16.0;

  /// Serve one batch-lane task after this many consecutive
  /// interactive-lane pops while batch work is waiting — the
  /// anti-starvation escape. 0 disables the escape (strict priority).
  std::size_t batch_escape = 8;

  /// Per-tenant scheduling weights; tenants not listed weigh 1.0.
  std::unordered_map<std::string, double> tenant_weights;

  /// Maximum outstanding estimated cost per tenant (admitted but not
  /// yet completed). 0 = unlimited. Exceeding it refuses the request
  /// with kResourceExhausted; completion (including cancellation)
  /// refunds the charge.
  double tenant_cost_budget = 0;

  /// Token-bucket refill rate per tenant, in cost units per second.
  /// 0 = no rate limit.
  double refill_per_second = 0;

  /// Token-bucket capacity in cost units; 0 = one second's refill.
  double burst = 0;
};

}  // namespace whyprov::qos

#endif  // WHYPROV_QOS_QOS_H_
