#include "qos/scheduler.h"

#include <algorithm>
#include <utility>

namespace whyprov::qos {

FairScheduler::FairScheduler(const QosOptions& options)
    : quantum_(options.quantum > 0 ? options.quantum : 1.0),
      batch_escape_(options.batch_escape),
      weights_(options.tenant_weights) {}

void FairScheduler::Push(std::function<void()> task,
                         const util::TaskTag& tag) {
  const std::size_t lane_index =
      tag.lane == static_cast<std::uint8_t>(QosClass::kBatch) ? 1 : 0;
  Lane& lane = lanes_[lane_index];
  auto [it, inserted] = lane.tenants.try_emplace(tag.tenant);
  Tenant& tenant = it->second;
  if (inserted) {
    const auto weight = weights_.find(tag.tenant);
    if (weight != weights_.end() && weight->second > 0) {
      tenant.weight = weight->second;
    }
  }
  if (tenant.queued == 0) lane.active.push_back(tag.tenant);
  auto& shard_queue = tenant.per_shard[tag.shard];
  if (shard_queue.empty()) tenant.shard_rr.push_back(tag.shard);
  shard_queue.push_back(std::move(task));
  tenant.per_shard_cost[tag.shard].push_back(std::max(0.0, tag.cost));
  ++tenant.queued;
  ++lane.queued;
  ++size_;
}

std::function<void()> FairScheduler::Pop() {
  Lane& interactive = lanes_[0];
  Lane& batch = lanes_[1];
  const bool escape = batch_escape_ > 0 && batch.queued > 0 &&
                      interactive_streak_ >= batch_escape_;
  if (interactive.queued > 0 && !escape) {
    ++interactive_streak_;
    return PopFromLane(interactive);
  }
  interactive_streak_ = 0;
  if (batch.queued > 0) return PopFromLane(batch);
  return PopFromLane(interactive);
}

std::function<void()> FairScheduler::PopFromLane(Lane& lane) {
  // Deficit round robin over the active tenants. Terminates because
  // every unsuccessful visit adds quantum * weight (> 0) to the front
  // tenant's deficit, so its head task's finite cost is covered after
  // finitely many rotations.
  while (true) {
    Tenant& tenant = lane.tenants.at(lane.active.front());
    const std::uint64_t shard = tenant.shard_rr.front();
    const double cost = tenant.per_shard_cost.at(shard).front();
    if (tenant.deficit < cost && lane.active.size() > 1) {
      tenant.deficit += quantum_ * tenant.weight;
      lane.active.push_back(lane.active.front());
      lane.active.pop_front();
      continue;
    }
    // A lone tenant is served unconditionally (no competitor to be fair
    // to), keeping its deficit at zero so a later arrival starts even.
    tenant.deficit = std::max(0.0, tenant.deficit - cost);
    auto& shard_queue = tenant.per_shard.at(shard);
    std::function<void()> task = std::move(shard_queue.front());
    shard_queue.pop_front();
    tenant.per_shard_cost.at(shard).pop_front();
    tenant.shard_rr.pop_front();
    if (shard_queue.empty()) {
      tenant.per_shard.erase(shard);
      tenant.per_shard_cost.erase(shard);
    } else {
      tenant.shard_rr.push_back(shard);  // fair rotation across shards
    }
    --tenant.queued;
    --lane.queued;
    --size_;
    if (tenant.queued == 0) {
      tenant.deficit = 0;  // an idle tenant banks no credit
      lane.active.pop_front();
    }
    return task;
  }
}

}  // namespace whyprov::qos
