#ifndef WHYPROV_QOS_SCHEDULER_H_
#define WHYPROV_QOS_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "qos/qos.h"
#include "util/executor.h"

namespace whyprov::qos {

/// A deficit-weighted fair-queueing task scheduler, pluggable into
/// util::Executor through the TaskQueue interface.
///
/// Discipline, outermost to innermost:
///
///   * **Lanes.** The interactive lane has strict-ish priority: an
///     interactive task is always popped before a batch task, except
///     that after `batch_escape` consecutive interactive pops with
///     batch work waiting, one batch task is served — so a saturated
///     interactive lane degrades batch to a bounded trickle instead of
///     starving it (starvation freedom is tested, not just intended).
///
///   * **Tenants.** Within a lane, tenants are served by deficit round
///     robin: each visit tops a tenant's deficit up by
///     `quantum * weight`; a tenant whose deficit covers the cost of
///     its next task pops it (paying the cost), otherwise the rotation
///     moves on. Over a saturated window each tenant's served cost is
///     proportional to its weight, regardless of how many requests it
///     floods into the queue.
///
///   * **Shards.** Within a tenant, tasks are bucketed by originating
///     shard and drained round-robin across the non-empty buckets, so
///     one hot shard behind a shared ShardedService pool cannot starve
///     its siblings' queued work.
///
/// With only default tags in play (one lane, one tenant, one shard)
/// every level degenerates to a single FIFO, and the pop order is
/// *exactly* the push order — the FIFO-equivalence invariant that keeps
/// default-class behaviour (and the bit-identical transcript tests)
/// unchanged.
///
/// Like every TaskQueue, the scheduler is externally synchronized by
/// the owning executor's mutex and holds no lock of its own.
class FairScheduler : public util::TaskQueue {
 public:
  explicit FairScheduler(const QosOptions& options);

  void Push(std::function<void()> task, const util::TaskTag& tag) override;
  std::function<void()> Pop() override;
  std::size_t size() const override { return size_; }

 private:
  /// Per-(lane, tenant) scheduling state: per-shard FIFOs drained
  /// round-robin, plus the DRR deficit.
  struct Tenant {
    double weight = 1.0;
    double deficit = 0;
    std::size_t queued = 0;
    /// Shard ids with non-empty FIFOs, in round-robin order.
    std::deque<std::uint64_t> shard_rr;
    std::unordered_map<std::uint64_t, std::deque<std::function<void()>>>
        per_shard;
    /// Cost of each queued task, FIFO per shard alongside the task.
    std::unordered_map<std::uint64_t, std::deque<double>> per_shard_cost;
  };

  /// One lane: its tenants plus the DRR rotation over the non-empty
  /// ones.
  struct Lane {
    std::unordered_map<std::string, Tenant> tenants;
    std::deque<std::string> active;  ///< non-empty tenants, DRR order
    std::size_t queued = 0;
  };

  std::function<void()> PopFromLane(Lane& lane);

  const double quantum_;
  const std::size_t batch_escape_;
  const std::unordered_map<std::string, double> weights_;
  Lane lanes_[kNumLanes];
  /// Consecutive interactive pops since the last batch pop.
  std::size_t interactive_streak_ = 0;
  std::size_t size_ = 0;
};

}  // namespace whyprov::qos

#endif  // WHYPROV_QOS_SCHEDULER_H_
