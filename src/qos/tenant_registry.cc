#include "qos/tenant_registry.h"

#include <algorithm>

namespace whyprov::qos {

namespace {

/// Nearest-rank percentile over an unsorted copy of the samples.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

TenantRegistry::Row& TenantRegistry::RowFor(const std::string& tenant,
                                            QosClass lane) {
  return rows_[tenant][static_cast<std::size_t>(lane)];
}

void TenantRegistry::RecordQueued(const std::string& tenant,
                                  QosClass lane) {
  const util::MutexLock lock(mutex_);
  ++RowFor(tenant, lane).queued;
}

void TenantRegistry::RecordRejected(const std::string& tenant,
                                    QosClass lane) {
  const util::MutexLock lock(mutex_);
  ++RowFor(tenant, lane).rejected;
}

void TenantRegistry::RecordCompleted(const std::string& tenant,
                                     QosClass lane, bool cancelled,
                                     double cost, double queue_seconds) {
  const util::MutexLock lock(mutex_);
  Row& row = RowFor(tenant, lane);
  if (row.queued > 0) --row.queued;
  if (cancelled) {
    ++row.cancelled;
  } else {
    ++row.served;
    row.cost_served += std::max(0.0, cost);
  }
  if (row.waits.size() < kSampleCapacity) {
    row.waits.push_back(queue_seconds);
  } else {
    row.waits[row.next_wait] = queue_seconds;
    row.next_wait = (row.next_wait + 1) % kSampleCapacity;
  }
}

std::vector<TenantStats> TenantRegistry::Snapshot() const {
  const util::MutexLock lock(mutex_);
  std::vector<TenantStats> rows;
  for (const auto& [tenant, lanes] : rows_) {
    for (std::size_t lane = 0; lane < kNumLanes; ++lane) {
      const Row& row = lanes[lane];
      if (row.queued == 0 && row.served == 0 && row.rejected == 0 &&
          row.cancelled == 0) {
        continue;  // lanes this tenant never used stay out of the output
      }
      TenantStats stats;
      stats.tenant = tenant;
      stats.lane = static_cast<QosClass>(lane);
      stats.queued = row.queued;
      stats.served = row.served;
      stats.rejected = row.rejected;
      stats.cancelled = row.cancelled;
      stats.cost_served = row.cost_served;
      stats.queue_p50_seconds = Percentile(row.waits, 0.50);
      stats.queue_p99_seconds = Percentile(row.waits, 0.99);
      rows.push_back(std::move(stats));
    }
  }
  return rows;
}

}  // namespace whyprov::qos
