#ifndef WHYPROV_QOS_TENANT_REGISTRY_H_
#define WHYPROV_QOS_TENANT_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <array>
#include <map>
#include <string>
#include <vector>

#include "qos/qos.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whyprov::qos {

/// One per-tenant/per-lane observability row, as surfaced in
/// ServiceStats::tenants, the C ABI (`whyprov_tenant_stats`), and the
/// appended per-tenant section of the STATS wire reply.
struct TenantStats {
  std::string tenant;  ///< "" is the default tenant
  QosClass lane = QosClass::kInteractive;
  std::uint64_t queued = 0;     ///< admitted, not yet completed
  std::uint64_t served = 0;     ///< completed (any terminal status but cancel)
  std::uint64_t rejected = 0;   ///< refused at admission
  std::uint64_t cancelled = 0;  ///< cancelled or deadline-exceeded
  double cost_served = 0;       ///< estimated cost of served requests
  double queue_p50_seconds = 0;  ///< median queue wait (sampled)
  double queue_p99_seconds = 0;  ///< p99 queue wait (sampled)
};

/// Exact per-(tenant, lane) serving counters plus a bounded ring of
/// queue-wait samples for the latency percentiles. One registry is
/// shared by every shard of a serving stack so the rows are exact
/// across the shared pool; all state sits behind one annotated mutex
/// (the touch per request is a handful of increments).
class TenantRegistry {
 public:
  /// A request was admitted and queued.
  void RecordQueued(const std::string& tenant, QosClass lane)
      EXCLUDES(mutex_);

  /// A request was refused at admission (never queued).
  void RecordRejected(const std::string& tenant, QosClass lane)
      EXCLUDES(mutex_);

  /// An admitted request reached its terminal state. `cancelled` covers
  /// cancellation and deadline expiry; everything else counts as
  /// served. `queue_seconds` feeds the wait-percentile ring.
  void RecordCompleted(const std::string& tenant, QosClass lane,
                       bool cancelled, double cost, double queue_seconds)
      EXCLUDES(mutex_);

  /// Snapshot of every row, sorted by (tenant, lane) for deterministic
  /// output; percentiles are computed over the current sample rings.
  std::vector<TenantStats> Snapshot() const EXCLUDES(mutex_);

 private:
  /// Queue-wait samples kept per row; enough for a stable p99 while
  /// bounding memory per tenant.
  static constexpr std::size_t kSampleCapacity = 512;

  struct Row {
    std::uint64_t queued = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cancelled = 0;
    double cost_served = 0;
    std::vector<double> waits;  ///< ring buffer, capacity kSampleCapacity
    std::size_t next_wait = 0;
  };

  Row& RowFor(const std::string& tenant, QosClass lane) REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  /// std::map for the sorted snapshot order.
  std::map<std::string, std::array<Row, kNumLanes>> rows_
      GUARDED_BY(mutex_);
};

}  // namespace whyprov::qos

#endif  // WHYPROV_QOS_TENANT_REGISTRY_H_
