#include "sat/clause.h"

#include <utility>

namespace whyprov::sat {

ClauseRef ClauseArena::Allocate(std::vector<Lit> lits, bool learnt) {
  const ClauseRef ref = static_cast<ClauseRef>(clauses_.size());
  Clause clause;
  clause.lits = std::move(lits);
  clause.learnt = learnt;
  clauses_.push_back(std::move(clause));
  return ref;
}

}  // namespace whyprov::sat
