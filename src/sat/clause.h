#ifndef WHYPROV_SAT_CLAUSE_H_
#define WHYPROV_SAT_CLAUSE_H_

#include <cstdint>
#include <vector>

#include "sat/types.h"

namespace whyprov::sat {

/// Reference to a clause stored in a `ClauseArena`.
using ClauseRef = std::uint32_t;

/// Sentinel for "no clause" (e.g. a decision's reason).
inline constexpr ClauseRef kNoClause = 0xffffffffu;

/// A clause plus the metadata the search maintains for it.
struct Clause {
  std::vector<Lit> lits;
  /// Learnt clauses participate in clause-database reduction.
  bool learnt = false;
  /// Tombstone set by the arena when the clause is deleted.
  bool deleted = false;
  /// Literal-block distance at learning time (Glucose's quality measure):
  /// the number of distinct decision levels among the clause's literals.
  std::int32_t lbd = 0;
  /// Bump-and-decay activity used to break LBD ties during reduction.
  double activity = 0.0;

  std::size_t size() const { return lits.size(); }
  Lit& operator[](std::size_t i) { return lits[i]; }
  Lit operator[](std::size_t i) const { return lits[i]; }
};

/// Owns all clauses of a solver. Deletion is logical (tombstones); the
/// arena is compacted implicitly by never traversing deleted clauses.
class ClauseArena {
 public:
  /// Allocates a clause; returns its reference.
  ClauseRef Allocate(std::vector<Lit> lits, bool learnt);

  /// Accesses a clause.
  Clause& At(ClauseRef ref) { return clauses_[ref]; }
  const Clause& At(ClauseRef ref) const { return clauses_[ref]; }

  /// Marks a clause deleted.
  void Delete(ClauseRef ref) { clauses_[ref].deleted = true; }

  /// Number of allocated (including deleted) clauses.
  std::size_t size() const { return clauses_.size(); }

 private:
  std::vector<Clause> clauses_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_CLAUSE_H_
