#include "sat/cnf_formula.h"

namespace whyprov::sat {

std::size_t CnfFormula::num_literals() const {
  std::size_t total = 0;
  for (const std::vector<Lit>& clause : clauses) total += clause.size();
  return total;
}

void CnfFormula::LoadInto(SolverInterface& solver) const {
  for (int v = 0; v < num_vars; ++v) solver.NewVar();
  for (const std::vector<Lit>& clause : clauses) {
    if (!solver.AddClause(clause)) return;
  }
  for (const auto& [var, prefer_true] : polarity_hints) {
    solver.SetPolarity(var, prefer_true);
  }
  for (const auto& [var, amount] : activity_hints) {
    solver.BumpActivityHint(var, amount);
  }
}

}  // namespace whyprov::sat
