#ifndef WHYPROV_SAT_CNF_FORMULA_H_
#define WHYPROV_SAT_CNF_FORMULA_H_

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "sat/solver_interface.h"
#include "sat/types.h"

namespace whyprov::sat {

/// A backend-neutral CNF formula plus optional search hints: the compile
/// artifact of the prepare/execute split. An encoder records variables,
/// clauses, and phase/activity hints once (via `ClauseRecorder`); each
/// execution then replays the formula into a fresh backend with
/// `LoadInto`. The struct is immutable after recording, so one formula can
/// back any number of concurrent solver instances.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
  /// SetPolarity hints recorded at encode time (see SolverInterface).
  std::vector<std::pair<Var, bool>> polarity_hints;
  /// BumpActivityHint hints recorded at encode time.
  std::vector<std::pair<Var, double>> activity_hints;
  /// True once an empty clause was recorded (trivially unsatisfiable).
  bool contains_empty_clause = false;

  std::size_t num_clauses() const { return clauses.size(); }

  /// Total literal count, for size reporting.
  std::size_t num_literals() const;

  /// Replays the formula into a fresh backend: creates `num_vars`
  /// variables, adds every clause, and forwards the recorded hints.
  /// Stops early (like the encoders do) once the backend reports the
  /// formula trivially unsatisfiable.
  void LoadInto(SolverInterface& solver) const;
};

/// A `SolverInterface` that solves nothing: it records every variable,
/// clause, and hint into a `CnfFormula`. Encoders written against the
/// solver interface (CnfEncoder, EncodeAcyclicity) thereby double as
/// formula compilers without any change.
class ClauseRecorder final : public SolverInterface {
 public:
  /// Records into `*out`, which must outlive the recorder and start empty.
  explicit ClauseRecorder(CnfFormula* out) : out_(out) {}

  Var NewVar() override { return out_->num_vars++; }
  int NumVars() const override { return out_->num_vars; }

  bool AddClause(std::vector<Lit> lits) override {
    if (lits.empty()) out_->contains_empty_clause = true;
    out_->clauses.push_back(std::move(lits));
    return !out_->contains_empty_clause;
  }

  /// A recorder cannot search; encoding code never calls Solve on it.
  SolveResult Solve(const std::vector<Lit>& assumptions = {}) override {
    (void)assumptions;
    return SolveResult::kUnknown;
  }

  LBool ModelValue(Var v) const override {
    (void)v;
    return LBool::kUndef;
  }

  const SolverStats& stats() const override { return stats_; }
  bool ok() const override { return !out_->contains_empty_clause; }
  std::string_view name() const override { return "recorder"; }

  void SetPolarity(Var v, bool prefer_true) override {
    out_->polarity_hints.emplace_back(v, prefer_true);
  }

  void BumpActivityHint(Var v, double amount) override {
    out_->activity_hints.emplace_back(v, amount);
  }

 private:
  CnfFormula* out_;
  SolverStats stats_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_CNF_FORMULA_H_
