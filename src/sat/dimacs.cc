#include "sat/dimacs.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace whyprov::sat {

util::Result<CnfFormula> ParseDimacs(std::string_view text) {
  CnfFormula formula;
  std::istringstream in{std::string(text)};
  std::string token;
  bool header_seen = false;
  std::vector<int> clause;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string kind;
      long vars = 0, clauses = 0;
      if (!(in >> kind >> vars >> clauses) || kind != "cnf") {
        return util::Status::Error("malformed DIMACS header");
      }
      formula.num_vars = static_cast<int>(vars);
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      return util::Status::Error("DIMACS clause before 'p cnf' header");
    }
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return util::Status::Error("malformed DIMACS literal '" + token + "'");
    }
    if (value == 0) {
      formula.clauses.push_back(clause);
      clause.clear();
    } else {
      if (std::abs(value) > formula.num_vars) {
        return util::Status::Error("literal exceeds declared variable count");
      }
      clause.push_back(static_cast<int>(value));
    }
  }
  if (!clause.empty()) {
    return util::Status::Error("last clause not terminated by 0");
  }
  return formula;
}

std::string WriteDimacs(const CnfFormula& formula) {
  std::string out = "p cnf " + std::to_string(formula.num_vars) + " " +
                    std::to_string(formula.clauses.size()) + "\n";
  for (const auto& clause : formula.clauses) {
    for (int lit : clause) {
      out += std::to_string(lit);
      out += ' ';
    }
    out += "0\n";
  }
  return out;
}

bool LoadIntoSolver(const CnfFormula& formula, SolverInterface& solver) {
  while (solver.NumVars() < formula.num_vars) solver.NewVar();
  for (const auto& clause : formula.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (int lit : clause) {
      lits.push_back(Lit::Make(std::abs(lit) - 1, lit < 0));
    }
    if (!solver.AddClause(std::move(lits))) return false;
  }
  return true;
}

bool BruteForceSat(const CnfFormula& formula, std::vector<bool>* model) {
  const int n = formula.num_vars;
  for (std::uint64_t assignment = 0;
       assignment < (std::uint64_t{1} << n); ++assignment) {
    bool all_satisfied = true;
    for (const auto& clause : formula.clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool value = (assignment >> v) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        all_satisfied = false;
        break;
      }
    }
    if (all_satisfied) {
      if (model != nullptr) {
        model->assign(n, false);
        for (int v = 0; v < n; ++v) (*model)[v] = (assignment >> v) & 1;
      }
      return true;
    }
  }
  return false;
}

}  // namespace whyprov::sat
