#ifndef WHYPROV_SAT_DIMACS_H_
#define WHYPROV_SAT_DIMACS_H_

#include <string>
#include <string_view>
#include <vector>

#include "sat/solver_interface.h"
#include "sat/types.h"
#include "util/status.h"

namespace whyprov::sat {

/// A CNF formula in a solver-independent form: clauses of DIMACS-style
/// signed literals (1-based; negative = negated). Used by tests, the
/// DIMACS reader/writer, and the exhaustive reference solver.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Parses DIMACS CNF text ("p cnf <vars> <clauses>" header, 'c' comments,
/// zero-terminated clauses).
util::Result<CnfFormula> ParseDimacs(std::string_view text);

/// Renders a formula as DIMACS CNF text.
std::string WriteDimacs(const CnfFormula& formula);

/// Loads a formula into `solver`, creating variables as needed so that
/// DIMACS variable i maps to solver variable i-1. Returns false if the
/// formula is trivially unsatisfiable.
bool LoadIntoSolver(const CnfFormula& formula, SolverInterface& solver);

/// Exhaustive truth-table satisfiability check (reference implementation
/// for property tests; practical up to ~24 variables). Returns a model as
/// sign-per-variable when satisfiable.
bool BruteForceSat(const CnfFormula& formula,
                   std::vector<bool>* model = nullptr);

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_DIMACS_H_
