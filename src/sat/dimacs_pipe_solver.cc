#include "sat/dimacs_pipe_solver.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "sat/dimacs.h"

namespace whyprov::sat {

namespace {

/// Writes the formula (reusing the shared DIMACS writer) to a fresh
/// temporary file; returns "" on failure.
std::string WriteTempCnf(int num_vars,
                         const std::vector<std::vector<Lit>>& clauses,
                         const std::vector<Lit>& assumptions) {
  char path[] = "/tmp/whyprov-cnf-XXXXXX";
  const int fd = mkstemp(path);
  if (fd < 0) return "";
  CnfFormula formula;
  formula.num_vars = num_vars;
  formula.clauses.reserve(clauses.size() + assumptions.size());
  auto to_dimacs = [](Lit l) {
    return l.negated() ? -(l.var() + 1) : l.var() + 1;
  };
  for (const std::vector<Lit>& clause : clauses) {
    std::vector<int> dimacs_clause;
    dimacs_clause.reserve(clause.size());
    for (Lit l : clause) dimacs_clause.push_back(to_dimacs(l));
    formula.clauses.push_back(std::move(dimacs_clause));
  }
  for (Lit l : assumptions) formula.clauses.push_back({to_dimacs(l)});
  const std::string text = WriteDimacs(formula);
  const bool wrote =
      write(fd, text.data(), text.size()) == static_cast<ssize_t>(text.size());
  close(fd);
  if (!wrote) {
    unlink(path);
    return "";
  }
  return path;
}

}  // namespace

DimacsPipeSolver::DimacsPipeSolver(std::string command, SolverOptions options)
    : command_(std::move(command)) {
  (void)options;
}

Var DimacsPipeSolver::NewVar() {
  model_.push_back(LBool::kUndef);
  return num_vars_++;
}

bool DimacsPipeSolver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  clauses_.push_back(std::move(lits));
  return true;
}

SolveResult DimacsPipeSolver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  // A spawned external process cannot be interrupted mid-run, so the
  // cooperative check only gates Solve() entry: a cancelled or expired
  // request at least skips the dump + spawn entirely.
  if (InterruptRequested()) return SolveResult::kUnknown;
  const std::string path = WriteTempCnf(num_vars_, clauses_, assumptions);
  if (path.empty()) return SolveResult::kUnknown;
  const std::string invocation = command_ + " " + path + " 2>/dev/null";
  FILE* pipe = popen(invocation.c_str(), "r");
  if (pipe == nullptr) {
    unlink(path.c_str());
    return SolveResult::kUnknown;
  }
  std::string output;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  pclose(pipe);
  unlink(path.c_str());

  SolveResult result = SolveResult::kUnknown;
  std::vector<LBool> model(num_vars_, LBool::kFalse);
  bool saw_model_literal = num_vars_ == 0;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      if (token == "s" || token == "v") continue;
      if (token == "UNSATISFIABLE" || token == "UNSAT") {
        result = SolveResult::kUnsat;
      } else if (token == "SATISFIABLE" || token == "SAT") {
        result = SolveResult::kSat;
      } else {
        // A model literal (competition "v" lines or MiniSat's model line).
        char* end = nullptr;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || value == 0) continue;
        const long var = (value > 0 ? value : -value) - 1;
        if (var >= 0 && var < num_vars_) {
          model[var] = value > 0 ? LBool::kTrue : LBool::kFalse;
          saw_model_literal = true;
        }
      }
    }
  }
  // A SAT answer without any model literals (e.g. a solver that writes
  // the model elsewhere) is unusable: treating the all-false default as a
  // model would fabricate wrong members upstream. Report kUnknown.
  if (result == SolveResult::kSat && !saw_model_literal) {
    return SolveResult::kUnknown;
  }
  if (result == SolveResult::kSat) model_ = std::move(model);
  return result;
}

}  // namespace whyprov::sat
