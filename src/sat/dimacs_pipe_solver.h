#ifndef WHYPROV_SAT_DIMACS_PIPE_SOLVER_H_
#define WHYPROV_SAT_DIMACS_PIPE_SOLVER_H_

#include <string>
#include <string_view>
#include <vector>

#include "sat/solver_interface.h"
#include "sat/types.h"

namespace whyprov::sat {

/// An external-process backend (registry name "dimacs-pipe"): each Solve()
/// writes the current formula (plus assumptions as unit clauses) to a
/// temporary DIMACS CNF file, runs `<command> <file>`, and parses the
/// solver's stdout. Both the SAT-competition output convention
/// ("s SATISFIABLE" + "v" model lines) and bare
/// "SATISFIABLE"/"UNSATISFIABLE" tokens are understood; the solver must
/// print the model literals to stdout (a SAT answer without a model is
/// reported as kUnknown — wrap solvers that write the model to a file,
/// like plain minisat, in a script that cats it).
///
/// The factory constructs it from the WHYPROV_DIMACS_SOLVER environment
/// variable, so e.g.
///
///   WHYPROV_DIMACS_SOLVER=kissat ./explain_cli ... --backend dimacs-pipe
///
/// plugs any drop-in DIMACS solver into the provenance pipeline without a
/// recompile. Process spawning per Solve() makes it a poor fit for the
/// many-small-solves enumeration loop; it shines for single hard decision
/// calls.
class DimacsPipeSolver : public SolverInterface {
 public:
  /// `command` is the solver invocation prefix; the CNF path is appended.
  explicit DimacsPipeSolver(std::string command,
                            SolverOptions options = SolverOptions());

  DimacsPipeSolver(const DimacsPipeSolver&) = delete;
  DimacsPipeSolver& operator=(const DimacsPipeSolver&) = delete;

  Var NewVar() override;
  int NumVars() const override { return num_vars_; }
  bool AddClause(std::vector<Lit> lits) override;
  SolveResult Solve(const std::vector<Lit>& assumptions = {}) override;
  LBool ModelValue(Var v) const override { return model_[v]; }
  const SolverStats& stats() const override { return stats_; }
  bool ok() const override { return ok_; }
  std::string_view name() const override { return "dimacs-pipe"; }

  /// The configured solver command (for diagnostics).
  const std::string& command() const { return command_; }

 private:
  std::string command_;
  int num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<LBool> model_;
  SolverStats stats_;
  bool ok_ = true;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_DIMACS_PIPE_SOLVER_H_
