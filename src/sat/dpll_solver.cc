#include "sat/dpll_solver.h"

#include <algorithm>
#include <utility>

namespace whyprov::sat {

DpllSolver::DpllSolver(SolverOptions options) : options_(options) {}

Var DpllSolver::NewVar() {
  prefer_true_.push_back(false);
  model_.push_back(LBool::kUndef);
  return num_vars_++;
}

bool DpllSolver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  // Level-0 simplification: drop duplicates, detect tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 1; i < lits.size(); ++i) {
    if (lits[i].var() == lits[i - 1].var()) return true;  // l and ~l
  }
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  clauses_.push_back(std::move(lits));
  return true;
}

bool DpllSolver::Propagate(std::vector<LBool>& assigns, bool* satisfied,
                           Var* branch_var) {
  bool changed = true;
  while (changed) {
    changed = false;
    *satisfied = true;
    *branch_var = kUndefVar;
    for (const std::vector<Lit>& clause : clauses_) {
      int num_undef = 0;
      Lit undef_lit;
      bool clause_satisfied = false;
      for (Lit l : clause) {
        const LBool value = EvalLit(assigns[l.var()], l);
        if (value == LBool::kTrue) {
          clause_satisfied = true;
          break;
        }
        if (value == LBool::kUndef) {
          ++num_undef;
          undef_lit = l;
        }
      }
      if (clause_satisfied) continue;
      if (num_undef == 0) {
        ++stats_.conflicts;
        return false;  // conflict
      }
      *satisfied = false;
      if (num_undef == 1) {
        assigns[undef_lit.var()] =
            undef_lit.negated() ? LBool::kFalse : LBool::kTrue;
        ++stats_.propagations;
        changed = true;
      } else if (*branch_var == kUndefVar) {
        *branch_var = undef_lit.var();
      }
    }
  }
  return true;
}

bool DpllSolver::Search(std::vector<LBool>& assigns) {
  if (interrupted_) return false;
  if ((++poll_steps_ & 63) == 0 && InterruptRequested()) {
    interrupted_ = true;
    return false;
  }
  bool satisfied = false;
  Var branch = kUndefVar;
  if (!Propagate(assigns, &satisfied, &branch)) return false;
  if (satisfied) {
    model_ = assigns;
    // Pin don't-care variables so ModelValue never reports kUndef.
    for (Var v = 0; v < num_vars_; ++v) {
      if (model_[v] == LBool::kUndef) {
        model_[v] = prefer_true_[v] ? LBool::kTrue : LBool::kFalse;
      }
    }
    return true;
  }
  // Propagation left an unsatisfied clause with >= 2 undefined literals.
  ++stats_.decisions;
  const bool first_phase = prefer_true_[branch];
  for (const bool phase : {first_phase, !first_phase}) {
    std::vector<LBool> copy = assigns;
    copy[branch] = phase ? LBool::kTrue : LBool::kFalse;
    if (Search(copy)) return true;
  }
  return false;
}

SolveResult DpllSolver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  interrupted_ = false;
  if (InterruptRequested()) return SolveResult::kUnknown;
  std::vector<LBool> assigns(num_vars_, LBool::kUndef);
  for (Lit l : assumptions) {
    const LBool forced = l.negated() ? LBool::kFalse : LBool::kTrue;
    if (assigns[l.var()] != LBool::kUndef && assigns[l.var()] != forced) {
      return SolveResult::kUnsat;
    }
    assigns[l.var()] = forced;
  }
  if (Search(assigns)) return SolveResult::kSat;
  return interrupted_ ? SolveResult::kUnknown : SolveResult::kUnsat;
}

}  // namespace whyprov::sat
