#ifndef WHYPROV_SAT_DPLL_SOLVER_H_
#define WHYPROV_SAT_DPLL_SOLVER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "sat/solver_interface.h"
#include "sat/types.h"

namespace whyprov::sat {

/// A plain DPLL solver (registry name "dpll"): unit propagation plus
/// chronological backtracking, no clause learning. Deliberately simple —
/// it exists as an independently-implemented second backend so the
/// provenance layer can be cross-checked against the CDCL solver, and as
/// a reference for plugging further backends into `SolverFactory`.
///
/// Every Solve() restarts from scratch over the current clause set, which
/// makes incremental blocking-clause enumeration trivially correct (if
/// quadratically slower than CDCL). Practical for the small-to-medium
/// formulas the tests use; do not point it at a 100k-variable encoding.
class DpllSolver : public SolverInterface {
 public:
  explicit DpllSolver(SolverOptions options = SolverOptions());

  DpllSolver(const DpllSolver&) = delete;
  DpllSolver& operator=(const DpllSolver&) = delete;

  Var NewVar() override;
  int NumVars() const override { return num_vars_; }
  bool AddClause(std::vector<Lit> lits) override;
  SolveResult Solve(const std::vector<Lit>& assumptions = {}) override;
  LBool ModelValue(Var v) const override { return model_[v]; }
  const SolverStats& stats() const override { return stats_; }
  bool ok() const override { return ok_; }
  std::string_view name() const override { return "dpll"; }

  /// Honoured: branching on `v` tries `prefer_true` first.
  void SetPolarity(Var v, bool prefer_true) override {
    prefer_true_[v] = prefer_true;
  }

 private:
  /// Recursive DPLL over a copy-per-branch assignment vector. Fills
  /// `model_` and returns true when an extension of `assigns` satisfies
  /// every clause.
  bool Search(std::vector<LBool>& assigns);

  /// Runs unit propagation to fixpoint; returns false on conflict. When
  /// the formula is fully satisfied, sets `*satisfied` and leaves
  /// `*branch_var` untouched; otherwise `*branch_var` is an unassigned
  /// variable of some unsatisfied clause.
  bool Propagate(std::vector<LBool>& assigns, bool* satisfied,
                 Var* branch_var);

  SolverOptions options_;
  int num_vars_ = 0;
  /// Set when the interrupt check fired mid-search: the enclosing Solve()
  /// reports kUnknown instead of treating the abandoned branch as UNSAT.
  bool interrupted_ = false;
  /// Amortises the interrupt poll to every 64th Search() node.
  std::uint64_t poll_steps_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<bool> prefer_true_;
  std::vector<LBool> model_;
  SolverStats stats_;
  bool ok_ = true;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_DPLL_SOLVER_H_
