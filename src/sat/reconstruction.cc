#include "sat/reconstruction.h"

namespace whyprov::sat {

namespace {

/// A literal's value under the (possibly partial) model, with kUndef
/// treated as false — the backend leaves a variable undefined only when
/// nothing constrains it, so either completion is a model and the
/// deterministic choice keeps reconstruction reproducible.
bool LitTrue(const std::vector<LBool>& model, Lit lit) {
  const LBool value = model[static_cast<std::size_t>(lit.var())];
  if (value == LBool::kUndef) return lit.negated();
  return EvalLit(value, lit) == LBool::kTrue;
}

}  // namespace

void ReconstructionStack::Extend(std::vector<LBool>& model) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const Entry& entry = *it;
    const auto v = static_cast<std::size_t>(entry.var);
    switch (entry.kind) {
      case Entry::kUnit:
        model[v] = entry.value ? LBool::kTrue : LBool::kFalse;
        break;
      case Entry::kEquiv:
        model[v] = LitTrue(model, entry.rep) ? LBool::kTrue : LBool::kFalse;
        break;
      case Entry::kEliminated: {
        // v = false satisfies every clause that held ~v; flip to true iff
        // a clause that held v is not covered by its other literals.
        bool value = false;
        for (const std::vector<Lit>& clause : entry.clauses) {
          bool satisfied = false;
          for (Lit lit : clause) {
            if (LitTrue(model, lit)) {
              satisfied = true;
              break;
            }
          }
          if (!satisfied) {
            value = true;
            break;
          }
        }
        model[v] = value ? LBool::kTrue : LBool::kFalse;
        break;
      }
    }
  }
}

}  // namespace whyprov::sat
