#ifndef WHYPROV_SAT_RECONSTRUCTION_H_
#define WHYPROV_SAT_RECONSTRUCTION_H_

#include <cstddef>
#include <vector>

#include "sat/types.h"

namespace whyprov::sat {

/// The witness side of CNF simplification (sat/simplify.h): a stack of
/// "how to recover the value of a removed variable" records, pushed in
/// the chronological order the simplifier removed variables and replayed
/// in reverse by `Extend`. Every model of the simplified formula,
/// translated back to the surviving original variables, extends through
/// this stack to a full model of the *original* formula — the invariant
/// the enumeration layer needs to read hyperedge/node witnesses that the
/// simplifier substituted or eliminated away.
///
/// Entry kinds and their replay rules (all literals are in the original
/// variable space):
///
///   * kUnit(v, value): unit propagation (or failed-literal probing)
///     proved v takes `value` in every model. Replay sets it.
///   * kEquiv(v, rep): the binary implication graph proved v equivalent
///     to the literal `rep`; the simplifier substituted rep for v
///     everywhere. Replay evaluates rep (already recovered — it survived
///     or was removed later, hence replayed earlier) and copies it.
///   * kEliminated(v, clauses): bounded variable elimination removed v by
///     clause distribution; `clauses` are the clauses that contained the
///     positive literal v at elimination time, minus that literal.
///     Replay defaults v to false and flips it to true iff some recorded
///     clause is unsatisfied by the other literals — the classic
///     SatELite/CaDiCaL witness rule (if both polarities were violated,
///     the corresponding resolvent would be falsified, contradicting the
///     model).
///
/// The stack is immutable after the simplifier finishes, so one stack can
/// serve any number of concurrent executions.
class ReconstructionStack {
 public:
  void PushUnit(Var v, bool value) {
    entries_.push_back(Entry{Entry::kUnit, v, kUndefLit, value, {}});
  }

  void PushEquiv(Var v, Lit rep) {
    entries_.push_back(Entry{Entry::kEquiv, v, rep, false, {}});
  }

  void PushEliminated(Var v,
                      std::vector<std::vector<Lit>> positive_clauses) {
    entries_.push_back(Entry{Entry::kEliminated, v, kUndefLit, false,
                             std::move(positive_clauses)});
  }

  /// Extends `model` (indexed by original variable, kUndef where the
  /// simplifier removed the variable) to cover every removed variable.
  /// Replays in reverse push order; literals a record depends on are
  /// defined by then (they were alive when it was pushed). A dependency
  /// that is still kUndef (an unconstrained variable the backend never
  /// assigned) reads as false.
  void Extend(std::vector<LBool>& model) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    enum Kind { kUnit, kEquiv, kEliminated };
    Kind kind;
    Var var;
    Lit rep;     ///< kEquiv only
    bool value;  ///< kUnit only
    std::vector<std::vector<Lit>> clauses;  ///< kEliminated only
  };

  std::vector<Entry> entries_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_RECONSTRUCTION_H_
