#include "sat/simplify.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace whyprov::sat {

namespace {

struct Budgets {
  int max_rounds;
  std::int64_t probe;
  std::int64_t subsume;
  std::int64_t eliminate;
  double time_seconds;
};

Budgets ResolveBudgets(const SimplifyOptions& options) {
  const bool full = options.mode == SimplifyMode::kFull;
  Budgets budgets;
  budgets.max_rounds =
      options.max_rounds > 0 ? options.max_rounds : (full ? 3 : 1);
  budgets.probe = options.probe_budget > 0 ? options.probe_budget
                                           : (full ? 2'000'000 : 200'000);
  budgets.subsume = options.subsume_budget > 0 ? options.subsume_budget
                                               : (full ? 5'000'000 : 500'000);
  budgets.eliminate = options.eliminate_budget > 0
                          ? options.eliminate_budget
                          : (full ? 2'000'000 : 200'000);
  budgets.time_seconds = options.time_budget_seconds > 0
                             ? options.time_budget_seconds
                             : (full ? 2.0 : 0.25);
  return budgets;
}

std::uint64_t SigOf(const std::vector<Lit>& lits) {
  std::uint64_t sig = 0;
  for (Lit lit : lits) {
    sig |= std::uint64_t{1} << (static_cast<std::uint32_t>(lit.index()) & 63u);
  }
  return sig;
}

/// The working clause database: tombstoned clauses plus lazy occurrence
/// lists (entries may point at deleted clauses or at clauses that no longer
/// contain the literal; every consumer re-validates).
struct Clause {
  std::vector<Lit> lits;  ///< Sorted by literal code, deduplicated.
  std::uint64_t sig = 0;
  bool deleted = false;
};

class Simplifier {
 public:
  Simplifier(const CnfFormula& input, const std::vector<Var>& frozen,
             const std::vector<Var>& eliminable, const Budgets& budgets)
      : input_(input),
        budgets_(budgets),
        num_vars_(input.num_vars),
        assign_(static_cast<std::size_t>(input.num_vars), LBool::kUndef),
        removed_(static_cast<std::size_t>(input.num_vars), 0),
        frozen_(static_cast<std::size_t>(input.num_vars), 0),
        eliminable_(static_cast<std::size_t>(input.num_vars), 0),
        occs_(2 * static_cast<std::size_t>(input.num_vars)) {
    for (Var v : frozen) {
      if (v >= 0 && v < num_vars_) frozen_[static_cast<std::size_t>(v)] = 1;
    }
    for (Var v : eliminable) {
      if (v >= 0 && v < num_vars_) eliminable_[static_cast<std::size_t>(v)] = 1;
    }
  }

  SimplifyResult Run() {
    stats_.vars_before = static_cast<std::uint64_t>(num_vars_);
    stats_.clauses_before = input_.num_clauses();
    stats_.literals_before = input_.num_literals();

    Ingest();
    Propagate();
    std::uint64_t previous = ChangeCounter();
    for (int round = 0; round < budgets_.max_rounds && !unsat_; ++round) {
      ++stats_.rounds;
      if (!TimeLeft()) break;
      ProbeRound();
      if (unsat_ || !TimeLeft()) break;
      CollapseEquivalences();
      if (unsat_ || !TimeLeft()) break;
      SubsumeRound();
      if (unsat_ || !TimeLeft()) break;
      EliminateRound();
      if (unsat_) break;
      const std::uint64_t now = ChangeCounter();
      if (now == previous) break;
      previous = now;
    }
    return BuildResult();
  }

 private:
  // --- shared machinery ----------------------------------------------------

  bool TimeLeft() {
    if (timer_.ElapsedSeconds() < budgets_.time_seconds) return true;
    stats_.budget_hit = true;
    return false;
  }

  std::uint64_t ChangeCounter() const {
    return stats_.units_fixed + stats_.equivalences + stats_.clauses_subsumed +
           stats_.clauses_strengthened + stats_.vars_eliminated;
  }

  bool LitSatisfied(Lit lit) const {
    return EvalLit(assign_[static_cast<std::size_t>(lit.var())], lit) ==
           LBool::kTrue;
  }

  bool LitFalsified(Lit lit) const {
    return EvalLit(assign_[static_cast<std::size_t>(lit.var())], lit) ==
           LBool::kFalse;
  }

  void Enqueue(Lit lit) { queue_.push_back(lit); }

  /// Normalizes and stores a clause, evaluating it against the current
  /// assignment. Satisfied clauses and tautologies are dropped; an empty
  /// clause flips the UNSAT flag; a unit clause is stored *and* enqueued
  /// (propagation deletes it once the assignment lands).
  void AddClauseInternal(std::vector<Lit> lits) {
    std::vector<Lit> kept;
    kept.reserve(lits.size());
    for (Lit lit : lits) {
      if (LitSatisfied(lit)) return;
      if (!LitFalsified(lit)) kept.push_back(lit);
    }
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
      if (kept[i].var() == kept[i + 1].var()) return;  // tautology
    }
    if (kept.empty()) {
      unsat_ = true;
      return;
    }
    if (kept.size() == 1) Enqueue(kept[0]);
    const int index = static_cast<int>(clauses_.size());
    Clause clause;
    clause.sig = SigOf(kept);
    clause.lits = std::move(kept);
    clauses_.push_back(std::move(clause));
    for (Lit lit : clauses_.back().lits) {
      occs_[static_cast<std::size_t>(lit.index())].push_back(index);
    }
  }

  void Ingest() {
    if (input_.contains_empty_clause) unsat_ = true;
    clauses_.reserve(input_.clauses.size());
    for (const std::vector<Lit>& clause : input_.clauses) {
      if (unsat_) return;
      AddClauseInternal(clause);
    }
  }

  bool ClauseContains(const Clause& clause, Lit lit) const {
    return std::binary_search(clause.lits.begin(), clause.lits.end(), lit);
  }

  void DeleteClause(int index) {
    clauses_[static_cast<std::size_t>(index)].deleted = true;
  }

  /// Removes `lit` from a live clause known to contain it.
  void ShrinkClause(int index, Lit lit) {
    Clause& clause = clauses_[static_cast<std::size_t>(index)];
    clause.lits.erase(
        std::find(clause.lits.begin(), clause.lits.end(), lit));
    clause.sig = SigOf(clause.lits);
    if (clause.lits.empty()) {
      unsat_ = true;
    } else if (clause.lits.size() == 1) {
      Enqueue(clause.lits[0]);
    }
  }

  /// Drains the unit queue: assigns each literal, deletes satisfied
  /// clauses, and strips falsified literals (possibly cascading).
  void Propagate() {
    while (queue_head_ < queue_.size() && !unsat_) {
      const Lit lit = queue_[queue_head_++];
      const auto v = static_cast<std::size_t>(lit.var());
      const LBool want = lit.negated() ? LBool::kFalse : LBool::kTrue;
      if (assign_[v] != LBool::kUndef) {
        if (assign_[v] != want) unsat_ = true;
        continue;
      }
      assign_[v] = want;
      ++stats_.units_fixed;
      if (!frozen_[v] && !removed_[v]) {
        // Frozen variables keep their column (the compaction step emits an
        // explicit unit clause); everything else is recovered via the stack.
        stack_.PushUnit(lit.var(), want == LBool::kTrue);
        removed_[v] = 1;
      }
      for (int index : occs_[static_cast<std::size_t>(lit.index())]) {
        Clause& clause = clauses_[static_cast<std::size_t>(index)];
        if (clause.deleted || !ClauseContains(clause, lit)) continue;
        clause.deleted = true;
      }
      const Lit falsified = ~lit;
      for (int index : occs_[static_cast<std::size_t>(falsified.index())]) {
        Clause& clause = clauses_[static_cast<std::size_t>(index)];
        if (clause.deleted || !ClauseContains(clause, falsified)) continue;
        ShrinkClause(index, falsified);
        if (unsat_) return;
      }
    }
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
    }
  }

  // --- failed-literal probing ----------------------------------------------

  /// Propagates `probe` on a temporary trail without touching any clause;
  /// returns true iff propagation hits a conflict. Always rolls back.
  bool ProbeConflicts(Lit probe, std::int64_t& budget) {
    probe_trail_.clear();
    probe_queue_.clear();
    probe_queue_.push_back(probe);
    bool conflict = false;
    for (std::size_t head = 0; head < probe_queue_.size() && !conflict;
         ++head) {
      const Lit lit = probe_queue_[head];
      const auto v = static_cast<std::size_t>(lit.var());
      const LBool want = lit.negated() ? LBool::kFalse : LBool::kTrue;
      if (assign_[v] != LBool::kUndef) {
        if (assign_[v] != want) conflict = true;
        continue;
      }
      assign_[v] = want;
      probe_trail_.push_back(lit.var());
      const Lit falsified = ~lit;
      for (int index : occs_[static_cast<std::size_t>(falsified.index())]) {
        const Clause& clause = clauses_[static_cast<std::size_t>(index)];
        if (clause.deleted) continue;
        --budget;
        bool satisfied = false;
        Lit unassigned = kUndefLit;
        int num_unassigned = 0;
        for (Lit other : clause.lits) {
          const LBool value =
              EvalLit(assign_[static_cast<std::size_t>(other.var())], other);
          if (value == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (value == LBool::kUndef) {
            ++num_unassigned;
            unassigned = other;
          }
        }
        if (satisfied) continue;
        if (num_unassigned == 0) {
          conflict = true;
          break;
        }
        if (num_unassigned == 1) probe_queue_.push_back(unassigned);
      }
    }
    for (Var v : probe_trail_) {
      assign_[static_cast<std::size_t>(v)] = LBool::kUndef;
    }
    return conflict;
  }

  void ProbeRound() {
    std::int64_t budget = budgets_.probe;
    for (Var v = 0; v < num_vars_; ++v) {
      if (budget <= 0) {
        stats_.budget_hit = true;
        return;
      }
      if ((v & 0xFF) == 0 && !TimeLeft()) return;
      const auto index = static_cast<std::size_t>(v);
      if (removed_[index] || assign_[index] != LBool::kUndef) continue;
      for (const bool negated : {false, true}) {
        if (assign_[index] != LBool::kUndef) break;
        const Lit probe = Lit::Make(v, negated);
        if (ProbeConflicts(probe, budget)) {
          ++stats_.failed_literals;
          Enqueue(~probe);
          Propagate();
          if (unsat_) return;
        }
        if (budget <= 0) break;
      }
    }
  }

  // --- equivalent-literal substitution -------------------------------------

  /// Rewrites every live occurrence of ±`v` into the corresponding phase of
  /// `rep` (where v ≡ rep). Clauses that become tautologies are deleted.
  void SubstituteVar(Var v, Lit rep) {
    for (const bool negated : {false, true}) {
      const Lit from = Lit::Make(v, negated);
      const Lit to = negated ? ~rep : rep;
      // Copy: rewriting appends to `to`'s occurrence list, never `from`'s.
      const std::vector<int> occ =
          occs_[static_cast<std::size_t>(from.index())];
      for (int index : occ) {
        Clause& clause = clauses_[static_cast<std::size_t>(index)];
        if (clause.deleted || !ClauseContains(clause, from)) continue;
        if (ClauseContains(clause, ~to)) {
          // v ∨ ¬rep ∨ … is a tautology under v ≡ rep.
          clause.deleted = true;
          continue;
        }
        clause.lits.erase(
            std::find(clause.lits.begin(), clause.lits.end(), from));
        if (!ClauseContains(clause, to)) {
          clause.lits.insert(
              std::upper_bound(clause.lits.begin(), clause.lits.end(), to),
              to);
          occs_[static_cast<std::size_t>(to.index())].push_back(index);
        }
        clause.sig = SigOf(clause.lits);
        if (clause.lits.size() == 1) Enqueue(clause.lits[0]);
      }
    }
  }

  /// Tarjan SCC over the binary implication graph; every nontrivial
  /// component is collapsed onto a representative literal (frozen variables
  /// preferred so they are never substituted away).
  void CollapseEquivalences() {
    const std::size_t num_lits = 2 * static_cast<std::size_t>(num_vars_);
    std::vector<std::vector<std::int32_t>> adj(num_lits);
    bool any_binary = false;
    for (const Clause& clause : clauses_) {
      if (clause.deleted || clause.lits.size() != 2) continue;
      const Lit a = clause.lits[0];
      const Lit b = clause.lits[1];
      adj[static_cast<std::size_t>((~a).index())].push_back(b.index());
      adj[static_cast<std::size_t>((~b).index())].push_back(a.index());
      any_binary = true;
    }
    if (!any_binary) return;

    constexpr std::int32_t kUnvisited = -1;
    std::vector<std::int32_t> order(num_lits, kUnvisited);
    std::vector<std::int32_t> low(num_lits, 0);
    std::vector<std::int32_t> comp(num_lits, kUnvisited);
    std::vector<std::int32_t> scc_stack;
    std::vector<std::uint8_t> on_stack(num_lits, 0);
    std::int32_t next_order = 0;
    std::int32_t next_comp = 0;

    struct Frame {
      std::int32_t node;
      std::size_t edge;
    };
    std::vector<Frame> dfs;
    for (std::size_t root = 0; root < num_lits; ++root) {
      if (order[root] != kUnvisited) continue;
      dfs.push_back(Frame{static_cast<std::int32_t>(root), 0});
      while (!dfs.empty()) {
        Frame& frame = dfs.back();
        const auto node = static_cast<std::size_t>(frame.node);
        if (frame.edge == 0) {
          order[node] = low[node] = next_order++;
          scc_stack.push_back(frame.node);
          on_stack[node] = 1;
        }
        bool descended = false;
        while (frame.edge < adj[node].size()) {
          const std::int32_t next = adj[node][frame.edge++];
          const auto next_index = static_cast<std::size_t>(next);
          if (order[next_index] == kUnvisited) {
            dfs.push_back(Frame{next, 0});
            descended = true;
            break;
          }
          if (on_stack[next_index]) {
            low[node] = std::min(low[node], order[next_index]);
          }
        }
        if (descended) continue;
        if (low[node] == order[node]) {
          while (true) {
            const std::int32_t member = scc_stack.back();
            scc_stack.pop_back();
            on_stack[static_cast<std::size_t>(member)] = 0;
            comp[static_cast<std::size_t>(member)] = next_comp;
            if (member == frame.node) break;
          }
          ++next_comp;
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const auto parent = static_cast<std::size_t>(dfs.back().node);
          low[parent] = std::min(low[parent], low[node]);
        }
      }
    }

    std::vector<std::vector<Lit>> members(static_cast<std::size_t>(next_comp));
    for (std::size_t code = 0; code < num_lits; ++code) {
      const Lit lit = Lit::Make(static_cast<Var>(code / 2), (code & 1) != 0);
      const auto v = static_cast<std::size_t>(lit.var());
      if (removed_[v] || assign_[v] != LBool::kUndef) continue;
      members[static_cast<std::size_t>(comp[code])].push_back(lit);
    }

    std::vector<std::uint8_t> handled(static_cast<std::size_t>(next_comp), 0);
    for (std::size_t code = 0; code < num_lits; ++code) {
      const Lit lit = Lit::Make(static_cast<Var>(code / 2), (code & 1) != 0);
      const auto v = static_cast<std::size_t>(lit.var());
      if (removed_[v] || assign_[v] != LBool::kUndef) continue;
      const auto c = static_cast<std::size_t>(comp[code]);
      if (handled[c] || members[c].size() < 2) continue;
      const auto mirror = static_cast<std::size_t>(comp[(~lit).index()]);
      if (mirror == c) {
        unsat_ = true;  // l ≡ ¬l
        return;
      }
      handled[c] = 1;
      handled[mirror] = 1;
      // Representative: frozen variable if the class has one, lowest
      // variable id as tie-break. Lit order within a class is by code, so
      // the scan is deterministic.
      Lit rep = kUndefLit;
      for (Lit member : members[c]) {
        if (!rep.defined()) {
          rep = member;
          continue;
        }
        const bool member_frozen =
            frozen_[static_cast<std::size_t>(member.var())] != 0;
        const bool rep_frozen =
            frozen_[static_cast<std::size_t>(rep.var())] != 0;
        if (member_frozen != rep_frozen) {
          if (member_frozen) rep = member;
        } else if (member.var() < rep.var()) {
          rep = member;
        }
      }
      for (Lit member : members[c]) {
        if (member == rep) continue;
        const Var u = member.var();
        const Lit rep_for_u = member.negated() ? ~rep : rep;  // u ≡ rep_for_u
        SubstituteVar(u, rep_for_u);
        if (frozen_[static_cast<std::size_t>(u)]) {
          // A frozen member stays alive: tie it to the representative with
          // two binaries so it remains functionally determined, no stack
          // entry (the solver assigns it directly).
          AddClauseInternal({Lit::Make(u, true), rep_for_u});
          AddClauseInternal({Lit::Make(u, false), ~rep_for_u});
        } else {
          stack_.PushEquiv(u, rep_for_u);
          removed_[static_cast<std::size_t>(u)] = 1;
          ++stats_.equivalences;
        }
        if (unsat_) return;
      }
    }
    Propagate();
  }

  // --- subsumption + self-subsuming resolution -----------------------------

  bool IsSubset(const std::vector<Lit>& small, const std::vector<Lit>& big,
                Lit flipped) const {
    // Checks (small \ {flipped}) ∪ {~flipped} ⊆ big; pass kUndefLit for a
    // plain subset test. Both sides are sorted, but the flip breaks order
    // on the left, so each literal is looked up individually.
    for (Lit lit : small) {
      const Lit wanted = lit == flipped ? ~lit : lit;
      if (!std::binary_search(big.begin(), big.end(), wanted)) return false;
    }
    return true;
  }

  void SubsumeRound() {
    std::int64_t budget = budgets_.subsume;
    const auto num_clauses = static_cast<int>(clauses_.size());
    for (int ci = 0; ci < num_clauses; ++ci) {
      if (budget <= 0) {
        stats_.budget_hit = true;
        break;
      }
      if ((ci & 0x3F) == 0 && !TimeLeft()) break;
      const Clause& self = clauses_[static_cast<std::size_t>(ci)];
      if (self.deleted || self.lits.empty()) continue;
      // Pivot on the literal with the shortest occurrence list.
      Lit pivot = self.lits[0];
      for (Lit lit : self.lits) {
        if (occs_[static_cast<std::size_t>(lit.index())].size() <
            occs_[static_cast<std::size_t>(pivot.index())].size()) {
          pivot = lit;
        }
      }
      for (int other : occs_[static_cast<std::size_t>(pivot.index())]) {
        if (other == ci) continue;
        Clause& candidate = clauses_[static_cast<std::size_t>(other)];
        if (candidate.deleted || candidate.lits.size() < self.lits.size()) {
          continue;
        }
        if ((self.sig & ~candidate.sig) != 0) continue;
        --budget;
        if (IsSubset(self.lits, candidate.lits, kUndefLit)) {
          candidate.deleted = true;
          ++stats_.clauses_subsumed;
        }
      }
      // Self-subsuming resolution: if flipping one literal of this clause
      // makes it a subset of another, that literal's negation can be
      // deleted from the other clause.
      for (Lit flip : self.lits) {
        // Signature of (self \ {flip}) ∪ {~flip}.
        std::uint64_t flip_sig =
            std::uint64_t{1}
            << (static_cast<std::uint32_t>((~flip).index()) & 63u);
        for (Lit lit : self.lits) {
          if (lit == flip) continue;
          flip_sig |= std::uint64_t{1}
                      << (static_cast<std::uint32_t>(lit.index()) & 63u);
        }
        for (int other : occs_[static_cast<std::size_t>((~flip).index())]) {
          if (other == ci) continue;
          Clause& candidate = clauses_[static_cast<std::size_t>(other)];
          if (candidate.deleted ||
              candidate.lits.size() < self.lits.size()) {
            continue;
          }
          if ((flip_sig & ~candidate.sig) != 0) continue;
          --budget;
          if (!ClauseContains(candidate, ~flip)) continue;
          if (IsSubset(self.lits, candidate.lits, flip)) {
            ShrinkClause(other, ~flip);
            ++stats_.clauses_strengthened;
            if (unsat_) return;
          }
        }
        if (budget <= 0) break;
      }
    }
    Propagate();
  }

  // --- bounded variable elimination ----------------------------------------

  /// Resolves `pos` (contains v) with `neg` (contains ¬v) on v; returns
  /// false for a tautological resolvent.
  bool Resolve(const Clause& pos, const Clause& neg, Var v,
               std::vector<Lit>& out) const {
    out.clear();
    for (Lit lit : pos.lits) {
      if (lit.var() != v) out.push_back(lit);
    }
    for (Lit lit : neg.lits) {
      if (lit.var() != v) out.push_back(lit);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (out[i].var() == out[i + 1].var()) return false;
    }
    return true;
  }

  void EliminateRound() {
    constexpr std::size_t kMaxPairs = 400;
    std::int64_t budget = budgets_.eliminate;
    std::vector<int> pos;
    std::vector<int> neg;
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> resolvent;
    for (Var v = 0; v < num_vars_; ++v) {
      if (budget <= 0) {
        stats_.budget_hit = true;
        break;
      }
      if ((v & 0xFF) == 0 && !TimeLeft()) break;
      const auto index = static_cast<std::size_t>(v);
      if (!eliminable_[index] || frozen_[index] || removed_[index] ||
          assign_[index] != LBool::kUndef) {
        continue;
      }
      pos.clear();
      neg.clear();
      const Lit pos_lit = Lit::Make(v, false);
      const Lit neg_lit = Lit::Make(v, true);
      for (int ci : occs_[static_cast<std::size_t>(pos_lit.index())]) {
        const Clause& clause = clauses_[static_cast<std::size_t>(ci)];
        if (!clause.deleted && ClauseContains(clause, pos_lit)) {
          pos.push_back(ci);
        }
      }
      for (int ci : occs_[static_cast<std::size_t>(neg_lit.index())]) {
        const Clause& clause = clauses_[static_cast<std::size_t>(ci)];
        if (!clause.deleted && ClauseContains(clause, neg_lit)) {
          neg.push_back(ci);
        }
      }
      if (pos.size() * neg.size() > kMaxPairs) continue;
      const std::size_t limit = pos.size() + neg.size();  // no growth
      resolvents.clear();
      bool within_bound = true;
      for (int pi : pos) {
        for (int ni : neg) {
          --budget;
          if (Resolve(clauses_[static_cast<std::size_t>(pi)],
                      clauses_[static_cast<std::size_t>(ni)], v, resolvent)) {
            resolvents.push_back(resolvent);
            if (resolvents.size() > limit) {
              within_bound = false;
              break;
            }
          }
        }
        if (!within_bound) break;
      }
      if (!within_bound) continue;
      // Commit: record the positive-occurrence clauses (minus v) for
      // witness reconstruction, swap the clauses for the resolvents.
      std::vector<std::vector<Lit>> witness;
      witness.reserve(pos.size());
      for (int pi : pos) {
        const Clause& clause = clauses_[static_cast<std::size_t>(pi)];
        std::vector<Lit> rest;
        rest.reserve(clause.lits.size() - 1);
        for (Lit lit : clause.lits) {
          if (lit.var() != v) rest.push_back(lit);
        }
        witness.push_back(std::move(rest));
      }
      stack_.PushEliminated(v, std::move(witness));
      removed_[index] = 1;
      ++stats_.vars_eliminated;
      for (int pi : pos) DeleteClause(pi);
      for (int ni : neg) DeleteClause(ni);
      for (std::vector<Lit>& lits : resolvents) {
        AddClauseInternal(std::move(lits));
        if (unsat_) return;
      }
    }
    Propagate();
  }

  // --- output --------------------------------------------------------------

  SimplifyResult BuildResult() {
    SimplifyResult result;
    result.num_original_vars = num_vars_;
    result.proven_unsat = unsat_;
    result.var_map.assign(static_cast<std::size_t>(num_vars_), kUndefLit);
    result.stats = stats_;
    CnfFormula& formula = result.formula;

    Var next = 0;
    for (Var v = 0; v < num_vars_; ++v) {
      const auto index = static_cast<std::size_t>(v);
      if (unsat_ ? frozen_[index] == 0 : removed_[index] != 0) continue;
      result.var_map[index] = Lit::Make(next++, false);
    }
    formula.num_vars = next;

    if (unsat_) {
      formula.contains_empty_clause = true;
      formula.clauses.push_back({});
    } else {
      // Fixed frozen variables first (ascending), as explicit units.
      for (Var v = 0; v < num_vars_; ++v) {
        const auto index = static_cast<std::size_t>(v);
        if (!frozen_[index] || assign_[index] == LBool::kUndef) continue;
        const Lit mapped = result.var_map[index];
        formula.clauses.push_back(
            {Lit::Make(mapped.var(), assign_[index] == LBool::kFalse)});
      }
      for (const Clause& clause : clauses_) {
        if (clause.deleted) continue;
        std::vector<Lit> mapped;
        mapped.reserve(clause.lits.size());
        for (Lit lit : clause.lits) {
          const Lit base = result.var_map[static_cast<std::size_t>(lit.var())];
          mapped.push_back(lit.negated() ? ~base : base);
        }
        std::sort(mapped.begin(), mapped.end());
        formula.clauses.push_back(std::move(mapped));
      }
      for (const auto& [var, prefer_true] : input_.polarity_hints) {
        const Lit mapped = result.var_map[static_cast<std::size_t>(var)];
        if (!mapped.defined()) continue;
        formula.polarity_hints.emplace_back(mapped.var(),
                                            prefer_true != mapped.negated());
      }
      for (const auto& [var, amount] : input_.activity_hints) {
        const Lit mapped = result.var_map[static_cast<std::size_t>(var)];
        if (!mapped.defined()) continue;
        formula.activity_hints.emplace_back(mapped.var(), amount);
      }
    }

    result.stack = std::move(stack_);
    result.stats.vars_after = static_cast<std::uint64_t>(formula.num_vars);
    result.stats.clauses_after = formula.num_clauses();
    result.stats.literals_after = formula.num_literals();
    return result;
  }

  const CnfFormula& input_;
  const Budgets budgets_;
  const Var num_vars_;
  util::Timer timer_;

  std::vector<Clause> clauses_;
  std::vector<LBool> assign_;
  std::vector<std::uint8_t> removed_;
  std::vector<std::uint8_t> frozen_;
  std::vector<std::uint8_t> eliminable_;
  std::vector<std::vector<int>> occs_;  ///< Lazy, indexed by literal code.

  std::vector<Lit> queue_;
  std::size_t queue_head_ = 0;
  std::vector<Var> probe_trail_;
  std::vector<Lit> probe_queue_;

  ReconstructionStack stack_;
  SimplifyStats stats_;
  bool unsat_ = false;
};

SimplifyResult IdentityResult(const CnfFormula& input) {
  SimplifyResult result;
  result.formula = input;
  result.num_original_vars = input.num_vars;
  result.var_map.reserve(static_cast<std::size_t>(input.num_vars));
  for (Var v = 0; v < input.num_vars; ++v) {
    result.var_map.push_back(Lit::Make(v, false));
  }
  result.proven_unsat = input.contains_empty_clause;
  result.stats.vars_before = result.stats.vars_after =
      static_cast<std::uint64_t>(input.num_vars);
  result.stats.clauses_before = result.stats.clauses_after =
      input.num_clauses();
  result.stats.literals_before = result.stats.literals_after =
      input.num_literals();
  return result;
}

}  // namespace

SimplifyResult Simplify(const CnfFormula& input, const std::vector<Var>& frozen,
                        const std::vector<Var>& eliminable,
                        const SimplifyOptions& options) {
  if (options.mode == SimplifyMode::kOff) return IdentityResult(input);
  util::Timer timer;
  Simplifier simplifier(input, frozen, eliminable, ResolveBudgets(options));
  SimplifyResult result = simplifier.Run();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace whyprov::sat
