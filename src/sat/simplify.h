#ifndef WHYPROV_SAT_SIMPLIFY_H_
#define WHYPROV_SAT_SIMPLIFY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/cnf_formula.h"
#include "sat/reconstruction.h"
#include "sat/types.h"

namespace whyprov::sat {

/// Plan-time CNF inprocessing. A `QueryPlan` compiles its formula once and
/// replays it into a fresh solver on every execution, so a bounded
/// simplification pass at Prepare time is amortised across every plan-cache
/// hit. `Simplify` runs (per round, in order):
///
///   1. unit propagation to fixpoint,
///   2. failed-literal probing (budgeted, trail-based with rollback),
///   3. binary-implication-graph SCC collapsing — equivalent literals are
///      substituted by a class representative,
///   4. subsumption + self-subsuming resolution (clause strengthening),
///   5. bounded variable elimination by clause distribution, restricted to
///      the caller's `eliminable` set and never allowed to grow the formula.
///
/// Semantic contract: the simplified formula has exactly the same set of
/// models as the input when both are projected onto the `frozen` variables.
/// Frozen variables are never eliminated or substituted away — each one
/// keeps its own column in the output (if propagation fixes one, the output
/// carries an explicit unit clause for it). Every model of the simplified
/// formula extends, via the returned `ReconstructionStack`, to a full model
/// of the original formula over the original variables. Blocked-clause
/// elimination is deliberately absent: it preserves satisfiability but not
/// the projected model set that enumeration needs.
enum class SimplifyMode : std::uint8_t {
  kOff = 0,   ///< Return the input untouched (identity var map).
  kFast = 1,  ///< One round, tight step budgets; bounded Prepare latency.
  kFull = 2,  ///< Iterate to fixpoint (bounded rounds), larger budgets.
};

struct SimplifyOptions {
  SimplifyMode mode = SimplifyMode::kFast;
  /// Maximum technique rounds; <=0 derives from mode (fast 1, full 3).
  int max_rounds = 0;
  /// Step budgets; <=0 derives from mode. Probing counts clause visits,
  /// subsumption counts subset checks, elimination counts resolvent pairs.
  std::int64_t probe_budget = 0;
  std::int64_t subsume_budget = 0;
  std::int64_t eliminate_budget = 0;
  /// Wall-clock cap for the whole pass; <=0 derives from mode.
  double time_budget_seconds = 0.0;
};

struct SimplifyStats {
  std::uint64_t vars_before = 0;
  std::uint64_t vars_after = 0;
  std::uint64_t clauses_before = 0;
  std::uint64_t clauses_after = 0;
  std::uint64_t literals_before = 0;
  std::uint64_t literals_after = 0;
  std::uint64_t units_fixed = 0;        ///< Vars fixed by UP (incl. probing).
  std::uint64_t failed_literals = 0;  ///< Probes that propagated a conflict.
  std::uint64_t equivalences = 0;       ///< Vars substituted away via SCCs.
  std::uint64_t clauses_subsumed = 0;
  std::uint64_t clauses_strengthened = 0;  ///< Self-subsuming resolutions.
  std::uint64_t vars_eliminated = 0;       ///< Bounded variable elimination.
  std::uint64_t rounds = 0;
  bool budget_hit = false;  ///< Some phase stopped on a step/time budget.
  double seconds = 0.0;
};

struct SimplifyResult {
  /// The execution formula, over a compacted variable space (surviving
  /// original variables renumbered densely in increasing original order).
  CnfFormula formula;
  /// Witness records for every removed original variable (original space).
  ReconstructionStack stack;
  /// Original variable -> literal over `formula`'s variables. Undefined
  /// (`!var_map[v].defined()`) iff the simplifier removed v; every frozen
  /// variable is defined, and currently always as a positive literal.
  std::vector<Lit> var_map;
  int num_original_vars = 0;
  SimplifyStats stats;

  /// True when the simplifier proved the formula unsatisfiable outright.
  bool proven_unsat = false;

  /// Maps an original-space literal into the simplified space. The mapped
  /// literal is undefined iff the variable was removed.
  Lit MapLit(Lit original) const {
    const Lit base = var_map[static_cast<std::size_t>(original.var())];
    if (!base.defined()) return kUndefLit;
    return original.negated() ? ~base : base;
  }
};

/// Simplifies `input`. `frozen` lists variables whose projected model set
/// must be preserved exactly (they always survive); `eliminable` lists the
/// only variables bounded variable elimination may remove (auxiliary
/// Tseitin/acyclicity variables — callers must keep structural variables
/// out of it). Both may be unsorted; out-of-range entries are ignored.
/// With `mode == kOff` this is the identity transform (modulo copying).
SimplifyResult Simplify(const CnfFormula& input, const std::vector<Var>& frozen,
                        const std::vector<Var>& eliminable,
                        const SimplifyOptions& options);

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_SIMPLIFY_H_
