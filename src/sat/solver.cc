#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <utility>

namespace whyprov::sat {

namespace {

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
/// (MiniSat's formulation: find the finite subsequence containing index i
/// and the position of i within it.)
std::int64_t Luby(std::int64_t i) {
  std::int64_t size = 1;
  std::int64_t sequence = 0;
  while (size < i + 1) {
    ++sequence;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --sequence;
    i %= size;
  }
  return static_cast<std::int64_t>(1) << sequence;
}

}  // namespace

Solver::Solver(SolverOptions options) : options_(options) {
  reduce_threshold_ = options_.reduce_base;
}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  // Saved phase: `true` means the last (or preferred) value is FALSE, so a
  // fresh variable is first decided negative (the MiniSat default).
  polarity_.push_back(true);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  heap_position_.push_back(-1);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(v);
  return v;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CancelUntil(0);

  // Simplify: sort, dedup, drop literals false at level 0, detect
  // tautologies and literals true at level 0.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> simplified;
  Lit previous = kUndefLit;
  for (Lit l : lits) {
    if (Value(l) == LBool::kTrue || (previous.defined() && l == ~previous)) {
      return true;  // satisfied or tautological: vacuous
    }
    if (Value(l) == LBool::kFalse || l == previous) continue;
    simplified.push_back(l);
    previous = l;
  }

  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    UncheckedEnqueue(simplified[0], kNoClause);
    if (Propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  const ClauseRef ref = arena_.Allocate(std::move(simplified), false);
  problem_clauses_.push_back(ref);
  AttachClause(ref);
  return true;
}

void Solver::AttachClause(ClauseRef ref) {
  const Clause& c = arena_.At(ref);
  assert(c.size() >= 2);
  watches_[(~c[0]).index()].push_back(Watcher{ref, c[1]});
  watches_[(~c[1]).index()].push_back(Watcher{ref, c[0]});
}

void Solver::UncheckedEnqueue(Lit l, ClauseRef reason) {
  assert(Value(l) == LBool::kUndef);
  const Var v = l.var();
  assigns_[v] = l.negated() ? LBool::kFalse : LBool::kTrue;
  level_[v] = DecisionLevel();
  reason_[v] = reason;
  trail_.push_back(l);
}

void Solver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    if (options_.phase_saving) polarity_[v] = trail_[i - 1].negated();
    assigns_[v] = LBool::kUndef;
    reason_[v] = kNoClause;
    if (heap_position_[v] < 0) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

ClauseRef Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    std::vector<Watcher>& watchers = watches_[p.index()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchers.size(); ++i) {
      const Watcher w = watchers[i];
      // Fast path: the blocker already satisfies the clause.
      if (Value(w.blocker) == LBool::kTrue) {
        watchers[keep++] = w;
        continue;
      }
      Clause& c = arena_.At(w.clause);
      if (c.deleted) continue;  // drop watcher of a deleted clause
      // Normalise so that the false literal ~p is at position 1.
      const Lit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c[1] == false_lit);
      // If the first literal is true the clause is satisfied.
      if (Value(c[0]) == LBool::kTrue) {
        watchers[keep++] = Watcher{w.clause, c[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (Value(c[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c[1]).index()].push_back(Watcher{w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      watchers[keep++] = Watcher{w.clause, c[0]};
      if (Value(c[0]) == LBool::kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watchers.size(); ++j) {
          watchers[keep++] = watchers[j];
        }
        watchers.resize(keep);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      UncheckedEnqueue(c[0], w.clause);
    }
    watchers.resize(keep);
  }
  return kNoClause;
}

int Solver::ComputeLbd(const std::vector<Lit>& lits) {
  // Count distinct decision levels; the scratch vector doubles as a set.
  thread_local std::vector<int> seen_levels;
  seen_levels.clear();
  for (Lit l : lits) {
    const int lvl = level_[l.var()];
    if (std::find(seen_levels.begin(), seen_levels.end(), lvl) ==
        seen_levels.end()) {
      seen_levels.push_back(lvl);
    }
  }
  return static_cast<int>(seen_levels.size());
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level, int& lbd) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // placeholder for the asserting literal

  int counter = 0;  // literals of the current level awaiting resolution
  Lit p = kUndefLit;
  std::size_t trail_index = trail_.size();
  ClauseRef reason = conflict;

  do {
    assert(reason != kNoClause);
    Clause& c = arena_.At(reason);
    if (c.learnt) ClauseBumpActivity(c);
    for (std::size_t i = (p == kUndefLit ? 0 : 1); i < c.size(); ++i) {
      const Lit q = c[i];
      const Var v = q.var();
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = true;
      analyze_clear_.push_back(q);
      VarBumpActivity(v);
      if (level_[v] >= DecisionLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Select the next literal of the current level to resolve on.
    while (!seen_[trail_[trail_index - 1].var()]) --trail_index;
    p = trail_[--trail_index];
    reason = reason_[p.var()];
    seen_[p.var()] = false;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt[i].var()] & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kNoClause ||
        !LitRedundant(learnt[i], abstract_levels)) {
      learnt[kept++] = learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);

  // Backtrack level: the second-highest level in the clause.
  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    std::size_t max_index = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_index].var()]) {
        max_index = i;
      }
    }
    std::swap(learnt[1], learnt[max_index]);
    bt_level = level_[learnt[1].var()];
  }

  lbd = ComputeLbd(learnt);

  for (Lit l : analyze_clear_) seen_[l.var()] = false;
  analyze_clear_.clear();
}

bool Solver::LitRedundant(Lit l, std::uint32_t abstract_levels) {
  // MiniSat's recursive minimization: l is redundant if every literal in
  // its reason (transitively) is already seen or at level 0.
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit current = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[current.var()] != kNoClause);
    const Clause& c = arena_.At(reason_[current.var()]);
    for (std::size_t i = 1; i < c.size(); ++i) {
      const Lit q = c[i];
      const Var v = q.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kNoClause ||
          ((1u << (level_[v] & 31)) & abstract_levels) == 0) {
        // Not removable: undo the marks added during this check.
        for (std::size_t j = top; j < analyze_clear_.size(); ++j) {
          seen_[analyze_clear_[j].var()] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[v] = true;
      analyze_clear_.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  return true;
}

void Solver::VarBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_position_[v] >= 0) HeapUpdate(v);
}

void Solver::ClauseBumpActivity(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (ClauseRef ref : learnt_clauses_) {
      arena_.At(ref).activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::HeapInsert(Var v) {
  heap_position_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(heap_position_[v]);
}

void Solver::HeapUpdate(Var v) { HeapSiftUp(heap_position_[v]); }

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_position_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_position_[heap_[0]] = 0;
    HeapSiftDown(0);
  }
  return top;
}

void Solver::HeapSiftUp(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!HeapLess(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_position_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_position_[v] = i;
}

void Solver::HeapSiftDown(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && HeapLess(heap_[child + 1], heap_[child])) ++child;
    if (!HeapLess(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_position_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_position_[v] = i;
}

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    const Var v = HeapPop();
    if (Value(v) == LBool::kUndef) {
      return Lit::Make(v, polarity_[v]);
    }
  }
  return kUndefLit;
}

void Solver::ReduceDB() {
  // Sort learnt clauses so that high-LBD, low-activity clauses come first
  // and remove the worse half, keeping "glue" clauses (LBD <= 2) and
  // clauses currently locked as reasons.
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              const Clause& ca = arena_.At(a);
              const Clause& cb = arena_.At(b);
              if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
              return ca.activity < cb.activity;
            });
  auto locked = [&](ClauseRef ref) {
    const Clause& c = arena_.At(ref);
    return Value(c[0]) == LBool::kTrue && reason_[c[0].var()] == ref;
  };
  const std::size_t target = learnt_clauses_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnt_clauses_.size());
  std::size_t removed = 0;
  for (ClauseRef ref : learnt_clauses_) {
    Clause& c = arena_.At(ref);
    if (removed < target && c.lbd > 2 && c.size() > 2 && !locked(ref)) {
      arena_.Delete(ref);
      ++removed;
      ++stats_.deleted_clauses;
    } else {
      kept.push_back(ref);
    }
  }
  learnt_clauses_ = std::move(kept);
  // Watchers of deleted clauses are dropped lazily during propagation.
}

SolveResult Solver::Search(std::int64_t conflicts_allowed,
                           const std::vector<Lit>& assumptions) {
  std::int64_t conflicts_here = 0;
  std::int64_t steps = 0;
  std::vector<Lit> learnt;

  while (true) {
    // Cooperative interruption (deadlines, cancellation), amortised so
    // the poll — which may read a clock — stays off the hot path. Solve()
    // re-polls after every kUnknown to tell an interrupt from a restart.
    if ((++steps & 63) == 0 && InterruptRequested()) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    const ClauseRef conflict = Propagate();
    if (conflict != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) return SolveResult::kUnsat;
      int bt_level = 0;
      int lbd = 0;
      Analyze(conflict, learnt, bt_level, lbd);
      CancelUntil(bt_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kNoClause);
      } else {
        const ClauseRef ref = arena_.Allocate(learnt, true);
        Clause& c = arena_.At(ref);
        c.lbd = lbd;
        learnt_clauses_.push_back(ref);
        ++stats_.learnt_clauses;
        AttachClause(ref);
        ClauseBumpActivity(c);
        UncheckedEnqueue(learnt[0], ref);
      }
      VarDecayActivity();
      ClauseDecayActivity();
      if (static_cast<int>(learnt_clauses_.size()) >= reduce_threshold_) {
        ReduceDB();
        reduce_threshold_ += options_.reduce_increment;
      }
      continue;
    }

    if (conflicts_allowed >= 0 && conflicts_here >= conflicts_allowed) {
      ++stats_.restarts;
      CancelUntil(0);
      return SolveResult::kUnknown;  // restart
    }
    if (options_.conflict_budget >= 0 &&
        static_cast<std::int64_t>(stats_.conflicts) >=
            options_.conflict_budget) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }

    // Respect assumptions before free decisions.
    Lit next = kUndefLit;
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      if (Value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
      } else if (Value(a) == LBool::kFalse) {
        // The assumptions are jointly inconsistent with the formula.
        CancelUntil(0);
        return SolveResult::kUnsat;
      } else {
        next = a;
        break;
      }
    }

    if (next == kUndefLit) {
      next = PickBranchLit();
      if (next == kUndefLit) {
        // All variables assigned: a model.
        model_.assign(assigns_.begin(), assigns_.end());
        CancelUntil(0);
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, kNoClause);
  }
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  if (InterruptRequested()) return SolveResult::kUnknown;
  CancelUntil(0);
  if (Propagate() != kNoClause) {
    ok_ = false;
    return SolveResult::kUnsat;
  }
  // Online conflict-rate estimation for the deadline hint: measured over
  // this Solve() call only, so a long-lived incremental solver re-learns
  // the rate of the formula it currently has.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point solve_start = Clock::now();
  const std::uint64_t conflicts_at_start = stats_.conflicts;
  std::int64_t restart = 0;
  while (true) {
    std::int64_t budget = Luby(restart) * options_.restart_base;
    if (deadline_hint_.has_value()) {
      const double remaining =
          std::chrono::duration<double>(*deadline_hint_ - Clock::now())
              .count();
      if (remaining <= 0) return SolveResult::kUnknown;  // budget spent
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - solve_start).count();
      const std::uint64_t done = stats_.conflicts - conflicts_at_start;
      if (done > 0 && elapsed > 0) {
        // Spend at most ~80% of the projected remaining conflict
        // throughput: the margin is what turns "chopped mid-restart by
        // the poll" into "returned kUnknown at a boundary".
        const auto affordable =
            static_cast<std::int64_t>(done / elapsed * remaining * 0.8);
        if (affordable < 1) return SolveResult::kUnknown;
        budget = std::min(budget, affordable);
      }
    }
    const SolveResult result = Search(budget, assumptions);
    if (result != SolveResult::kUnknown) return result;
    if (InterruptRequested()) return SolveResult::kUnknown;
    if (options_.conflict_budget >= 0 &&
        static_cast<std::int64_t>(stats_.conflicts) >=
            options_.conflict_budget) {
      return SolveResult::kUnknown;
    }
    ++restart;
  }
}

}  // namespace whyprov::sat
