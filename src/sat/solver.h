#ifndef WHYPROV_SAT_SOLVER_H_
#define WHYPROV_SAT_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/clause.h"
#include "sat/types.h"

namespace whyprov::sat {

/// Outcome of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Search statistics, cumulative over the solver's lifetime.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t minimized_literals = 0;
};

/// Tunable parameters; defaults follow MiniSat/Glucose folklore.
struct SolverOptions {
  double var_decay = 0.95;          ///< VSIDS activity decay
  double clause_decay = 0.999;      ///< learnt clause activity decay
  int restart_base = 100;           ///< Luby restart unit, in conflicts
  bool phase_saving = true;         ///< reuse last polarity on decisions
  int reduce_base = 4000;           ///< learnt clauses before first reduce
  int reduce_increment = 1000;      ///< growth of the reduce threshold
  std::int64_t conflict_budget = -1;  ///< stop after this many conflicts (<0 = off)
};

/// A conflict-driven clause-learning (CDCL) SAT solver: the repository's
/// stand-in for Glucose. Implements two-watched-literal propagation, VSIDS
/// decisions with phase saving, first-UIP conflict analysis with recursive
/// clause minimization, LBD-based learnt-clause database reduction, Luby
/// restarts, solving under assumptions, and incremental clause addition
/// between solve calls (the blocking-clause enumeration loop depends on
/// the latter).
class Solver {
 public:
  explicit Solver(SolverOptions options = SolverOptions());

  // The solver owns raw watch/trail state referenced by index; copying
  // would be error-prone and is never needed.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var NewVar();

  /// Number of variables created.
  int NumVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (over existing variables). Returns false iff the clause
  /// makes the formula trivially unsatisfiable (empty after simplification
  /// at level 0). Safe to call between Solve() calls.
  bool AddClause(std::vector<Lit> lits);

  /// Convenience single- and two-literal overloads.
  bool AddUnit(Lit a) { return AddClause({a}); }
  bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
  bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }

  /// Solves the current formula under the given assumptions.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Value of a variable in the last model. Only valid after kSat.
  LBool ModelValue(Var v) const { return model_[v]; }

  /// Value of a literal in the last model. Only valid after kSat.
  bool ModelLitTrue(Lit l) const {
    return EvalLit(model_[l.var()], l) == LBool::kTrue;
  }

  /// Cumulative statistics.
  const SolverStats& stats() const { return stats_; }

  /// True while the formula is not known to be trivially UNSAT.
  bool ok() const { return ok_; }

  /// Replaces the conflict budget (applies to subsequent Solve calls).
  void SetConflictBudget(std::int64_t budget) {
    options_.conflict_budget = budget;
  }

  /// Sets the phase the next decision on `v` will try first (phase saving
  /// overwrites it once the search assigns and unassigns `v`). Callers use
  /// this to seed the search with a known near-solution.
  void SetPolarity(Var v, bool prefer_true) { polarity_[v] = !prefer_true; }

  /// Raises `v`'s VSIDS activity so it is decided before unhinted
  /// variables. Combined with SetPolarity this lets a caller steer the
  /// first descent onto a known model.
  void BumpActivityHint(Var v, double amount) {
    activity_[v] += amount;
    if (heap_position_[v] >= 0) HeapUpdate(v);
  }

 private:
  struct Watcher {
    ClauseRef clause = kNoClause;
    Lit blocker;  // fast-path literal: clause satisfied if blocker is true
  };

  // --- assignment & trail ---
  LBool Value(Var v) const { return assigns_[v]; }
  LBool Value(Lit l) const { return EvalLit(assigns_[l.var()], l); }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void UncheckedEnqueue(Lit l, ClauseRef reason);
  void CancelUntil(int level);

  // --- search ---
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level,
               int& lbd);
  bool LitRedundant(Lit l, std::uint32_t abstract_levels);
  Lit PickBranchLit();
  SolveResult Search(std::int64_t conflicts_allowed,
                     const std::vector<Lit>& assumptions);
  void AttachClause(ClauseRef ref);
  void ReduceDB();
  int ComputeLbd(const std::vector<Lit>& lits);

  // --- VSIDS heap ---
  void VarBumpActivity(Var v);
  void VarDecayActivity() { var_inc_ /= options_.var_decay; }
  void ClauseBumpActivity(Clause& c);
  void ClauseDecayActivity() { clause_inc_ /= options_.clause_decay; }
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapPop();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapSiftUp(int i);
  void HeapSiftDown(int i);
  bool HeapLess(Var a, Var b) const { return activity_[a] > activity_[b]; }

  SolverOptions options_;
  bool ok_ = true;

  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;   // by var
  std::vector<bool> polarity_;   // saved phase, by var
  std::vector<int> level_;       // by var
  std::vector<ClauseRef> reason_;  // by var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;  // by var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_position_;  // by var; -1 = not in heap
  std::vector<Var> heap_;

  // scratch buffers for Analyze
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  std::vector<LBool> model_;
  SolverStats stats_;
  int reduce_threshold_ = 0;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_SOLVER_H_
