#ifndef WHYPROV_SAT_SOLVER_H_
#define WHYPROV_SAT_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sat/clause.h"
#include "sat/solver_interface.h"
#include "sat/types.h"

namespace whyprov::sat {

/// A conflict-driven clause-learning (CDCL) SAT solver: the repository's
/// stand-in for Glucose and the default `SolverInterface` backend
/// (registry name "cdcl"). Implements two-watched-literal propagation,
/// VSIDS decisions with phase saving, first-UIP conflict analysis with
/// recursive clause minimization, LBD-based learnt-clause database
/// reduction, Luby restarts, solving under assumptions, and incremental
/// clause addition between solve calls (the blocking-clause enumeration
/// loop depends on the latter).
class Solver : public SolverInterface {
 public:
  explicit Solver(SolverOptions options = SolverOptions());

  // The solver owns raw watch/trail state referenced by index; copying
  // would be error-prone and is never needed.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var NewVar() override;

  /// Number of variables created.
  int NumVars() const override { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (over existing variables). Returns false iff the clause
  /// makes the formula trivially unsatisfiable (empty after simplification
  /// at level 0). Safe to call between Solve() calls.
  bool AddClause(std::vector<Lit> lits) override;

  /// Solves the current formula under the given assumptions.
  SolveResult Solve(const std::vector<Lit>& assumptions = {}) override;

  /// Value of a variable in the last model. Only valid after kSat.
  LBool ModelValue(Var v) const override { return model_[v]; }

  /// Cumulative statistics.
  const SolverStats& stats() const override { return stats_; }

  /// True while the formula is not known to be trivially UNSAT.
  bool ok() const override { return ok_; }

  /// Registry name of this backend.
  std::string_view name() const override { return "cdcl"; }

  /// Replaces the conflict budget (applies to subsequent Solve calls).
  void SetConflictBudget(std::int64_t budget) override {
    options_.conflict_budget = budget;
  }

  /// Installs a deadline hint: Solve() estimates its conflict throughput
  /// online (conflicts per second over the current call) and, at every
  /// restart boundary, clamps the next restart's conflict budget to what
  /// it can afford before `deadline` — so a deadline-bound search returns
  /// kUnknown gracefully at a boundary instead of being chopped
  /// mid-restart by the interrupt poll.
  void SetDeadlineHint(std::chrono::steady_clock::time_point deadline)
      override {
    deadline_hint_ = deadline;
  }

  void ClearDeadlineHint() override { deadline_hint_.reset(); }

  /// Sets the phase the next decision on `v` will try first (phase saving
  /// overwrites it once the search assigns and unassigns `v`). Callers use
  /// this to seed the search with a known near-solution.
  void SetPolarity(Var v, bool prefer_true) override {
    polarity_[v] = !prefer_true;
  }

  /// Raises `v`'s VSIDS activity so it is decided before unhinted
  /// variables. Combined with SetPolarity this lets a caller steer the
  /// first descent onto a known model.
  void BumpActivityHint(Var v, double amount) override {
    activity_[v] += amount;
    if (heap_position_[v] >= 0) HeapUpdate(v);
  }

 private:
  struct Watcher {
    ClauseRef clause = kNoClause;
    Lit blocker;  // fast-path literal: clause satisfied if blocker is true
  };

  // --- assignment & trail ---
  LBool Value(Var v) const { return assigns_[v]; }
  LBool Value(Lit l) const { return EvalLit(assigns_[l.var()], l); }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void UncheckedEnqueue(Lit l, ClauseRef reason);
  void CancelUntil(int level);

  // --- search ---
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level,
               int& lbd);
  bool LitRedundant(Lit l, std::uint32_t abstract_levels);
  Lit PickBranchLit();
  SolveResult Search(std::int64_t conflicts_allowed,
                     const std::vector<Lit>& assumptions);
  void AttachClause(ClauseRef ref);
  void ReduceDB();
  int ComputeLbd(const std::vector<Lit>& lits);

  // --- VSIDS heap ---
  void VarBumpActivity(Var v);
  void VarDecayActivity() { var_inc_ /= options_.var_decay; }
  void ClauseBumpActivity(Clause& c);
  void ClauseDecayActivity() { clause_inc_ /= options_.clause_decay; }
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapPop();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapSiftUp(int i);
  void HeapSiftDown(int i);
  bool HeapLess(Var a, Var b) const { return activity_[a] > activity_[b]; }

  SolverOptions options_;
  bool ok_ = true;

  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;   // by var
  std::vector<bool> polarity_;   // saved phase, by var
  std::vector<int> level_;       // by var
  std::vector<ClauseRef> reason_;  // by var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;  // by var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_position_;  // by var; -1 = not in heap
  std::vector<Var> heap_;

  // scratch buffers for Analyze
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  std::vector<LBool> model_;
  SolverStats stats_;
  int reduce_threshold_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_hint_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_SOLVER_H_
