#include "sat/solver_factory.h"

#include <cstdlib>
#include <utility>

#include "sat/dimacs_pipe_solver.h"
#include "sat/dpll_solver.h"
#include "sat/solver.h"

namespace whyprov::sat {

SolverFactory& SolverFactory::Instance() {
  static SolverFactory* factory = new SolverFactory();
  return *factory;
}

SolverFactory::SolverFactory() {
  creators_["cdcl"] = [](const SolverOptions& options)
      -> util::Result<std::unique_ptr<SolverInterface>> {
    return std::unique_ptr<SolverInterface>(new Solver(options));
  };
  creators_["dpll"] = [](const SolverOptions& options)
      -> util::Result<std::unique_ptr<SolverInterface>> {
    return std::unique_ptr<SolverInterface>(new DpllSolver(options));
  };
  creators_["dimacs-pipe"] = [](const SolverOptions& options)
      -> util::Result<std::unique_ptr<SolverInterface>> {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; the
    // process never calls setenv, so there is no writer to race with.
    const char* command = std::getenv("WHYPROV_DIMACS_SOLVER");
    if (command == nullptr || command[0] == '\0') {
      return util::Status::NotFound(
          "backend 'dimacs-pipe' needs the WHYPROV_DIMACS_SOLVER "
          "environment variable to name a DIMACS solver command");
    }
    return std::unique_ptr<SolverInterface>(
        new DimacsPipeSolver(command, options));
  };
}

util::Status SolverFactory::Register(const std::string& name,
                                     Creator creator) {
  if (creators_.contains(name)) {
    return util::Status::InvalidArgument("SAT backend '" + name +
                                         "' is already registered");
  }
  creators_.emplace(name, std::move(creator));
  return util::Status::Ok();
}

util::Result<std::unique_ptr<SolverInterface>> SolverFactory::Create(
    const std::string& name, const SolverOptions& options) const {
  const auto it = creators_.find(name);
  if (it == creators_.end()) {
    std::string known;
    for (const auto& [known_name, unused] : creators_) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    return util::Status::NotFound("unknown SAT backend '" + name +
                                  "' (registered: " + known + ")");
  }
  return it->second(options);
}

bool SolverFactory::Has(const std::string& name) const {
  return creators_.contains(name);
}

std::vector<std::string> SolverFactory::Available() const {
  std::vector<std::string> names;
  names.reserve(creators_.size());
  for (const auto& [name, unused] : creators_) names.push_back(name);
  return names;
}

}  // namespace whyprov::sat
