#ifndef WHYPROV_SAT_SOLVER_FACTORY_H_
#define WHYPROV_SAT_SOLVER_FACTORY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sat/solver_interface.h"
#include "util/status.h"

namespace whyprov::sat {

/// Registry of SAT backends, keyed by name. The provenance layer asks the
/// factory for a `SolverInterface`, so alternative backends plug in
/// without touching any encoding or enumeration code.
///
/// Built-in backends (registered on first use):
///   "cdcl"        — the in-tree CDCL solver (default)
///   "dpll"        — a plain DPLL solver, for cross-checking
///   "dimacs-pipe" — an external solver via WHYPROV_DIMACS_SOLVER
///
/// To add one:
///
///   sat::SolverFactory::Instance().Register("mine",
///       [](const sat::SolverOptions& o) -> util::Result<
///           std::unique_ptr<sat::SolverInterface>> {
///         return std::unique_ptr<sat::SolverInterface>(new MySolver(o));
///       });
class SolverFactory {
 public:
  using Creator = std::function<util::Result<std::unique_ptr<SolverInterface>>(
      const SolverOptions& options)>;

  /// The process-wide registry.
  static SolverFactory& Instance();

  /// Registers `creator` under `name`; fails with kInvalidArgument when the
  /// name is already taken.
  util::Status Register(const std::string& name, Creator creator);

  /// Instantiates the backend `name`; kNotFound for unregistered names.
  util::Result<std::unique_ptr<SolverInterface>> Create(
      const std::string& name, const SolverOptions& options) const;
  util::Result<std::unique_ptr<SolverInterface>> Create(
      const std::string& name) const {
    return Create(name, SolverOptions());
  }

  /// True iff `name` is registered.
  bool Has(const std::string& name) const;

  /// Registered backend names, sorted.
  std::vector<std::string> Available() const;

 private:
  SolverFactory();

  std::map<std::string, Creator> creators_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_SOLVER_FACTORY_H_
