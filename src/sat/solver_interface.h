#ifndef WHYPROV_SAT_SOLVER_INTERFACE_H_
#define WHYPROV_SAT_SOLVER_INTERFACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "sat/types.h"

namespace whyprov::sat {

/// Outcome of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Search statistics, cumulative over the solver's lifetime. Backends fill
/// what they can measure and leave the rest at zero.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t minimized_literals = 0;
};

/// Tunable parameters; defaults follow MiniSat/Glucose folklore. Backends
/// honour the subset that applies to them: the CDCL solver uses all of
/// them, the DPLL backend none (it has no VSIDS/restarts/learning), and
/// the external dimacs-pipe backend ignores them entirely — bound an
/// external solver via its own command-line flags instead.
struct SolverOptions {
  double var_decay = 0.95;          ///< VSIDS activity decay
  double clause_decay = 0.999;      ///< learnt clause activity decay
  int restart_base = 100;           ///< Luby restart unit, in conflicts
  bool phase_saving = true;         ///< reuse last polarity on decisions
  int reduce_base = 4000;           ///< learnt clauses before first reduce
  int reduce_increment = 1000;      ///< growth of the reduce threshold
  /// Stop after this many conflicts (<0 = off).
  std::int64_t conflict_budget = -1;
};

/// The backend-neutral incremental SAT solver interface the provenance
/// layer is written against. A backend must support:
///
///   * variable creation interleaved with clause addition,
///   * incremental clause addition *between* Solve() calls (the
///     blocking-clause enumeration loop of Section 5.2 depends on it),
///   * model extraction after a kSat answer.
///
/// The phase/activity hints are optional accelerators: backends that
/// cannot steer their search simply inherit the no-op defaults, and
/// callers must not rely on them for correctness.
class SolverInterface {
 public:
  virtual ~SolverInterface() = default;

  /// Creates a fresh variable and returns it.
  virtual Var NewVar() = 0;

  /// Number of variables created.
  virtual int NumVars() const = 0;

  /// Adds a clause (over existing variables). Returns false iff the clause
  /// makes the formula trivially unsatisfiable. Safe to call between
  /// Solve() calls.
  virtual bool AddClause(std::vector<Lit> lits) = 0;

  /// Convenience single-, two- and three-literal forms.
  bool AddUnit(Lit a) { return AddClause({a}); }
  bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
  bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }

  /// Solves the current formula under the given assumptions.
  virtual SolveResult Solve(const std::vector<Lit>& assumptions = {}) = 0;

  /// Value of a variable in the last model. Only valid after kSat.
  virtual LBool ModelValue(Var v) const = 0;

  /// Value of a literal in the last model. Only valid after kSat.
  bool ModelLitTrue(Lit l) const {
    return EvalLit(ModelValue(l.var()), l) == LBool::kTrue;
  }

  /// Cumulative statistics.
  virtual const SolverStats& stats() const = 0;

  /// True while the formula is not known to be trivially UNSAT.
  virtual bool ok() const = 0;

  /// The backend's registry name (e.g. "cdcl").
  virtual std::string_view name() const = 0;

  /// Replaces the conflict budget (applies to subsequent Solve calls).
  /// Backends without budget support ignore it.
  virtual void SetConflictBudget(std::int64_t budget) { (void)budget; }

  /// Installs a cooperative interruption check: backends poll `poll`
  /// periodically while Solve() searches and, once it returns true,
  /// abandon the search and return kUnknown promptly. This is what makes
  /// request deadlines and cancellation (`util::CancellationToken`) bite
  /// *inside* a long solve instead of only between solves. An empty
  /// function clears the check. Backends that cannot poll mid-search
  /// (e.g. an external process) check at least on Solve() entry.
  virtual void SetInterruptCheck(std::function<bool()> poll) {
    interrupt_check_ = std::move(poll);
  }

  /// Optional deadline hint: backends that can budget their search use it
  /// to *degrade gracefully* — estimate their conflict rate online and
  /// stop at a restart boundary with kUnknown shortly before `deadline`,
  /// instead of burning the remaining budget on a search the interruption
  /// poll is about to chop mid-restart. Purely advisory: the installed
  /// interrupt check (see SetInterruptCheck) remains the authoritative
  /// stop, and backends without budget support ignore the hint.
  virtual void SetDeadlineHint(
      std::chrono::steady_clock::time_point deadline) {
    (void)deadline;
  }

  /// Removes a previously installed deadline hint (no-op by default).
  virtual void ClearDeadlineHint() {}

  /// Optional hint: the phase the next decision on `v` should try first.
  virtual void SetPolarity(Var v, bool prefer_true) {
    (void)v;
    (void)prefer_true;
  }

  /// Optional hint: raise `v`'s decision priority by `amount`.
  virtual void BumpActivityHint(Var v, double amount) {
    (void)v;
    (void)amount;
  }

 protected:
  /// True once the installed check demands a stop. Amortise calls (the
  /// check may read a clock): poll every few dozen conflicts, not every
  /// propagation.
  bool InterruptRequested() const {
    return interrupt_check_ && interrupt_check_();
  }

 private:
  std::function<bool()> interrupt_check_;
};

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_SOLVER_INTERFACE_H_
