#ifndef WHYPROV_SAT_TYPES_H_
#define WHYPROV_SAT_TYPES_H_

#include <cstdint>
#include <limits>

namespace whyprov::sat {

/// A Boolean variable, numbered densely from 0.
using Var = std::int32_t;

/// Sentinel for "no variable".
inline constexpr Var kUndefVar = -1;

/// A literal: a variable with a sign. Encoded as 2*var + (negated ? 1 : 0)
/// so that a literal indexes watch lists directly.
class Lit {
 public:
  /// An invalid literal (use for sentinels only).
  constexpr Lit() : code_(-2) {}

  /// Builds the positive (negated=false) or negative literal of `v`.
  static constexpr Lit Make(Var v, bool negated) {
    return Lit(v + v + (negated ? 1 : 0));
  }

  /// The underlying variable.
  constexpr Var var() const { return code_ >> 1; }

  /// True iff this is the negative literal.
  constexpr bool negated() const { return (code_ & 1) != 0; }

  /// Dense index for watch lists: in [0, 2*num_vars).
  constexpr std::int32_t index() const { return code_; }

  /// The complementary literal.
  constexpr Lit operator~() const { return Lit(code_ ^ 1); }

  friend constexpr bool operator==(Lit a, Lit b) {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Lit a, Lit b) {
    return a.code_ != b.code_;
  }
  friend constexpr bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  /// True iff this literal is valid (was built via Make).
  constexpr bool defined() const { return code_ >= 0; }

 private:
  explicit constexpr Lit(std::int32_t code) : code_(code) {}
  std::int32_t code_;
};

/// Sentinel literal.
inline constexpr Lit kUndefLit{};

/// Three-valued Boolean used for partial assignments.
enum class LBool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

/// Evaluates a literal under a variable value: flips kTrue/kFalse when the
/// literal is negative, keeps kUndef.
inline LBool EvalLit(LBool var_value, Lit lit) {
  if (var_value == LBool::kUndef) return LBool::kUndef;
  const bool value = (var_value == LBool::kTrue) != lit.negated();
  return value ? LBool::kTrue : LBool::kFalse;
}

}  // namespace whyprov::sat

#endif  // WHYPROV_SAT_TYPES_H_
