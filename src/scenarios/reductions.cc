#include "scenarios/reductions.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "datalog/parser.h"

namespace whyprov::scenarios {

namespace dl = whyprov::datalog;

namespace {

ReductionOutput Assemble(const std::string& program_text,
                         const std::string& database_text,
                         const std::string& target_text) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  auto program = dl::Parser::ParseProgram(symbols, program_text);
  auto database = dl::Parser::ParseDatabase(symbols, database_text);
  auto target = dl::Parser::ParseFact(symbols, target_text);
  if (!program.ok() || !database.ok() || !target.ok()) std::abort();
  return ReductionOutput{symbols, std::move(program).value(),
                         std::move(database).value(),
                         std::move(target).value()};
}

std::string SatVar(int v) { return "x" + std::to_string(v); }

}  // namespace

ReductionOutput ReduceThreeSat(const ThreeSatInstance& instance) {
  // The fixed linear query of Lemma 17 (sigma_1..sigma_8). The relation
  // layouts follow the paper: var(v; 0, 1), next(v, v'; 0, 1),
  // c(v1, b1; v2, b2; v3, b3), last(bullet).
  const char* program = R"(
    r(X) :- var(X, Z, _), assign(X, Z).
    r(X) :- var(X, _, Z), assign(X, Z).
    assign(X, Y) :- c(X, Y, _, _, _, _), assign(X, Y).
    assign(X, Y) :- c(_, _, X, Y, _, _), assign(X, Y).
    assign(X, Y) :- c(_, _, _, _, X, Y), assign(X, Y).
    assign(X, Z) :- next(X, Y, Z, _), r(Y).
    assign(X, Z) :- next(X, Y, _, Z), r(Y).
    r(X) :- last(X).
  )";

  std::string facts;
  for (int v = 1; v <= instance.num_vars; ++v) {
    facts += "var(" + SatVar(v) + ", 0, 1).\n";
  }
  for (int v = 1; v < instance.num_vars; ++v) {
    facts += "next(" + SatVar(v) + ", " + SatVar(v + 1) + ", 0, 1).\n";
  }
  facts += "next(" + SatVar(instance.num_vars) + ", bullet, 0, 1).\n";
  facts += "last(bullet).\n";
  for (const auto& clause : instance.clauses) {
    facts += "c(";
    for (int i = 0; i < 3; ++i) {
      if (i > 0) facts += ", ";
      const int lit = clause[i];
      facts += SatVar(std::abs(lit)) + ", " + (lit > 0 ? "1" : "0");
    }
    facts += ").\n";
  }
  return Assemble(program, facts, "r(x1)");
}

ReductionOutput ReduceHamiltonianCycle(const DigraphInstance& instance) {
  // The fixed linear query of Lemma 24 (sigma_1..sigma_4). The relation
  // layout follows the paper: e(u, v; i, i+1; m+1), first(1), n(v).
  const char* program = R"(
    markede(X) :- first(X).
    markede(Y) :- e(_, _, X, Y, _), markede(X).
    path(Y) :- e(X, Y, _, _, Z), markede(Z), n(X).
    path(Y) :- e(X, Y, _, _, _), path(X), n(X).
  )";

  const int m = static_cast<int>(instance.edges.size());
  std::string facts = "first(1).\n";
  for (int v = 0; v < instance.num_nodes; ++v) {
    facts += "n(g" + std::to_string(v) + ").\n";
  }
  for (int i = 0; i < m; ++i) {
    const auto& [u, v] = instance.edges[i];
    facts += "e(g" + std::to_string(u) + ", g" + std::to_string(v) + ", " +
             std::to_string(i + 1) + ", " + std::to_string(i + 2) + ", " +
             std::to_string(m + 1) + ").\n";
  }
  return Assemble(program, facts, "path(g0)");
}

bool SolveThreeSatBruteForce(const ThreeSatInstance& instance) {
  const int n = instance.num_vars;
  for (std::uint64_t assignment = 0; assignment < (std::uint64_t{1} << n);
       ++assignment) {
    bool all = true;
    for (const auto& clause : instance.clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        const bool value = (assignment >> (std::abs(lit) - 1)) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool HasHamiltonianCycleBruteForce(const DigraphInstance& instance) {
  const int n = instance.num_nodes;
  if (n == 0) return false;
  std::vector<std::vector<bool>> adjacent(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : instance.edges) adjacent[u][v] = true;
  if (n == 1) return adjacent[0][0];
  std::vector<bool> used(n, false);
  used[0] = true;
  auto dfs = [&](auto&& self, int current, int count) -> bool {
    if (count == n) return adjacent[current][0];
    for (int next = 0; next < n; ++next) {
      if (!used[next] && adjacent[current][next]) {
        used[next] = true;
        if (self(self, next, count + 1)) return true;
        used[next] = false;
      }
    }
    return false;
  };
  return dfs(dfs, 0, 1);
}

ThreeSatInstance RandomThreeSat(int num_vars, int num_clauses,
                                util::Rng& rng) {
  // A 3-CNF clause needs three distinct variables; fewer would make the
  // rejection sampling below spin forever.
  assert(num_vars >= 3);
  ThreeSatInstance instance;
  instance.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    std::array<int, 3> clause{};
    for (int k = 0; k < 3;) {
      const int v = static_cast<int>(rng.UniformInt(num_vars)) + 1;
      const int lit = rng.Bernoulli(0.5) ? v : -v;
      bool duplicate = false;
      for (int j = 0; j < k; ++j) {
        if (std::abs(clause[j]) == v) duplicate = true;
      }
      if (!duplicate) clause[k++] = lit;
    }
    instance.clauses.push_back(clause);
  }
  return instance;
}

DigraphInstance RandomDigraph(int num_nodes, double edge_probability,
                              util::Rng& rng) {
  DigraphInstance instance;
  instance.num_nodes = num_nodes;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = 0; v < num_nodes; ++v) {
      if (u != v && rng.Bernoulli(edge_probability)) {
        instance.edges.emplace_back(u, v);
      }
    }
  }
  return instance;
}

}  // namespace whyprov::scenarios
