#ifndef WHYPROV_SCENARIOS_REDUCTIONS_H_
#define WHYPROV_SCENARIOS_REDUCTIONS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "datalog/database.h"
#include "datalog/program.h"
#include "util/rng.h"

namespace whyprov::scenarios {

/// A 3-CNF formula: clauses of exactly three DIMACS-style signed literals
/// over variables 1..num_vars.
struct ThreeSatInstance {
  int num_vars = 0;
  std::vector<std::array<int, 3>> clauses;
};

/// A directed graph for the Hamiltonian-cycle reduction.
struct DigraphInstance {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;
};

/// The output of a hardness reduction: a query (program + answer
/// predicate), the reduction database D, and the answer tuple's fact. The
/// defining property (Lemmas 17 / 24) is that the *source* instance is a
/// yes-instance iff D itself belongs to the why-provenance of the target.
struct ReductionOutput {
  std::shared_ptr<datalog::SymbolTable> symbols;
  datalog::Program program;
  datalog::Database database;
  datalog::Fact target;
};

/// Lemma 17: 3SAT -> Why-Provenance[LDat]. Builds the fixed 8-rule linear
/// query Q and the database D_phi; phi is satisfiable iff
/// D_phi in why((v1), D_phi, Q) (arbitrary proof trees).
ReductionOutput ReduceThreeSat(const ThreeSatInstance& instance);

/// Lemma 24: Hamiltonian cycle -> Why-ProvenanceNR[LDat]. Builds the fixed
/// 4-rule linear query Q and the database D_G; G has a Hamiltonian cycle
/// iff D_G in whyNR((v*), D_G, Q), where v* is node 0. Because Q is
/// linear, whyNR and whyUN coincide, so the SAT-based unambiguous check
/// decides Hamiltonicity.
ReductionOutput ReduceHamiltonianCycle(const DigraphInstance& instance);

/// Reference solvers for the source problems (exponential; test-sized).
bool SolveThreeSatBruteForce(const ThreeSatInstance& instance);
bool HasHamiltonianCycleBruteForce(const DigraphInstance& instance);

/// Random instance generators for tests and the reduction bench.
ThreeSatInstance RandomThreeSat(int num_vars, int num_clauses,
                                util::Rng& rng);
DigraphInstance RandomDigraph(int num_nodes, double edge_probability,
                              util::Rng& rng);

}  // namespace whyprov::scenarios

#endif  // WHYPROV_SCENARIOS_REDUCTIONS_H_
