#include "scenarios/scenarios.h"

#include <string>
#include <utility>

#include "datalog/parser.h"
#include "util/rng.h"

namespace whyprov::scenarios {

namespace dl = whyprov::datalog;

namespace {

/// Assembles a GeneratedScenario from program/database text.
GeneratedScenario Assemble(std::string scenario_name,
                           std::string database_name,
                           const std::string& program_text,
                           const std::string& database_text,
                           std::string answer_predicate) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  auto program = dl::Parser::ParseProgram(symbols, program_text);
  auto database = dl::Parser::ParseDatabase(symbols, database_text);
  // Generators are internal: a parse failure is a programming error.
  if (!program.ok() || !database.ok()) {
    std::abort();
  }
  return GeneratedScenario{std::move(scenario_name),
                           std::move(database_name),
                           ProgramClassName(program.value().Classification()),
                           program.value().rules().size(),
                           symbols,
                           std::move(program).value(),
                           std::move(database).value(),
                           std::move(answer_predicate)};
}

std::string Node(std::size_t i) { return "n" + std::to_string(i); }

}  // namespace

Engine GeneratedScenario::MakeEngine(EngineOptions options) const {
  auto predicate = symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) std::abort();
  return Engine::FromParts(program, database, predicate.value(),
                           std::move(options));
}

// --------------------------------------------------------------------
// TransClosure
// --------------------------------------------------------------------

GeneratedScenario MakeTransClosure(GraphKind kind, std::size_t num_nodes,
                                   std::size_t num_edges,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::string facts;
  facts.reserve(num_edges * 16);
  if (kind == GraphKind::kSparse) {
    // Transaction-graph-like: many mostly-disjoint "wallet communities"
    // (blocks) with time-ordered, local edges inside each and rare
    // cross-community hops. Keeps both the transitive closure and the
    // per-answer derivation space bounded per community, as in a real
    // payment graph.
    const std::size_t block = 48;
    const std::size_t window = 12;
    for (std::size_t i = 0; i < num_edges; ++i) {
      const std::size_t u = rng.UniformInt(num_nodes);
      std::size_t v;
      if (rng.Bernoulli(0.97)) {
        const std::size_t block_end =
            std::min(num_nodes - 1, (u / block + 1) * block - 1);
        v = std::min(block_end, u + 1 + rng.UniformInt(window));
      } else {
        v = rng.UniformInt(num_nodes);
      }
      if (u == v) v = (v + 1) % num_nodes;
      facts += "edge(" + Node(u) + ", " + Node(v) + ").\n";
    }
  } else {
    // Social-circles-like: dense clusters with sparse bridges; highly
    // connected, which is the stress case for the acyclicity encoding.
    const std::size_t cluster_size = 16;
    const std::size_t clusters =
        std::max<std::size_t>(1, num_nodes / cluster_size);
    for (std::size_t i = 0; i < num_edges; ++i) {
      const std::size_t c = rng.UniformInt(clusters);
      if (rng.Bernoulli(0.9)) {
        // Intra-cluster edge.
        const std::size_t u = c * cluster_size + rng.UniformInt(cluster_size);
        std::size_t v = c * cluster_size + rng.UniformInt(cluster_size);
        if (u == v) v = c * cluster_size + (v - c * cluster_size + 1) %
                                               cluster_size;
        facts += "edge(" + Node(u % num_nodes) + ", " + Node(v % num_nodes) +
                 ").\n";
      } else {
        // Bridge between clusters.
        const std::size_t u = rng.UniformInt(num_nodes);
        const std::size_t v = rng.UniformInt(num_nodes);
        if (u != v) {
          facts += "edge(" + Node(u) + ", " + Node(v) + ").\n";
        }
      }
    }
  }
  return Assemble(
      "TransClosure",
      kind == GraphKind::kSparse ? "Dsparse(bitcoin-like)"
                                 : "Dsocial(facebook-like)",
      R"(
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
      )",
      facts, "tc");
}

// --------------------------------------------------------------------
// Doctors
// --------------------------------------------------------------------

GeneratedScenario MakeDoctors(int variant, std::size_t num_persons,
                              std::uint64_t seed) {
  util::Rng rng(seed + static_cast<std::uint64_t>(variant));
  // Shared hospital-schema database. Scales roughly 6x num_persons facts.
  const std::size_t num_doctors = std::max<std::size_t>(4, num_persons / 10);
  const std::size_t num_hospitals = std::max<std::size_t>(2, num_doctors / 5);
  // Few cities: a person's doctors then frequently practice in the
  // person's own city, which is what gives answers several independent
  // witnessing join chains (= larger provenance families).
  const std::size_t num_cities = 2;
  const std::size_t num_medicines =
      std::max<std::size_t>(7, num_persons / 20);

  std::string facts;
  facts.reserve(num_persons * 96);
  auto person = [](std::size_t i) { return "p" + std::to_string(i); };
  auto doctor = [](std::size_t i) { return "d" + std::to_string(i); };
  auto hospital = [](std::size_t i) { return "h" + std::to_string(i); };
  auto city = [](std::size_t i) { return "c" + std::to_string(i); };
  auto medicine = [](std::size_t i) { return "m" + std::to_string(i); };

  // Medicine kinds are skewed: kind1, kind5 and kind7 are very common —
  // these are the paper's demanding Doctors variants — while every kind
  // 1..7 is guaranteed to occur (round-robin for the long tail).
  auto medicine_kind = [&](std::size_t m) -> int {
    const std::size_t roll = m % 10;
    if (roll < 4) return 1;
    if (roll < 6) return 5;
    if (roll < 8) return 7;
    return 2 + static_cast<int>((m / 10) % 5);  // kinds 2, 3, 4, 5, 6
  };

  for (std::size_t h = 0; h < num_hospitals; ++h) {
    facts += "hospital(" + hospital(h) + ", " + city(h % num_cities) + ").\n";
  }
  const char* specialties[] = {"cardio", "neuro", "ortho", "derma"};
  for (std::size_t d = 0; d < num_doctors; ++d) {
    facts += "doctor(" + doctor(d) + ", " +
             specialties[rng.UniformInt(4)] + ", " +
             hospital(rng.UniformInt(num_hospitals)) + ").\n";
  }
  for (std::size_t m = 0; m < num_medicines; ++m) {
    facts += "medicine(" + medicine(m) + ", kind" +
             std::to_string(medicine_kind(m)) + ").\n";
  }
  for (std::size_t p = 0; p < num_persons; ++p) {
    facts += "person(" + person(p) + ", " + city(rng.UniformInt(num_cities)) +
             ").\n";
    // Several doctors and prescriptions per person: join fan-out (this is
    // what makes the demanding variants' provenance families large).
    const std::size_t doctors_of_p = 2 + rng.UniformInt(6);
    for (std::size_t k = 0; k < doctors_of_p; ++k) {
      facts += "patientof(" + person(p) + ", " +
               doctor(rng.UniformInt(num_doctors)) + ").\n";
    }
    const std::size_t prescriptions_of_p = 3 + rng.UniformInt(8);
    for (std::size_t k = 0; k < prescriptions_of_p; ++k) {
      facts += "prescription(" + person(p) + ", " +
               medicine(rng.UniformInt(num_medicines)) + ").\n";
    }
  }

  // The query: a 6-rule linear non-recursive join chain; the variant picks
  // the medicine kind filtered at the end.
  const std::string kind = "kind" + std::to_string(variant);
  const std::string program = R"(
    q0(P, D) :- patientof(P, D).
    q1(P, D, H) :- q0(P, D), doctor(D, S, H).
    q2(P, H, C) :- q1(P, D, H), hospital(H, C).
    q3(P, C) :- q2(P, H, C), person(P, C).
    q4(P, M) :- q3(P, C), prescription(P, M).
    ans(P) :- q4(P, M), medicine(M, )" +
                              kind + ").\n";
  return Assemble("Doctors-" + std::to_string(variant), "D1", program, facts,
                  "ans");
}

// --------------------------------------------------------------------
// Galen
// --------------------------------------------------------------------

GeneratedScenario MakeGalen(std::size_t num_concepts, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string facts;
  facts.reserve(num_concepts * 96);
  auto concept_name = [](std::size_t i) { return "c" + std::to_string(i); };
  const std::size_t num_roles = std::max<std::size_t>(3, num_concepts / 50);
  auto role = [](std::size_t i) { return "r" + std::to_string(i); };

  for (std::size_t c = 0; c < num_concepts; ++c) {
    facts += "init(" + concept_name(c) + ").\n";
    facts += "class(" + concept_name(c) + ").\n";
  }
  // Taxonomy backbone: each concept has 1-2 nearby superclasses among the
  // lower-numbered concepts (a deep, narrow DAG like a real taxonomy).
  for (std::size_t c = 1; c < num_concepts; ++c) {
    const std::size_t supers = 1 + rng.UniformInt(2);
    for (std::size_t k = 0; k < supers; ++k) {
      const std::size_t span = std::min<std::size_t>(c, 8);
      facts += "subclassof(" + concept_name(c) + ", " +
               concept_name(c - 1 - rng.UniformInt(span)) + ").\n";
    }
  }
  // Axioms are *local* in the taxonomy, as in a real modular ontology:
  // an axiom about concept c mentions concepts within a window around c.
  // (Uniformly random axiom arguments would couple everything to
  // everything and make per-fact derivation spaces explode.)
  const std::size_t window = 12;
  auto near_concept = [&](std::size_t c) {
    const std::size_t low = c > window ? c - window : 0;
    const std::size_t high = std::min(num_concepts - 1, c + window);
    return low + rng.UniformInt(high - low + 1);
  };
  // Conjunction definitions E = D1 and D2.
  for (std::size_t i = 0; i < num_concepts / 4; ++i) {
    const std::size_t e = rng.UniformInt(num_concepts);
    facts += "conjof(" + concept_name(e) + ", " +
             concept_name(near_concept(e)) + ", " +
             concept_name(near_concept(e)) + ").\n";
  }
  // Existential axioms E <= exists R. D and exists R. D <= E.
  for (std::size_t i = 0; i < num_concepts / 3; ++i) {
    const std::size_t e = rng.UniformInt(num_concepts);
    facts += "subclassexists(" + concept_name(e) + ", " +
             role(rng.UniformInt(num_roles)) + ", " +
             concept_name(near_concept(e)) + ").\n";
  }
  for (std::size_t i = 0; i < num_concepts / 4; ++i) {
    const std::size_t e = rng.UniformInt(num_concepts);
    facts += "existssubclass(" + role(rng.UniformInt(num_roles)) + ", " +
             concept_name(e) + ", " + concept_name(near_concept(e)) + ").\n";
  }
  // Role hierarchy and composition.
  for (std::size_t r = 1; r < num_roles; ++r) {
    facts += "subroleof(" + role(r) + ", " + role(rng.UniformInt(r)) + ").\n";
  }
  for (std::size_t i = 0; i < num_roles; ++i) {
    facts += "rolecomp(" + role(rng.UniformInt(num_roles)) + ", " +
             role(rng.UniformInt(num_roles)) + ", " +
             role(rng.UniformInt(num_roles)) + ").\n";
  }

  // Disjointness axioms (rare), for the bottom-propagation rule.
  for (std::size_t i = 0; i < num_concepts / 20 + 1; ++i) {
    facts += "disjoint(" + concept_name(rng.UniformInt(num_concepts)) + ", " +
             concept_name(rng.UniformInt(num_concepts)) + ").\n";
  }

  // A 14-rule EL completion calculus in the style of ELK: subsumptions
  // s(C, D) and role links link(C, R, D). Like ELK (and unlike a naive
  // calculus), there is no generic transitivity rule — subsumptions only
  // compose through told axioms, which keeps the derivation space of each
  // fact axiom-bounded.
  const char* program = R"(
    s(C, C) :- init(C).
    s(C, thing) :- init(C).
    s(C, E) :- s(C, D), subclassof(D, E).
    s(C, D1) :- s(C, E), conjof(E, D1, D2).
    s(C, D2) :- s(C, E), conjof(E, D1, D2).
    s(C, E) :- s(C, D1), s(C, D2), conjof(E, D1, D2).
    link(C, R, D) :- s(C, E), subclassexists(E, R, D).
    link(C, S, D) :- link(C, R, D), subroleof(R, S).
    link(C, T, E) :- link(C, R, D), link(D, S, E), rolecomp(R, S, T).
    s(C, E) :- link(C, R, D), existssubclass(R, D, E).
    s(C, E) :- link(C, R, D), s(D, D2), existssubclass(R, D2, E).
    s(C, bottom) :- s(C, D), disjoint(D, E), s(C, E).
    unsat(C) :- s(C, bottom), init(C).
    subsumed(C, D) :- s(C, D), init(C), class(D).
  )";
  return Assemble("Galen", "D(" + std::to_string(num_concepts) + " concepts)",
                  program, facts, "subsumed");
}

// --------------------------------------------------------------------
// Andersen
// --------------------------------------------------------------------

GeneratedScenario MakeAndersen(std::size_t num_statements,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  auto var = [](std::size_t i) { return "v" + std::to_string(i); };
  auto obj = [](std::size_t i) { return "o" + std::to_string(i); };

  std::string facts;
  facts.reserve(num_statements * 24);
  // SSA-style program: statement i defines variable v_i (at most once),
  // and statements are grouped into "functions" of 16 with occasional
  // parameter-passing copies from the previous function. This is the
  // scoped, single-assignment structure of real compiled code -- it keeps
  // points-to sets small and gives each points-to fact a handful of
  // derivations, instead of the quadratic ambiguity random wiring causes.
  const std::size_t block = 16;
  auto nearby = [&](std::size_t i) {
    const std::size_t block_start = (i / block) * block;
    const std::size_t span = i - block_start;
    if (span == 0) return i;
    return i - 1 - rng.UniformInt(span);
  };
  for (std::size_t i = 0; i < num_statements; ++i) {
    const double roll = rng.UniformDouble();
    if (roll < 0.10 || i % block == 0) {
      // v_i = &o_i: each allocation site is distinct, as in a real program.
      facts += "addressof(" + var(i) + ", " + obj(i) + ").\n";
    } else if (roll < 0.42 && i >= block) {
      // Parameter passing: copy from a variable of the previous function.
      facts += "assign(" + var(i) + ", " +
               var(i - block - rng.UniformInt(block)) + ").\n";
    } else if (roll < 0.94) {
      // v_i = v_j with v_j defined earlier in the same function; with some
      // probability the variable has a second reaching definition (a
      // control-flow join, i.e. a phi node), which is where genuine
      // provenance ambiguity comes from in real code.
      facts += "assign(" + var(i) + ", " + var(nearby(i)) + ").\n";
      if (rng.Bernoulli(0.35)) {
        facts += "assign(" + var(i) + ", " + var(nearby(i)) + ").\n";
      }
    } else if (roll < 0.97) {
      // v_i = *v_j
      facts += "load(" + var(i) + ", " + var(nearby(i)) + ").\n";
    } else {
      // *v_j = v_k: a side effect between two locals (no definition).
      facts += "store(" + var(nearby(i)) + ", " + var(nearby(i)) + ").\n";
    }
  }

  // The classical 4-rule inclusion-based ("Andersen") points-to analysis.
  const char* program = R"(
    pointsto(Y, X) :- addressof(Y, X).
    pointsto(Y, X) :- assign(Y, Z), pointsto(Z, X).
    pointsto(Y, W) :- load(Y, X), pointsto(X, Z), pointsto(Z, W).
    pointsto(Z, W) :- store(Y, X), pointsto(Y, Z), pointsto(X, W).
  )";
  return Assemble("Andersen",
                  "D(" + std::to_string(num_statements) + " stmts)", program,
                  facts, "pointsto");
}

// --------------------------------------------------------------------
// CSDA
// --------------------------------------------------------------------

GeneratedScenario MakeCsda(const std::string& system_name,
                           std::size_t num_edges, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t num_points = std::max<std::size_t>(8, num_edges / 2);
  auto point = [](std::size_t i) { return "pp" + std::to_string(i); };

  std::string facts;
  facts.reserve(num_edges * 20);
  // A mostly-forward, *local* control-flow graph (programs flow downward
  // through nearby statements; loops add a few short back edges), with a
  // handful of null-producing statements.
  const std::size_t window = 32;
  for (std::size_t i = 0; i < num_edges; ++i) {
    const std::size_t u = rng.UniformInt(num_points);
    std::size_t v = u + 1 + rng.UniformInt(window);
    if (v >= num_points) v = num_points - 1;
    if (rng.Bernoulli(0.03) && u > 0) {
      // Loop back edge.
      facts += "flow(" + point(u) + ", " +
               point(u - 1 - rng.UniformInt(std::min(u, window))) + ").\n";
    }
    if (u != v) facts += "flow(" + point(u) + ", " + point(v) + ").\n";
  }
  const std::size_t num_sources =
      std::max<std::size_t>(1, num_points / 100);
  for (std::size_t i = 0; i < num_sources; ++i) {
    facts += "nullsrc(" + point(rng.UniformInt(num_points)) + ").\n";
  }

  const char* program = R"(
    null(X) :- nullsrc(X).
    null(Y) :- null(X), flow(X, Y).
  )";
  return Assemble("CSDA", "D" + system_name, program, facts, "null");
}

}  // namespace whyprov::scenarios
