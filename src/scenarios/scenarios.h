#ifndef WHYPROV_SCENARIOS_SCENARIOS_H_
#define WHYPROV_SCENARIOS_SCENARIOS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datalog/database.h"
#include "datalog/program.h"
#include "engine/engine.h"

namespace whyprov::scenarios {

/// One generated experimental scenario instance: a query, a database, and
/// bookkeeping names matching the paper's Table 1.
struct GeneratedScenario {
  std::string scenario_name;   ///< e.g. "Andersen"
  std::string database_name;   ///< e.g. "D3"
  std::string query_type;      ///< e.g. "non-linear, recursive" (Table 1)
  std::size_t num_rules = 0;   ///< rule count (Table 1)
  std::shared_ptr<datalog::SymbolTable> symbols;
  datalog::Program program;
  datalog::Database database;
  std::string answer_predicate;

  /// Builds the engine for this instance (evaluates eagerly).
  Engine MakeEngine(EngineOptions options = EngineOptions()) const;
};

// --------------------------------------------------------------------
// The five scenario families of Table 1. The paper's real datasets
// (Bitcoin, Facebook, Galen, the data-exchange Doctors database, program
// encodings for Andersen, and httpd/PostgreSQL/Linux dataflow graphs) are
// not available offline; each generator below synthesises a database with
// the same structural character at a configurable scale (see DESIGN.md,
// "Substitutions").
// --------------------------------------------------------------------

/// TransClosure: transitive closure of a graph (linear, recursive,
/// 2 rules). `kSparse` mimics the Bitcoin transaction graph (low degree,
/// mostly tree-like); `kSocial` mimics the Facebook social-circles graph
/// (dense clusters, high connectivity — the hard case for phi_acyclic).
enum class GraphKind { kSparse, kSocial };
GeneratedScenario MakeTransClosure(GraphKind kind, std::size_t num_nodes,
                                   std::size_t num_edges, std::uint64_t seed);

/// Doctors-i (i in 1..7): data-exchange-style queries over a hospital
/// schema (linear, non-recursive, 6 rules each). All variants share one
/// database of `num_persons`-scaled size; the variant controls the join
/// chain the query performs (variants 1, 5, 7 are the demanding ones, as
/// in the paper's Figure 5).
GeneratedScenario MakeDoctors(int variant, std::size_t num_persons,
                              std::uint64_t seed);

/// Galen: an EL-ontology completion calculus in the style of ELK
/// (non-linear, recursive, 14 rules) over a synthetic ontology with
/// `num_concepts` concept names.
GeneratedScenario MakeGalen(std::size_t num_concepts, std::uint64_t seed);

/// Andersen: the classical inclusion-based points-to analysis
/// (non-linear, recursive, 4 rules) over a synthetic program with
/// `num_statements` pointer statements.
GeneratedScenario MakeAndersen(std::size_t num_statements,
                               std::uint64_t seed);

/// CSDA: context-sensitive dataflow analysis for null references
/// (linear, recursive, 2 rules) over a synthetic procedure graph with
/// `num_edges` dataflow edges. `system_name` labels the database (the
/// paper uses httpd / postgresql / linux).
GeneratedScenario MakeCsda(const std::string& system_name,
                           std::size_t num_edges, std::uint64_t seed);

}  // namespace whyprov::scenarios

#endif  // WHYPROV_SCENARIOS_SCENARIOS_H_
