#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "qos/scheduler.h"
#include "service/serving_internal.h"
#include "storage/durable_store.h"
#include "util/timer.h"

namespace whyprov {

namespace dl = whyprov::datalog;
namespace si = whyprov::serving_internal;

// --- MemberStream --------------------------------------------------------

bool MemberStream::OnMember(std::vector<dl::Fact> member) {
  const util::MutexLock lock(mutex_);
  // Backpressure: block the producing worker until the consumer pops or
  // abandons the stream. This is what keeps memory bounded by `capacity_`
  // instead of the family size.
  while (!closed_ && buffer_.size() >= capacity_) producer_cv_.Wait(mutex_);
  if (closed_) return false;
  buffer_.push_back(std::move(member));
  consumer_cv_.NotifyOne();
  return true;
}

void MemberStream::OnComplete(const util::Status& status) {
  {
    const util::MutexLock lock(mutex_);
    complete_ = true;
    status_ = status;
  }
  consumer_cv_.NotifyAll();
}

std::optional<std::vector<dl::Fact>> MemberStream::Pop() {
  const util::MutexLock lock(mutex_);
  while (buffer_.empty() && !complete_ && !closed_) consumer_cv_.Wait(mutex_);
  if (!buffer_.empty()) {
    std::vector<dl::Fact> member = std::move(buffer_.front());
    buffer_.pop_front();
    producer_cv_.NotifyOne();
    return member;
  }
  return std::nullopt;
}

void MemberStream::Close() {
  {
    const util::MutexLock lock(mutex_);
    closed_ = true;
    buffer_.clear();  // an abandoned stream keeps no members alive
  }
  producer_cv_.NotifyAll();
  consumer_cv_.NotifyAll();
}

bool MemberStream::finished() const {
  const util::MutexLock lock(mutex_);
  return complete_ || closed_;
}

util::Status MemberStream::final_status() const {
  const util::MutexLock lock(mutex_);
  return status_;
}

// --- MemberMerge ---------------------------------------------------------

std::optional<std::vector<dl::Fact>> MemberMerge::Pop() {
  while (current_ < parts_.size()) {
    // Drains part `current_` to completion before touching the next —
    // the stable ordering contract. Later parts keep producing into
    // their own bounded buffers meanwhile (or block on them: that is
    // their backpressure, not ours).
    if (auto member = parts_[current_].stream->Pop()) return member;
    ++current_;
  }
  return std::nullopt;
}

void MemberMerge::Close() {
  for (Part& part : parts_) part.stream->Close();
}

void MemberMerge::Wait() const {
  for (const Part& part : parts_) part.ticket.Wait();
}

util::Status MemberMerge::final_status() const {
  for (const Part& part : parts_) {
    util::Status status = part.stream->final_status();
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

// --- Ticket --------------------------------------------------------------

std::uint64_t Ticket::id() const { return shared_ ? shared_->id : 0; }

bool Ticket::done() const {
  if (!shared_) return true;
  const util::MutexLock lock(shared_->mutex);
  return shared_->done;
}

void Ticket::Cancel() {
  if (!shared_) return;
  shared_->cancel.Cancel();
  // A producer blocked on a full stream polls no token; wake it so the
  // enumeration observes the cancel promptly.
  if (shared_->sink) shared_->sink->OnCancel();
}

const Response& Ticket::Wait() const {
  static const Response kEmpty;
  if (!shared_) return kEmpty;
  const util::MutexLock lock(shared_->mutex);
  while (!shared_->done) shared_->cv.Wait(shared_->mutex);
  return shared_->response;
}

Response Ticket::Take() {
  if (!shared_) return Response();
  const util::MutexLock lock(shared_->mutex);
  while (!shared_->done) shared_->cv.Wait(shared_->mutex);
  Response response = std::move(shared_->response);
  // Keep the terminal scalars observable through later Wait() calls; only
  // the heavy payloads move out.
  shared_->response.status = response.status;
  shared_->response.kind = response.kind;
  shared_->response.members_emitted = response.members_emitted;
  shared_->response.model_version = response.model_version;
  return response;
}

bool Ticket::WaitFor(double seconds) const {
  if (!shared_) return true;
  const util::MutexLock lock(shared_->mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (!shared_->done) {
    if (shared_->cv.WaitUntil(shared_->mutex, deadline)) break;
  }
  return shared_->done;
}

// --- Service -------------------------------------------------------------

namespace {

/// The worker pool of an executor-owning service: the configured fair
/// scheduler as the queue discipline, or the plain FIFO when QoS fair
/// queueing is disabled.
std::shared_ptr<util::Executor> MakeServiceExecutor(
    const ServiceOptions& options) {
  util::Executor::Options exec;
  exec.num_threads = options.num_threads;
  exec.queue_capacity = options.queue_capacity == 0 ? 1
                                                    : options.queue_capacity;
  if (options.qos.fair_queueing) {
    exec.queue = std::make_shared<qos::FairScheduler>(options.qos);
  }
  return std::make_shared<util::Executor>(std::move(exec));
}

}  // namespace

Service::Service(Engine engine, ServiceOptions options)
    : engine_(std::move(engine)),
      options_(options),
      tenants_(std::make_shared<qos::TenantRegistry>()),
      admission_(std::make_shared<qos::AdmissionController>(options.qos)),
      owns_executor_(true),
      executor_(MakeServiceExecutor(options)) {
  OpenDurability();
}

Service::Service(Engine engine, std::shared_ptr<util::Executor> executor,
                 ServiceOptions options,
                 std::shared_ptr<qos::TenantRegistry> tenants,
                 std::shared_ptr<qos::AdmissionController> admission)
    : engine_(std::move(engine)),
      options_(options),
      tenants_(tenants != nullptr
                   ? std::move(tenants)
                   : std::make_shared<qos::TenantRegistry>()),
      admission_(admission != nullptr
                     ? std::move(admission)
                     : std::make_shared<qos::AdmissionController>(
                           options.qos)),
      owns_executor_(false),
      executor_(std::move(executor)) {
  OpenDurability();
}

void Service::OpenDurability() {
  const EngineOptions& engine_options = engine_.options();
  if (engine_options.data_dir.empty()) return;
  storage::DurabilityOptions durability;
  durability.data_dir = engine_options.data_dir;
  durability.wal_fsync = engine_options.wal_fsync;
  durability.wal_group_commit = engine_options.wal_group_commit;
  durability.checkpoint_interval = engine_options.checkpoint_interval;
  util::Result<std::unique_ptr<storage::DurableStore>> opened =
      storage::DurableStore::Open(durability);
  if (!opened.ok()) {
    durability_status_ = opened.status();
    return;
  }
  store_ = std::move(opened).value();
  wal_group_commit_ =
      engine_options.wal_fsync && engine_options.wal_group_commit;

  // Recovery: restore the checkpoint when one decodes against this
  // stack's parsed program/database, then replay the WAL tail through
  // the normal delta path. A checkpoint that fails to decode is
  // recoverable — the WAL is never compacted, so full-log replay (the
  // folded sequence stays 0) reproduces the same state.
  if (store_->has_checkpoint()) {
    util::Result<storage::RecoveredCheckpoint> recovered =
        store_->RestoreCheckpoint(engine_.PinSnapshot()->model.symbols_ptr());
    if (recovered.ok()) {
      storage::RecoveredCheckpoint checkpoint = std::move(recovered).value();
      engine_.AdoptRecovered(std::move(checkpoint.model),
                             checkpoint.model_version);
    }
  }
  std::uint64_t replayed = 0;
  for (const storage::WalRecord& record : store_->TailRecords()) {
    DeltaRequest delta;
    delta.added_fact_texts = record.added;
    delta.removed_fact_texts = record.removed;
    // A record that fails to apply failed identically when it was first
    // logged (replay is deterministic): log-then-apply admits records
    // whose apply was later refused, and replay must skip them the same
    // way rather than abort recovery.
    (void)engine_.ApplyDelta(delta);
    ++replayed;
  }
  store_->FinishRecovery(replayed);
}

Service::~Service() {
  if (owns_executor_) {
    // Drains every admitted request (their tickets complete) and joins.
    executor_->Shutdown();
    return;
  }
  // Shared pool: its owner decides when it dies; this service only waits
  // until none of its own requests remain queued or executing (each
  // holds a `this` capture).
  const util::MutexLock lock(outstanding_mutex_);
  while (outstanding_ != 0) outstanding_cv_.Wait(outstanding_mutex_);
}

util::Result<Ticket> Service::Submit(Request request,
                                     std::shared_ptr<MemberSink> sink) {
  auto state = std::make_shared<Ticket::State>();
  state->request = std::move(request);
  state->sink = std::move(sink);
  const double deadline = state->request.deadline_seconds > 0
                              ? state->request.deadline_seconds
                              : options_.default_deadline_seconds;
  // The deadline clock starts at admission: queue wait counts against it,
  // exactly like a client-side deadline would.
  if (deadline > 0) state->cancel.SetTimeout(deadline);

  // QoS: price the request, then run cost-based admission before it can
  // occupy a queue slot. The charge is refunded exactly once, in Finish
  // (cancellation included — refund-on-cancel is the same path).
  const qos::QosClass lane = state->request.qos_class;
  const std::string& tenant = state->request.tenant;
  state->estimated_cost = EstimateCost(state->request);
  if (util::Status priced =
          admission_->Admit(tenant, state->estimated_cost);
      !priced.ok()) {
    {
      const util::MutexLock lock(stats_mutex_);
      ++stats_.rejected;
    }
    tenants_->RecordRejected(tenant, lane);
    return priced;
  }

  // Count the submission (and stamp the id) before the task can run, so
  // no observer ever sees completed > submitted; roll back on rejection.
  {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.submitted;
    state->id = ++next_id_;
  }
  {
    const util::MutexLock lock(outstanding_mutex_);
    ++outstanding_;
  }
  // Counted before the task can run: its Finish may be the burst
  // boundary that flushes the coalesced WAL fsync.
  const bool group_commit_delta =
      wal_group_commit_ && si::KindOf(state->request) == RequestKind::kApplyDelta;
  if (group_commit_delta) {
    delta_backlog_.fetch_add(1, std::memory_order_relaxed);
  }
  util::TaskTag tag;
  tag.lane = static_cast<std::uint8_t>(lane);
  tag.tenant = tenant;
  tag.shard = options_.qos_shard;
  tag.cost = state->estimated_cost;
  // The notify happens under the mutex: with it outside, the destructor
  // could observe outstanding_ == 0 between a worker's unlock and its
  // notify_all and free the condition variable the worker is about to
  // signal.
  const util::Status admitted = executor_->TrySubmit(
      [this, state] {
        Execute(state);
        const util::MutexLock lock(outstanding_mutex_);
        --outstanding_;
        outstanding_cv_.NotifyAll();
      },
      tag);
  if (!admitted.ok()) {
    {
      const util::MutexLock lock(stats_mutex_);
      --stats_.submitted;
      ++stats_.rejected;
    }
    {
      const util::MutexLock lock(outstanding_mutex_);
      --outstanding_;
      outstanding_cv_.NotifyAll();
    }
    if (group_commit_delta) {
      delta_backlog_.fetch_sub(1, std::memory_order_relaxed);
    }
    admission_->Release(tenant, state->estimated_cost);
    tenants_->RecordRejected(tenant, lane);
    return admitted;
  }
  tenants_->RecordQueued(tenant, lane);
  return Ticket(state);
}

double Service::EstimateCost(const Request& request) const {
  qos::CostSignals signals;
  if (si::KindOf(request) == RequestKind::kApplyDelta) {
    const DeltaRequest& delta = std::get<DeltaRequest>(request.op);
    signals.delta_facts =
        delta.added_facts.size() + delta.added_fact_texts.size() +
        delta.removed_facts.size() + delta.removed_fact_texts.size();
    signals.database_facts = engine_.database().facts().size();
    return qos::CostEstimator::Delta(signals);
  }
  PlanCostPeek peek;
  switch (request.op.index()) {
    case 0: {
      const EnumerateRequest& op = std::get<EnumerateRequest>(request.op);
      peek = engine_.PeekPlanCost(op.target, op.target_text, op.acyclicity);
      break;
    }
    case 1: {
      const DecideRequest& op = std::get<DecideRequest>(request.op);
      peek = engine_.PeekPlanCost(op.target, op.target_text, op.acyclicity);
      break;
    }
    default: {
      const ExplainRequest& op = std::get<ExplainRequest>(request.op);
      peek = engine_.PeekPlanCost(op.target, op.target_text, op.acyclicity);
      break;
    }
  }
  signals.plan_cached = peek.plan_cached;
  signals.closure_facts = peek.closure_facts;
  signals.cnf_clauses = peek.cnf_clauses;
  signals.cnf_variables = peek.cnf_variables;
  signals.database_facts = peek.database_facts;
  return qos::CostEstimator::Query(signals);
}

util::Result<PreparedQuery> Service::PrepareFor(
    dl::FactId target, const std::string& target_text,
    std::optional<provenance::AcyclicityEncoding> acyclicity) const {
  PrepareRequest prepare;
  prepare.target = target;
  prepare.target_text = target_text;
  prepare.acyclicity = acyclicity;
  return engine_.Prepare(prepare);
}

util::Result<std::pair<Ticket, std::shared_ptr<MemberStream>>>
Service::Stream(EnumerateRequest request, std::size_t stream_capacity,
                double deadline_seconds) {
  auto stream = std::make_shared<MemberStream>(stream_capacity);
  Request unified;
  unified.op = std::move(request);
  unified.deadline_seconds = deadline_seconds;
  util::Result<Ticket> ticket = Submit(std::move(unified), stream);
  if (!ticket.ok()) return ticket.status();
  return std::make_pair(std::move(ticket).value(), std::move(stream));
}

util::Result<std::shared_ptr<MemberMerge>> Service::StreamMany(
    std::vector<EnumerateRequest> requests, std::size_t stream_capacity,
    double deadline_seconds) {
  return si::StreamManyOn(*this, std::move(requests), stream_capacity,
                          deadline_seconds);
}

void Service::ExecuteEnumerate(const std::shared_ptr<Ticket::State>& state,
                               Response& response) {
  EnumerateRequest request = std::get<EnumerateRequest>(state->request.op);
  request.cancellation = state->cancel.token();
  util::Result<Enumeration> enumeration = engine_.Enumerate(request);
  if (!enumeration.ok()) {
    response.status = enumeration.status();
    return;
  }
  response.model_version = enumeration.value().model_version();
  // Snapshot GC: a slow (typically streaming) consumer keeps this
  // enumeration's snapshot pinned while deltas stack newer versions on
  // top. With a lag bound configured, cut the pin once the gap exceeds
  // it instead of retaining an unbounded COW chain.
  const std::size_t max_lag = engine_.options().max_snapshot_lag;
  bool sink_stopped = false;
  bool evicted = false;
  for (std::optional<std::vector<dl::Fact>> member =
           enumeration.value().Next();
       member.has_value(); member = enumeration.value().Next()) {
    if (max_lag > 0 &&
        engine_.model_version() > response.model_version + max_lag) {
      evicted = true;
      break;
    }
    if (state->sink != nullptr) {
      if (!state->sink->OnMember(std::move(*member))) {
        sink_stopped = true;
        break;
      }
    } else {
      response.members.push_back(std::move(*member));
    }
    ++response.members_emitted;
  }
  response.exhausted = enumeration.value().exhausted();
  response.incomplete = enumeration.value().incomplete();
  response.hit_member_cap = enumeration.value().hit_member_cap();
  response.hit_timeout = enumeration.value().hit_timeout();
  response.status = enumeration.value().interruption_status();
  if (response.status.ok() && evicted) {
    response.status = util::Status::ResourceExhausted(
        "snapshot GC: the request's pinned model version trailed the "
        "engine by more than max_snapshot_lag deltas");
    const util::MutexLock lock(stats_mutex_);
    ++stats_.snapshot_evictions;
  }
  if (response.status.ok() && sink_stopped) {
    // The consumer closed its stream: the client stopped wanting the
    // answer, which is a cancellation in all but the signal path.
    response.status =
        util::Status::Cancelled("the member sink stopped the enumeration");
  }
}

void Service::Execute(const std::shared_ptr<Ticket::State>& state) {
  {
    const util::MutexLock lock(stats_mutex_);
    ++started_;
  }
  Response response;
  response.kind = si::KindOf(state->request);
  response.queue_seconds = state->submit_timer.ElapsedSeconds();
  const util::CancellationToken token = state->cancel.token();
  util::Timer exec_timer;

  if (token.ShouldStop()) {
    // Cancelled or expired while queued: never touches the engine, so a
    // dead request cannot add load (and releases no snapshot — it never
    // pinned one).
    response.status = token.InterruptionStatus();
    response.model_version = engine_.model_version();
    response.exec_seconds = exec_timer.ElapsedSeconds();
    Finish(state, std::move(response));
    return;
  }

  switch (response.kind) {
    case RequestKind::kEnumerate:
      ExecuteEnumerate(state, response);
      break;
    case RequestKind::kDecide: {
      DecideRequest request = std::get<DecideRequest>(state->request.op);
      request.cancellation = token;
      if (request.tree_class == provenance::TreeClass::kUnambiguous) {
        // Execute through a prepared plan: it pins one snapshot, so the
        // reported model_version is exactly the version the verdict was
        // computed against even if a delta lands mid-request.
        util::Result<PreparedQuery> prepared = PrepareFor(
            request.target, request.target_text, request.acyclicity);
        if (!prepared.ok()) {
          response.status = prepared.status();
          break;
        }
        response.model_version = prepared.value().model_version();
        util::Result<bool> verdict = prepared.value().Decide(request);
        if (verdict.ok()) {
          response.member = verdict.value();
        } else {
          response.status = verdict.status();
        }
        break;
      }
      // The exhaustive reference classes deliberately skip Prepare (no
      // plan wanted), so there is no pinned handle to report a version
      // from: best effort, read the version the engine serves right now.
      response.model_version = engine_.model_version();
      util::Result<bool> verdict = engine_.Decide(request);
      if (verdict.ok()) {
        response.member = verdict.value();
      } else {
        response.status = verdict.status();
      }
      break;
    }
    case RequestKind::kExplain: {
      ExplainRequest request = std::get<ExplainRequest>(state->request.op);
      request.cancellation = token;
      // As for Decide: the prepared plan pins the snapshot the proof tree
      // is reconstructed from, making the reported version exact.
      util::Result<PreparedQuery> prepared = PrepareFor(
          request.target, request.target_text, request.acyclicity);
      if (!prepared.ok()) {
        response.status = prepared.status();
        break;
      }
      response.model_version = prepared.value().model_version();
      util::Result<Explanation> explanation =
          prepared.value().Explain(request);
      if (explanation.ok()) {
        response.explanation = std::move(explanation).value();
      } else {
        response.status = explanation.status();
      }
      break;
    }
    case RequestKind::kApplyDelta: {
      // Writes lean on the engine's snapshot versioning: ApplyDelta
      // serialises against other deltas inside the engine and publishes a
      // fresh snapshot, while every in-flight read keeps the snapshot it
      // pinned — so a delta neither waits for nor tears running reads.
      // (The evaluation itself is not interruptible: a delta is either
      // applied or not, never half-propagated.)
      util::Result<DeltaStats> delta =
          ExecuteDelta(std::get<DeltaRequest>(state->request.op));
      if (delta.ok()) {
        response.model_version = delta.value().model_version;
        response.delta = std::move(delta).value();
      } else {
        response.status = delta.status();
      }
      break;
    }
  }
  response.exec_seconds = exec_timer.ElapsedSeconds();
  Finish(state, std::move(response));
}

util::Result<DeltaStats> Service::ExecuteDelta(const DeltaRequest& request) {
  if (store_ == nullptr) return engine_.ApplyDelta(request);
  // The WAL stores the text form only: render any parsed facts so a
  // replaying process (which has no access to this one's fact ids)
  // reconstructs the identical delta.
  std::vector<std::string> added = request.added_fact_texts;
  for (const dl::Fact& fact : request.added_facts) {
    added.push_back(engine_.FactToText(fact));
  }
  std::vector<std::string> removed = request.removed_fact_texts;
  for (const dl::Fact& fact : request.removed_facts) {
    removed.push_back(engine_.FactToText(fact));
  }
  // Deltas execute on arbitrary worker threads; the order mutex is what
  // makes WAL append order equal engine apply order — without it two
  // concurrent deltas could log in one order and apply in the other,
  // and replay would diverge.
  const util::MutexLock order(store_->order_mutex());
  if (util::Status logged = store_->AppendDelta(added, removed);
      !logged.ok()) {
    // Never apply what was not durably logged — refusing the delta keeps
    // the log a superset of the applied history.
    return logged;
  }
  util::Result<DeltaStats> applied = engine_.ApplyDelta(request);
  MaybeCheckpoint();
  return applied;
}

void Service::MaybeCheckpoint() {
  if (!store_->ShouldCheckpoint()) return;
  const std::shared_ptr<const EngineState> state = engine_.PinSnapshot();
  // A failed checkpoint write is not fatal: the WAL still holds the full
  // history, and the next interval retries.
  (void)store_->WriteCheckpoint(state->model, state->model_version,
                                *state->parse_mutex);
}

void Service::Finish(const std::shared_ptr<Ticket::State>& state,
                     Response response) {
  // The single release point for the admission charge: success, failure,
  // and cancellation all pass through here exactly once, so a cancelled
  // request's budget is refunded the moment its ticket goes terminal.
  admission_->Release(state->request.tenant, state->estimated_cost);
  const bool cancelled =
      response.status.code() == util::StatusCode::kCancelled ||
      response.status.code() == util::StatusCode::kDeadlineExceeded;
  tenants_->RecordCompleted(state->request.tenant, state->request.qos_class,
                            cancelled, state->estimated_cost,
                            response.queue_seconds);
  // Group commit: the delta that empties the backlog closes the burst
  // and flushes the one coalesced fsync covering all of it.
  if (wal_group_commit_ &&
      si::KindOf(state->request) == RequestKind::kApplyDelta &&
      delta_backlog_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    (void)store_->SyncWal();
  }
  {
    const util::MutexLock lock(stats_mutex_);
    si::CountOutcome(response, stats_);
  }
  si::CompleteTicket(state, std::move(response));
}

ServiceStats Service::stats() const {
  ServiceStats snapshot;
  {
    const util::MutexLock lock(stats_mutex_);
    snapshot = stats_;
    // Derived from the counters (not the executor, which may be shared
    // with sibling shards): exact per-service gauges either way.
    snapshot.queue_depth =
        static_cast<std::size_t>(stats_.submitted - started_);
    snapshot.in_flight =
        static_cast<std::size_t>(started_ - stats_.completed);
  }
  snapshot.tenants = tenants_->Snapshot();
  snapshot.model_version = engine_.model_version();
  const PlanCacheStats plans = engine_.plan_cache_stats();
  snapshot.plans_simplified = plans.plans_simplified;
  snapshot.simplify_vars_removed = plans.simplify_vars_removed;
  snapshot.simplify_clauses_removed = plans.simplify_clauses_removed;
  snapshot.simplify_micros = plans.simplify_micros;
  if (store_ != nullptr) {
    const storage::DurabilityCounters durability = store_->counters();
    snapshot.wal_appends = durability.wal_appends;
    snapshot.wal_bytes = durability.wal_bytes;
    snapshot.checkpoints_written = durability.checkpoints_written;
    snapshot.recovery_replayed_deltas = durability.recovery_replayed_deltas;
  }
  const SnapshotStats snapshots = engine_.snapshot_stats();
  snapshot.retained_snapshots = snapshots.retained_snapshots;
  snapshot.retained_snapshot_bytes = snapshots.approx_bytes;
  const std::size_t alarm_bytes = engine_.options().snapshot_alarm_bytes;
  snapshot.snapshot_alarm =
      alarm_bytes > 0 && snapshot.retained_snapshot_bytes > alarm_bytes;
  const double uptime = uptime_.ElapsedSeconds();
  snapshot.queries_per_second =
      uptime > 0 ? static_cast<double>(snapshot.completed) / uptime : 0;
  return snapshot;
}

// --- blocking batch conveniences -----------------------------------------

BatchEnumerateResult Service::EnumerateBatch(
    const std::vector<EnumerateRequest>& requests) {
  return si::ServeEnumerateBatch(
      *this, [this] { return engine_.plan_cache_stats(); }, requests);
}

BatchDecideResult Service::DecideBatch(
    const std::vector<DecideRequest>& requests) {
  return si::ServeDecideBatch(
      *this, [this] { return engine_.plan_cache_stats(); }, requests);
}

}  // namespace whyprov
