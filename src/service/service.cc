#include "service/service.h"

#include <chrono>
#include <thread>

#include "util/timer.h"

namespace whyprov {

namespace dl = whyprov::datalog;

// --- MemberStream --------------------------------------------------------

bool MemberStream::OnMember(std::vector<dl::Fact> member) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Backpressure: block the producing worker until the consumer pops or
  // abandons the stream. This is what keeps memory bounded by `capacity_`
  // instead of the family size.
  producer_cv_.wait(lock,
                    [this] { return closed_ || buffer_.size() < capacity_; });
  if (closed_) return false;
  buffer_.push_back(std::move(member));
  consumer_cv_.notify_one();
  return true;
}

void MemberStream::OnComplete(const util::Status& status) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    complete_ = true;
    status_ = status;
  }
  consumer_cv_.notify_all();
}

std::optional<std::vector<dl::Fact>> MemberStream::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  consumer_cv_.wait(
      lock, [this] { return !buffer_.empty() || complete_ || closed_; });
  if (!buffer_.empty()) {
    std::vector<dl::Fact> member = std::move(buffer_.front());
    buffer_.pop_front();
    producer_cv_.notify_one();
    return member;
  }
  return std::nullopt;
}

void MemberStream::Close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    buffer_.clear();  // an abandoned stream keeps no members alive
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

bool MemberStream::finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return complete_ || closed_;
}

util::Status MemberStream::final_status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

// --- Ticket --------------------------------------------------------------

struct Ticket::State {
  std::uint64_t id = 0;
  Request request;
  std::shared_ptr<MemberSink> sink;
  util::CancellationSource cancel;
  util::Timer submit_timer;  ///< starts at admission; measures queue wait

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response response;
};

std::uint64_t Ticket::id() const { return shared_ ? shared_->id : 0; }

bool Ticket::done() const {
  if (!shared_) return true;
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->done;
}

void Ticket::Cancel() {
  if (!shared_) return;
  shared_->cancel.Cancel();
  // A producer blocked on a full stream polls no token; wake it so the
  // enumeration observes the cancel promptly.
  if (shared_->sink) shared_->sink->OnCancel();
}

const Response& Ticket::Wait() const {
  static const Response kEmpty;
  if (!shared_) return kEmpty;
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [this] { return shared_->done; });
  return shared_->response;
}

Response Ticket::Take() {
  if (!shared_) return Response();
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [this] { return shared_->done; });
  Response response = std::move(shared_->response);
  // Keep the terminal scalars observable through later Wait() calls; only
  // the heavy payloads move out.
  shared_->response.status = response.status;
  shared_->response.kind = response.kind;
  shared_->response.members_emitted = response.members_emitted;
  shared_->response.model_version = response.model_version;
  return response;
}

bool Ticket::WaitFor(double seconds) const {
  if (!shared_) return true;
  std::unique_lock<std::mutex> lock(shared_->mutex);
  return shared_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                              [this] { return shared_->done; });
}

// --- Service -------------------------------------------------------------

namespace {

RequestKind KindOf(const Request& request) {
  switch (request.op.index()) {
    case 0:
      return RequestKind::kEnumerate;
    case 1:
      return RequestKind::kDecide;
    case 2:
      return RequestKind::kExplain;
    default:
      return RequestKind::kApplyDelta;
  }
}

}  // namespace

Service::Service(Engine engine, ServiceOptions options)
    : engine_(std::move(engine)),
      options_(options),
      executor_(util::Executor::Options{
          options.num_threads,
          options.queue_capacity == 0 ? 1 : options.queue_capacity}) {}

Service::~Service() {
  // Drains every admitted request (their tickets complete) and joins.
  executor_.Shutdown();
}

util::Result<Ticket> Service::Submit(Request request,
                                     std::shared_ptr<MemberSink> sink) {
  auto state = std::make_shared<Ticket::State>();
  state->request = std::move(request);
  state->sink = std::move(sink);
  const double deadline = state->request.deadline_seconds > 0
                              ? state->request.deadline_seconds
                              : options_.default_deadline_seconds;
  // The deadline clock starts at admission: queue wait counts against it,
  // exactly like a client-side deadline would.
  if (deadline > 0) state->cancel.SetTimeout(deadline);

  // Count the submission (and stamp the id) before the task can run, so
  // no observer ever sees completed > submitted; roll back on rejection.
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
    state->id = ++next_id_;
  }
  const util::Status admitted =
      executor_.TrySubmit([this, state] { Execute(state); });
  if (!admitted.ok()) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.submitted;
    ++stats_.rejected;
    return admitted;
  }
  return Ticket(state);
}

util::Result<PreparedQuery> Service::PrepareFor(
    dl::FactId target, const std::string& target_text,
    std::optional<provenance::AcyclicityEncoding> acyclicity) const {
  PrepareRequest prepare;
  prepare.target = target;
  prepare.target_text = target_text;
  prepare.acyclicity = acyclicity;
  return engine_.Prepare(prepare);
}

util::Result<std::pair<Ticket, std::shared_ptr<MemberStream>>>
Service::Stream(EnumerateRequest request, std::size_t stream_capacity,
                double deadline_seconds) {
  auto stream = std::make_shared<MemberStream>(stream_capacity);
  Request unified;
  unified.op = std::move(request);
  unified.deadline_seconds = deadline_seconds;
  util::Result<Ticket> ticket = Submit(std::move(unified), stream);
  if (!ticket.ok()) return ticket.status();
  return std::make_pair(std::move(ticket).value(), std::move(stream));
}

void Service::ExecuteEnumerate(const std::shared_ptr<Ticket::State>& state,
                               Response& response) {
  EnumerateRequest request = std::get<EnumerateRequest>(state->request.op);
  request.cancellation = state->cancel.token();
  util::Result<Enumeration> enumeration = engine_.Enumerate(request);
  if (!enumeration.ok()) {
    response.status = enumeration.status();
    return;
  }
  response.model_version = enumeration.value().model_version();
  bool sink_stopped = false;
  for (std::optional<std::vector<dl::Fact>> member =
           enumeration.value().Next();
       member.has_value(); member = enumeration.value().Next()) {
    if (state->sink != nullptr) {
      if (!state->sink->OnMember(std::move(*member))) {
        sink_stopped = true;
        break;
      }
    } else {
      response.members.push_back(std::move(*member));
    }
    ++response.members_emitted;
  }
  response.exhausted = enumeration.value().exhausted();
  response.incomplete = enumeration.value().incomplete();
  response.hit_member_cap = enumeration.value().hit_member_cap();
  response.hit_timeout = enumeration.value().hit_timeout();
  response.status = enumeration.value().interruption_status();
  if (response.status.ok() && sink_stopped) {
    // The consumer closed its stream: the client stopped wanting the
    // answer, which is a cancellation in all but the signal path.
    response.status =
        util::Status::Cancelled("the member sink stopped the enumeration");
  }
}

void Service::Execute(const std::shared_ptr<Ticket::State>& state) {
  Response response;
  response.kind = KindOf(state->request);
  response.queue_seconds = state->submit_timer.ElapsedSeconds();
  const util::CancellationToken token = state->cancel.token();
  util::Timer exec_timer;

  if (token.ShouldStop()) {
    // Cancelled or expired while queued: never touches the engine, so a
    // dead request cannot add load (and releases no snapshot — it never
    // pinned one).
    response.status = token.InterruptionStatus();
    response.model_version = engine_.model_version();
    response.exec_seconds = exec_timer.ElapsedSeconds();
    Finish(state, std::move(response));
    return;
  }

  switch (response.kind) {
    case RequestKind::kEnumerate:
      ExecuteEnumerate(state, response);
      break;
    case RequestKind::kDecide: {
      DecideRequest request = std::get<DecideRequest>(state->request.op);
      request.cancellation = token;
      if (request.tree_class == provenance::TreeClass::kUnambiguous) {
        // Execute through a prepared plan: it pins one snapshot, so the
        // reported model_version is exactly the version the verdict was
        // computed against even if a delta lands mid-request.
        util::Result<PreparedQuery> prepared = PrepareFor(
            request.target, request.target_text, request.acyclicity);
        if (!prepared.ok()) {
          response.status = prepared.status();
          break;
        }
        response.model_version = prepared.value().model_version();
        util::Result<bool> verdict = prepared.value().Decide(request);
        if (verdict.ok()) {
          response.member = verdict.value();
        } else {
          response.status = verdict.status();
        }
        break;
      }
      // The exhaustive reference classes deliberately skip Prepare (no
      // plan wanted), so there is no pinned handle to report a version
      // from: best effort, read the version the engine serves right now.
      response.model_version = engine_.model_version();
      util::Result<bool> verdict = engine_.Decide(request);
      if (verdict.ok()) {
        response.member = verdict.value();
      } else {
        response.status = verdict.status();
      }
      break;
    }
    case RequestKind::kExplain: {
      ExplainRequest request = std::get<ExplainRequest>(state->request.op);
      request.cancellation = token;
      // As for Decide: the prepared plan pins the snapshot the proof tree
      // is reconstructed from, making the reported version exact.
      util::Result<PreparedQuery> prepared = PrepareFor(
          request.target, request.target_text, request.acyclicity);
      if (!prepared.ok()) {
        response.status = prepared.status();
        break;
      }
      response.model_version = prepared.value().model_version();
      util::Result<Explanation> explanation =
          prepared.value().Explain(request);
      if (explanation.ok()) {
        response.explanation = std::move(explanation).value();
      } else {
        response.status = explanation.status();
      }
      break;
    }
    case RequestKind::kApplyDelta: {
      // Writes lean on the engine's snapshot versioning: ApplyDelta
      // serialises against other deltas inside the engine and publishes a
      // fresh snapshot, while every in-flight read keeps the snapshot it
      // pinned — so a delta neither waits for nor tears running reads.
      // (The evaluation itself is not interruptible: a delta is either
      // applied or not, never half-propagated.)
      util::Result<DeltaStats> delta =
          engine_.ApplyDelta(std::get<DeltaRequest>(state->request.op));
      if (delta.ok()) {
        response.model_version = delta.value().model_version;
        response.delta = std::move(delta).value();
      } else {
        response.status = delta.status();
      }
      break;
    }
  }
  response.exec_seconds = exec_timer.ElapsedSeconds();
  Finish(state, std::move(response));
}

void Service::Finish(const std::shared_ptr<Ticket::State>& state,
                     Response response) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.completed;
    switch (response.status.code()) {
      case util::StatusCode::kOk:
        ++stats_.succeeded;
        break;
      case util::StatusCode::kCancelled:
        ++stats_.cancelled;
        break;
      case util::StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      default:
        ++stats_.failed;
        break;
    }
    stats_.members_delivered += response.members_emitted;
  }
  // Complete the sink before publishing the response: a consumer woken by
  // the ticket must find its stream already terminal.
  if (state->sink) state->sink->OnComplete(response.status);
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

ServiceStats Service::stats() const {
  ServiceStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.queue_depth = executor_.pending();
  snapshot.in_flight = executor_.active();
  return snapshot;
}

// --- blocking batch conveniences -----------------------------------------

namespace {

/// The aggregate tail both blocking batch flavours share.
void FillBatchStats(const PlanCacheStats& before, const PlanCacheStats& after,
                    double wall_seconds, std::size_t requests,
                    BatchStats& stats) {
  stats.requests = requests;
  stats.wall_seconds = wall_seconds;
  stats.queries_per_second =
      wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0;
  stats.plan_cache_hits = after.hits - before.hits;
  stats.plan_cache_misses = after.misses - before.misses;
}

/// Admits one request, riding out kResourceExhausted: when the queue is
/// full, waits briefly on the oldest outstanding ticket (draining the
/// queue is what frees a slot) and retries. Returns the ticket or a
/// non-retryable admission error.
util::Result<Ticket> SubmitBlocking(Service& service, const Request& request,
                                    const std::vector<Ticket>& outstanding) {
  while (true) {
    util::Result<Ticket> ticket = service.Submit(request);
    if (ticket.ok() ||
        ticket.status().code() != util::StatusCode::kResourceExhausted) {
      return ticket;
    }
    bool waited = false;
    for (const Ticket& earlier : outstanding) {
      if (earlier.valid() && !earlier.done()) {
        earlier.WaitFor(0.01);
        waited = true;
        break;
      }
    }
    if (!waited) {
      // The backlog is someone else's traffic; back off and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace

BatchEnumerateResult Service::EnumerateBatch(
    const std::vector<EnumerateRequest>& requests) {
  const PlanCacheStats before = engine_.plan_cache_stats();
  util::Timer timer;
  std::vector<Ticket> tickets(requests.size());
  BatchEnumerateResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request request;
    request.op = requests[i];
    util::Result<Ticket> ticket = SubmitBlocking(*this, request, tickets);
    if (!ticket.ok()) {
      result.outcomes[i].status = ticket.status();
      continue;
    }
    tickets[i] = std::move(ticket).value();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!tickets[i].valid()) continue;
    Response response = tickets[i].Take();  // move the members, not copy
    BatchEnumerateOutcome& outcome = result.outcomes[i];
    outcome.status = std::move(response.status);
    outcome.members = std::move(response.members);
    outcome.exhausted = response.exhausted;
    outcome.incomplete = response.incomplete;
    outcome.hit_member_cap = response.hit_member_cap;
    outcome.hit_timeout = response.hit_timeout;
    outcome.seconds = response.exec_seconds;
  }
  for (const BatchEnumerateOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
      result.stats.members_emitted += outcome.members.size();
    } else {
      ++result.stats.failed;
    }
  }
  FillBatchStats(before, engine_.plan_cache_stats(), timer.ElapsedSeconds(),
                 requests.size(), result.stats);
  return result;
}

BatchDecideResult Service::DecideBatch(
    const std::vector<DecideRequest>& requests) {
  const PlanCacheStats before = engine_.plan_cache_stats();
  util::Timer timer;
  std::vector<Ticket> tickets(requests.size());
  BatchDecideResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request request;
    request.op = requests[i];
    util::Result<Ticket> ticket = SubmitBlocking(*this, request, tickets);
    if (!ticket.ok()) {
      result.outcomes[i].status = ticket.status();
      continue;
    }
    tickets[i] = std::move(ticket).value();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!tickets[i].valid()) continue;
    const Response& response = tickets[i].Wait();
    BatchDecideOutcome& outcome = result.outcomes[i];
    outcome.status = response.status;
    outcome.member = response.member;
    outcome.seconds = response.exec_seconds;
  }
  for (const BatchDecideOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
    } else {
      ++result.stats.failed;
    }
  }
  FillBatchStats(before, engine_.plan_cache_stats(), timer.ElapsedSeconds(),
                 requests.size(), result.stats);
  return result;
}

}  // namespace whyprov
