#ifndef WHYPROV_SERVICE_SERVICE_H_
#define WHYPROV_SERVICE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "engine/engine.h"
#include "qos/cost.h"
#include "qos/qos.h"
#include "qos/tenant_registry.h"
#include "util/cancellation.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace whyprov {

namespace storage {
class DurableStore;  // storage/durable_store.h (serving .cc files only)
}  // namespace storage

/// Which operation a service `Request` carries (mirrors the variant's
/// alternatives; also reported back in the `Response`).
enum class RequestKind { kEnumerate, kDecide, kExplain, kApplyDelta };

/// The unified submission unit of the service: one of the engine's typed
/// operations plus the request-scoped serving policy (deadline). The
/// per-operation structs are exactly the engine's — the service adds
/// admission, scheduling, streaming, and interruption around them, not a
/// second request vocabulary. Leave each op's `cancellation` field empty:
/// the service installs the ticket's own token on execution.
struct Request {
  std::variant<EnumerateRequest, DecideRequest, ExplainRequest, DeltaRequest>
      op;
  /// Wall-clock budget measured from Submit — queue wait counts, as it
  /// must in a serving system (a client's deadline does not pause while
  /// the request sits in line). <= 0 means no deadline (the service's
  /// `default_deadline_seconds` may still apply).
  double deadline_seconds = 0;
  /// QoS identity (multi-tenant serving). The defaults — interactive
  /// lane, the "" tenant — are what every pre-QoS caller implicitly
  /// sent, and requests carrying them are scheduled exactly like the
  /// old FIFO (architecture invariant 6).
  qos::QosClass qos_class = qos::QosClass::kInteractive;
  std::string tenant;
};

/// Outcome of one submitted request, delivered through its `Ticket`.
/// `status` is Ok, a per-operation failure, or the interruption verdicts:
/// kCancelled (Ticket::Cancel, or a streaming consumer that closed its
/// stream), kDeadlineExceeded, kResourceExhausted (never stored here —
/// admission rejections fail Submit itself).
struct Response {
  util::Status status;
  RequestKind kind = RequestKind::kEnumerate;

  // Enumerate: the materialised members — empty when the request streamed
  // through a MemberSink (then `members_emitted` still counts them).
  std::vector<std::vector<datalog::Fact>> members;
  std::size_t members_emitted = 0;
  bool exhausted = false;
  bool incomplete = false;
  bool hit_member_cap = false;
  bool hit_timeout = false;

  bool member = false;  ///< Decide verdict (meaningful when status.ok())
  std::optional<Explanation> explanation;  ///< Explain payload
  std::optional<DeltaStats> delta;         ///< ApplyDelta payload

  double queue_seconds = 0;  ///< admission -> execution start
  double exec_seconds = 0;   ///< execution wall-clock
  /// The model version the request was served from (reads) or produced
  /// (deltas). In-flight tickets keep their snapshot across deltas, so
  /// two concurrent responses may legitimately report different versions.
  std::uint64_t model_version = 0;
};

/// Streaming consumer of enumeration members: the service calls
/// `OnMember` once per member, in emission order, from the worker thread
/// executing the request. Implementations may block — that is the
/// backpressure mechanism bounding the service's memory — and return
/// false to stop the enumeration early. `OnComplete` is called exactly
/// once, after the final member (or failure/interruption); `OnCancel` may
/// be called from any thread by `Ticket::Cancel` and must unblock a
/// producer waiting inside `OnMember`.
class MemberSink {
 public:
  virtual ~MemberSink() = default;

  /// One member of the family. Return false to stop the enumeration
  /// (reported as kCancelled).
  virtual bool OnMember(std::vector<datalog::Fact> member) = 0;

  /// Terminal notification with the request's final status.
  virtual void OnComplete(const util::Status& status) { (void)status; }

  /// The ticket was cancelled; unblock any producer stuck in OnMember.
  virtual void OnCancel() {}
};

/// A bounded member queue bridging the worker (producer) and a consumer
/// thread: the pull flavour of `MemberSink`. Holding at most `capacity`
/// members, `OnMember` blocks once the buffer is full until the consumer
/// pops — so a slow reader stalls the SAT enumeration instead of
/// ballooning a result vector; memory stays O(capacity), never O(family).
/// `Pop` blocks until a member arrives or the enumeration finishes;
/// `Close` abandons the stream from the consumer side (the producer's
/// next OnMember returns false and the request ends kCancelled).
class MemberStream final : public MemberSink {
 public:
  explicit MemberStream(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool OnMember(std::vector<datalog::Fact> member) override;
  void OnComplete(const util::Status& status) override;
  void OnCancel() override { Close(); }

  /// The next member, or nullopt once the stream finished (drained after
  /// completion) or was closed. Single consumer.
  std::optional<std::vector<datalog::Fact>> Pop();

  /// Consumer-side abandonment: wakes a blocked producer, whose OnMember
  /// then returns false.
  void Close();

  /// True once the producer finished (status available) or Close ran.
  bool finished() const;

  /// The request's final status (Ok until OnComplete).
  util::Status final_status() const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar producer_cv_;
  util::CondVar consumer_cv_;
  std::deque<std::vector<datalog::Fact>> buffer_ GUARDED_BY(mutex_);
  util::Status status_ GUARDED_BY(mutex_);
  bool complete_ GUARDED_BY(mutex_) = false;
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// A future-style handle on one submitted request. Copyable (shares the
/// underlying state); the service keeps a reference until the request
/// finished, so dropping every Ticket does not abandon the work — call
/// Cancel() for that. All methods are thread-safe. Tickets are minted by
/// every serving front door (`Service`, `ShardedService`) — the state and
/// completion plumbing are shared, not duplicated per front end.
class Ticket {
 public:
  /// The shared per-request state. Declared here so the serving front
  /// ends' shared plumbing can name it; defined in serving_internal.h,
  /// which only the serving .cc files include — not part of the API.
  struct State;

  /// An empty ticket (valid() == false); Submit returns connected ones.
  Ticket() = default;

  bool valid() const { return shared_ != nullptr; }

  /// Monotonic per-service request id (1-based submission order).
  std::uint64_t id() const;

  /// True once the response is available.
  bool done() const;

  /// Requests cooperative cancellation: raises the token the solver loop
  /// polls and unblocks a streaming producer. The response arrives with
  /// kCancelled unless the request already finished (Cancel never
  /// un-finishes a response). Idempotent.
  void Cancel();

  /// Blocks until the response is available, then returns it. The
  /// reference stays valid for the ticket's lifetime.
  const Response& Wait() const;

  /// Blocks like Wait(), then moves the response out — for consumers that
  /// want the member vectors without a deep copy. Single-shot: later
  /// Wait()/Take() calls on any copy of this ticket see a hollowed-out
  /// response (status and scalars intact, payloads gone).
  Response Take();

  /// Waits up to `seconds`; true iff the response became available.
  bool WaitFor(double seconds) const;

 private:
  friend class Service;
  friend class ShardedService;
  explicit Ticket(std::shared_ptr<State> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<State> shared_;
};

/// Ordered gather over several member streams: the pull side of the
/// scatter/gather read path. Each part is one enumeration (a ticket plus
/// its bounded `MemberStream`); `Pop` yields every member of part 0, then
/// every member of part 1, and so on — *stable member ordering* in
/// request order, independent of which worker (or, under sharding, which
/// shard) produced what and how the executions interleaved. Backpressure
/// is the parts' own: each sub-stream's bounded buffer blocks its
/// producer, so total buffered memory is O(parts × capacity) regardless
/// of family sizes. Single consumer, like MemberStream.
class MemberMerge {
 public:
  struct Part {
    Ticket ticket;
    std::shared_ptr<MemberStream> stream;
  };

  explicit MemberMerge(std::vector<Part> parts) : parts_(std::move(parts)) {}

  /// The next member in request order, or nullopt once every part
  /// finished (or Close ran). Blocks on the current part's stream.
  std::optional<std::vector<datalog::Fact>> Pop();

  /// Abandons the whole gather mid-flight: closes every sub-stream, so
  /// each producer's next OnMember returns false and its request ends
  /// kCancelled — one call cancels the full scatter.
  void Close();

  /// Blocks until every part's response is available.
  void Wait() const;

  /// First non-ok final status across the parts (Ok while clean).
  util::Status final_status() const;

  const std::vector<Part>& parts() const { return parts_; }

 private:
  std::vector<Part> parts_;
  std::size_t current_ = 0;  ///< single consumer, like MemberStream::Pop
};

/// Serving-policy knobs of a Service.
struct ServiceOptions {
  /// Worker threads executing requests (0 = one per hardware thread).
  std::size_t num_threads = 0;
  /// Admitted-but-unstarted requests the service will hold; Submit
  /// refuses with kResourceExhausted beyond it (admission control).
  std::size_t queue_capacity = 256;
  /// Deadline applied to requests that carry none (<= 0 = none).
  double default_deadline_seconds = 0;
  /// Multi-tenant QoS policy: scheduling lanes/weights and cost-based
  /// admission. The default is fair queueing with no per-tenant limits,
  /// under which default-class traffic behaves exactly like the pre-QoS
  /// FIFO.
  qos::QosOptions qos;
  /// The shard this service serves inside a ShardedService pool — the
  /// scheduler's shard-fairness key. Single-engine services leave it 0.
  std::size_t qos_shard = 0;
};

/// One shard's row inside a sharded service's `ServiceStats` — the
/// per-shard serving health a fleet dashboard needs: its share of the
/// (shared) queue, its throughput, the model version it currently serves
/// (versions legitimately skew when delta fan-out prunes a shard), its
/// delta fan-out counters, and its snapshot retention.
struct ShardStats {
  std::size_t queue_depth = 0;   ///< this shard's admitted, unstarted
  std::size_t in_flight = 0;     ///< executing on this shard right now
  std::uint64_t submitted = 0;   ///< requests routed to this shard
  std::uint64_t completed = 0;
  std::uint64_t succeeded = 0;
  double queries_per_second = 0;  ///< completed / seconds since start
  std::uint64_t model_version = 0;  ///< version this shard serves now
  std::uint64_t deltas_applied = 0;  ///< deltas whose fan-out included it
  std::uint64_t deltas_skipped = 0;  ///< deltas pruned before this shard
  std::size_t retained_snapshots = 0;  ///< live model versions (pinned)
  std::size_t retained_snapshot_bytes = 0;  ///< approximate, COW-chunk based
};

/// Point-in-time serving counters (cumulative since construction).
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< requests admitted
  std::uint64_t rejected = 0;    ///< Submit refusals (queue full)
  std::uint64_t completed = 0;   ///< responses delivered (any status)
  std::uint64_t succeeded = 0;   ///< responses with an Ok status
  std::uint64_t cancelled = 0;   ///< responses with kCancelled
  std::uint64_t deadline_exceeded = 0;  ///< responses with kDeadlineExceeded
  std::uint64_t failed = 0;      ///< responses with any other error
  std::uint64_t members_delivered = 0;  ///< members streamed + materialised
  std::size_t queue_depth = 0;   ///< admitted, unstarted right now
  std::size_t in_flight = 0;     ///< executing right now
  double queries_per_second = 0;  ///< completed / seconds since start
  std::uint64_t model_version = 0;  ///< newest version served (max shard)
  /// Snapshot retention (ROADMAP "Snapshot GC & memory observability"):
  /// live model versions — the published one plus those pinned by
  /// in-flight tickets — and their approximate bytes from the COW chunk
  /// stats. Sums over shards for a sharded service.
  std::size_t retained_snapshots = 0;
  std::size_t retained_snapshot_bytes = 0;
  /// Requests failed by the snapshot GC policy because their pinned
  /// version trailed the engine by more than
  /// EngineOptions::max_snapshot_lag deltas (they end kResourceExhausted).
  std::uint64_t snapshot_evictions = 0;
  /// True while retained_snapshot_bytes exceeds the engine's
  /// EngineOptions::snapshot_alarm_bytes threshold (any shard's, for a
  /// sharded service). Always false when the threshold is 0.
  bool snapshot_alarm = false;
  /// Sharded services only: spread between the newest and oldest model
  /// version across shards (non-zero when delta fan-out pruning lets
  /// untouched shards keep serving an older version), and one row per
  /// shard. Empty / zero on a single-engine service.
  std::uint64_t version_skew = 0;
  /// Durability tier (ROADMAP "Durability"): activity of the stack's
  /// write-ahead delta log and snapshot checkpoints. All zero when the
  /// engine options carry no data_dir (memory-only serving).
  std::uint64_t wal_appends = 0;  ///< delta records logged this process
  std::uint64_t wal_bytes = 0;    ///< framed WAL bytes appended
  std::uint64_t checkpoints_written = 0;
  /// WAL-tail records replayed during recovery at construction.
  std::uint64_t recovery_replayed_deltas = 0;
  /// Plan-time CNF inprocessing (EngineOptions::plan_simplify), summed
  /// over the plan cache(s) — across shards on a sharded stack. All zero
  /// when the knob is off.
  std::uint64_t plans_simplified = 0;
  std::uint64_t simplify_vars_removed = 0;
  std::uint64_t simplify_clauses_removed = 0;
  std::uint64_t simplify_micros = 0;
  std::vector<ShardStats> shards;
  /// Multi-tenant QoS: one row per (tenant, lane) that ever submitted,
  /// sorted by tenant then lane. Exact across shards (the registry is
  /// shared by the whole serving stack).
  std::vector<qos::TenantStats> tenants;
};

/// The serving front door over a `whyprov::Engine`: submission-based,
/// non-blocking, and streaming — the API shape a system answering heavy
/// interactive traffic needs, where the engine's blocking calls that
/// materialise full result vectors do not fit.
///
///   * `Submit` admits a unified `Request` (Enumerate / Decide / Explain
///     / ApplyDelta) onto a bounded queue and returns a `Ticket`
///     immediately; a full queue refuses with kResourceExhausted instead
///     of buffering unboundedly.
///   * A fixed worker pool (`util::Executor`) executes requests; results
///     arrive through `Ticket::Wait` or, for enumerations, stream
///     member-by-member through a `MemberSink`/`MemberStream` with
///     backpressure — bounded memory regardless of family size.
///   * Every request carries a deadline (measured from Submit, queue wait
///     included) and a cancellation token; both are polled between
///     members *and* inside the SAT search, so `Ticket::Cancel` or an
///     expired deadline stops a long solve promptly with kCancelled /
///     kDeadlineExceeded — without blocking other in-flight requests.
///   * Writes (`ApplyDelta`) ride the engine's snapshot versioning:
///     deltas serialise against each other inside the engine while
///     in-flight reads keep serving the snapshot they started on, so a
///     submitted delta never waits for (or tears) running enumerations.
///
/// The engine's direct `EnumerateBatch`/`DecideBatch` calls remain for
/// offline bulk work, but serving traffic should come through here.
/// Thread-safe; create once, share freely. Destruction drains admitted
/// requests (their tickets complete) before joining the workers.
class Service {
 public:
  explicit Service(Engine engine, ServiceOptions options = ServiceOptions());

  /// Serves `engine` on a *caller-owned* worker pool instead of creating
  /// one: `ShardedService` uses this so N shard services sit behind one
  /// submission queue and one admission bound, rather than duplicating
  /// the queue/worker-pool/deadline plumbing per shard. The caller must
  /// keep the executor alive and drained past this service's destruction
  /// (the destructor waits for this service's own requests, then leaves
  /// the pool running). `tenants`/`admission` (optional) share one
  /// registry and one admission controller across every service on the
  /// pool, like the parse mutex — null creates private ones.
  Service(Engine engine, std::shared_ptr<util::Executor> executor,
          ServiceOptions options = ServiceOptions(),
          std::shared_ptr<qos::TenantRegistry> tenants = nullptr,
          std::shared_ptr<qos::AdmissionController> admission = nullptr);

  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits `request`; `sink` (optional) streams Enumerate members and is
  /// ignored by the other kinds. Refuses with kResourceExhausted when the
  /// queue is full — the client should back off and retry.
  util::Result<Ticket> Submit(Request request,
                              std::shared_ptr<MemberSink> sink = nullptr);

  /// Convenience: submit an enumeration streaming into a fresh bounded
  /// `MemberStream` of `stream_capacity` members; returns the ticket and
  /// the stream to pull from.
  util::Result<std::pair<Ticket, std::shared_ptr<MemberStream>>> Stream(
      EnumerateRequest request, std::size_t stream_capacity = 8,
      double deadline_seconds = 0);

  /// Submits every enumeration with its own bounded stream and returns a
  /// `MemberMerge` gathering them in request order (stable member
  /// ordering; per-part backpressure). Fails — cancelling the parts
  /// already admitted — if admission refuses a part; size the queue for
  /// the fan-out.
  util::Result<std::shared_ptr<MemberMerge>> StreamMany(
      std::vector<EnumerateRequest> requests, std::size_t stream_capacity = 8,
      double deadline_seconds = 0);

  /// Blocking conveniences: submit a whole batch, wait for every ticket,
  /// and repackage the responses in the engine's batch result shapes.
  /// Unlike the engine's own batch calls these interleave with any other
  /// traffic on the service (and respect its admission bound: requests
  /// are fed as the queue drains rather than rejected).
  BatchEnumerateResult EnumerateBatch(
      const std::vector<EnumerateRequest>& requests);
  BatchDecideResult DecideBatch(const std::vector<DecideRequest>& requests);

  /// The served engine (views only — route mutations through Submit so
  /// they order with the queue; direct ApplyDelta calls are still safe,
  /// just invisible to the service's stats).
  const Engine& engine() const { return engine_; }

  ServiceStats stats() const;
  std::size_t num_threads() const { return executor_->num_threads(); }
  const ServiceOptions& options() const { return options_; }

  /// Durability health: Ok when the engine options carry no data_dir or
  /// the store opened (and recovered) cleanly; the open error otherwise.
  /// A service with a failed store serves memory-only — callers that
  /// must not accept silent non-durability should check after
  /// construction (whyprov_service_create does).
  util::Status durability_status() const { return durability_status_; }

 private:
  friend class ShardedService;  ///< drives the shard engines' delta path

  /// Opens the DurableStore named by the engine options' data_dir (no-op
  /// when empty) and recovers: restore the checkpoint if one decodes,
  /// then replay the WAL tail through the normal delta path. Runs in the
  /// constructor, before any request can be admitted.
  void OpenDurability();

  /// The write path: logs the delta to the WAL (when durable) before
  /// applying it to the engine, holding the store's order mutex across
  /// {append -> apply -> checkpoint} so log order equals apply order
  /// even with deltas on arbitrary worker threads.
  util::Result<DeltaStats> ExecuteDelta(const DeltaRequest& request);

  /// Writes a snapshot checkpoint when enough WAL records accumulated
  /// (caller holds the store's order mutex).
  void MaybeCheckpoint();

  /// Prices `request` for scheduling and admission: queries peek the
  /// plan cache (a cached plan prices near the floor), deltas price by
  /// touched facts. Never compiles anything.
  double EstimateCost(const Request& request) const;

  void Execute(const std::shared_ptr<Ticket::State>& state);
  void Finish(const std::shared_ptr<Ticket::State>& state,
              Response response);
  void ExecuteEnumerate(const std::shared_ptr<Ticket::State>& state,
                        Response& response);
  /// Cache-through Prepare for a request's (target, acyclicity): pins the
  /// snapshot the execution serves, so Response::model_version is exact.
  util::Result<PreparedQuery> PrepareFor(
      datalog::FactId target, const std::string& target_text,
      std::optional<provenance::AcyclicityEncoding> acyclicity) const;

  Engine engine_;
  /// The durability tier (null = memory-only). Opened from the engine
  /// options' data_dir by the owning constructor; a shard service inside
  /// a ShardedService sees a cleared data_dir (the group shares one
  /// store) and opens nothing. Declared before the executor so workers
  /// never outlive it.
  std::unique_ptr<storage::DurableStore> store_;
  util::Status durability_status_;  ///< set once in OpenDurability
  /// Group commit is active (wal_fsync + wal_group_commit, store open):
  /// WAL appends defer their fsync and the last pending delta of a
  /// burst flushes it (see delta_backlog_).
  bool wal_group_commit_ = false;
  /// Admitted-but-unfinished delta requests; the finish that drops it
  /// to zero is the burst boundary that syncs the WAL.
  std::atomic<std::uint64_t> delta_backlog_{0};
  ServiceOptions options_;
  util::Timer uptime_;  ///< denominator of queries_per_second
  mutable util::Mutex stats_mutex_;
  ServiceStats stats_ GUARDED_BY(stats_mutex_);
  /// Requests whose execution began.
  std::uint64_t started_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t next_id_ GUARDED_BY(stats_mutex_) = 0;
  /// Counts this service's requests living in the executor (queued or
  /// executing); a shared-pool service must drain to zero before dying.
  mutable util::Mutex outstanding_mutex_;
  util::CondVar outstanding_cv_;
  std::size_t outstanding_ GUARDED_BY(outstanding_mutex_) = 0;
  /// QoS: per-(tenant, lane) observability and cost-based admission.
  /// Shared across a ShardedService's shard services; private otherwise.
  std::shared_ptr<qos::TenantRegistry> tenants_;
  std::shared_ptr<qos::AdmissionController> admission_;
  const bool owns_executor_;
  /// Declared last: workers touch everything above, so an owned executor
  /// must be destroyed (drained + joined) first. A shared executor
  /// outlives this service; the destructor only drains this service's
  /// own outstanding requests.
  std::shared_ptr<util::Executor> executor_;
};

}  // namespace whyprov

#endif  // WHYPROV_SERVICE_SERVICE_H_
