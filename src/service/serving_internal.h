#ifndef WHYPROV_SERVICE_SERVING_INTERNAL_H_
#define WHYPROV_SERVICE_SERVING_INTERNAL_H_

// Shared plumbing of the serving front ends (`Service` and
// `ShardedService`): the ticket state, the terminal bookkeeping, blocking
// admission, and the batch/stream scatter-gather scaffolding. Internal —
// included by the serving .cc files only, never by API users. Keeping it
// here is what lets the sharded path reuse the queue/ticket/deadline
// machinery instead of growing a second copy.

#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "service/service.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace whyprov {

/// The shared per-request state behind a `Ticket`: the request itself,
/// the streaming sink, the cancellation source whose token the execution
/// polls, the queue-wait clock, and the completion slot.
struct Ticket::State {
  std::uint64_t id = 0;
  Request request;
  std::shared_ptr<MemberSink> sink;
  util::CancellationSource cancel;
  util::Timer submit_timer;  ///< starts at admission; measures queue wait
  /// QoS: the cost charged at admission, refunded once at completion
  /// (success, failure, or cancellation alike — refund-on-cancel is the
  /// same code path).
  double estimated_cost = 0;

  mutable util::Mutex mutex;
  util::CondVar cv;
  bool done GUARDED_BY(mutex) = false;
  Response response GUARDED_BY(mutex);
};

namespace serving_internal {

inline RequestKind KindOf(const Request& request) {
  switch (request.op.index()) {
    case 0:
      return RequestKind::kEnumerate;
    case 1:
      return RequestKind::kDecide;
    case 2:
      return RequestKind::kExplain;
    default:
      return RequestKind::kApplyDelta;
  }
}

/// The counting half of the terminal bookkeeping every front end
/// shares. Callers hold the lock guarding their `stats` (split from
/// CompleteTicket so no guarded ServiceStats is ever passed by
/// reference without its mutex — the thread-safety analysis checks
/// reference passing too).
inline void CountOutcome(const Response& response, ServiceStats& stats) {
  ++stats.completed;
  switch (response.status.code()) {
    case util::StatusCode::kOk:
      ++stats.succeeded;
      break;
    case util::StatusCode::kCancelled:
      ++stats.cancelled;
      break;
    case util::StatusCode::kDeadlineExceeded:
      ++stats.deadline_exceeded;
      break;
    default:
      ++stats.failed;
      break;
  }
  stats.members_delivered += response.members_emitted;
}

/// The publish half: complete the sink *before* publishing the response
/// (a consumer woken by the ticket must find its stream already
/// terminal), publish, wake waiters. Call after CountOutcome.
inline void CompleteTicket(const std::shared_ptr<Ticket::State>& state,
                           Response response) {
  if (state->sink) state->sink->OnComplete(response.status);
  {
    const util::MutexLock lock(state->mutex);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.NotifyAll();
}

/// The aggregate tail both blocking batch flavours share.
inline void FillBatchStats(const PlanCacheStats& before,
                           const PlanCacheStats& after, double wall_seconds,
                           std::size_t requests, BatchStats& stats) {
  stats.requests = requests;
  stats.wall_seconds = wall_seconds;
  stats.queries_per_second =
      wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0;
  stats.plan_cache_hits = after.hits - before.hits;
  stats.plan_cache_misses = after.misses - before.misses;
}

/// Admits one request on any front end, riding out kResourceExhausted:
/// when the queue is full, waits briefly on the oldest outstanding ticket
/// (draining the queue is what frees a slot) and retries. Returns the
/// ticket or a non-retryable admission error.
template <typename ServiceT>
util::Result<Ticket> SubmitBlocking(ServiceT& service, const Request& request,
                                    const std::vector<Ticket>& outstanding) {
  while (true) {
    util::Result<Ticket> ticket = service.Submit(request);
    if (ticket.ok() ||
        ticket.status().code() != util::StatusCode::kResourceExhausted) {
      return ticket;
    }
    bool waited = false;
    for (const Ticket& earlier : outstanding) {
      if (earlier.valid() && !earlier.done()) {
        earlier.WaitFor(0.01);
        waited = true;
        break;
      }
    }
    if (!waited) {
      // The backlog is someone else's traffic; back off and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

/// Blocking batch enumeration over any submitting front end: scatter the
/// requests through Submit (the sharded service's Submit routes each to
/// its owning shard), wait for every ticket, and gather the outcomes
/// positionally — stable ordering regardless of execution interleaving.
/// `plan_stats()` reads the (aggregated) plan-cache counters so the batch
/// stats report cache effectiveness.
template <typename ServiceT, typename PlanStatsFn>
BatchEnumerateResult ServeEnumerateBatch(
    ServiceT& service, const PlanStatsFn& plan_stats,
    const std::vector<EnumerateRequest>& requests) {
  const PlanCacheStats before = plan_stats();
  util::Timer timer;
  std::vector<Ticket> tickets(requests.size());
  BatchEnumerateResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request request;
    request.op = requests[i];
    util::Result<Ticket> ticket = SubmitBlocking(service, request, tickets);
    if (!ticket.ok()) {
      result.outcomes[i].status = ticket.status();
      continue;
    }
    tickets[i] = std::move(ticket).value();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!tickets[i].valid()) continue;
    Response response = tickets[i].Take();  // move the members, not copy
    BatchEnumerateOutcome& outcome = result.outcomes[i];
    outcome.status = std::move(response.status);
    outcome.members = std::move(response.members);
    outcome.exhausted = response.exhausted;
    outcome.incomplete = response.incomplete;
    outcome.hit_member_cap = response.hit_member_cap;
    outcome.hit_timeout = response.hit_timeout;
    outcome.seconds = response.exec_seconds;
  }
  for (const BatchEnumerateOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
      result.stats.members_emitted += outcome.members.size();
    } else {
      ++result.stats.failed;
    }
  }
  FillBatchStats(before, plan_stats(), timer.ElapsedSeconds(),
                 requests.size(), result.stats);
  return result;
}

/// Blocking batch decisions, same scatter/gather shape.
template <typename ServiceT, typename PlanStatsFn>
BatchDecideResult ServeDecideBatch(ServiceT& service,
                                   const PlanStatsFn& plan_stats,
                                   const std::vector<DecideRequest>& requests) {
  const PlanCacheStats before = plan_stats();
  util::Timer timer;
  std::vector<Ticket> tickets(requests.size());
  BatchDecideResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request request;
    request.op = requests[i];
    util::Result<Ticket> ticket = SubmitBlocking(service, request, tickets);
    if (!ticket.ok()) {
      result.outcomes[i].status = ticket.status();
      continue;
    }
    tickets[i] = std::move(ticket).value();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!tickets[i].valid()) continue;
    const Response& response = tickets[i].Wait();
    BatchDecideOutcome& outcome = result.outcomes[i];
    outcome.status = response.status;
    outcome.member = response.member;
    outcome.seconds = response.exec_seconds;
  }
  for (const BatchDecideOutcome& outcome : result.outcomes) {
    if (outcome.status.ok()) {
      ++result.stats.succeeded;
    } else {
      ++result.stats.failed;
    }
  }
  FillBatchStats(before, plan_stats(), timer.ElapsedSeconds(),
                 requests.size(), result.stats);
  return result;
}

/// The streaming scatter half behind StreamMany: one bounded stream per
/// request, gathered by a MemberMerge in request order. Admission
/// refusals abort the scatter (cancel + close what was admitted) instead
/// of riding them out: parts already admitted may be blocked on their
/// full streams, which only the (not yet existing) consumer could drain,
/// so waiting here could deadlock.
template <typename ServiceT>
util::Result<std::shared_ptr<MemberMerge>> StreamManyOn(
    ServiceT& service, std::vector<EnumerateRequest> requests,
    std::size_t stream_capacity, double deadline_seconds) {
  std::vector<MemberMerge::Part> parts;
  parts.reserve(requests.size());
  for (EnumerateRequest& request : requests) {
    auto streamed =
        service.Stream(std::move(request), stream_capacity, deadline_seconds);
    if (!streamed.ok()) {
      for (MemberMerge::Part& part : parts) {
        part.ticket.Cancel();
        part.stream->Close();
      }
      return streamed.status();
    }
    auto [ticket, stream] = std::move(streamed).value();
    parts.push_back(MemberMerge::Part{std::move(ticket), std::move(stream)});
  }
  return std::make_shared<MemberMerge>(std::move(parts));
}

}  // namespace serving_internal
}  // namespace whyprov

#endif  // WHYPROV_SERVICE_SERVING_INTERNAL_H_
