#include "shard/shard_map.h"

#include <algorithm>
#include <string>

#include "datalog/partition.h"

namespace whyprov {

namespace dl = whyprov::datalog;

std::string_view ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kAuto:
      return "auto";
    case ShardPolicy::kByPredicate:
      return "by-predicate";
    case ShardPolicy::kByFactRange:
      return "fact-range";
  }
  return "unknown";
}

util::Result<ShardMap> ShardMap::Build(const dl::Program& program,
                                       std::size_t num_shards,
                                       ShardPolicy policy) {
  if (num_shards == 0) {
    return util::Status::InvalidArgument(
        "a shard map needs at least one shard");
  }
  const std::vector<dl::PredicateId> intensional =
      program.IntensionalPredicates();

  ShardPolicy resolved = policy;
  if (policy == ShardPolicy::kAuto) {
    // By-predicate only pays off when every shard gets something to own;
    // single-predicate models (and overly fine shard counts) fall back to
    // striping the fact-id space across replicas.
    resolved = (num_shards > 1 && intensional.size() >= num_shards)
                   ? ShardPolicy::kByPredicate
                   : ShardPolicy::kByFactRange;
  }
  if (resolved == ShardPolicy::kByPredicate &&
      intensional.size() < num_shards) {
    return util::Status::InvalidArgument(
        "by-predicate sharding needs at least as many intensional "
        "predicates as shards (" +
        std::to_string(intensional.size()) + " < " +
        std::to_string(num_shards) + "); use fact-range or kAuto");
  }

  ShardMap map;
  map.policy_ = resolved;
  map.num_shards_ = num_shards;
  map.owned_.resize(num_shards);
  map.closures_.resize(num_shards);

  if (resolved == ShardPolicy::kByFactRange) {
    // Full replicas: every shard's model contains every predicate that
    // occurs in the program (plus whatever only occurs in the database,
    // which Covers treats as covered — see below).
    std::vector<dl::PredicateId> everything = intensional;
    for (const dl::PredicateId p : program.ExtensionalPredicates()) {
      everything.push_back(p);
    }
    std::sort(everything.begin(), everything.end());
    for (std::size_t shard = 0; shard < num_shards; ++shard) {
      map.closures_[shard] = everything;
    }
    return map;
  }

  // Round-robin the intensional predicates (ascending id, so the
  // assignment is deterministic and independent of hash order).
  for (std::size_t i = 0; i < intensional.size(); ++i) {
    const std::size_t shard = i % num_shards;
    map.owned_[shard].push_back(intensional[i]);
    map.owner_.emplace(intensional[i], shard);
  }
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    map.closures_[shard] = dl::DependencyClosure(program, map.owned_[shard]);
  }
  return map;
}

std::size_t ShardMap::OwnerOfPredicate(dl::PredicateId predicate) const {
  const auto it = owner_.find(predicate);
  if (it != owner_.end()) return it->second;
  // Extensional (or unknown) predicate: any shard whose model contains it
  // can serve its targets; pick the first for determinism.
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    if (Covers(shard, predicate)) return shard;
  }
  return 0;
}

bool ShardMap::Covers(std::size_t shard, dl::PredicateId predicate) const {
  if (policy_ == ShardPolicy::kByFactRange) {
    // Replicas hold the full database, including facts over predicates
    // the program never mentions.
    return true;
  }
  const std::vector<dl::PredicateId>& closure = closures_[shard];
  return std::binary_search(closure.begin(), closure.end(), predicate);
}

std::vector<std::size_t> ShardMap::ShardsForDelta(
    const std::vector<dl::PredicateId>& predicates) const {
  std::vector<std::size_t> shards;
  if (policy_ == ShardPolicy::kByFactRange) {
    // Replicas must stay lockstep: every delta reaches every shard.
    shards.reserve(num_shards_);
    for (std::size_t shard = 0; shard < num_shards_; ++shard) {
      shards.push_back(shard);
    }
    return shards;
  }
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    for (const dl::PredicateId predicate : predicates) {
      if (Covers(shard, predicate)) {
        shards.push_back(shard);
        break;
      }
    }
  }
  return shards;
}

}  // namespace whyprov
