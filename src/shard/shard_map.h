#ifndef WHYPROV_SHARD_SHARD_MAP_H_
#define WHYPROV_SHARD_SHARD_MAP_H_

#include <cstddef>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "util/status.h"

namespace whyprov {

/// How a `ShardMap` partitions one logical model's target space across N
/// shard engines.
enum class ShardPolicy {
  /// Resolve at Build time: by-predicate when the program has at least as
  /// many intensional predicates as shards, fact-range otherwise (the
  /// single-predicate scenarios — TransClosure, Andersen, CSDA — always
  /// fall back to fact-range).
  kAuto,
  /// Partition the intensional predicates across shards (round-robin in
  /// predicate order). The partition lives in the routing and the writes,
  /// not the storage: targets route to the shard owning their predicate,
  /// and a delta fans out only to the shards whose owned *dependency
  /// closure* intersects its predicates — untouched shards are skipped
  /// entirely, keep serving (and keep their plan caches hot), and their
  /// model version legitimately trails. Correctness boundary: a skipped
  /// delta cannot touch any fact in an owned target's downward closure,
  /// so the stale replica still answers its own targets bit-identically.
  kByPredicate,
  /// Stripe the target fact-id space across shards holding full replicas
  /// in lockstep (identical fact-id spaces, maintained by evaluate-once/
  /// adopt-everywhere deltas). The fallback for single-predicate models,
  /// where every target shares one predicate.
  kByFactRange,
};

/// Human-readable policy name, e.g. "by-predicate".
std::string_view ShardPolicyName(ShardPolicy policy);

/// The partitioning decision of a sharded deployment: which shard owns
/// which slice of the target space, which predicates each shard's model
/// must contain (the dependency closure that makes its answers
/// bit-identical to the unsharded engine's), and which shards a delta
/// must reach. Immutable once built; cheap to copy.
class ShardMap {
 public:
  /// Builds the map for `program` partitioned `num_shards` ways.
  /// kByPredicate fails when the program has fewer intensional predicates
  /// than shards (a shard would own nothing); kAuto falls back to
  /// fact-range in that situation instead.
  static util::Result<ShardMap> Build(const datalog::Program& program,
                                      std::size_t num_shards,
                                      ShardPolicy policy = ShardPolicy::kAuto);

  /// The resolved policy (never kAuto).
  ShardPolicy policy() const { return policy_; }

  std::size_t num_shards() const { return num_shards_; }

  /// Owner of targets over `predicate` (by-predicate routing). Extensional
  /// predicates route to the first shard whose closure contains them.
  std::size_t OwnerOfPredicate(datalog::PredicateId predicate) const;

  /// Owner of target `fact` (fact-range routing over lockstep replicas).
  std::size_t OwnerOfFact(datalog::FactId fact) const {
    return static_cast<std::size_t>(fact) % num_shards_;
  }

  /// The intensional predicates `shard` owns (empty under fact-range).
  const std::vector<datalog::PredicateId>& owned_predicates(
      std::size_t shard) const {
    return owned_[shard];
  }

  /// The dependency closure of `shard`'s owned predicates — the
  /// correctness boundary of its reads, the fan-out filter of its
  /// writes, and what `datalog::SliceProgram`/`SliceDatabase` would keep
  /// for an offline per-shard model reduction (sorted ascending). Under
  /// fact-range: every predicate of the program (full replicas).
  const std::vector<datalog::PredicateId>& closure_predicates(
      std::size_t shard) const {
    return closures_[shard];
  }

  /// True iff `shard`'s model contains `predicate` (so a delta over it
  /// must reach the shard).
  bool Covers(std::size_t shard, datalog::PredicateId predicate) const;

  /// The shards a delta over `predicates` must fan out to: all of them
  /// under fact-range (replicas must stay lockstep); under by-predicate,
  /// only the shards whose closure intersects — the others are skipped
  /// entirely, which is what keeps write serialisation local and lets
  /// their snapshot versions trail (see ServiceStats::version_skew).
  std::vector<std::size_t> ShardsForDelta(
      const std::vector<datalog::PredicateId>& predicates) const;

 private:
  ShardMap() = default;

  ShardPolicy policy_ = ShardPolicy::kByFactRange;
  std::size_t num_shards_ = 1;
  std::vector<std::vector<datalog::PredicateId>> owned_;
  std::vector<std::vector<datalog::PredicateId>> closures_;  // sorted
  std::unordered_map<datalog::PredicateId, std::size_t> owner_;
};

}  // namespace whyprov

#endif  // WHYPROV_SHARD_SHARD_MAP_H_
