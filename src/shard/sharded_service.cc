#include "shard/sharded_service.h"

#include <algorithm>
#include <limits>
#include <string>

#include "datalog/parser.h"
#include "qos/scheduler.h"
#include "service/serving_internal.h"
#include "storage/durable_store.h"

namespace whyprov {

namespace dl = whyprov::datalog;
namespace si = whyprov::serving_internal;

namespace {

/// Syntactic predicate name of a fact text like "path(a, b)" — enough to
/// route without parsing (parsing interns constants, which routing must
/// not do on a shard that will never see the request).
std::string PredicateNameOf(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return std::string();
  const std::size_t end = text.find_first_of("( \t\r\n", begin);
  return text.substr(begin,
                     (end == std::string::npos ? text.size() : end) - begin);
}

/// The (target, target_text) pair every read op carries; null for deltas.
struct TargetRef {
  dl::FactId* target = nullptr;
  std::string* text = nullptr;
};

TargetRef TargetOf(Request& request) {
  return std::visit(
      [](auto& op) -> TargetRef {
        using Op = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<Op, DeltaRequest>) {
          return TargetRef{};
        } else {
          return TargetRef{&op.target, &op.target_text};
        }
      },
      request.op);
}

}  // namespace

// --- construction --------------------------------------------------------

ShardedService::ShardedService(ShardMap map, ShardedServiceOptions options,
                               std::shared_ptr<util::Mutex> parse_mutex,
                               std::shared_ptr<util::Executor> executor)
    : map_(std::move(map)),
      options_(std::move(options)),
      parse_mutex_(std::move(parse_mutex)),
      lane_capacity_(options_.service.queue_capacity == 0
                         ? 1
                         : options_.service.queue_capacity),
      executor_(std::move(executor)) {}

ShardedService::~ShardedService() {
  // One pool serves every shard and the delta lane: drain it before any
  // shard (or the lane state the tasks capture) is destroyed.
  executor_->Shutdown();
}

util::Result<std::unique_ptr<ShardedService>> ShardedService::Create(
    const dl::Program& program, const dl::Database& database,
    dl::PredicateId answer_predicate, ShardedServiceOptions options) {
  util::Result<ShardMap> map =
      ShardMap::Build(program, options.num_shards, options.policy);
  if (!map.ok()) return map.status();

  // The shard engines share one symbol table, so they must share one
  // parse mutex — otherwise two shards parsing fact text concurrently
  // would race on the table.
  if (!options.engine.parse_mutex) {
    options.engine.parse_mutex = std::make_shared<util::Mutex>();
  }
  util::Executor::Options exec;
  exec.num_threads = options.service.num_threads;
  exec.queue_capacity = options.service.queue_capacity == 0
                            ? 1
                            : options.service.queue_capacity;
  if (options.service.qos.fair_queueing) {
    exec.queue = std::make_shared<qos::FairScheduler>(options.service.qos);
  }
  auto executor = std::make_shared<util::Executor>(std::move(exec));

  std::unique_ptr<ShardedService> service(
      new ShardedService(std::move(map).value(), options,
                         options.engine.parse_mutex, executor));
  // One QoS identity plane for the whole group: tenant budgets and stats
  // rows span every shard instead of fragmenting per replica.
  service->tenants_ = std::make_shared<qos::TenantRegistry>();
  service->admission_ =
      std::make_shared<qos::AdmissionController>(options.service.qos);
  // Durability belongs to the group, not the replicas: the shards get a
  // cleared data_dir (so their inner Services open no store of their
  // own) and the sharded service opens ONE store below, once the
  // engines exist to recover into.
  EngineOptions shard_engine_options = options.engine;
  shard_engine_options.data_dir.clear();
  const ShardMap& shard_map = service->map_;
  for (std::size_t s = 0; s < shard_map.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>();
    // Every shard evaluates the same parts: deterministic evaluation from
    // identical inputs gives identical models *and identical fact-id
    // spaces*, which is what makes sharded answers bit-identical to the
    // unsharded engine's — fact ids drive the CNF variable layout, so
    // even the enumeration order is preserved. (Under by-predicate the
    // partition lives in the routing and the delta fan-out, not in the
    // storage: a shard that skips a delta goes stale only on predicates
    // outside its owned dependency closures, which its reads never
    // touch. The `datalog/partition.h` slicers remain available for
    // offline per-shard model reduction where order-identical
    // enumeration is not required.)
    // Each shard tags its tasks with its own index, so the shared fair
    // scheduler can round-robin a tenant's work across shards.
    ServiceOptions shard_service_options = options.service;
    shard_service_options.qos_shard = s;
    shard->service = std::make_unique<Service>(
        Engine::FromParts(program, database, answer_predicate,
                          shard_engine_options),
        executor, shard_service_options, service->tenants_,
        service->admission_);
    service->shards_.push_back(std::move(shard));
  }
  service->OpenDurability();
  return service;
}

void ShardedService::OpenDurability() {
  const EngineOptions& engine_options = options_.engine;
  if (engine_options.data_dir.empty()) return;
  storage::DurabilityOptions durability;
  durability.data_dir = engine_options.data_dir;
  durability.wal_fsync = engine_options.wal_fsync;
  durability.wal_group_commit = engine_options.wal_group_commit;
  // By-predicate shards apply diverging splits of the deltas, so no
  // single engine holds "the" logical state a checkpoint could pin;
  // the WAL (never compacted) is the whole story there and recovery
  // replays it end to end.
  durability.checkpoint_interval =
      map_.policy() == ShardPolicy::kByFactRange
          ? engine_options.checkpoint_interval
          : 0;
  util::Result<std::unique_ptr<storage::DurableStore>> opened =
      storage::DurableStore::Open(durability);
  if (!opened.ok()) {
    durability_status_ = opened.status();
    return;
  }
  store_ = std::move(opened).value();

  if (map_.policy() == ShardPolicy::kByFactRange && store_->has_checkpoint()) {
    // One decode, adopted by every replica: lockstep fact-id spaces are
    // preserved because each shard publishes the same recovered model
    // (COW clones) under the same version. A checkpoint that fails to
    // decode is recoverable — the folded sequence stays 0 and the full
    // log replays below.
    util::Result<storage::RecoveredCheckpoint> recovered =
        store_->RestoreCheckpoint(engine().PinSnapshot()->model.symbols_ptr());
    if (recovered.ok()) {
      storage::RecoveredCheckpoint checkpoint = std::move(recovered).value();
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        ShardEngine(s).AdoptRecovered(checkpoint.model.Clone(),
                                      checkpoint.model_version);
      }
    }
  }
  std::uint64_t replayed = 0;
  for (const storage::WalRecord& record : store_->TailRecords()) {
    DeltaRequest delta;
    delta.added_fact_texts = record.added;
    delta.removed_fact_texts = record.removed;
    ReplayDelta(std::move(delta));
    ++replayed;
  }
  store_->FinishRecovery(replayed);
}

void ShardedService::ReplayDelta(DeltaRequest delta) {
  // A record that fails to plan or apply failed identically when it was
  // first logged (replay is deterministic): skip it like the original
  // write path refused it, rather than abort recovery.
  util::Result<std::vector<std::size_t>> targets = DeltaTargets(delta);
  if (!targets.ok()) return;
  (void)ApplyToTargets(delta, targets.value());
}

util::Result<std::unique_ptr<ShardedService>> ShardedService::FromText(
    std::string_view program_text, std::string_view database_text,
    std::string_view answer_predicate, ShardedServiceOptions options) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  util::Result<dl::Program> program =
      dl::Parser::ParseProgram(symbols, program_text);
  if (!program.ok()) return program.status();
  util::Result<dl::Database> database =
      dl::Parser::ParseDatabase(symbols, database_text);
  if (!database.ok()) return database.status();
  util::Result<dl::PredicateId> predicate =
      symbols->FindPredicate(answer_predicate);
  if (!predicate.ok()) {
    return util::Status::NotFound("answer predicate '" +
                                  std::string(answer_predicate) +
                                  "' does not occur in the program");
  }
  if (!program.value().IsIntensional(predicate.value())) {
    return util::Status::InvalidArgument("answer predicate '" +
                                         std::string(answer_predicate) +
                                         "' is not intensional");
  }
  return Create(program.value(), database.value(), predicate.value(),
                std::move(options));
}

const Engine& ShardedService::engine() const {
  return shards_.front()->service->engine();
}

// --- read routing --------------------------------------------------------

util::Result<std::size_t> ShardedService::RouteRead(Request& request) const {
  const TargetRef target = TargetOf(request);

  if (map_.policy() == ShardPolicy::kByFactRange) {
    if (*target.target != dl::kInvalidFact) {
      return map_.OwnerOfFact(*target.target);
    }
    if (!target.text->empty()) {
      // Canonicalise on the reference replica: the resolved id is valid
      // on every shard (lockstep), so the owner never re-parses and the
      // same target always routes to the same shard however its text is
      // spelled.
      util::Result<dl::FactId> id = engine().FactIdOf(*target.text);
      if (id.ok()) {
        *target.target = id.value();
        target.text->clear();
        return map_.OwnerOfFact(id.value());
      }
      // Unresolvable: any shard reproduces the engine's own error
      // through the ticket; spread by text hash.
      return std::hash<std::string>{}(*target.text) % shards_.size();
    }
    return std::size_t{0};  // "no target" — the shard surfaces the error
  }

  // By-predicate: route on the target's predicate, read syntactically off
  // the text (no interning on the router).
  if (!target.text->empty()) {
    const std::string name = PredicateNameOf(*target.text);
    const util::MutexLock lock(*parse_mutex_);
    util::Result<dl::PredicateId> predicate =
        engine().model().symbols().FindPredicate(name);
    if (!predicate.ok()) return std::size_t{0};  // shard surfaces the error
    return map_.OwnerOfPredicate(predicate.value());
  }
  if (*target.target != dl::kInvalidFact) {
    return util::Status::InvalidArgument(
        "by-predicate sharding routes reads by target text: fact ids are "
        "shard-local, so a bare id cannot name its owner");
  }
  return std::size_t{0};
}

util::Result<Ticket> ShardedService::Submit(Request request,
                                            std::shared_ptr<MemberSink> sink) {
  if (si::KindOf(request) == RequestKind::kApplyDelta) {
    return SubmitDelta(std::move(request));
  }
  util::Result<std::size_t> shard = RouteRead(request);
  if (!shard.ok()) return shard.status();
  return shards_[shard.value()]->service->Submit(std::move(request),
                                                 std::move(sink));
}

util::Result<std::pair<Ticket, std::shared_ptr<MemberStream>>>
ShardedService::Stream(EnumerateRequest request, std::size_t stream_capacity,
                       double deadline_seconds) {
  auto stream = std::make_shared<MemberStream>(stream_capacity);
  Request unified;
  unified.op = std::move(request);
  unified.deadline_seconds = deadline_seconds;
  util::Result<Ticket> ticket = Submit(std::move(unified), stream);
  if (!ticket.ok()) return ticket.status();
  return std::make_pair(std::move(ticket).value(), std::move(stream));
}

util::Result<std::shared_ptr<MemberMerge>> ShardedService::StreamMany(
    std::vector<EnumerateRequest> requests, std::size_t stream_capacity,
    double deadline_seconds) {
  return si::StreamManyOn(*this, std::move(requests), stream_capacity,
                          deadline_seconds);
}

PlanCacheStats ShardedService::AggregatePlanCacheStats() const {
  PlanCacheStats total;
  for (const auto& shard : shards_) {
    const PlanCacheStats stats = shard->service->engine().plan_cache_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
    total.invalidated += stats.invalidated;
    total.size += stats.size;
    total.capacity += stats.capacity;
    total.plans_simplified += stats.plans_simplified;
    total.simplify_vars_removed += stats.simplify_vars_removed;
    total.simplify_clauses_removed += stats.simplify_clauses_removed;
    total.simplify_micros += stats.simplify_micros;
  }
  return total;
}

BatchEnumerateResult ShardedService::EnumerateBatch(
    const std::vector<EnumerateRequest>& requests) {
  return si::ServeEnumerateBatch(
      *this, [this] { return AggregatePlanCacheStats(); }, requests);
}

BatchDecideResult ShardedService::DecideBatch(
    const std::vector<DecideRequest>& requests) {
  return si::ServeDecideBatch(
      *this, [this] { return AggregatePlanCacheStats(); }, requests);
}

// --- the write path: ordered delta lane ----------------------------------

util::Status ShardedService::ParseDeltaTexts(DeltaRequest& delta) {
  const util::MutexLock lock(*parse_mutex_);
  const std::shared_ptr<dl::SymbolTable>& symbols =
      engine().model().symbols_ptr();
  for (auto [texts, facts] :
       {std::make_pair(&delta.added_fact_texts, &delta.added_facts),
        std::make_pair(&delta.removed_fact_texts, &delta.removed_facts)}) {
    for (const std::string& text : *texts) {
      util::Result<dl::Fact> fact = dl::Parser::ParseFact(symbols, text);
      if (!fact.ok()) return fact.status();
      facts->push_back(std::move(fact).value());
    }
    texts->clear();
  }
  return util::Status::Ok();
}

std::vector<dl::PredicateId> ShardedService::DeltaPredicates(
    const DeltaRequest& delta) const {
  std::vector<dl::PredicateId> predicates;
  for (const dl::Fact& fact : delta.added_facts) {
    predicates.push_back(fact.predicate);
  }
  for (const dl::Fact& fact : delta.removed_facts) {
    predicates.push_back(fact.predicate);
  }
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  return predicates;
}

bool ShardedService::CoveredByAnyShard(dl::PredicateId predicate) const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    if (map_.Covers(shard, predicate)) return true;
  }
  return false;
}

util::Status ShardedService::EnqueueDelta(std::function<void()> task) {
  const util::MutexLock lock(lane_mutex_);
  // The write path honours the same admission bound as the read path: a
  // drain in progress must not let the lane grow without limit.
  if (lane_.size() >= lane_capacity_) {
    return util::Status::ResourceExhausted(
        "the delta lane is full (" + std::to_string(lane_capacity_) +
        " pending deltas)");
  }
  lane_.push_back(std::move(task));
  if (!lane_draining_) {
    const util::Status submitted =
        executor_->TrySubmit([this] { DrainDeltaLane(); });
    if (!submitted.ok()) {
      lane_.pop_back();
      return submitted;
    }
    lane_draining_ = true;
  }
  return util::Status::Ok();
}

void ShardedService::DrainDeltaLane() {
  while (true) {
    std::function<void()> task;
    {
      const util::MutexLock lock(lane_mutex_);
      if (lane_.empty()) {
        lane_draining_ = false;
        break;
      }
      task = std::move(lane_.front());
      lane_.pop_front();
      // Marked under the lane mutex so stats() never sees the delta in
      // neither gauge (popped from lane_ yet not counted executing).
      lane_active_.fetch_add(1, std::memory_order_relaxed);
    }
    task();
    lane_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Group commit: the lane just drained — flush the one coalesced
  // fsync covering the whole burst. (A delta enqueued after the empty
  // check starts its own drain; an extra sync of its fresh append is
  // harmless.) A no-op outside group-commit mode.
  if (store_ != nullptr) (void)store_->SyncWal();
}

namespace {

/// Merges one shard's delta outcome into the logical view: replicas (and
/// overlapping closures) apply the same base facts on several shards, so
/// fact counters take the max (the logical counts, or an upper bound of
/// them) while the per-shard plan-cache counters genuinely add up.
void MergeDeltaStats(const DeltaStats& shard_stats, bool first,
                     DeltaStats& merged) {
  if (first) {
    merged = shard_stats;
    return;
  }
  merged.model_version =
      std::max(merged.model_version, shard_stats.model_version);
  merged.facts_added = std::max(merged.facts_added, shard_stats.facts_added);
  merged.facts_removed =
      std::max(merged.facts_removed, shard_stats.facts_removed);
  merged.facts_derived =
      std::max(merged.facts_derived, shard_stats.facts_derived);
  merged.facts_deleted =
      std::max(merged.facts_deleted, shard_stats.facts_deleted);
  merged.facts_rederived =
      std::max(merged.facts_rederived, shard_stats.facts_rederived);
  merged.facts_touched =
      std::max(merged.facts_touched, shard_stats.facts_touched);
  merged.plans_retained += shard_stats.plans_retained;
  merged.plans_invalidated += shard_stats.plans_invalidated;
  merged.eval_seconds = std::max(merged.eval_seconds, shard_stats.eval_seconds);
}

}  // namespace

util::Result<std::vector<std::size_t>> ShardedService::DeltaTargets(
    DeltaRequest& delta) {
  if (map_.policy() == ShardPolicy::kByFactRange) {
    return map_.ShardsForDelta({});
  }
  // By-predicate routing needs every fact's predicate, so text facts
  // are parsed once here (the shards then never re-parse).
  if (util::Status parsed = ParseDeltaTexts(delta); !parsed.ok()) {
    return parsed;
  }
  std::vector<std::size_t> targets =
      map_.ShardsForDelta(DeltaPredicates(delta));
  // Facts over predicates outside every shard's partition (predicates
  // no rule mentions) still belong in the logical database; they land
  // on shard 0, where predicate routing also defaults — so a client
  // that writes them can read them back.
  bool orphans = false;
  for (const std::vector<dl::Fact>* facts :
       {&delta.added_facts, &delta.removed_facts}) {
    for (const dl::Fact& fact : *facts) {
      if (!CoveredByAnyShard(fact.predicate)) {
        orphans = true;
        break;
      }
    }
    if (orphans) break;
  }
  if (orphans &&
      std::find(targets.begin(), targets.end(), std::size_t{0}) ==
          targets.end()) {
    targets.insert(targets.begin(), 0);
  }
  return targets;
}

util::Result<Ticket> ShardedService::SubmitDelta(Request request) {
  auto state = std::make_shared<Ticket::State>();
  state->request = std::move(request);
  const double deadline = state->request.deadline_seconds > 0
                              ? state->request.deadline_seconds
                              : options_.service.default_deadline_seconds;
  if (deadline > 0) state->cancel.SetTimeout(deadline);

  // Writes bypass Service::Submit, so the lane prices and admits on its
  // own — against the same shared admission controller the read paths
  // charge, keeping one tenant budget for the whole deployment.
  const qos::QosClass lane_class = state->request.qos_class;
  const std::string tenant = state->request.tenant;
  {
    const DeltaRequest& delta = std::get<DeltaRequest>(state->request.op);
    qos::CostSignals signals;
    signals.delta_facts =
        delta.added_facts.size() + delta.added_fact_texts.size() +
        delta.removed_facts.size() + delta.removed_fact_texts.size();
    signals.database_facts = engine().database().facts().size();
    state->estimated_cost = qos::CostEstimator::Delta(signals);
  }
  if (util::Status priced = admission_->Admit(tenant, state->estimated_cost);
      !priced.ok()) {
    {
      const util::MutexLock lock(stats_mutex_);
      ++stats_.rejected;
    }
    tenants_->RecordRejected(tenant, lane_class);
    return priced;
  }

  {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.submitted;
    state->id = ++next_id_;
  }

  // The fan-out decision happens at admission (under fact-range it is
  // trivially "all shards"); the lane then executes deltas one at a time
  // in admission order, so every shard observes one consistent write
  // order while only the intersecting shards' engines are ever written.
  util::Result<std::vector<std::size_t>> targets =
      DeltaTargets(std::get<DeltaRequest>(state->request.op));
  if (!targets.ok()) {
    // A malformed text fact fails the whole delta through the ticket,
    // exactly like the unsharded engine's own delta parsing. It never
    // queued, but it did charge: pair the queue/complete records so the
    // gauge balances and the refund lands.
    Response response;
    response.kind = RequestKind::kApplyDelta;
    response.status = targets.status();
    admission_->Release(tenant, state->estimated_cost);
    tenants_->RecordQueued(tenant, lane_class);
    tenants_->RecordCompleted(tenant, lane_class, /*cancelled=*/false,
                              state->estimated_cost,
                              state->submit_timer.ElapsedSeconds());
    {
      const util::MutexLock lock(stats_mutex_);
      si::CountOutcome(response, stats_);
    }
    si::CompleteTicket(state, std::move(response));
    return Ticket(state);
  }

  const util::Status enqueued =
      EnqueueDelta([this, state, targets = std::move(targets).value()] {
        ExecuteDelta(state, targets);
      });
  if (!enqueued.ok()) {
    {
      const util::MutexLock lock(stats_mutex_);
      --stats_.submitted;
      ++stats_.rejected;
    }
    admission_->Release(tenant, state->estimated_cost);
    tenants_->RecordRejected(tenant, lane_class);
    return enqueued;
  }
  tenants_->RecordQueued(tenant, lane_class);
  return Ticket(state);
}

void ShardedService::ExecuteDelta(const std::shared_ptr<Ticket::State>& state,
                                  const std::vector<std::size_t>& targets) {
  Response response;
  response.kind = RequestKind::kApplyDelta;
  response.queue_seconds = state->submit_timer.ElapsedSeconds();
  util::Timer exec_timer;
  const util::CancellationToken token = state->cancel.token();
  const DeltaRequest& delta = std::get<DeltaRequest>(state->request.op);

  if (token.ShouldStop()) {
    // Cancelled or expired while queued in the lane: no shard applied
    // anything (and nothing was logged), so the abort is trivially
    // all-or-nothing.
    response.status = token.InterruptionStatus();
  } else {
    util::Result<DeltaStats> applied = LogAndApply(delta, targets);
    if (applied.ok()) {
      DeltaStats stats = applied.value();
      stats.total_seconds = exec_timer.ElapsedSeconds();
      response.model_version = stats.model_version;
      response.delta = stats;
    } else {
      response.status = applied.status();
    }
  }
  response.exec_seconds = exec_timer.ElapsedSeconds();
  // The lane's single release point mirrors Service::Finish: refund the
  // admission charge and record the completion (cancellation included).
  admission_->Release(state->request.tenant, state->estimated_cost);
  const bool cancelled =
      response.status.code() == util::StatusCode::kCancelled ||
      response.status.code() == util::StatusCode::kDeadlineExceeded;
  tenants_->RecordCompleted(state->request.tenant, state->request.qos_class,
                            cancelled, state->estimated_cost,
                            response.queue_seconds);
  {
    const util::MutexLock lock(stats_mutex_);
    si::CountOutcome(response, stats_);
  }
  si::CompleteTicket(state, std::move(response));
}

util::Result<DeltaStats> ShardedService::LogAndApply(
    const DeltaRequest& delta, const std::vector<std::size_t>& targets) {
  if (store_ == nullptr) return ApplyToTargets(delta, targets);
  // The WAL stores the text form only: render any parsed facts so a
  // replaying process (with a different fact-id space) reconstructs the
  // identical delta. By-predicate admission parses every text into the
  // fact vectors, so rendering covers that path too.
  std::vector<std::string> added = delta.added_fact_texts;
  for (const dl::Fact& fact : delta.added_facts) {
    added.push_back(engine().FactToText(fact));
  }
  std::vector<std::string> removed = delta.removed_fact_texts;
  for (const dl::Fact& fact : delta.removed_facts) {
    removed.push_back(engine().FactToText(fact));
  }
  // The lane is already a single serialization point; the order mutex
  // is held anyway so the append->apply->checkpoint window has the same
  // shape (and the same replay guarantee) as the unsharded Service's.
  const util::MutexLock order(store_->order_mutex());
  if (util::Status logged = store_->AppendDelta(added, removed);
      !logged.ok()) {
    // Never apply what was not durably logged.
    return logged;
  }
  util::Result<DeltaStats> applied = ApplyToTargets(delta, targets);
  MaybeCheckpoint();
  return applied;
}

void ShardedService::MaybeCheckpoint() {
  if (!store_->ShouldCheckpoint()) return;
  // Fact-range replicas are lockstep, so the lead replica's pinned
  // snapshot IS the logical state (under by-predicate the store's
  // checkpoint interval is 0 and this never fires).
  const std::shared_ptr<const EngineState> state = engine().PinSnapshot();
  // A failed checkpoint write is not fatal: the WAL still holds the
  // full history, and the next interval retries.
  (void)store_->WriteCheckpoint(state->model, state->model_version,
                                *state->parse_mutex);
}

util::Result<DeltaStats> ShardedService::ApplyToTargets(
    const DeltaRequest& delta, const std::vector<std::size_t>& targets) {
  if (targets.empty()) {
    // The delta intersects no shard's partition: an applied no-op.
    DeltaStats stats;
    for (const auto& shard : shards_) {
      stats.model_version = std::max(
          stats.model_version, shard->service->engine().model_version());
      shard->deltas_skipped.fetch_add(1, std::memory_order_relaxed);
    }
    return stats;
  }
  if (map_.policy() == ShardPolicy::kByFactRange) {
    // Evaluate once on the lead replica, adopt everywhere: N shards pay
    // one semi-naive propagation plus N cheap snapshot publishes (each
    // with its own selective plan invalidation), and their fact-id
    // spaces stay lockstep.
    util::Result<EvaluatedDelta> evaluated =
        ShardEngine(targets.front()).EvaluateDelta(delta);
    if (!evaluated.ok()) return evaluated.status();
    DeltaStats merged;
    bool first = true;
    for (const std::size_t s : targets) {
      util::Result<DeltaStats> adopted =
          ShardEngine(s).AdoptDelta(evaluated.value());
      if (!adopted.ok()) return adopted.status();
      shards_[s]->deltas_applied.fetch_add(1, std::memory_order_relaxed);
      MergeDeltaStats(adopted.value(), first, merged);
      first = false;
    }
    return merged;
  }
  // By-predicate: each intersecting shard applies its split of the
  // delta (facts its dependency closure covers; shard 0 additionally
  // takes the facts no partition covers); the others are skipped
  // outright and keep serving their current version.
  DeltaStats merged;
  bool first = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (std::find(targets.begin(), targets.end(), s) == targets.end()) {
      shards_[s]->deltas_skipped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    util::Result<DeltaStats> applied = ShardEngine(s).ApplyDelta(
        SplitDeltaFor(s, delta, /*take_orphans=*/s == 0));
    if (!applied.ok()) return applied.status();
    shards_[s]->deltas_applied.fetch_add(1, std::memory_order_relaxed);
    MergeDeltaStats(applied.value(), first, merged);
    first = false;
  }
  return merged;
}

DeltaRequest ShardedService::SplitDeltaFor(std::size_t shard,
                                           const DeltaRequest& delta,
                                           bool take_orphans) const {
  // Texts were normalised into the fact vectors at admission.
  const auto wanted = [&](const dl::Fact& fact) {
    return map_.Covers(shard, fact.predicate) ||
           (take_orphans && !CoveredByAnyShard(fact.predicate));
  };
  DeltaRequest sub;
  for (const dl::Fact& fact : delta.added_facts) {
    if (wanted(fact)) sub.added_facts.push_back(fact);
  }
  for (const dl::Fact& fact : delta.removed_facts) {
    if (wanted(fact)) sub.removed_facts.push_back(fact);
  }
  return sub;
}

// --- stats ---------------------------------------------------------------

ServiceStats ShardedService::stats() const {
  ServiceStats total;
  {
    const util::MutexLock lock(stats_mutex_);
    total = stats_;
  }
  {
    const util::MutexLock lock(lane_mutex_);
    total.queue_depth += lane_.size();
    total.in_flight += lane_active_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_version = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_version = 0;
  total.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->service->stats();
    total.submitted += s.submitted;
    total.rejected += s.rejected;
    total.completed += s.completed;
    total.succeeded += s.succeeded;
    total.cancelled += s.cancelled;
    total.deadline_exceeded += s.deadline_exceeded;
    total.failed += s.failed;
    total.members_delivered += s.members_delivered;
    total.queue_depth += s.queue_depth;
    total.in_flight += s.in_flight;
    total.retained_snapshots += s.retained_snapshots;
    total.retained_snapshot_bytes += s.retained_snapshot_bytes;
    total.snapshot_evictions += s.snapshot_evictions;
    total.snapshot_alarm = total.snapshot_alarm || s.snapshot_alarm;
    total.plans_simplified += s.plans_simplified;
    total.simplify_vars_removed += s.simplify_vars_removed;
    total.simplify_clauses_removed += s.simplify_clauses_removed;
    total.simplify_micros += s.simplify_micros;
    min_version = std::min(min_version, s.model_version);
    max_version = std::max(max_version, s.model_version);

    ShardStats row;
    row.queue_depth = s.queue_depth;
    row.in_flight = s.in_flight;
    row.submitted = s.submitted;
    row.completed = s.completed;
    row.succeeded = s.succeeded;
    row.queries_per_second = s.queries_per_second;
    row.model_version = s.model_version;
    row.deltas_applied =
        shard->deltas_applied.load(std::memory_order_relaxed);
    row.deltas_skipped =
        shard->deltas_skipped.load(std::memory_order_relaxed);
    row.retained_snapshots = s.retained_snapshots;
    row.retained_snapshot_bytes = s.retained_snapshot_bytes;
    total.shards.push_back(row);
  }
  total.model_version = max_version;
  total.version_skew = shards_.empty() ? 0 : max_version - min_version;
  // One shared registry serves every shard; snapshot it once (the
  // per-shard ServiceStats carry the same rows — summing would double
  // count).
  total.tenants = tenants_->Snapshot();
  if (store_ != nullptr) {
    const storage::DurabilityCounters durability = store_->counters();
    total.wal_appends = durability.wal_appends;
    total.wal_bytes = durability.wal_bytes;
    total.checkpoints_written = durability.checkpoints_written;
    total.recovery_replayed_deltas = durability.recovery_replayed_deltas;
  }
  const double uptime = uptime_.ElapsedSeconds();
  total.queries_per_second =
      uptime > 0 ? static_cast<double>(total.completed) / uptime : 0;
  return total;
}

}  // namespace whyprov
