#ifndef WHYPROV_SHARD_SHARDED_SERVICE_H_
#define WHYPROV_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "qos/cost.h"
#include "qos/tenant_registry.h"
#include "service/service.h"
#include "shard/shard_map.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whyprov {

/// Configuration of a sharded deployment: the partitioning (see
/// ShardPolicy), the per-shard engine tuning, and the *shared* serving
/// policy — one worker pool, one submission queue, one admission bound
/// for all shards.
struct ShardedServiceOptions {
  std::size_t num_shards = 2;
  ShardPolicy policy = ShardPolicy::kAuto;
  /// Per-shard engine configuration. `engine.parse_mutex` is overridden:
  /// the shards share one symbol table, so the sharded service installs
  /// one shared parse mutex across them.
  EngineOptions engine;
  /// The shared pool/queue/deadline policy (num_threads, queue_capacity,
  /// default_deadline_seconds apply to the whole service, not per shard).
  ServiceOptions service;
};

/// One logical model partitioned across N engines behind the `Service`
/// API, unchanged for clients: the same `Request` variant, the same
/// `Ticket`/`Response`, the same streaming sinks.
///
///   * A router pins every Enumerate/Decide/Explain to the shard owning
///     its target (by predicate, or by fact-range striping over lockstep
///     replicas — see ShardPolicy), so a target's plan is compiled and
///     cached exactly once, on its owner.
///   * `ApplyDelta` fans out only to the shards whose partition
///     intersects the delta. Under fact-range the delta is *evaluated
///     once* and adopted by every replica (Engine::EvaluateDelta /
///     AdoptDelta), so N shards do not pay N propagations; under
///     by-predicate each intersecting shard applies its split of the
///     delta and untouched shards keep serving an older version
///     (ServiceStats::version_skew). A single ordered delta lane gives
///     all shards one consistent write order while only the intersecting
///     shards' engines are ever written.
///   * Cross-shard reads scatter/gather: `EnumerateBatch`/`DecideBatch`
///     fan requests to their owners and gather outcomes positionally;
///     `StreamMany` merges per-request bounded `MemberStream`s through a
///     `MemberMerge` with stable member ordering and end-to-end
///     backpressure.
///   * All shards sit behind ONE `util::Executor` (queue + workers +
///     admission bound): the queue/worker/deadline plumbing is the
///     single-engine `Service`'s, shared, not duplicated.
///
/// Equivalence guarantee: for any sequence of requests where each delta
/// is awaited before dependent reads, results are bit-identical to one
/// unsharded engine serving the same sequence, for every shard count and
/// both policies (tests/test_shard.cc holds this across the scenario
/// generators).
class ShardedService {
 public:
  /// Builds the shard engines from one parsed program/database: every
  /// shard evaluates the same parts, so the replicas start with
  /// identical models and fact-id spaces (the bit-identity invariant);
  /// the partition lives in the routing and the delta fan-out.
  static util::Result<std::unique_ptr<ShardedService>> Create(
      const datalog::Program& program, const datalog::Database& database,
      datalog::PredicateId answer_predicate,
      ShardedServiceOptions options = ShardedServiceOptions());

  /// Parses program/database text, resolves the answer predicate, then
  /// Create().
  static util::Result<std::unique_ptr<ShardedService>> FromText(
      std::string_view program_text, std::string_view database_text,
      std::string_view answer_predicate,
      ShardedServiceOptions options = ShardedServiceOptions());

  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Admits `request`, routed to its owning shard (reads) or through the
  /// ordered delta lane (writes). Same contract as Service::Submit; under
  /// by-predicate, reads must name their target by text (fact ids are
  /// shard-local there — under fact-range both work, and ids are
  /// portable across shards).
  util::Result<Ticket> Submit(Request request,
                              std::shared_ptr<MemberSink> sink = nullptr);

  /// Streaming enumeration on the owning shard (see Service::Stream).
  util::Result<std::pair<Ticket, std::shared_ptr<MemberStream>>> Stream(
      EnumerateRequest request, std::size_t stream_capacity = 8,
      double deadline_seconds = 0);

  /// Cross-shard streaming scatter/gather: every enumeration runs on its
  /// owner with its own bounded stream, merged in request order.
  util::Result<std::shared_ptr<MemberMerge>> StreamMany(
      std::vector<EnumerateRequest> requests, std::size_t stream_capacity = 8,
      double deadline_seconds = 0);

  /// Blocking scatter/gather batches (see Service::EnumerateBatch).
  BatchEnumerateResult EnumerateBatch(
      const std::vector<EnumerateRequest>& requests);
  BatchDecideResult DecideBatch(const std::vector<DecideRequest>& requests);

  /// Aggregated counters plus one ShardStats row per shard (queue depth,
  /// q/s, model version, delta fan-out, snapshot retention) and the
  /// snapshot-version skew across shards.
  ServiceStats stats() const;

  const ShardMap& shard_map() const { return map_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Shard `i`'s service (views/diagnostics; submit through the router).
  const Service& shard(std::size_t i) const { return *shards_[i]->service; }

  /// The reference engine for id/answer bookkeeping (shard 0). Under
  /// fact-range it is a full replica whose fact ids are valid on every
  /// shard; under by-predicate it only holds shard 0's slice — use
  /// target texts there.
  const Engine& engine() const;

  std::size_t num_threads() const { return executor_->num_threads(); }
  const ShardedServiceOptions& options() const { return options_; }

  /// Durability health of the group's single DurableStore (see
  /// Service::durability_status): Ok when the engine options carry no
  /// data_dir or the store opened cleanly, the open error otherwise.
  util::Status durability_status() const { return durability_status_; }

 private:
  struct Shard {
    std::unique_ptr<Service> service;
    std::atomic<std::uint64_t> deltas_applied{0};
    std::atomic<std::uint64_t> deltas_skipped{0};
  };

  ShardedService(ShardMap map, ShardedServiceOptions options,
                 std::shared_ptr<util::Mutex> parse_mutex,
                 std::shared_ptr<util::Executor> executor);

  /// Picks the owning shard for a read request, canonicalising the target
  /// (under fact-range, text targets are resolved to portable fact ids on
  /// the reference replica so the owner never re-parses). Routing errors
  /// that a single engine would also report (unparsable/unknown targets)
  /// are left for the owning shard to surface through the ticket.
  util::Result<std::size_t> RouteRead(Request& request) const;

  /// The write path: split/fan-out decision, then one ordered lane task.
  util::Result<Ticket> SubmitDelta(Request request);

  /// The fan-out decision of the write path: normalises text facts into
  /// the fact vectors (by-predicate needs every fact's predicate) and
  /// returns the shards whose partition the delta intersects, including
  /// shard 0 for orphaned predicates. Shared by admission and recovery
  /// replay, so a replayed delta fans out exactly like the original.
  util::Result<std::vector<std::size_t>> DeltaTargets(DeltaRequest& delta);

  /// The lane task: logs the delta to the group's WAL (when durable),
  /// then ApplyToTargets.
  void ExecuteDelta(const std::shared_ptr<Ticket::State>& state,
                    const std::vector<std::size_t>& targets);

  /// The apply core: evaluate-once/adopt-everywhere (fact-range) or
  /// split-and-apply per intersecting shard (by-predicate). Shared by
  /// the lane and recovery replay.
  util::Result<DeltaStats> ApplyToTargets(
      const DeltaRequest& delta, const std::vector<std::size_t>& targets);

  /// WAL append -> ApplyToTargets -> MaybeCheckpoint under the store's
  /// order mutex (identity when no store is open).
  util::Result<DeltaStats> LogAndApply(const DeltaRequest& delta,
                                       const std::vector<std::size_t>& targets);

  /// Opens the group's DurableStore (one for all shards) and recovers:
  /// under fact-range, restore the checkpoint into every replica and
  /// replay the WAL tail; under by-predicate, replay the full log
  /// through the normal split-and-apply path (no checkpoints — shard
  /// models diverge, so no single engine holds "the" state). Runs at
  /// Create, after the shards exist and before serving starts.
  void OpenDurability();

  /// Writes a checkpoint of the lead replica when enough WAL records
  /// accumulated (fact-range only; caller holds the order mutex).
  void MaybeCheckpoint();

  /// Replays one recovered WAL record through the normal write path
  /// (fan-out decision + apply core), without a ticket.
  void ReplayDelta(DeltaRequest delta);

  /// Parses a delta's text-form facts into its fact vectors (one parse at
  /// the router instead of one per shard); fails exactly like the
  /// engine's own delta parsing would.
  util::Status ParseDeltaTexts(DeltaRequest& delta);

  /// The facts of `delta` whose predicate `shard`'s partition covers;
  /// with `take_orphans`, also the facts no shard's partition covers
  /// (predicates outside every dependency closure land on shard 0, which
  /// is also where predicate routing defaults — read-your-writes holds).
  DeltaRequest SplitDeltaFor(std::size_t shard, const DeltaRequest& delta,
                             bool take_orphans) const;

  /// True iff some shard's partition covers `predicate`.
  bool CoveredByAnyShard(datalog::PredicateId predicate) const;

  /// Enqueues `task` on the delta lane (bounded by the service queue
  /// capacity — admission control for the write path too), spinning up a
  /// drain task on the shared executor when none is running.
  util::Status EnqueueDelta(std::function<void()> task);
  void DrainDeltaLane();

  /// The predicates a (text-normalised) delta mentions, deduplicated.
  std::vector<datalog::PredicateId> DeltaPredicates(
      const DeltaRequest& delta) const;

  /// Plan-cache counters summed across the shards.
  PlanCacheStats AggregatePlanCacheStats() const;

  Engine& ShardEngine(std::size_t shard) {
    return shards_[shard]->service->engine_;
  }

  ShardMap map_;
  ShardedServiceOptions options_;
  std::shared_ptr<util::Mutex> parse_mutex_;  ///< shared with every engine
  util::Timer uptime_;
  mutable util::Mutex stats_mutex_;
  /// The router's own traffic: the delta lane.
  ServiceStats stats_ GUARDED_BY(stats_mutex_);
  std::uint64_t next_id_ GUARDED_BY(stats_mutex_) = 0;

  // The ordered delta lane: tasks run FIFO on the shared executor, one at
  // a time — every shard observes the same write order (lockstep for
  // replicas) while each delta only touches its target shards' engines.
  mutable util::Mutex lane_mutex_;
  std::deque<std::function<void()>> lane_ GUARDED_BY(lane_mutex_);
  bool lane_draining_ GUARDED_BY(lane_mutex_) = false;
  std::size_t lane_capacity_ = 1;  ///< admission bound of the write path
  /// Deltas currently executing on the lane (0 or 1): popped from lane_
  /// but not yet finished, so stats() can still count them in-flight.
  std::atomic<std::size_t> lane_active_{0};

  /// The group's QoS identity plane, shared across every shard: one
  /// registry and one admission controller, so a tenant's budget and its
  /// stats rows span the whole deployment rather than fragmenting per
  /// shard. The delta lane charges/records through them directly (writes
  /// bypass Service::Submit).
  std::shared_ptr<qos::TenantRegistry> tenants_;
  std::shared_ptr<qos::AdmissionController> admission_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// The group's single durability tier (null = memory-only): the inner
  /// per-shard Services see a cleared data_dir and open nothing, so the
  /// whole stack shares one WAL + checkpoint regardless of shard count.
  std::unique_ptr<storage::DurableStore> store_;
  util::Status durability_status_;  ///< set once in OpenDurability
  /// Declared last (after the shards that share it): the destructor
  /// shuts it down first, draining every queued request and lane task.
  std::shared_ptr<util::Executor> executor_;
};

}  // namespace whyprov

#endif  // WHYPROV_SHARD_SHARDED_SERVICE_H_
